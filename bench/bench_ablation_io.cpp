// Ablation: the storage I/O subsystem (src/io/) — backend × readahead
// sweep on cold page caches.
//
// For each dataset (google and pokec stand-ins) and each backend the
// host supports (mmap and pread always; uring when the kernel grants
// io_uring_setup), runs GPSA PageRank twice per cell: readahead
// disabled (GPSA_READAHEAD_MB=0 semantics) and readahead at the
// default window. Every run uses the cold-start protocol: the engine
// drops its CSR and value files from the page cache after setup
// (madvise DONTNEED on the mappings, then posix_fadvise) so dispatch
// streams refault from storage and the readahead window has real
// stalls to hide.
//
// The headline metric is *dispatch throughput*: CSR + value bytes read
// per second of summed dispatcher busy time. Busy time is where fetch
// stalls land, so prefetch that actually overlaps I/O with dispatch
// raises it; elapsed time alone can hide the effect behind compute.
//
// Set GPSA_BENCH_JSON=<path> to dump all cells;
// scripts/check_io_ratio.py gates CI on the google readahead-on /
// readahead-off ratio.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "io/io_backend.hpp"
#include "metrics/table.hpp"

namespace {

using namespace gpsa;

struct Cell {
  std::string dataset;
  IoBackendKind backend = IoBackendKind::kMmap;
  bool readahead = false;
  double avg_elapsed_seconds = 0.0;
  double avg_busy_seconds = 0.0;       // summed over dispatchers
  std::uint64_t bytes_read = 0;        // per run
  double dispatch_mb_per_sec = 0.0;
  PrefetchCounters prefetch;           // last run
};

}  // namespace

int main() {
  const ExperimentOptions exp = ExperimentOptions::from_env();

  std::vector<IoBackendKind> backends = {IoBackendKind::kMmap,
                                         IoBackendKind::kPread};
  if (IoBackend::supported(IoBackendKind::kUring)) {
    backends.push_back(IoBackendKind::kUring);
  } else {
    std::printf("(uring unsupported here; sweeping mmap and pread)\n");
  }

  std::printf("== Ablation: I/O backend x readahead, cold page cache "
              "(scale %.3g, %u run(s)) ==\n\n",
              exp.scale, exp.runs);

  TextTable table({"dataset", "backend", "readahead", "elapsed (s)",
                   "busy (s)", "dispatch MB/s", "prefetched MB",
                   "hit rate", "stall (s)"});
  std::vector<Cell> cells;
  bool ok = true;
  const PageRankProgram pagerank(5);
  struct Dataset {
    const char* name;
    PaperGraph graph;
  };
  for (const Dataset& ds : {Dataset{"google", PaperGraph::kGoogle},
                            Dataset{"pokec", PaperGraph::kPokec}}) {
    const EdgeList graph = generate_paper_graph(ds.graph, exp.scale, exp.seed);
    for (const IoBackendKind backend : backends) {
      for (const bool readahead : {false, true}) {
        Cell cell;
        cell.dataset = ds.name;
        cell.backend = backend;
        cell.readahead = readahead;
        double elapsed = 0.0;
        double busy = 0.0;
        for (unsigned r = 0; r < exp.runs; ++r) {
          EngineOptions eo;
          eo.num_dispatchers = 2;
          eo.num_computers = 2;
          eo.max_supersteps = 5;
          eo.io.backend = backend;
          // Pinned (not env-derived) so the sweep is self-describing.
          eo.io.readahead_bytes = readahead ? (std::size_t{8} << 20) : 0;
          eo.io.cold_start = true;
          auto result = Engine::run(graph, pagerank, eo);
          if (!result.is_ok()) {
            std::fprintf(stderr, "%s: %s\n", ds.name,
                         result.status().to_string().c_str());
            ok = false;
            continue;
          }
          elapsed += result.value().elapsed_seconds;
          for (const double b : result.value().dispatcher_busy_seconds) {
            busy += b;
          }
          cell.bytes_read = result.value().io.bytes_read;
          cell.prefetch = result.value().prefetch;
        }
        cell.avg_elapsed_seconds = elapsed / exp.runs;
        cell.avg_busy_seconds = busy / exp.runs;
        cell.dispatch_mb_per_sec =
            cell.avg_busy_seconds > 0
                ? static_cast<double>(cell.bytes_read) / (1e6 * cell.avg_busy_seconds)
                : 0.0;
        table.add_row(
            {cell.dataset, io_backend_name(cell.backend),
             readahead ? "on" : "off",
             TextTable::num(cell.avg_elapsed_seconds, 4),
             TextTable::num(cell.avg_busy_seconds, 4),
             TextTable::num(cell.dispatch_mb_per_sec, 1),
             TextTable::num(
                 static_cast<double>(cell.prefetch.bytes_prefetched) / 1e6, 1),
             TextTable::num(100.0 * cell.prefetch.hit_rate(), 1) + "%",
             TextTable::num(cell.prefetch.stall_seconds, 4)});
        cells.push_back(cell);
      }
    }
  }
  table.print();
  std::printf("\ndispatch MB/s = bytes read / summed dispatcher busy "
              "seconds; fetch stalls land in busy time, so effective "
              "prefetch raises it.\n");

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("ablation_io");
  json.key("scale").value(exp.scale);
  json.key("runs").value(exp.runs);
  json.key("cells").begin_array();
  for (const Cell& cell : cells) {
    json.begin_object();
    json.key("dataset").value(cell.dataset);
    json.key("backend").value(io_backend_name(cell.backend));
    json.key("readahead").value(cell.readahead ? "on" : "off");
    json.key("avg_elapsed_seconds").value(cell.avg_elapsed_seconds);
    json.key("avg_busy_seconds").value(cell.avg_busy_seconds);
    json.key("bytes_read").value(cell.bytes_read);
    json.key("dispatch_mb_per_sec").value(cell.dispatch_mb_per_sec);
    json.key("bytes_prefetched").value(cell.prefetch.bytes_prefetched);
    json.key("bytes_dropped").value(cell.prefetch.bytes_dropped);
    json.key("window_hits").value(cell.prefetch.window_hits);
    json.key("window_misses").value(cell.prefetch.window_misses);
    json.key("stall_seconds").value(cell.prefetch.stall_seconds);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  const Status json_status = write_bench_json(json);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.to_string().c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
