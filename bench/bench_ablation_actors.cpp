// Ablation: actor-count sweep (dispatchers x computers) for GPSA
// PageRank on the pokec stand-in. The paper exposes both counts as the
// engine's main tuning knobs (§V.A); this bench maps the space.
#include <cstdio>

#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();
  const EdgeList graph =
      generate_paper_graph(PaperGraph::kPokec, exp.scale, exp.seed);

  std::printf("== Ablation: dispatchers x computers sweep, PageRank, pokec "
              "stand-in (scale %.3g) ==\n\n",
              exp.scale);

  struct Shape {
    unsigned dispatchers;
    unsigned computers;
  };
  const Shape shapes[] = {{1, 1}, {1, 4}, {4, 1}, {2, 2},
                          {4, 4}, {8, 8}, {16, 16}};

  TextTable table({"dispatchers", "computers", "avg elapsed (s)",
                   "avg/superstep (s)"});
  bool ok = true;
  const PageRankProgram pagerank(5);
  for (const Shape& shape : shapes) {
    double total = 0;
    std::uint64_t supersteps = 1;
    for (unsigned r = 0; r < exp.runs; ++r) {
      EngineOptions eo;
      eo.num_dispatchers = shape.dispatchers;
      eo.num_computers = shape.computers;
      eo.max_supersteps = 5;
      auto result = Engine::run(graph, pagerank, eo);
      if (!result.is_ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        ok = false;
        continue;
      }
      total += result.value().elapsed_seconds;
      supersteps = result.value().supersteps;
    }
    const double avg = total / exp.runs;
    table.add_row({TextTable::num(std::uint64_t{shape.dispatchers}),
                   TextTable::num(std::uint64_t{shape.computers}),
                   TextTable::num(avg, 4),
                   TextTable::num(avg / static_cast<double>(supersteps), 4)});
  }
  table.print();
  return ok ? 0 : 1;
}
