// Ablation: scheduler substrate (global mutex queue vs work stealing)
// crossed with the paper's actor-count knobs.
//
// Two experiments:
//
//   1. Engine sweep — the §V.A dispatchers x computers grid for PageRank
//      on the pokec stand-in, run once per scheduler mode. Engine work is
//      dominated by vertex compute, so this bounds the end-to-end impact.
//   2. Scheduler storm — relay rings of trivial actors at increasing
//      oversubscription (actors / workers). Every delivery is a
//      worker-context send that immediately re-schedules the peer, so
//      messages/sec here measures run-queue overhead and almost nothing
//      else. This is the cell the work-stealing scheduler is built for:
//      the global queue pays a mutex + condition-variable round trip per
//      wakeup, the stealing scheduler a lock-free push to the worker's
//      own deque.
//
// Set GPSA_BENCH_JSON=<path> to also write the full result set as JSON
// (consumed by the CI bench-smoke leg, which asserts the stealing/global
// storm throughput ratio at oversubscription >= 2).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "actor/actor_system.hpp"
#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"
#include "util/thread.hpp"

namespace gpsa {
namespace {

// --- Experiment 2: scheduler storm ------------------------------------------

// One hop in a relay ring: bump the global delivery counter and pass the
// token on with one fewer hop; a token that expires retires itself.
class RelayActor final : public Actor<std::uint32_t> {
 public:
  RelayActor(std::atomic<std::uint64_t>* delivered,
             std::atomic<std::int64_t>* live_tokens)
      : delivered_(delivered), live_tokens_(live_tokens) {}

  void set_next(RelayActor* next) { next_ = next; }

 private:
  void on_message(std::uint32_t hops_left) override {
    delivered_->fetch_add(1, std::memory_order_relaxed);
    if (hops_left > 0) {
      next_->send(hops_left - 1);
    } else {
      live_tokens_->fetch_sub(1, std::memory_order_release);
    }
  }

  std::atomic<std::uint64_t>* delivered_;
  std::atomic<std::int64_t>* live_tokens_;
  RelayActor* next_ = nullptr;
};

struct StormCell {
  SchedulerMode mode;
  unsigned workers = 0;
  unsigned actors = 0;
  std::uint64_t messages = 0;
  double seconds = 0.0;
  double messages_per_sec = 0.0;
};

// Runs `actors` relay actors (rings of kRingSize) on `workers` workers,
// with one token per ring making `hops` hops. Returns the measured cell.
StormCell run_storm(SchedulerMode mode, unsigned workers, unsigned actors,
                    std::uint32_t hops) {
  constexpr unsigned kRingSize = 8;
  const unsigned rings = (actors + kRingSize - 1) / kRingSize;

  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::int64_t> live_tokens{static_cast<std::int64_t>(rings)};

  ActorSystem system(workers, /*batch_size=*/64, mode);
  std::vector<RelayActor*> ring_actors;
  ring_actors.reserve(static_cast<std::size_t>(rings) * kRingSize);
  for (unsigned r = 0; r < rings; ++r) {
    for (unsigned i = 0; i < kRingSize; ++i) {
      ring_actors.push_back(
          system.spawn<RelayActor>(&delivered, &live_tokens));
    }
    for (unsigned i = 0; i < kRingSize; ++i) {
      ring_actors[r * kRingSize + i]->set_next(
          ring_actors[r * kRingSize + (i + 1) % kRingSize]);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  for (unsigned r = 0; r < rings; ++r) {
    ring_actors[static_cast<std::size_t>(r) * kRingSize]->send(hops);
  }
  while (live_tokens.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  const auto stop = std::chrono::steady_clock::now();
  system.shutdown();

  StormCell cell;
  cell.mode = mode;
  cell.workers = workers;
  cell.actors = rings * kRingSize;
  cell.messages = delivered.load(std::memory_order_relaxed);
  cell.seconds = std::chrono::duration<double>(stop - start).count();
  cell.messages_per_sec =
      cell.seconds > 0 ? static_cast<double>(cell.messages) / cell.seconds : 0;
  return cell;
}

// --- Experiment 1: engine sweep ---------------------------------------------

struct EngineCell {
  SchedulerMode mode;
  unsigned dispatchers = 0;
  unsigned computers = 0;
  double avg_seconds = 0.0;
  double avg_superstep_seconds = 0.0;
  std::uint64_t messages = 0;
  double messages_per_sec = 0.0;
};

// The engine builds its ActorSystem through the environment switch, so
// the sweep pins GPSA_SCHEDULER around each run.
class ScopedSchedulerEnv {
 public:
  explicit ScopedSchedulerEnv(SchedulerMode mode) {
    const char* prev = std::getenv("GPSA_SCHEDULER");
    had_prev_ = prev != nullptr;
    if (had_prev_) {
      prev_ = prev;
    }
    setenv("GPSA_SCHEDULER", scheduler_mode_name(mode), 1);
  }
  ~ScopedSchedulerEnv() {
    if (had_prev_) {
      setenv("GPSA_SCHEDULER", prev_.c_str(), 1);
    } else {
      unsetenv("GPSA_SCHEDULER");
    }
  }
  ScopedSchedulerEnv(const ScopedSchedulerEnv&) = delete;
  ScopedSchedulerEnv& operator=(const ScopedSchedulerEnv&) = delete;

 private:
  bool had_prev_ = false;
  std::string prev_;
};

void append_json_number(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.6g", key, value);
  out += buf;
}

}  // namespace
}  // namespace gpsa

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();
  const SchedulerMode modes[] = {SchedulerMode::kGlobalQueue,
                                 SchedulerMode::kWorkStealing};

  // --- Engine sweep ------------------------------------------------------
  const EdgeList graph =
      generate_paper_graph(PaperGraph::kPokec, exp.scale, exp.seed);
  std::printf("== Ablation: scheduler substrate x actor counts, PageRank, "
              "pokec stand-in (scale %.3g) ==\n\n",
              exp.scale);

  struct Shape {
    unsigned dispatchers;
    unsigned computers;
  };
  const Shape shapes[] = {{1, 1}, {1, 4}, {4, 1}, {2, 2},
                          {4, 4}, {8, 8}, {16, 16}};

  std::vector<EngineCell> engine_cells;
  TextTable engine_table({"scheduler", "dispatchers", "computers",
                          "avg elapsed (s)", "avg/superstep (s)", "msg/s"});
  bool ok = true;
  const PageRankProgram pagerank(5);
  for (const SchedulerMode mode : modes) {
    ScopedSchedulerEnv env(mode);
    for (const Shape& shape : shapes) {
      double total = 0;
      std::uint64_t supersteps = 1;
      std::uint64_t messages = 0;
      for (unsigned r = 0; r < exp.runs; ++r) {
        EngineOptions eo;
        eo.num_dispatchers = shape.dispatchers;
        eo.num_computers = shape.computers;
        eo.max_supersteps = 5;
        auto result = Engine::run(graph, pagerank, eo);
        if (!result.is_ok()) {
          std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
          ok = false;
          continue;
        }
        total += result.value().elapsed_seconds;
        supersteps = result.value().supersteps;
        messages = result.value().total_messages;
      }
      EngineCell cell;
      cell.mode = mode;
      cell.dispatchers = shape.dispatchers;
      cell.computers = shape.computers;
      cell.avg_seconds = total / exp.runs;
      cell.avg_superstep_seconds =
          cell.avg_seconds / static_cast<double>(supersteps);
      cell.messages = messages;
      cell.messages_per_sec =
          cell.avg_seconds > 0
              ? static_cast<double>(messages) / cell.avg_seconds
              : 0;
      engine_cells.push_back(cell);
      engine_table.add_row(
          {scheduler_mode_name(mode),
           TextTable::num(std::uint64_t{shape.dispatchers}),
           TextTable::num(std::uint64_t{shape.computers}),
           TextTable::num(cell.avg_seconds, 4),
           TextTable::num(cell.avg_superstep_seconds, 4),
           TextTable::num(cell.messages_per_sec, 0)});
    }
  }
  engine_table.print();

  // --- Scheduler storm ---------------------------------------------------
  const unsigned workers =
      exp.threads != 0 ? exp.threads : default_worker_count();
  // Token hop count scales with GPSA_BENCH_SCALE so CI can keep the smoke
  // run short while local runs measure a longer steady state.
  const auto hops = static_cast<std::uint32_t>(40'000 * exp.scale) + 1'000;
  const unsigned oversub[] = {1, 2, 4, 8};

  std::printf("\n== Scheduler storm: relay rings, %u workers, %u hops per "
              "token ==\n\n",
              workers, hops);
  std::vector<StormCell> storm_cells;
  TextTable storm_table(
      {"scheduler", "actors", "actors/worker", "messages", "msg/s"});
  for (const unsigned factor : oversub) {
    const unsigned actors = workers * factor * 8;  // whole rings of 8
    for (const SchedulerMode mode : modes) {
      // One untimed warm-up keeps first-touch page faults out of the
      // short CI measurement.
      run_storm(mode, workers, actors, hops / 8);
      const StormCell cell = run_storm(mode, workers, actors, hops);
      storm_cells.push_back(cell);
      storm_table.add_row({scheduler_mode_name(mode),
                           TextTable::num(std::uint64_t{cell.actors}),
                           TextTable::num(std::uint64_t{factor}),
                           TextTable::num(cell.messages),
                           TextTable::num(cell.messages_per_sec, 0)});
    }
  }
  storm_table.print();

  // --- JSON artifact ------------------------------------------------------
  if (const char* json_path = std::getenv("GPSA_BENCH_JSON")) {
    std::string out = "{\n  \"bench\": \"ablation_actors\",\n";
    out += "  \"workers\": " + std::to_string(workers) + ",\n";
    out += "  \"engine_sweep\": [\n";
    for (std::size_t i = 0; i < engine_cells.size(); ++i) {
      const EngineCell& c = engine_cells[i];
      out += "    {\"scheduler\":\"";
      out += scheduler_mode_name(c.mode);
      out += "\",\"dispatchers\":" + std::to_string(c.dispatchers);
      out += ",\"computers\":" + std::to_string(c.computers);
      out += ",\"messages\":" + std::to_string(c.messages) + ",";
      append_json_number(out, "avg_seconds", c.avg_seconds);
      out += ",";
      append_json_number(out, "messages_per_sec", c.messages_per_sec);
      out += i + 1 < engine_cells.size() ? "},\n" : "}\n";
    }
    out += "  ],\n  \"storm\": [\n";
    for (std::size_t i = 0; i < storm_cells.size(); ++i) {
      const StormCell& c = storm_cells[i];
      out += "    {\"scheduler\":\"";
      out += scheduler_mode_name(c.mode);
      out += "\",\"workers\":" + std::to_string(c.workers);
      out += ",\"actors\":" + std::to_string(c.actors);
      out += ",\"oversubscription\":" +
             std::to_string(c.actors / (c.workers * 8));
      out += ",\"messages\":" + std::to_string(c.messages) + ",";
      append_json_number(out, "seconds", c.seconds);
      out += ",";
      append_json_number(out, "messages_per_sec", c.messages_per_sec);
      out += i + 1 < storm_cells.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write GPSA_BENCH_JSON=%s\n", json_path);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
