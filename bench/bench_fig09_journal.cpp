// Figure 9: PageRank / CC / BFS on the (stand-in) soc-LiveJournal graph.
// Paper shape: like Figure 8 with the X-Stream gap widening (~10x on
// PageRank) as the graph grows.
#include "harness/experiment.hpp"

int main() {
  gpsa::ExperimentOptions options = gpsa::ExperimentOptions::from_env();
  auto cells = gpsa::run_figure(gpsa::PaperGraph::kLiveJournal, options,
                                "Figure 9");
  return cells.is_ok() ? 0 : 1;
}
