// Figure 7: PageRank / CC / BFS on the (stand-in) google graph —
// GPSA vs. GraphChi-PSW vs. X-Stream, average elapsed time of 3 runs over
// 5 supersteps (the paper's protocol). The paper's finding on this small
// graph: everything fits in memory, so GPSA's I/O advantages do not apply
// and it does not win.
#include "harness/experiment.hpp"

int main() {
  gpsa::ExperimentOptions options = gpsa::ExperimentOptions::from_env();
  auto cells = gpsa::run_figure(gpsa::PaperGraph::kGoogle, options,
                                "Figure 7");
  return cells.is_ok() ? 0 : 1;
}
