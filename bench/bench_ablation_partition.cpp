// Ablation: dispatcher interval assignment (§V.A) — uniform vertex counts
// ("a simple mod algorithm") vs edge-balanced cuts ("every dispatcher
// sends exactly the same number of messages") — on skewed inputs where
// hub vertices make uniform cuts lopsided:
//
//   star       one hub owning half the edges (the adversarial extreme:
//              whichever interval holds vertex 0 does almost all work);
//   power-law  the twitter-2010 stand-in (realistic skew).
//
// Beyond the static cut imbalance and end-to-end timing, this reports
// *dispatcher idle time per interval*: each dispatcher accumulates busy
// wall-clock across its supersteps (RunResult::dispatcher_busy_seconds),
// and idle = elapsed - busy is the time its interval starved while
// others still streamed — the direct, per-interval view of what a bad
// cut costs. Set GPSA_BENCH_JSON=<path> to dump all cells.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/partition.hpp"
#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"
#include "platform/file_util.hpp"

namespace {

using namespace gpsa;

constexpr unsigned kParts = 4;

const char* strategy_name(PartitionStrategy strategy) {
  return strategy == PartitionStrategy::kUniformVertices ? "uniform"
                                                         : "edge-balanced";
}

/// Star with ring: hub 0 points at every spoke, spokes form a ring so no
/// interval is empty. Half of all edges live in vertex 0's record.
EdgeList make_star(VertexId spokes) {
  EdgeList graph;
  graph.ensure_vertices(spokes + 1);
  for (VertexId v = 1; v <= spokes; ++v) {
    graph.add_edge(0, v);
    graph.add_edge(v, v == spokes ? 1 : v + 1);
  }
  return graph;
}

struct Cell {
  std::string input;
  PartitionStrategy strategy = PartitionStrategy::kUniformVertices;
  double avg_seconds = 0.0;
  // Per interval, averaged over runs.
  std::vector<double> busy_seconds;
  std::vector<double> idle_seconds;
};

}  // namespace

int main() {
  const ExperimentOptions exp = ExperimentOptions::from_env();
  const EdgeList powerlaw =
      generate_paper_graph(PaperGraph::kTwitter2010, exp.scale * 0.5,
                           exp.seed);
  const EdgeList star =
      make_star(std::max<VertexId>(1024, powerlaw.num_vertices()));

  std::printf("== Ablation: interval partitioning (star + twitter "
              "stand-in, scale %.3g) ==\n\n",
              exp.scale * 0.5);

  // First: static imbalance of the cuts themselves on the power-law input.
  auto dir = ScratchDir::create("partbench");
  dir.status().expect_ok();
  const std::string csr_path = dir.value().file("g.csr");
  preprocess_edges_to_csr(powerlaw, csr_path, true).expect_ok();
  auto reader = CsrFileReader::open(csr_path);
  reader.status().expect_ok();

  TextTable cuts({"strategy", "interval", "vertices", "edges",
                  "share of edges"});
  for (const auto strategy : {PartitionStrategy::kUniformVertices,
                              PartitionStrategy::kBalancedEdges}) {
    const auto intervals = make_intervals(reader.value(), kParts, strategy);
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      cuts.add_row(
          {strategy_name(strategy), TextTable::num(std::uint64_t{i}),
           TextTable::num(std::uint64_t{intervals[i].vertex_count()}),
           TextTable::num(intervals[i].edge_count),
           TextTable::num(100.0 * static_cast<double>(intervals[i].edge_count) /
                              static_cast<double>(powerlaw.num_edges()),
                          1) +
               "%"});
    }
  }
  cuts.print();

  // Second: end-to-end PageRank timing plus per-interval dispatcher
  // busy/idle under each (input, strategy).
  std::printf("\n");
  TextTable timing({"input", "strategy", "avg elapsed (s)", "interval",
                    "busy (s)", "idle (s)", "idle share"});
  std::vector<Cell> cells;
  bool ok = true;
  const PageRankProgram pagerank(5);
  struct Input {
    const char* name;
    const EdgeList& graph;
  };
  for (const Input& input : {Input{"star", star}, Input{"power-law", powerlaw}}) {
    for (const auto strategy : {PartitionStrategy::kUniformVertices,
                                PartitionStrategy::kBalancedEdges}) {
      Cell cell;
      cell.input = input.name;
      cell.strategy = strategy;
      cell.busy_seconds.assign(kParts, 0.0);
      cell.idle_seconds.assign(kParts, 0.0);
      double total = 0;
      for (unsigned r = 0; r < exp.runs; ++r) {
        EngineOptions eo;
        eo.num_dispatchers = kParts;
        eo.num_computers = 2;
        eo.partition = strategy;
        eo.max_supersteps = 5;
        auto result = Engine::run(input.graph, pagerank, eo);
        if (!result.is_ok()) {
          std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
          ok = false;
          continue;
        }
        total += result.value().elapsed_seconds;
        const auto& busy = result.value().dispatcher_busy_seconds;
        for (std::size_t d = 0; d < busy.size() && d < kParts; ++d) {
          cell.busy_seconds[d] += busy[d];
          cell.idle_seconds[d] +=
              std::max(0.0, result.value().elapsed_seconds - busy[d]);
        }
      }
      cell.avg_seconds = total / exp.runs;
      for (unsigned d = 0; d < kParts; ++d) {
        cell.busy_seconds[d] /= exp.runs;
        cell.idle_seconds[d] /= exp.runs;
        const double idle_share =
            cell.avg_seconds > 0 ? cell.idle_seconds[d] / cell.avg_seconds
                                 : 0.0;
        timing.add_row(
            {d == 0 ? cell.input : "", d == 0 ? strategy_name(strategy) : "",
             d == 0 ? TextTable::num(cell.avg_seconds, 4) : "",
             TextTable::num(std::uint64_t{d}),
             TextTable::num(cell.busy_seconds[d], 4),
             TextTable::num(cell.idle_seconds[d], 4),
             TextTable::num(100.0 * idle_share, 1) + "%"});
      }
      cells.push_back(std::move(cell));
    }
  }
  timing.print();
  std::printf("\nidle = elapsed - busy per dispatcher: time an interval's "
              "dispatcher starved while other intervals still streamed. "
              "Edge-balanced cuts should flatten it on skewed inputs.\n");

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("ablation_partition");
  json.key("scale").value(exp.scale * 0.5);
  json.key("runs").value(exp.runs);
  json.key("intervals").value(kParts);
  json.key("cells").begin_array();
  for (const Cell& cell : cells) {
    json.begin_object();
    json.key("input").value(cell.input);
    json.key("strategy").value(strategy_name(cell.strategy));
    json.key("avg_seconds").value(cell.avg_seconds);
    json.key("busy_seconds").begin_array();
    for (const double b : cell.busy_seconds) {
      json.value(b);
    }
    json.end_array();
    json.key("idle_seconds").begin_array();
    for (const double i : cell.idle_seconds) {
      json.value(i);
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  const Status json_status = write_bench_json(json);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.to_string().c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
