// Ablation: dispatcher interval assignment (§V.A) — uniform vertex counts
// ("a simple mod algorithm") vs edge-balanced cuts ("every dispatcher
// sends exactly the same number of messages") — on the heavily skewed
// twitter stand-in, where hub vertices make uniform cuts lopsided.
#include <cstdio>

#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/partition.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"
#include "platform/file_util.hpp"

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();
  const EdgeList graph =
      generate_paper_graph(PaperGraph::kTwitter2010, exp.scale * 0.5,
                           exp.seed);

  std::printf("== Ablation: interval partitioning, twitter stand-in "
              "(scale %.3g) ==\n\n",
              exp.scale * 0.5);

  // First: static imbalance of the cuts themselves.
  auto dir = ScratchDir::create("partbench");
  dir.status().expect_ok();
  const std::string csr_path = dir.value().file("g.csr");
  preprocess_edges_to_csr(graph, csr_path, true).expect_ok();
  auto reader = CsrFileReader::open(csr_path);
  reader.status().expect_ok();

  constexpr unsigned kParts = 4;
  TextTable cuts({"strategy", "interval", "vertices", "edges",
                  "share of edges"});
  for (const auto strategy : {PartitionStrategy::kUniformVertices,
                              PartitionStrategy::kBalancedEdges}) {
    const auto intervals = make_intervals(reader.value(), kParts, strategy);
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      cuts.add_row(
          {strategy == PartitionStrategy::kUniformVertices ? "uniform"
                                                           : "edge-balanced",
           TextTable::num(std::uint64_t{i}),
           TextTable::num(std::uint64_t{intervals[i].vertex_count()}),
           TextTable::num(intervals[i].edge_count),
           TextTable::num(100.0 * static_cast<double>(intervals[i].edge_count) /
                              static_cast<double>(graph.num_edges()),
                          1) +
               "%"});
    }
  }
  cuts.print();

  // Second: end-to-end PageRank timing under each strategy.
  std::printf("\n");
  TextTable timing({"strategy", "avg elapsed (s)"});
  bool ok = true;
  const PageRankProgram pagerank(5);
  for (const auto strategy : {PartitionStrategy::kUniformVertices,
                              PartitionStrategy::kBalancedEdges}) {
    double total = 0;
    for (unsigned r = 0; r < exp.runs; ++r) {
      EngineOptions eo;
      eo.num_dispatchers = kParts;
      eo.num_computers = 2;
      eo.partition = strategy;
      eo.max_supersteps = 5;
      auto result = Engine::run(graph, pagerank, eo);
      if (!result.is_ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        ok = false;
        continue;
      }
      total += result.value().elapsed_seconds;
    }
    timing.add_row({strategy == PartitionStrategy::kUniformVertices
                        ? "uniform"
                        : "edge-balanced",
                    TextTable::num(total / exp.runs, 4)});
  }
  timing.print();
  return ok ? 0 : 1;
}
