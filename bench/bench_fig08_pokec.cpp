// Figure 8: PageRank / CC / BFS on the (stand-in) soc-Pokec graph.
// Paper shape: GPSA ~1.3x GraphChi and ~8x X-Stream on PageRank; ~4x/6x
// on CC; BFS ≈ GraphChi with X-Stream worst (it streams every edge every
// superstep while the vertex-centric engines skip inactive vertices).
#include "harness/experiment.hpp"

int main() {
  gpsa::ExperimentOptions options = gpsa::ExperimentOptions::from_env();
  auto cells = gpsa::run_figure(gpsa::PaperGraph::kPokec, options,
                                "Figure 8");
  return cells.is_ok() ? 0 : 1;
}
