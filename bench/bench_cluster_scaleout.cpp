// Distributed-simulation bench (paper §III.B motivation c, and the
// introduction's distributed-systems cost analysis): communication volume,
// per-node load balance, and modeled network time as the simulated
// cluster grows — the costs that motivate the single-machine design.
#include <cstdio>

#include "apps/pagerank.hpp"
#include "cluster/cluster_engine.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();
  const EdgeList graph =
      generate_paper_graph(PaperGraph::kPokec, exp.scale, exp.seed);
  const PageRankProgram program(5);

  std::printf("== Cluster scale-out: PageRank, pokec stand-in (scale %.3g) "
              "==\n\n",
              exp.scale);

  TextTable table({"nodes", "partition", "remote msgs", "remote %",
                   "send imbalance", "modeled net (s)", "elapsed (s)"});
  bool ok = true;
  for (const unsigned nodes : {1U, 2U, 4U, 8U, 16U}) {
    for (const auto strategy : {PartitionStrategy::kUniformVertices,
                                PartitionStrategy::kBalancedEdges}) {
      ClusterOptions co;
      co.num_nodes = nodes;
      co.partition = strategy;
      co.max_supersteps = 5;
      const auto result = ClusterEngine::run(graph, program, co);
      if (!result.is_ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        ok = false;
        continue;
      }
      const ClusterRunResult& r = result.value();
      table.add_row(
          {TextTable::num(std::uint64_t{nodes}),
           strategy == PartitionStrategy::kUniformVertices ? "uniform"
                                                           : "edge-balanced",
           TextTable::num(r.remote_messages),
           TextTable::num(100.0 * static_cast<double>(r.remote_messages) /
                              static_cast<double>(
                                  std::max<std::uint64_t>(r.total_messages,
                                                          1)),
                          1) +
               "%",
           TextTable::num(r.send_imbalance(), 2),
           TextTable::num(r.modeled_network_seconds, 4),
           TextTable::num(r.elapsed_seconds, 4)});
    }
  }
  table.print();
  std::printf("\nremote share approaches (nodes-1)/nodes for random "
              "partitions — the communication cost the paper's introduction "
              "cites as a reason to stay on one machine.\n");
  return ok ? 0 : 1;
}
