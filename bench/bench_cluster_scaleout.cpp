// Distributed-simulation bench (paper §III.B motivation c, and the
// introduction's distributed-systems cost analysis): communication volume,
// per-node load balance, and modeled network time as the simulated
// cluster grows — the costs that motivate the single-machine design.
//
// Second section: the *real* network data plane (DESIGN.md §14). The
// bench re-execs itself as GPSA_CLUSTER_RANKS localhost processes
// (GPSA_CLUSTER_RANK in the environment marks a child), runs the same
// PageRank over real sockets, and cross-checks the measured bytes-on-wire
// against the in-process simulation's frame-accurate model plus
// bit-identity of the value vectors. GPSA_BENCH_JSON lands both views for
// the CI gate (scripts/check_cluster_net.py).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "cluster/cluster_engine.hpp"
#include "cluster/cluster_net.hpp"
#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

namespace {

using namespace gpsa;

constexpr unsigned kNetRanks = 3;
constexpr std::uint64_t kNetSupersteps = 5;

EdgeList bench_graph(const ExperimentOptions& exp) {
  return generate_paper_graph(PaperGraph::kPokec, exp.scale, exp.seed);
}

/// Child mode: one rank of the real-socket run. Rank 0 reports its result
/// to GPSA_CLUSTER_NET_OUT for the parent to cross-check.
int run_child_rank() {
  const auto net = ClusterNetOptions::from_env();
  if (!net.is_ok()) {
    std::fprintf(stderr, "%s\n", net.status().to_string().c_str());
    return 1;
  }
  const ExperimentOptions exp = ExperimentOptions::from_env();
  const EdgeList graph = bench_graph(exp);
  const PageRankProgram program(kNetSupersteps);
  ClusterOptions options;
  options.max_supersteps = kNetSupersteps;
  const auto result = run_cluster_rank(graph, program, options, net.value());
  if (!result.is_ok()) {
    std::fprintf(stderr, "rank %u: %s\n", net.value().rank,
                 result.status().to_string().c_str());
    return 1;
  }
  const char* out_path = std::getenv("GPSA_CLUSTER_NET_OUT");
  if (net.value().rank == 0 && out_path != nullptr) {
    const ClusterRunResult& r = result.value();
    std::ofstream out(out_path, std::ios::trunc);
    out << "supersteps " << r.supersteps << "\n";
    out << "total_messages " << r.total_messages << "\n";
    out << "bytes_on_wire " << r.bytes_on_wire << "\n";
    out << "frames_sent " << r.frames_sent << "\n";
    out << "elapsed_seconds " << r.elapsed_seconds << "\n";
    out << "superstep_wire";
    for (const std::uint64_t bytes : r.superstep_wire_bytes) {
      out << " " << bytes;
    }
    out << "\n";
    out << "values";
    for (const Payload value : r.values) {
      out << " " << value;
    }
    out << "\n";
    if (!out.good()) {
      return 1;
    }
  }
  return 0;
}

struct NetReport {
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t frames_sent = 0;
  double elapsed_seconds = 0.0;
  std::vector<std::uint64_t> superstep_wire;
  std::vector<Payload> values;
};

bool parse_net_report(const std::string& path, NetReport& out) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "supersteps") {
      fields >> out.supersteps;
    } else if (key == "total_messages") {
      fields >> out.total_messages;
    } else if (key == "bytes_on_wire") {
      fields >> out.bytes_on_wire;
    } else if (key == "frames_sent") {
      fields >> out.frames_sent;
    } else if (key == "elapsed_seconds") {
      fields >> out.elapsed_seconds;
    } else if (key == "superstep_wire") {
      std::uint64_t v = 0;
      while (fields >> v) {
        out.superstep_wire.push_back(v);
      }
    } else if (key == "values") {
      Payload v = 0;
      while (fields >> v) {
        out.values.push_back(v);
      }
    }
  }
  return out.supersteps > 0 && !out.values.empty();
}

/// Parent mode: spawn kNetRanks copies of this binary over localhost
/// sockets and cross-check against the in-process simulation.
bool run_net_section(const EdgeList& graph, JsonWriter& json) {
  std::printf("== Real network data plane: %u localhost processes ==\n\n",
              kNetRanks);

  const PageRankProgram program(kNetSupersteps);
  ClusterOptions options;
  options.num_nodes = kNetRanks;
  options.max_supersteps = kNetSupersteps;
  const auto model = ClusterEngine::run(graph, program, options);
  if (!model.is_ok()) {
    std::fprintf(stderr, "%s\n", model.status().to_string().c_str());
    return false;
  }

  char self[4096];
  const ssize_t len = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (len <= 0) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    return false;
  }
  self[len] = '\0';
  const std::uint16_t port =
      static_cast<std::uint16_t>(33000 + (::getpid() % 8000));
  const std::string report_path =
      "/tmp/gpsa_cluster_net_" + std::to_string(::getpid()) + ".txt";

  std::vector<pid_t> pids;
  for (unsigned rank = 0; rank < kNetRanks; ++rank) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::setenv("GPSA_CLUSTER_RANK", std::to_string(rank).c_str(), 1);
      ::setenv("GPSA_CLUSTER_RANKS", std::to_string(kNetRanks).c_str(), 1);
      ::setenv("GPSA_CLUSTER_PORT", std::to_string(port).c_str(), 1);
      ::setenv("GPSA_CLUSTER_NET_OUT", report_path.c_str(), 1);
      ::unsetenv("GPSA_BENCH_JSON");  // children must not clobber the report
      ::execl(self, self, static_cast<char*>(nullptr));
      ::_exit(127);
    }
    pids.push_back(pid);
  }
  bool children_ok = true;
  for (unsigned rank = 0; rank < kNetRanks; ++rank) {
    int wait_status = 0;
    if (::waitpid(pids[rank], &wait_status, 0) != pids[rank] ||
        !WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
      std::fprintf(stderr, "rank %u exited abnormally\n", rank);
      children_ok = false;
    }
  }
  NetReport net;
  if (!children_ok || !parse_net_report(report_path, net)) {
    std::fprintf(stderr, "net run failed or produced no report\n");
    std::remove(report_path.c_str());
    return false;
  }
  std::remove(report_path.c_str());

  const ClusterRunResult& m = model.value();
  const bool bit_identity = net.values == m.values;
  const double wire_factor =
      m.bytes_on_wire > 0 ? static_cast<double>(net.bytes_on_wire) /
                                static_cast<double>(m.bytes_on_wire)
                          : 0.0;

  TextTable table({"view", "supersteps", "messages", "wire bytes", "frames",
                   "elapsed (s)"});
  table.add_row({"modeled (in-process)", TextTable::num(m.supersteps),
                 TextTable::num(m.total_messages),
                 TextTable::num(m.bytes_on_wire), TextTable::num(m.frames_sent),
                 TextTable::num(m.elapsed_seconds, 4)});
  table.add_row({"measured (sockets)", TextTable::num(net.supersteps),
                 TextTable::num(net.total_messages),
                 TextTable::num(net.bytes_on_wire),
                 TextTable::num(net.frames_sent),
                 TextTable::num(net.elapsed_seconds, 4)});
  table.print();
  std::printf("\nbit-identical values: %s; measured/modeled wire bytes: "
              "%.3f (control-frame overhead above 1.0)\n\n",
              bit_identity ? "yes" : "NO", wire_factor);

  json.key("net").begin_object();
  json.key("ranks").value(kNetRanks);
  json.key("children_ok").value(children_ok);
  json.key("bit_identity").value(bit_identity);
  json.key("supersteps").value(net.supersteps);
  json.key("total_messages").value(net.total_messages);
  json.key("measured_bytes_on_wire").value(net.bytes_on_wire);
  json.key("measured_frames").value(net.frames_sent);
  json.key("modeled_supersteps").value(m.supersteps);
  json.key("modeled_total_messages").value(m.total_messages);
  json.key("modeled_bytes_on_wire").value(m.bytes_on_wire);
  json.key("modeled_frames").value(m.frames_sent);
  json.key("elapsed_seconds").value(net.elapsed_seconds);
  json.key("superstep_wire_bytes").begin_array();
  for (const std::uint64_t bytes : net.superstep_wire) {
    json.value(bytes);
  }
  json.end_array();
  json.end_object();
  return bit_identity;
}

}  // namespace

int main() {
  if (std::getenv("GPSA_CLUSTER_RANK") != nullptr) {
    return run_child_rank();
  }
  const ExperimentOptions exp = ExperimentOptions::from_env();
  const EdgeList graph = bench_graph(exp);
  const PageRankProgram program(5);

  std::printf("== Cluster scale-out: PageRank, pokec stand-in (scale %.3g) "
              "==\n\n",
              exp.scale);

  TextTable table({"nodes", "partition", "remote msgs", "remote %",
                   "send imbalance", "modeled net (s)", "elapsed (s)"});
  bool ok = true;
  for (const unsigned nodes : {1U, 2U, 4U, 8U, 16U}) {
    for (const auto strategy : {PartitionStrategy::kUniformVertices,
                                PartitionStrategy::kBalancedEdges}) {
      ClusterOptions co;
      co.num_nodes = nodes;
      co.partition = strategy;
      co.max_supersteps = 5;
      const auto result = ClusterEngine::run(graph, program, co);
      if (!result.is_ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        ok = false;
        continue;
      }
      const ClusterRunResult& r = result.value();
      table.add_row(
          {TextTable::num(std::uint64_t{nodes}),
           strategy == PartitionStrategy::kUniformVertices ? "uniform"
                                                           : "edge-balanced",
           TextTable::num(r.remote_messages),
           TextTable::num(100.0 * static_cast<double>(r.remote_messages) /
                              static_cast<double>(
                                  std::max<std::uint64_t>(r.total_messages,
                                                          1)),
                          1) +
               "%",
           TextTable::num(r.send_imbalance(), 2),
           TextTable::num(r.modeled_network_seconds, 4),
           TextTable::num(r.elapsed_seconds, 4)});
    }
  }
  table.print();
  std::printf("\nremote share approaches (nodes-1)/nodes for random "
              "partitions — the communication cost the paper's introduction "
              "cites as a reason to stay on one machine.\n\n");

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("cluster_scaleout");
  if (!run_net_section(graph, json)) {
    ok = false;
  }
  json.end_object();
  const Status written = write_bench_json(json);
  if (!written.is_ok()) {
    std::fprintf(stderr, "%s\n", written.to_string().c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
