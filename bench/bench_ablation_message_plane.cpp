// Ablation: the message plane — batch-buffer pooling × destination
// routing, warm page cache.
//
// Four cells on the google stand-in, PageRank (every vertex active every
// superstep, so the plane carries maximal message traffic):
//
//   pool off + mod    the legacy plane: one heap allocation per flushed
//                     batch, owners interleaved at single-vertex stride
//                     (every computer writes every value-file cache line);
//   pool off + range  contiguous ownership alone;
//   pool on  + mod    buffer recycling alone;
//   pool on  + range  the full zero-allocation cache-ordered plane
//                     (the default configuration).
//
// The headline metric is *message throughput*: messages dispatched and
// applied per second of summed superstep wall time. Allocation churn,
// combiner-map probing, and apply-side cache misses all land inside the
// superstep clock, so the plane work shows up directly.
//
// Set GPSA_BENCH_JSON=<path> to dump all cells;
// scripts/check_msgplane_ratio.py gates CI on the (pool on + range) /
// (pool off + mod) ratio and on zero steady-state pool misses.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

namespace {

using namespace gpsa;

struct Cell {
  bool pool = false;
  MessageRouting routing = MessageRouting::kMod;
  double superstep_seconds = 0.0;   // summed over supersteps, best round
  double apply_busy_seconds = 0.0;  // same round as superstep_seconds
  std::uint64_t total_messages = 0;  // per round (identical across rounds)
  double msgs_per_sec = 0.0;         // best over rounds
  MessagePoolStats pool_stats;       // round the best came from
  std::vector<double> round_msgs_per_sec;  // every round, in order
};

}  // namespace

int main() {
  const ExperimentOptions exp = ExperimentOptions::from_env();

  std::printf("== Ablation: message plane, pool x routing "
              "(scale %.3g, %u run(s)) ==\n\n",
              exp.scale, exp.runs);

  const EdgeList graph =
      generate_paper_graph(PaperGraph::kGoogle, exp.scale, exp.seed);
  const PageRankProgram pagerank(5);

  TextTable table({"pool", "routing", "superstep (s)", "apply busy (s)",
                   "messages", "Mmsg/s", "pool hits", "steady misses"});
  std::vector<Cell> cells;
  for (const bool pool : {false, true}) {
    for (const MessageRouting routing :
         {MessageRouting::kMod, MessageRouting::kRange}) {
      Cell cell;
      cell.pool = pool;
      cell.routing = routing;
      cells.push_back(cell);
    }
  }
  // Rounds interleave the cells and each cell keeps its best round: on a
  // shared machine a slow patch then skews every configuration equally
  // instead of sinking whichever cell it happened to land on.
  bool ok = true;
  for (unsigned r = 0; r < exp.runs; ++r) {
    for (Cell& cell : cells) {
      EngineOptions eo;
      // Enough computers that mod routing's interleaved writes genuinely
      // shear value-column cache lines; pinned (not env-derived) so the
      // sweep is self-describing.
      eo.num_dispatchers = 2;
      eo.num_computers = 4;
      eo.max_supersteps = 5;
      eo.message_pool = cell.pool;
      eo.routing = cell.routing;
      if (const char* b = std::getenv("GPSA_BENCH_BATCH")) {
        eo.message_batch = static_cast<std::size_t>(std::atoi(b));
      }
      auto result = Engine::run(graph, pagerank, eo);
      if (!result.is_ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        ok = false;
        continue;
      }
      double superstep_seconds = 0.0;
      double apply_busy = 0.0;
      for (const double s : result.value().superstep_seconds) {
        superstep_seconds += s;
      }
      for (const double b : result.value().computer_busy_seconds) {
        apply_busy += b;
      }
      const double msgs_per_sec =
          superstep_seconds > 0
              ? static_cast<double>(result.value().total_messages) /
                    superstep_seconds
              : 0.0;
      cell.total_messages = result.value().total_messages;
      cell.round_msgs_per_sec.push_back(msgs_per_sec);
      if (msgs_per_sec > cell.msgs_per_sec) {
        cell.msgs_per_sec = msgs_per_sec;
        cell.superstep_seconds = superstep_seconds;
        cell.apply_busy_seconds = apply_busy;
        cell.pool_stats = result.value().pool;
      }
      if (std::getenv("GPSA_BENCH_DEBUG")) {
        std::printf("[debug] round %u pool=%d routing=%s disp busy:", r,
                    cell.pool, message_routing_name(cell.routing));
        for (double b : result.value().dispatcher_busy_seconds)
          std::printf(" %.4f", b);
        std::printf("  comp busy:");
        for (double b : result.value().computer_busy_seconds)
          std::printf(" %.4f", b);
        std::printf("  supersteps total: %.4f\n", superstep_seconds);
      }
    }
  }
  for (const Cell& cell : cells) {
    table.add_row({cell.pool ? "on" : "off",
                   message_routing_name(cell.routing),
                   TextTable::num(cell.superstep_seconds, 4),
                   TextTable::num(cell.apply_busy_seconds, 4),
                   std::to_string(cell.total_messages),
                   TextTable::num(cell.msgs_per_sec / 1e6, 2),
                   std::to_string(cell.pool_stats.hits),
                   std::to_string(cell.pool_stats.steady_misses)});
  }
  table.print();
  std::printf("\nMmsg/s = total messages / summed superstep seconds; "
              "allocation churn and apply-side cache misses both land in "
              "the superstep clock.\n");

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("ablation_message_plane");
  json.key("scale").value(exp.scale);
  json.key("runs").value(exp.runs);
  json.key("cells").begin_array();
  for (const Cell& cell : cells) {
    json.begin_object();
    json.key("pool").value(cell.pool ? "on" : "off");
    json.key("routing").value(message_routing_name(cell.routing));
    json.key("superstep_seconds").value(cell.superstep_seconds);
    json.key("apply_busy_seconds").value(cell.apply_busy_seconds);
    json.key("total_messages").value(cell.total_messages);
    json.key("msgs_per_sec").value(cell.msgs_per_sec);
    // Per-round samples, in round order: the gate script pairs cells
    // round-by-round (the rounds interleave the cells, so machine-wide
    // slow patches cancel out of a within-round ratio).
    json.key("round_msgs_per_sec").begin_array();
    for (const double m : cell.round_msgs_per_sec) {
      json.value(m);
    }
    json.end_array();
    json.key("pool_leases").value(cell.pool_stats.leases);
    json.key("pool_hits").value(cell.pool_stats.hits);
    json.key("pool_misses").value(cell.pool_stats.misses);
    json.key("pool_steady_misses").value(cell.pool_stats.steady_misses);
    json.key("pool_recycled_bytes").value(cell.pool_stats.recycled_bytes);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  const Status json_status = write_bench_json(json);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.to_string().c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
