// Scaling sweep: where does GPSA start winning?
//
// The paper's Figures 7-10 are snapshots of a size sweep: on the small
// google graph everything is in memory and GPSA does not win; from pokec
// upward the I/O regime dominates and GPSA pulls ahead. This bench sweeps
// the pokec stand-in's scale across the modeled RAM boundary and reports
// the modeled GPSA-vs-baseline ratios per scale — reproducing the
// crossover as a single curve.
#include <cstdio>

#include "harness/experiment.hpp"
#include "metrics/io_model.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace gpsa;
  ExperimentOptions options = ExperimentOptions::from_env();
  options.runs = 1;

  std::printf("== Scaling crossover: PageRank on pokec stand-ins, modeled "
              "RAM %.2f MB ==\n\n",
              static_cast<double>(model_ram_bytes()) / (1024.0 * 1024.0));

  TextTable table({"scale", "edges", "GPSA ws (MB)", "regime",
                   "GraphChi/GPSA", "X-Stream/GPSA"});
  bool ok = true;
  for (const double scale : {0.02, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    ExperimentOptions sweep = options;
    sweep.scale = scale;
    // Sub-millisecond in-memory cells are noisy; average more runs there.
    sweep.runs = scale < 0.2 ? 15 : 3;
    const EdgeList graph =
        prepare_graph(PaperGraph::kPokec, AlgoKind::kPageRank, sweep);
    double gpsa_modeled = 0.0;
    double ratios[3] = {};
    std::uint64_t gpsa_ws = 0;
    int index = 0;
    for (SystemKind system : all_systems()) {
      auto cell = run_cell(system, AlgoKind::kPageRank, graph, sweep);
      if (!cell.is_ok()) {
        std::fprintf(stderr, "%s\n", cell.status().to_string().c_str());
        ok = false;
        continue;
      }
      if (system == SystemKind::kGpsa) {
        gpsa_modeled = cell.value().modeled_seconds;
        gpsa_ws = cell.value().working_set_bytes;
      }
      ratios[index++] =
          gpsa_modeled > 0.0 ? cell.value().modeled_seconds / gpsa_modeled
                             : 1.0;
    }
    const bool in_memory = gpsa_ws <= model_ram_bytes();
    table.add_row({TextTable::num(scale, 2), TextTable::num(graph.num_edges()),
                   TextTable::num(static_cast<double>(gpsa_ws) /
                                      (1024.0 * 1024.0),
                                  2),
                   in_memory ? "in-memory" : "out-of-core",
                   TextTable::num(ratios[1], 2) + "x",
                   TextTable::num(ratios[2], 2) + "x"});
  }
  table.print();
  std::printf("\nratios near 1x in the in-memory regime and 3-4x beyond it "
              "reproduce the paper's google-vs-larger-graphs contrast.\n");
  return ok ? 0 : 1;
}
