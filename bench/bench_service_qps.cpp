// Multi-tenant service benchmark: thousands of short BFS/SSSP/multi-BFS
// queries from closed-loop client threads against a GraphService hosting
// a resident (effectively unbounded) PageRank on the shared CSR.
//
// What the CI gate (scripts/check_service_slo.py) reads from this:
//   - p50/p99 end-to-end query latency and sustained QPS — the SLO;
//   - background_supersteps: how many supersteps the resident job
//     completed *while* the query burst was in flight (>= 1 proves the
//     fair-share budget keeps the tenant alive under load);
//   - results_identical: a sample of queries is re-run sequentially
//     through Engine::run_from_csr on the same CSR files and compared
//     bit-for-bit (min-fold queries are order-independent, so any
//     mismatch means cross-job state leaked).
//
// GPSA_BENCH_SCALE scales the graph, GPSA_THREADS the shared scheduler;
// GPSA_BENCH_JSON=<path> dumps the report for the gate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/multi_bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/sssp.hpp"
#include "core/engine.hpp"
#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"
#include "service/graph_service.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gpsa {
namespace {

constexpr unsigned kClients = 4;
constexpr int kSamplesPerClient = 2;  // sequential re-check is expensive

struct QuerySpec {
  enum Kind { kBfs, kSssp, kMultiBfs } kind = kBfs;
  std::vector<VertexId> roots;

  std::shared_ptr<const Program> make() const {
    switch (kind) {
      case kBfs:
        return std::make_shared<const BfsProgram>(roots[0]);
      case kSssp:
        return std::make_shared<const SsspProgram>(roots[0]);
      case kMultiBfs:
        return std::make_shared<const MultiSourceReachabilityProgram>(roots);
    }
    return nullptr;
  }

  const char* name() const {
    switch (kind) {
      case kBfs:
        return "bfs";
      case kSssp:
        return "sssp";
      case kMultiBfs:
        return "multi_bfs";
    }
    return "?";
  }
};

QuerySpec make_query(Rng& rng, VertexId n) {
  QuerySpec spec;
  const std::uint64_t pick = rng.next_below(16);
  if (pick == 0) {
    spec.kind = QuerySpec::kMultiBfs;
    for (int i = 0; i < 3; ++i) {
      spec.roots.push_back(static_cast<VertexId>(rng.next_below(n)));
    }
  } else {
    spec.kind = (pick & 1) != 0 ? QuerySpec::kBfs : QuerySpec::kSssp;
    spec.roots.push_back(static_cast<VertexId>(rng.next_below(n)));
  }
  return spec;
}

struct Sample {
  QuerySpec spec;
  std::vector<Payload> values;
};

// Per-client tallies, merged after join (no shared mutable state).
struct ClientStats {
  std::vector<double> end_to_end_seconds;
  std::vector<double> queue_wait_seconds;
  std::vector<Sample> samples;
  std::uint64_t admission_retries = 0;
  std::uint64_t failures = 0;
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

void client_loop(GraphService& service, unsigned client, std::uint64_t queries,
                 ClientStats& stats) {
  Rng rng(1000 + client);
  const VertexId n = service.num_vertices();
  for (std::uint64_t q = 0; q < queries; ++q) {
    const QuerySpec spec = make_query(rng, n);
    const bool sampled = q < kSamplesPerClient;
    JobOptions jo;
    jo.retain_values = sampled;
    JobId id = 0;
    for (;;) {
      auto submitted = service.submit(spec.make(), jo);
      if (submitted.is_ok()) {
        id = submitted.value();
        break;
      }
      if (submitted.status().code() != StatusCode::kResourceExhausted) {
        ++stats.failures;
        return;
      }
      ++stats.admission_retries;  // closed loop: back off and re-offer
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    auto status = service.wait(id);
    if (!status.is_ok() || status.value().state != JobState::kDone ||
        status.value().result == nullptr) {
      ++stats.failures;
      continue;
    }
    stats.end_to_end_seconds.push_back(
        status.value().result->end_to_end_seconds);
    stats.queue_wait_seconds.push_back(
        status.value().result->queue_wait_seconds);
    if (sampled) {
      stats.samples.push_back({spec, status.value().result->values});
    }
    service.forget(id);  // keep the job table bounded across thousands
  }
}

}  // namespace
}  // namespace gpsa

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();

  const EdgeList graph =
      prepare_graph(PaperGraph::kPokec, AlgoKind::kBfs, exp);
  const std::uint64_t total_queries = std::max<std::uint64_t>(
      400, static_cast<std::uint64_t>(4000.0 * exp.scale));
  const std::uint64_t per_client = total_queries / kClients;

  std::printf("== Service QPS: %llu short queries (%u clients) against a "
              "resident PageRank (pokec stand-in, scale %.3g) ==\n\n",
              static_cast<unsigned long long>(per_client * kClients), kClients,
              exp.scale);

  ServiceOptions so;
  so.num_dispatchers = 1;  // short queries: small ensembles, many jobs
  so.num_computers = 1;
  if (exp.threads != 0) {
    so.scheduler_workers = exp.threads;
  }
  so.max_concurrent_jobs = kClients + 1;  // every client + the resident
  auto opened = GraphService::open_from_edges(graph, so);
  if (!opened.is_ok()) {
    std::fprintf(stderr, "open: %s\n", opened.status().to_string().c_str());
    return 1;
  }
  const std::unique_ptr<GraphService> service = std::move(opened).value();

  // Resident tenant: a PageRank that only cancel can end. Wait for its
  // first superstep so the burst genuinely contends with a running job.
  JobOptions resident_options;
  resident_options.retain_values = false;
  auto resident = service->submit(
      std::make_shared<const PageRankProgram>(1000000000), resident_options);
  if (!resident.is_ok()) {
    std::fprintf(stderr, "resident: %s\n",
                 resident.status().to_string().c_str());
    return 1;
  }
  while (service->poll(resident.value()).value().supersteps_completed < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::uint64_t background_before =
      service->poll(resident.value()).value().supersteps_completed;

  std::vector<ClientStats> stats(kClients);
  WallTimer load_timer;
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
      clients.emplace_back([&service, c, per_client, &stats] {
        client_loop(*service, c, per_client, stats[c]);
      });
    }
    for (auto& t : clients) {
      t.join();
    }
  }
  const double load_seconds = load_timer.elapsed_seconds();
  const std::uint64_t background_after =
      service->poll(resident.value()).value().supersteps_completed;
  service->cancel(resident.value());
  const auto resident_status = service->wait(resident.value());
  const bool resident_cancelled_cleanly =
      resident_status.is_ok() &&
      resident_status.value().state == JobState::kCancelled;

  // Merge per-client tallies.
  std::vector<double> latencies;
  std::vector<double> queue_waits;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;
  std::vector<Sample> samples;
  for (const ClientStats& s : stats) {
    latencies.insert(latencies.end(), s.end_to_end_seconds.begin(),
                     s.end_to_end_seconds.end());
    queue_waits.insert(queue_waits.end(), s.queue_wait_seconds.begin(),
                       s.queue_wait_seconds.end());
    samples.insert(samples.end(), s.samples.begin(), s.samples.end());
    retries += s.admission_retries;
    failures += s.failures;
  }

  // Sequential ground truth for the sampled queries: the same CSR files,
  // one Engine run each, compared bit-for-bit.
  EngineOptions eo;
  eo.num_dispatchers = so.num_dispatchers;
  eo.num_computers = so.num_computers;
  if (exp.threads != 0) {
    eo.scheduler_workers = exp.threads;
  }
  bool results_identical = true;
  for (const Sample& sample : samples) {
    auto baseline =
        Engine::run_from_csr(service->csr_path(), *sample.spec.make(), eo);
    if (!baseline.is_ok() || baseline.value().values != sample.values) {
      std::fprintf(stderr, "sampled %s query diverged from sequential run\n",
                   sample.spec.name());
      results_identical = false;
    }
  }

  const std::uint64_t completed = latencies.size();
  const double qps =
      load_seconds > 0.0 ? static_cast<double>(completed) / load_seconds : 0.0;
  const double p50_ms = percentile(latencies, 0.50) * 1e3;
  const double p99_ms = percentile(latencies, 0.99) * 1e3;
  const double queue_p99_ms = percentile(queue_waits, 0.99) * 1e3;
  const std::uint64_t background_supersteps =
      background_after - background_before;

  TextTable table({"metric", "value"});
  table.add_row({"queries completed", TextTable::num(completed)});
  table.add_row({"wall (s)", TextTable::num(load_seconds, 3)});
  table.add_row({"qps", TextTable::num(qps, 1)});
  table.add_row({"p50 latency (ms)", TextTable::num(p50_ms, 2)});
  table.add_row({"p99 latency (ms)", TextTable::num(p99_ms, 2)});
  table.add_row({"p99 queue wait (ms)", TextTable::num(queue_p99_ms, 2)});
  table.add_row({"admission retries", TextTable::num(retries)});
  table.add_row(
      {"background supersteps", TextTable::num(background_supersteps)});
  table.add_row({"sampled queries checked",
                 TextTable::num(static_cast<std::uint64_t>(samples.size()))});
  table.print();
  std::printf("\nsampled results identical to sequential runs: %s; resident "
              "cancelled cleanly: %s\n",
              results_identical ? "yes" : "NO",
              resident_cancelled_cleanly ? "yes" : "NO");

  bool ok = results_identical && resident_cancelled_cleanly && failures == 0 &&
            completed == per_client * kClients;
  if (failures != 0) {
    std::fprintf(stderr, "%llu queries failed\n",
                 static_cast<unsigned long long>(failures));
  }

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("service_qps");
  w.key("graph").value("pokec");
  w.key("scale").value(exp.scale);
  w.key("clients").value(kClients);
  w.key("queries").value(completed);
  w.key("failures").value(failures);
  w.key("wall_seconds").value(load_seconds);
  w.key("qps").value(qps);
  w.key("p50_ms").value(p50_ms);
  w.key("p99_ms").value(p99_ms);
  w.key("queue_p99_ms").value(queue_p99_ms);
  w.key("admission_retries").value(retries);
  w.key("background_supersteps").value(background_supersteps);
  w.key("resident_cancelled_cleanly").value(resident_cancelled_cleanly);
  w.key("samples_checked").value(static_cast<std::uint64_t>(samples.size()));
  w.key("results_identical").value(results_identical);
  w.end_object();
  const Status json = write_bench_json(w);
  if (!json.is_ok()) {
    std::fprintf(stderr, "%s\n", json.to_string().c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
