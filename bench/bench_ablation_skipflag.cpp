// Ablation: the stale-flag skip (§IV.F) — the mechanism that lets
// vertex-centric engines ignore inactive vertices — versus dispatching
// every vertex every superstep (X-Stream-like full streaming).
//
// Only monotone apps are eligible (replayed values are absorbed by the
// min fold). BFS shows the effect most sharply: with the flag, message
// volume follows the frontier; without it, every superstep re-sends
// messages for every previously-reached vertex.
#include <cstdio>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "core/engine.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();

  std::printf("== Ablation: selective dispatch (stale flag) vs dispatch-all "
              "(pokec stand-in, scale %.3g) ==\n\n",
              exp.scale);

  TextTable table({"algorithm", "mode", "elapsed (s)", "supersteps",
                   "messages", "msg inflation"});
  bool ok = true;

  const BfsProgram bfs(0);
  const ConnectedComponentsProgram cc;
  struct Case {
    const char* name;
    const Program& program;
    AlgoKind kind;
  };
  for (const Case& c : {Case{"BFS", bfs, AlgoKind::kBfs},
                        Case{"CC", cc, AlgoKind::kConnectedComponents}}) {
    const EdgeList graph = prepare_graph(PaperGraph::kPokec, c.kind, exp);
    std::uint64_t selective_messages = 0;
    for (const bool dispatch_all : {false, true}) {
      EngineOptions eo;
      eo.num_dispatchers = 2;
      eo.num_computers = 2;
      // dispatch_inactive requires the sweep (the worklist never
      // enumerates inactive vertices); pin both cells so the ablation
      // isolates the stale-flag skip, not the execution mode.
      eo.exec = ExecMode::kSweep;
      eo.dispatch_inactive = dispatch_all;
      // dispatch-all never reaches zero messages; stop on zero updates,
      // plus a hard budget in case of float-style churn.
      eo.max_supersteps = 64;
      auto result = Engine::run(graph, c.program, eo);
      if (!result.is_ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        ok = false;
        continue;
      }
      const RunResult& r = result.value();
      if (!dispatch_all) {
        selective_messages = r.total_messages;
      }
      const double inflation =
          selective_messages == 0
              ? 0.0
              : static_cast<double>(r.total_messages) /
                    static_cast<double>(selective_messages);
      table.add_row({c.name,
                     dispatch_all ? "dispatch-all" : "selective (flag)",
                     TextTable::num(r.elapsed_seconds, 4),
                     TextTable::num(r.supersteps),
                     TextTable::num(r.total_messages),
                     TextTable::num(inflation, 2)});
    }
  }
  table.print();
  std::printf("\nthis is the mechanism behind Figures 8-10's BFS/CC "
              "results: X-Stream's edge-centric model effectively runs in "
              "dispatch-all mode.\n");
  return ok ? 0 : 1;
}
