// Substrate micro-benchmarks (google-benchmark): the building blocks
// whose costs explain the system numbers — mailbox queue throughput,
// slot encoding, CSR file streaming, value-file access, and message
// generation.
#include <benchmark/benchmark.h>

#include <optional>

#include "apps/pagerank.hpp"
#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "platform/file_util.hpp"
#include "storage/value_file.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"

namespace {

using namespace gpsa;

void BM_MpscQueuePushPop(benchmark::State& state) {
  MpscQueue<std::uint64_t> queue;
  std::uint64_t i = 0;
  for (auto _ : state) {
    queue.push(i++);
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MpscQueuePushPop);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    ring.try_push(i++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SlotEncodeDecode(benchmark::State& state) {
  Rng rng(1);
  Payload p = static_cast<Payload>(rng.next_below(kPayloadMask));
  for (auto _ : state) {
    const Slot s = make_slot(p, (p & 1) != 0);
    benchmark::DoNotOptimize(slot_is_stale(s));
    p = slot_payload(s) ^ 0x55;
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_SlotEncodeDecode);

struct CsrFixture {
  std::optional<ScratchDir> dir;
  std::optional<CsrFileReader> reader;

  static CsrFixture& instance() {
    static CsrFixture f = [] {
      CsrFixture out;
      auto d = ScratchDir::create("microcsr");
      d.status().expect_ok();
      out.dir.emplace(std::move(d).value());
      const EdgeList g = rmat(16, 500'000, 3);
      const std::string path = out.dir->file("g.csr");
      preprocess_edges_to_csr(g, path, true).expect_ok();
      auto r = CsrFileReader::open(path);
      r.status().expect_ok();
      out.reader.emplace(std::move(r).value());
      return out;
    }();
    return f;
  }
};

void BM_CsrFileSequentialScan(benchmark::State& state) {
  const CsrFileReader& reader = *CsrFixture::instance().reader;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::int32_t entry : reader.entries()) {
      sum += static_cast<std::uint32_t>(entry);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(reader.entries().size_bytes()));
}
BENCHMARK(BM_CsrFileSequentialScan);

void BM_CsrFileRecordDecode(benchmark::State& state) {
  const CsrFileReader& reader = *CsrFixture::instance().reader;
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.record(v));
    v = (v + 1) % reader.num_vertices();
  }
}
BENCHMARK(BM_CsrFileRecordDecode);

void BM_ValueFileRandomAccess(benchmark::State& state) {
  static ScratchDir dir = [] {
    auto d = ScratchDir::create("microvf");
    d.status().expect_ok();
    return std::move(d).value();
  }();
  static ValueFile file = [] {
    auto f = ValueFile::create(dir.file("v.values"), 1U << 20, "bench");
    f.status().expect_ok();
    return std::move(f).value();
  }();
  Rng rng(7);
  for (auto _ : state) {
    const VertexId v = static_cast<VertexId>(rng.next_below(1U << 20));
    file.store(v, 0, make_slot(v, false));
    benchmark::DoNotOptimize(file.load(v, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ValueFileRandomAccess);

void BM_PageRankGenMsg(benchmark::State& state) {
  const PageRankProgram program(5);
  (void)program.init(0, 1U << 20);
  const Payload rank = float_to_payload(0.001F);
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.gen_msg(v, v + 1, rank, 16));
    ++v;
  }
}
BENCHMARK(BM_PageRankGenMsg);

void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmat(12, 10'000, 5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10'000);
}
BENCHMARK(BM_RmatGeneration);

}  // namespace

BENCHMARK_MAIN();
