// Figure 10: PageRank / CC / BFS on the (stand-in) twitter-2010 graph,
// the paper's largest dataset. Paper shape: GPSA 2x GraphChi / 8x
// X-Stream on PageRank, 5x/4x on CC, 6x X-Stream on BFS (GraphChi's BFS
// hung in the paper; ours runs but is reported alongside).
#include "harness/experiment.hpp"

int main() {
  gpsa::ExperimentOptions options = gpsa::ExperimentOptions::from_env();
  auto cells = gpsa::run_figure(gpsa::PaperGraph::kTwitter2010, options,
                                "Figure 10");
  return cells.is_ok() ? 0 : 1;
}
