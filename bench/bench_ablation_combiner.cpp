// Ablation: dispatcher-side message combining (Pregel-style combiners,
// an extension over the paper's protocol). Measures message reduction
// and elapsed time per app on the pokec stand-in.
#include <cstdio>

#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();

  std::printf("== Ablation: dispatcher-side message combining (pokec "
              "stand-in, scale %.3g) ==\n\n",
              exp.scale);

  TextTable table({"algorithm", "combiner", "elapsed (s)", "messages",
                   "reduction"});
  bool ok = true;
  const PageRankProgram pagerank(5);
  const ConnectedComponentsProgram cc;
  struct Case {
    const char* name;
    const Program& program;
    AlgoKind kind;
  };
  for (const Case& c :
       {Case{"PageRank", pagerank, AlgoKind::kPageRank},
        Case{"CC", cc, AlgoKind::kConnectedComponents}}) {
    const EdgeList graph = prepare_graph(PaperGraph::kPokec, c.kind, exp);
    std::uint64_t base_messages = 0;
    for (const bool combine : {false, true}) {
      EngineOptions eo;
      eo.num_dispatchers = 2;
      eo.num_computers = 2;
      eo.enable_combiner = combine;
      eo.max_supersteps = 5;
      double total = 0;
      std::uint64_t messages = 0;
      for (unsigned r = 0; r < exp.runs; ++r) {
        auto result = Engine::run(graph, c.program, eo);
        if (!result.is_ok()) {
          std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
          ok = false;
          continue;
        }
        total += result.value().elapsed_seconds;
        messages = result.value().total_messages;
      }
      if (!combine) {
        base_messages = messages;
      }
      const double reduction =
          base_messages == 0
              ? 0.0
              : 100.0 * (1.0 - static_cast<double>(messages) /
                                   static_cast<double>(base_messages));
      table.add_row({c.name, combine ? "on" : "off",
                     TextTable::num(total / exp.runs, 4),
                     TextTable::num(messages),
                     TextTable::num(reduction, 1) + "%"});
    }
  }
  table.print();
  std::printf("\ncombining helps when many edges share a destination "
              "within one dispatcher batch (hubs); correctness is "
              "guaranteed for fold-compatible combiners only.\n");
  return ok ? 0 : 1;
}
