// Ablation: v2 CSR storage (DESIGN.md §16) — format x order sweep on
// cold page caches.
//
// For each dataset (google and pokec stand-ins) runs three storage
// configurations: v1/none (the paper's flat 4-byte entries), v2/none
// (varint delta-gap), and v2/degree (delta-gap plus hubs-first
// renumbering). Each cell does two runs:
//
//   - perf: PageRank, 5 supersteps, cold-start protocol (CSR and value
//     files evicted after setup so dispatch refaults from storage). The
//     headline metrics are bytes_read — the fundamental read volume the
//     encoding is supposed to shrink — and *edge throughput* (edges
//     dispatched per summed dispatcher-busy second). Throughput is in
//     edges, not bytes: v2 reading fewer bytes per edge is the point, so
//     MB/s would reward the regression it must catch (decode overhead
//     eating the byte savings).
//   - identity: Connected Components to convergence, FNV-1a checksum of
//     the final values. CC is monotone, so the checksum must be
//     bit-identical across every cell of a dataset no matter the format,
//     order, or partition — the results-unchanged half of the gate.
//
// Set GPSA_BENCH_JSON=<path> to dump all cells;
// scripts/check_csr_v2.py gates CI on the v1/v2 bytes-read ratio, the
// throughput floor, and checksum identity.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "graph/csr_v2.hpp"
#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

namespace {

using namespace gpsa;

struct Cell {
  std::string dataset;
  CsrFormat format = CsrFormat::kV1;
  CsrOrder order = CsrOrder::kNone;
  double avg_elapsed_seconds = 0.0;
  double avg_busy_seconds = 0.0;    // summed over dispatchers
  std::uint64_t bytes_read = 0;     // per perf run
  std::uint64_t csr_file_bytes = 0;
  std::uint64_t edges_dispatched = 0;
  double edges_per_busy_sec = 0.0;
  std::uint64_t cc_checksum = 0;
};

std::uint64_t fnv1a_payloads(const std::vector<Payload>& values) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Payload value : values) {
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (value >> shift) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace

int main() {
  const ExperimentOptions exp = ExperimentOptions::from_env();

  std::printf("== Ablation: CSR format x order, cold page cache "
              "(scale %.3g, %u run(s)) ==\n\n",
              exp.scale, exp.runs);

  TextTable table({"dataset", "format", "order", "file MB", "read MB",
                   "elapsed (s)", "busy (s)", "Medges/busy-s",
                   "cc checksum"});
  std::vector<Cell> cells;
  bool ok = true;
  const PageRankProgram pagerank(5);
  const ConnectedComponentsProgram cc;
  struct Config {
    CsrFormat format;
    CsrOrder order;
  };
  const Config configs[] = {{CsrFormat::kV1, CsrOrder::kNone},
                            {CsrFormat::kV2, CsrOrder::kNone},
                            {CsrFormat::kV2, CsrOrder::kDegree}};
  struct Dataset {
    const char* name;
    PaperGraph graph;
  };
  for (const Dataset& ds : {Dataset{"google", PaperGraph::kGoogle},
                            Dataset{"pokec", PaperGraph::kPokec}}) {
    const EdgeList graph = generate_paper_graph(ds.graph, exp.scale, exp.seed);
    for (const Config& config : configs) {
      Cell cell;
      cell.dataset = ds.name;
      cell.format = config.format;
      cell.order = config.order;
      double elapsed = 0.0;
      double busy = 0.0;
      for (unsigned r = 0; r < exp.runs; ++r) {
        EngineOptions eo;
        eo.num_dispatchers = 2;
        eo.num_computers = 2;
        eo.max_supersteps = 5;
        eo.csr_format = config.format;
        eo.csr_order = config.order;
        eo.io.cold_start = true;
        auto result = Engine::run(graph, pagerank, eo);
        if (!result.is_ok()) {
          std::fprintf(stderr, "%s: %s\n", ds.name,
                       result.status().to_string().c_str());
          ok = false;
          continue;
        }
        elapsed += result.value().elapsed_seconds;
        for (const double b : result.value().dispatcher_busy_seconds) {
          busy += b;
        }
        cell.bytes_read = result.value().io.bytes_read;
        cell.csr_file_bytes = result.value().csr_file_bytes;
        cell.edges_dispatched = result.value().total_messages;
      }
      cell.avg_elapsed_seconds = elapsed / exp.runs;
      cell.avg_busy_seconds = busy / exp.runs;
      cell.edges_per_busy_sec =
          cell.avg_busy_seconds > 0
              ? static_cast<double>(cell.edges_dispatched) /
                    cell.avg_busy_seconds
              : 0.0;

      // Identity run: monotone CC, so this checksum is bit-exact across
      // every configuration of the dataset.
      EngineOptions id;
      id.num_dispatchers = 2;
      id.num_computers = 2;
      id.csr_format = config.format;
      id.csr_order = config.order;
      auto identity = Engine::run(graph, cc, id);
      if (!identity.is_ok()) {
        std::fprintf(stderr, "%s cc: %s\n", ds.name,
                     identity.status().to_string().c_str());
        ok = false;
      } else {
        cell.cc_checksum = fnv1a_payloads(identity.value().values);
      }

      char checksum[32];
      std::snprintf(checksum, sizeof(checksum), "%016llx",
                    static_cast<unsigned long long>(cell.cc_checksum));
      table.add_row(
          {cell.dataset, csr_format_name(cell.format),
           csr_order_name(cell.order),
           TextTable::num(static_cast<double>(cell.csr_file_bytes) / 1e6, 2),
           TextTable::num(static_cast<double>(cell.bytes_read) / 1e6, 2),
           TextTable::num(cell.avg_elapsed_seconds, 4),
           TextTable::num(cell.avg_busy_seconds, 4),
           TextTable::num(cell.edges_per_busy_sec / 1e6, 2), checksum});
      cells.push_back(cell);
    }
  }
  table.print();
  std::printf("\nMedges/busy-s = edges dispatched / summed dispatcher busy "
              "seconds — byte-agnostic, so decode overhead shows up as a "
              "drop even while bytes shrink.\n");

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("ablation_csr_v2");
  json.key("scale").value(exp.scale);
  json.key("runs").value(exp.runs);
  json.key("cells").begin_array();
  for (const Cell& cell : cells) {
    json.begin_object();
    json.key("dataset").value(cell.dataset);
    json.key("format").value(csr_format_name(cell.format));
    json.key("order").value(csr_order_name(cell.order));
    json.key("avg_elapsed_seconds").value(cell.avg_elapsed_seconds);
    json.key("avg_busy_seconds").value(cell.avg_busy_seconds);
    json.key("bytes_read").value(cell.bytes_read);
    json.key("csr_file_bytes").value(cell.csr_file_bytes);
    json.key("edges_dispatched").value(cell.edges_dispatched);
    json.key("edges_per_busy_sec").value(cell.edges_per_busy_sec);
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(cell.cc_checksum));
    json.key("cc_checksum").value(checksum);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  const Status json_status = write_bench_json(json);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.to_string().c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
