// Ablation: worklist (active-bitmap) dispatch vs the sweep baseline
// (DESIGN.md §12).
//
// Both modes dispatch the identical vertex set each superstep — the bit
// is set exactly where the stale flag is clear — so results must be
// bit-identical; the difference is pure work volume. The sweep streams
// every interval record and checks every vertex every superstep (O(V));
// the worklist scans only the set bits (O(active)). On BFS the gap is
// dominated by the frontier tail: supersteps where a handful of vertices
// are active but the sweep still walks the whole value column.
//
// A COST-style check rides along (McSherry et al., HotOS'15): the
// single-threaded sequential reference executor runs the same program,
// and the report includes its time so scripts/check_worklist_ratio.py can
// flag a configuration whose parallel scheduling overhead exceeds the
// plain for-loop.
//
// GPSA_BENCH_JSON=<path> dumps the cells for the CI gate
// (scripts/check_worklist_ratio.py enforces >= 2x fewer edges touched
// on the frontier tail and identical results).
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/reference.hpp"
#include "core/engine.hpp"
#include "graph/csr.hpp"
#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();

  std::printf("== Ablation: worklist vs sweep dispatch (pokec stand-in BFS, "
              "scale %.3g) ==\n\n",
              exp.scale);

  const BfsProgram program(0);
  const EdgeList graph = prepare_graph(PaperGraph::kPokec, AlgoKind::kBfs, exp);

  struct Cell {
    const char* name;
    ExecMode exec;
    double seconds = 0.0;
    std::uint64_t supersteps = 0;
    std::uint64_t messages = 0;
    std::uint64_t active = 0;
    std::uint64_t edges_touched = 0;
    std::vector<std::uint64_t> superstep_active{};
    std::vector<std::uint64_t> superstep_edges{};
    std::vector<Payload> values{};
  };
  Cell cells[] = {{"sweep", ExecMode::kSweep},
                  {"worklist", ExecMode::kWorklist}};
  bool ok = true;

  for (Cell& cell : cells) {
    EngineOptions eo;
    eo.num_dispatchers = 2;
    eo.num_computers = 2;
    if (exp.threads != 0) {
      eo.scheduler_workers = exp.threads;
    }
    eo.exec = cell.exec;
    double best = 0.0;
    for (unsigned run = 0; run < exp.runs; ++run) {
      auto result = Engine::run(graph, program, eo);
      if (!result.is_ok()) {
        std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
        ok = false;
        break;
      }
      const RunResult& r = result.value();
      if (run == 0 || r.elapsed_seconds < best) {
        best = r.elapsed_seconds;
      }
      cell.seconds = best;
      cell.supersteps = r.supersteps;
      cell.messages = r.total_messages;
      cell.active = std::accumulate(r.superstep_active_vertices.begin(),
                                    r.superstep_active_vertices.end(),
                                    std::uint64_t{0});
      cell.edges_touched = std::accumulate(r.superstep_edges_touched.begin(),
                                           r.superstep_edges_touched.end(),
                                           std::uint64_t{0});
      cell.superstep_active = r.superstep_active_vertices;
      cell.superstep_edges = r.superstep_edges_touched;
      cell.values = r.values;
    }
  }

  // COST baseline: the same program on the single-threaded reference
  // executor (one for-loop, no actors, no staging).
  WallTimer cost_timer;
  const ReferenceResult ref = reference_run(Csr::from_edges(graph), program);
  const double reference_seconds = cost_timer.elapsed_seconds();

  const bool results_identical = cells[0].values == cells[1].values;
  const bool reference_identical = cells[1].values == ref.values;
  const double edges_ratio =
      cells[1].edges_touched == 0
          ? 0.0
          : static_cast<double>(cells[0].edges_touched) /
                static_cast<double>(cells[1].edges_touched);

  TextTable table({"mode", "elapsed (s)", "supersteps", "messages",
                   "active (sum)", "edges touched", "touch ratio"});
  for (const Cell& cell : cells) {
    table.add_row({cell.name, TextTable::num(cell.seconds, 4),
                   TextTable::num(cell.supersteps),
                   TextTable::num(cell.messages),
                   TextTable::num(cell.active),
                   TextTable::num(cell.edges_touched),
                   cell.exec == ExecMode::kSweep
                       ? std::string("1.00")
                       : TextTable::num(edges_ratio, 2)});
  }
  table.add_row({"reference (1 thread)", TextTable::num(reference_seconds, 4),
                 TextTable::num(ref.supersteps),
                 TextTable::num(ref.total_messages), "-", "-", "-"});
  table.print();
  std::printf("\nresults identical across modes: %s; worklist matches the "
              "single-thread reference: %s\n",
              results_identical ? "yes" : "NO",
              reference_identical ? "yes" : "NO");
  if (!results_identical || !reference_identical) {
    ok = false;
  }

  JsonWriter w;
  w.begin_object();
  w.key("bench").value("ablation_worklist");
  w.key("graph").value("pokec");
  w.key("scale").value(exp.scale);
  w.key("results_identical").value(results_identical);
  w.key("reference_identical").value(reference_identical);
  w.key("reference_seconds").value(reference_seconds);
  w.key("cells").begin_array();
  for (const Cell& cell : cells) {
    w.begin_object();
    w.key("exec").value(cell.name);
    w.key("seconds").value(cell.seconds);
    w.key("supersteps").value(cell.supersteps);
    w.key("messages").value(cell.messages);
    w.key("active").value(cell.active);
    w.key("edges_touched").value(cell.edges_touched);
    // Per-superstep series: the gate compares the frontier *tail*, where
    // the sweep's O(V) checks dwarf the few active vertices.
    w.key("superstep_active").begin_array();
    for (const std::uint64_t a : cell.superstep_active) {
      w.value(a);
    }
    w.end_array();
    w.key("superstep_edges").begin_array();
    for (const std::uint64_t e : cell.superstep_edges) {
      w.value(e);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const Status json = write_bench_json(w);
  if (!json.is_ok()) {
    std::fprintf(stderr, "%s\n", json.to_string().c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
