// Ablation: the paper's central design claim — decoupling message
// dispatching from computation so the two phases overlap within a
// superstep (§IV.A) — versus a conventional sequential BSP where
// dispatchers hold all batches until their scan completes.
//
// Runs GPSA PageRank and BFS on the journal stand-in in both modes.
//
// Set GPSA_BENCH_JSON=<path> to also write the cells as JSON (consumed
// by CI artifact uploads alongside the other ablation benches).
#include <cstdio>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();
  const EdgeList graph =
      generate_paper_graph(PaperGraph::kLiveJournal, exp.scale, exp.seed);

  std::printf("== Ablation: overlapped dispatch/compute vs sequential "
              "phases (journal stand-in, scale %.3g) ==\n\n",
              exp.scale);

  TextTable table({"algorithm", "mode", "avg elapsed (s)",
                   "avg/superstep (s)", "messages"});
  struct Cell {
    std::string algo;
    bool overlap = false;
    double avg_seconds = 0.0;
    std::uint64_t supersteps = 1;
    std::uint64_t messages = 0;
  };
  std::vector<Cell> cells;
  bool ok = true;
  struct Case {
    const char* algo;
    const Program& program;
  };
  const PageRankProgram pagerank(5);
  const BfsProgram bfs(0);
  for (const Case& c : {Case{"PageRank", pagerank}, Case{"BFS", bfs}}) {
    for (const bool overlap : {true, false}) {
      EngineOptions eo;
      eo.num_dispatchers = 2;
      eo.num_computers = 2;
      eo.scheduler_workers = 4;  // give both roles runnable contexts
      eo.max_supersteps = 5;
      eo.overlap_dispatch_compute = overlap;
      Cell cell;
      cell.algo = c.algo;
      cell.overlap = overlap;
      double total = 0;
      for (unsigned r = 0; r < exp.runs; ++r) {
        auto result = Engine::run(graph, c.program, eo);
        if (!result.is_ok()) {
          std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
          ok = false;
          continue;
        }
        total += result.value().elapsed_seconds;
        cell.messages = result.value().total_messages;
        cell.supersteps = result.value().supersteps;
      }
      cell.avg_seconds = total / exp.runs;
      cells.push_back(cell);
      table.add_row({c.algo, overlap ? "overlapped (GPSA)" : "sequential BSP",
                     TextTable::num(cell.avg_seconds, 4),
                     TextTable::num(cell.avg_seconds /
                                        static_cast<double>(cell.supersteps),
                                    4),
                     TextTable::num(cell.messages)});
    }
  }
  table.print();
  std::printf("\nnote: the overlap benefit scales with true core count; on "
              "a 1-core host it shows up mainly as pipelining of mmap "
              "faults against compute.\n");

  JsonWriter json;
  json.begin_object();
  json.key("bench").value("ablation_overlap");
  json.key("scale").value(exp.scale);
  json.key("runs").value(exp.runs);
  json.key("cells").begin_array();
  for (const Cell& cell : cells) {
    json.begin_object();
    json.key("algorithm").value(cell.algo);
    json.key("mode").value(cell.overlap ? "overlapped" : "sequential");
    json.key("avg_seconds").value(cell.avg_seconds);
    json.key("avg_superstep_seconds")
        .value(cell.avg_seconds / static_cast<double>(cell.supersteps));
    json.key("supersteps").value(cell.supersteps);
    json.key("messages").value(cell.messages);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  const Status json_status = write_bench_json(json);
  if (!json_status.ok()) {
    std::fprintf(stderr, "%s\n", json_status.to_string().c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
