// Ablation: the paper's central design claim — decoupling message
// dispatching from computation so the two phases overlap within a
// superstep (§IV.A) — versus a conventional sequential BSP where
// dispatchers hold all batches until their scan completes.
//
// Runs GPSA PageRank and BFS on the journal stand-in in both modes.
#include <cstdio>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace gpsa;
  const ExperimentOptions exp = ExperimentOptions::from_env();
  const EdgeList graph =
      generate_paper_graph(PaperGraph::kLiveJournal, exp.scale, exp.seed);

  std::printf("== Ablation: overlapped dispatch/compute vs sequential "
              "phases (journal stand-in, scale %.3g) ==\n\n",
              exp.scale);

  TextTable table({"algorithm", "mode", "avg elapsed (s)",
                   "avg/superstep (s)", "messages"});
  bool ok = true;
  struct Case {
    const char* algo;
    const Program& program;
  };
  const PageRankProgram pagerank(5);
  const BfsProgram bfs(0);
  for (const Case& c : {Case{"PageRank", pagerank}, Case{"BFS", bfs}}) {
    for (const bool overlap : {true, false}) {
      EngineOptions eo;
      eo.num_dispatchers = 2;
      eo.num_computers = 2;
      eo.scheduler_workers = 4;  // give both roles runnable contexts
      eo.max_supersteps = 5;
      eo.overlap_dispatch_compute = overlap;
      double total = 0;
      std::uint64_t messages = 0;
      std::uint64_t supersteps = 1;
      for (unsigned r = 0; r < exp.runs; ++r) {
        auto result = Engine::run(graph, c.program, eo);
        if (!result.is_ok()) {
          std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
          ok = false;
          continue;
        }
        total += result.value().elapsed_seconds;
        messages = result.value().total_messages;
        supersteps = result.value().supersteps;
      }
      const double avg = total / exp.runs;
      table.add_row({c.algo, overlap ? "overlapped (GPSA)" : "sequential BSP",
                     TextTable::num(avg, 4),
                     TextTable::num(avg / static_cast<double>(supersteps), 4),
                     TextTable::num(messages)});
    }
  }
  table.print();
  std::printf("\nnote: the overlap benefit scales with true core count; on "
              "a 1-core host it shows up mainly as pipelining of mmap "
              "faults against compute.\n");
  return ok ? 0 : 1;
}
