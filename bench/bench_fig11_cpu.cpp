// Figure 11: CPU utilization of the three systems.
//
// Paper shape: X-Stream pegs the CPU near 100% even on small inputs
// (it streams every edge every superstep regardless of useful work);
// GraphChi shows the lowest utilization (I/O-bound interval processing);
// GPSA's utilization tracks workload complexity — high for PageRank
// (every vertex active), low for BFS (small frontiers).
//
// Each (system, algorithm) cell is run in a loop for at least one second
// under a CpuMonitor so the sampler sees a steady state.
#include <cstdio>

#include "harness/experiment.hpp"
#include "metrics/cpu_monitor.hpp"
#include "metrics/table.hpp"
#include "platform/cpu_stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace gpsa;
  ExperimentOptions options = ExperimentOptions::from_env();
  options.runs = 1;

  std::printf("== Figure 11: CPU utilization (pokec stand-in, scale %.3g, "
              "%u online cpus) ==\n\n",
              options.scale, online_cpu_count());

  TextTable table({"algorithm", "system", "mean %cpu", "modeled ooc %cpu",
                   "peak cores", "runs sampled", "messages/run",
                   "edges streamed/run"});
  bool ok = true;
  for (AlgoKind algo : paper_algos()) {
    const EdgeList graph =
        prepare_graph(PaperGraph::kPokec, algo, options);
    for (SystemKind system : all_systems()) {
      CpuMonitor monitor(/*interval_seconds=*/0.02);
      monitor.start();
      WallTimer timer;
      unsigned iterations = 0;
      CellResult last{};
      while (timer.elapsed_seconds() < 1.0) {
        auto cell = run_cell(system, algo, graph, options);
        if (!cell.is_ok()) {
          std::fprintf(stderr, "cell failed: %s\n",
                       cell.status().to_string().c_str());
          ok = false;
          break;
        }
        last = cell.value();
        ++iterations;
      }
      const CpuMonitor::Report report = monitor.stop();
      // Out-of-core view: the CPU is only busy while not waiting on the
      // modeled disk, so utilization scales by measured/modeled time.
      const double modeled_pct =
          last.modeled_seconds > 0.0
              ? report.mean_percent_of_machine * last.avg_seconds /
                    last.modeled_seconds
              : report.mean_percent_of_machine;
      table.add_row({algo_name(algo), system_name(system),
                     TextTable::num(report.mean_percent_of_machine, 1),
                     TextTable::num(modeled_pct, 1),
                     TextTable::num(report.peak_cores, 2),
                     TextTable::num(std::uint64_t{iterations}),
                     TextTable::num(last.messages),
                     TextTable::num(last.edges_streamed)});
    }
  }
  table.print();
  std::printf(
      "\nnote: on a 1-core host every busy engine reads near 100%%; the "
      "paper's signal survives in the work columns — X-Stream's "
      "edges-streamed stays at |E| x supersteps while the vertex-centric "
      "engines' message counts shrink with the frontier.\n");
  return ok ? 0 : 1;
}
