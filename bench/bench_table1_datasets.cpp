// Reproduces Table I ("Graphs used in experiment") with our synthetic
// stand-ins, and the §VI.B observation that CSR encoding compresses the
// twitter graph (26 GB of text edges -> 6.5 GB CSR in the paper):
// alongside each stand-in we report its text edge-list size, binary
// edge-list size, and on-disk CSR size.
//
// Honours GPSA_BENCH_SCALE (default 0.25).
#include <cstdio>

#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "metrics/table.hpp"
#include "platform/file_util.hpp"

int main() {
  using namespace gpsa;
  const ExperimentOptions options = ExperimentOptions::from_env();

  std::printf("== Table I: graphs used in the experiments ==\n");
  std::printf("(paper sizes vs. R-MAT stand-ins at scale %.3g; see "
              "DESIGN.md section 5 for the substitution rationale)\n\n",
              options.scale);

  TextTable table({"name", "paper nodes", "paper edges", "stand-in nodes",
                   "stand-in edges", "text bytes", "binary bytes",
                   "csr bytes", "csr/text"});

  for (PaperGraph which : all_paper_graphs()) {
    const DatasetSpec spec = paper_dataset_spec(which);
    const EdgeList graph =
        generate_paper_graph(which, options.scale, options.seed);

    auto dir = ScratchDir::create("table1");
    dir.status().expect_ok();
    const std::string text_path = dir.value().file("g.txt");
    const std::string bin_path = dir.value().file("g.bin");
    const std::string csr_path = dir.value().file("g.csr");
    graph.write_text(text_path).expect_ok();
    graph.write_binary(bin_path).expect_ok();
    preprocess_edges_to_csr(graph, csr_path, /*with_degree=*/true)
        .expect_ok();

    const auto text_bytes = file_size(text_path);
    const auto bin_bytes = file_size(bin_path);
    const auto csr_bytes = file_size(csr_path);
    text_bytes.status().expect_ok();
    bin_bytes.status().expect_ok();
    csr_bytes.status().expect_ok();

    table.add_row(
        {spec.name, TextTable::num(std::uint64_t{spec.paper_vertices}),
         TextTable::num(spec.paper_edges),
         TextTable::num(std::uint64_t{graph.num_vertices()}),
         TextTable::num(graph.num_edges()),
         TextTable::num(text_bytes.value()),
         TextTable::num(bin_bytes.value()),
         TextTable::num(csr_bytes.value()),
         TextTable::num(static_cast<double>(csr_bytes.value()) /
                            static_cast<double>(text_bytes.value()),
                        3)});
  }
  table.print();
  std::printf(
      "\npaper: \"with CSR format data, we compress twitter graph from 26GB "
      "to 6.5GB\" — the csr/text column shows the same effect on the "
      "stand-ins.\n");
  return 0;
}
