#include "io/csr_stream.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/logging.hpp"

namespace gpsa {

CsrEntryStream::CsrEntryStream(std::unique_ptr<IoReadStream> stream,
                               std::uint64_t num_entries)
    : stream_(std::move(stream)), num_entries_(num_entries) {
  GPSA_CHECK(stream_ != nullptr);
  GPSA_CHECK(byte_of(num_entries_) <= stream_->size());
}

const std::int32_t* CsrEntryStream::fetch_record(std::uint64_t begin,
                                                 std::uint64_t count) {
  GPSA_DCHECK(begin + count <= num_entries_);
  if (begin >= chunk_begin_ && begin + count <= chunk_end_) {
    return chunk_data_ + (begin - chunk_begin_);
  }
  // Refill forward from `begin`: a chunk's worth, or the whole record for
  // hubs that outgrow one chunk.
  const std::uint64_t end =
      std::min(num_entries_, begin + std::max(count, kChunkEntries));
  const std::byte* data = stream_->fetch(
      byte_of(begin), static_cast<std::size_t>((end - begin) *
                                               sizeof(std::int32_t)));
  if (data == nullptr) {
    chunk_data_ = nullptr;
    chunk_begin_ = chunk_end_ = 0;
    throw std::runtime_error("CSR stream read failed: " +
                             stream_->status().to_string());
  }
  chunk_data_ = reinterpret_cast<const std::int32_t*>(data);
  chunk_begin_ = begin;
  chunk_end_ = end;
  return chunk_data_;
}

void CsrEntryStream::will_need_entries(std::uint64_t begin,
                                       std::uint64_t count) {
  if (begin >= num_entries_ || count == 0) {
    return;
  }
  count = std::min(count, num_entries_ - begin);
  stream_->will_need(byte_of(begin),
                     static_cast<std::size_t>(count * sizeof(std::int32_t)));
}

void CsrEntryStream::drop_behind_entries(std::uint64_t entry) {
  stream_->drop_behind(byte_of(std::min(entry, num_entries_)));
}

}  // namespace gpsa
