#include "io/csr_stream.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/csr_v2.hpp"
#include "util/logging.hpp"

namespace gpsa {

CsrEntryStream::CsrEntryStream(std::unique_ptr<IoReadStream> stream,
                               std::uint64_t num_entries)
    : stream_(std::move(stream)),
      num_units_(num_entries),
      unit_bytes_(sizeof(std::int32_t)) {
  GPSA_CHECK(stream_ != nullptr);
  GPSA_CHECK(byte_of(num_units_) <= stream_->size());
}

CsrEntryStream::CsrEntryStream(std::unique_ptr<IoReadStream> stream,
                               const CsrFileReader& reader)
    : stream_(std::move(stream)),
      num_units_(reader.num_units()),
      unit_bytes_(reader.unit_bytes()) {
  GPSA_CHECK(stream_ != nullptr);
  GPSA_CHECK(byte_of(num_units_) <= stream_->size());
  if (reader.format() == CsrFormat::kV2) {
    // One allocation for the life of the stream: open() validated every
    // record, so max_record_entries() bounds every decode.
    scratch_.resize(reader.max_record_entries());
  }
}

const std::int32_t* CsrEntryStream::fetch_record(std::uint64_t begin,
                                                 std::uint64_t count) {
  GPSA_DCHECK(begin + count <= num_units_);
  if (begin < chunk_begin_ || begin + count > chunk_end_) {
    // Refill forward from `begin`: a chunk's worth, or the whole record
    // for hubs that outgrow one chunk.
    const std::uint64_t end = std::min(
        num_units_, begin + std::max(count, kChunkBytes / unit_bytes_));
    const std::byte* data = stream_->fetch(
        byte_of(begin),
        static_cast<std::size_t>((end - begin) * unit_bytes_));
    if (data == nullptr) {
      chunk_data_ = nullptr;
      chunk_begin_ = chunk_end_ = 0;
      throw std::runtime_error("CSR stream read failed: " +
                               stream_->status().to_string());
    }
    chunk_data_ = data;
    chunk_begin_ = begin;
    chunk_end_ = end;
  }
  const std::byte* record =
      chunk_data_ + (begin - chunk_begin_) * unit_bytes_;
  if (scratch_.empty()) {
    return reinterpret_cast<const std::int32_t*>(record);
  }
  // v2: decode the requested record (and only it) out of the leased chunk.
  decode_csr_v2_record_fast(reinterpret_cast<const std::uint8_t*>(record),
                            scratch_.data());
  return scratch_.data();
}

void CsrEntryStream::will_need_entries(std::uint64_t begin,
                                       std::uint64_t count) {
  if (begin >= num_units_ || count == 0) {
    return;
  }
  count = std::min(count, num_units_ - begin);
  stream_->will_need(byte_of(begin),
                     static_cast<std::size_t>(count * unit_bytes_));
}

void CsrEntryStream::drop_behind_entries(std::uint64_t unit) {
  stream_->drop_behind(byte_of(std::min(unit, num_units_)));
}

}  // namespace gpsa
