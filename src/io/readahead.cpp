#include "io/readahead.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace gpsa {

ReadaheadScheduler::ReadaheadScheduler(const IoConfig& config,
                                       CsrEntryStream* csr, ValueFile* values,
                                       Interval interval)
    : csr_(csr),
      values_(values),
      interval_(interval),
      // The window budget is in *bytes*; the stream's unit converts it.
      // For v2 files one unit is one compressed byte, so the same byte
      // budget covers ~2-4x the edges — compression widens the effective
      // lookahead for free.
      base_window_entries_(config.readahead_bytes / csr->unit_bytes()),
      // A vertex costs one interleaved slot pair on the value plane.
      base_window_vertices_(config.readahead_bytes /
                            (ValueFile::kColumns * sizeof(Slot))),
      drop_behind_(config.drop_behind),
      auto_tune_(config.readahead_auto),
      window_entries_(base_window_entries_),
      window_vertices_(base_window_vertices_) {
  GPSA_CHECK(csr_ != nullptr && values_ != nullptr);
}

void ReadaheadScheduler::begin_superstep() {
  if (base_window_entries_ == 0) {
    return;
  }
  if (auto_tune_) {
    rearm_from_hit_rate();
  }
  csr_trigger_ = csr_prefetched_ = interval_.begin_entry;
  value_trigger_ = value_prefetched_ = interval_.begin_vertex;
  advance(interval_.begin_entry, interval_.begin_vertex);
}

void ReadaheadScheduler::rearm_from_hit_rate() {
  const PrefetchCounters now = csr_->counters();
  const std::uint64_t hits = now.window_hits - last_window_hits_;
  const std::uint64_t misses = now.window_misses - last_window_misses_;
  last_window_hits_ = now.window_hits;
  last_window_misses_ = now.window_misses;
  const std::uint64_t total = hits + misses;
  if (total == 0) {
    return;  // no fetch activity to learn from; keep the current window
  }
  const double hit_rate =
      static_cast<double>(hits) / static_cast<double>(total);
  std::uint64_t scaled = window_entries_;
  if (hit_rate < kGrowBelowHitRate) {
    // Fetches outran the window: double it, up to 4x the configured size.
    scaled = std::min(window_entries_ * 2, base_window_entries_ * kMaxScale);
  } else if (hit_rate > kShrinkAboveHitRate) {
    // Everything hit: the window over-requests; halve it. The floor
    // (base/4, never below one entry) keeps always-hit backends (mmap
    // counts every fetch as a hit) from collapsing the window to nothing.
    scaled = std::max<std::uint64_t>(
        {window_entries_ / 2, base_window_entries_ / kMaxScale, 1});
  }
  if (scaled != window_entries_) {
    GPSA_LOG(Debug) << "readahead: hit rate " << hit_rate << " re-arms window "
                    << window_entries_ << " -> " << scaled << " entries";
    // Keep the value-plane window proportional to the CSR one.
    window_vertices_ = base_window_vertices_ == 0
                           ? 0
                           : std::max<std::uint64_t>(
                                 base_window_vertices_ * scaled /
                                     base_window_entries_,
                                 1);
    window_entries_ = scaled;
  }
}

void ReadaheadScheduler::advance_csr(std::uint64_t entry_cursor) {
  const std::uint64_t target =
      std::min(entry_cursor + window_entries_, interval_.end_entry);
  if (target > csr_prefetched_) {
    csr_->will_need_entries(csr_prefetched_, target - csr_prefetched_);
    csr_prefetched_ = target;
  }
  if (drop_behind_ && entry_cursor > interval_.begin_entry) {
    csr_->drop_behind_entries(entry_cursor);
  }
  csr_trigger_ = entry_cursor + window_entries_ / 2;
}

void ReadaheadScheduler::advance_values(VertexId vertex) {
  const std::uint64_t target = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(vertex) + window_vertices_,
      interval_.end_vertex);
  if (target > value_prefetched_) {
    if (values_
            ->advise_vertex_range(static_cast<VertexId>(value_prefetched_),
                                  static_cast<VertexId>(target),
                                  MmapFile::Advice::kWillNeed)
            .is_ok()) {
      value_counters_.bytes_prefetched +=
          (target - value_prefetched_) * ValueFile::kColumns * sizeof(Slot);
    }
    value_prefetched_ = target;
  }
  value_trigger_ = static_cast<std::uint64_t>(vertex) + window_vertices_ / 2;
}

}  // namespace gpsa
