#include "io/readahead.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace gpsa {

ReadaheadScheduler::ReadaheadScheduler(const IoConfig& config,
                                       CsrEntryStream* csr, ValueFile* values,
                                       Interval interval)
    : csr_(csr),
      values_(values),
      interval_(interval),
      window_entries_(config.readahead_bytes / sizeof(std::int32_t)),
      // A vertex costs one interleaved slot pair on the value plane.
      window_vertices_(config.readahead_bytes /
                       (ValueFile::kColumns * sizeof(Slot))),
      drop_behind_(config.drop_behind) {
  GPSA_CHECK(csr_ != nullptr && values_ != nullptr);
}

void ReadaheadScheduler::begin_superstep() {
  if (window_entries_ == 0) {
    return;
  }
  csr_trigger_ = csr_prefetched_ = interval_.begin_entry;
  value_trigger_ = value_prefetched_ = interval_.begin_vertex;
  advance(interval_.begin_entry, interval_.begin_vertex);
}

void ReadaheadScheduler::advance_csr(std::uint64_t entry_cursor) {
  const std::uint64_t target =
      std::min(entry_cursor + window_entries_, interval_.end_entry);
  if (target > csr_prefetched_) {
    csr_->will_need_entries(csr_prefetched_, target - csr_prefetched_);
    csr_prefetched_ = target;
  }
  if (drop_behind_ && entry_cursor > interval_.begin_entry) {
    csr_->drop_behind_entries(entry_cursor);
  }
  csr_trigger_ = entry_cursor + window_entries_ / 2;
}

void ReadaheadScheduler::advance_values(VertexId vertex) {
  const std::uint64_t target = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(vertex) + window_vertices_,
      interval_.end_vertex);
  if (target > value_prefetched_) {
    if (values_
            ->advise_vertex_range(static_cast<VertexId>(value_prefetched_),
                                  static_cast<VertexId>(target),
                                  MmapFile::Advice::kWillNeed)
            .is_ok()) {
      value_counters_.bytes_prefetched +=
          (target - value_prefetched_) * ValueFile::kColumns * sizeof(Slot);
    }
    value_prefetched_ = target;
  }
  value_trigger_ = static_cast<std::uint64_t>(vertex) + window_vertices_ / 2;
}

}  // namespace gpsa
