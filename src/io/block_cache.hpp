// Aligned block cache backing the buffered-read backends (pread, uring).
//
// A BlockCacheStream slices its file into fixed-size aligned blocks and
// keeps a bounded set of them in private buffers:
//
//   fetch()       assembles a contiguous view from resident blocks,
//                 loading misses synchronously (counted + stall-timed);
//   will_need()   starts asynchronous loads for the upcoming window —
//                 pool pread or io_uring submit, depending on the loader;
//   drop_behind() evicts buffers wholly below the cursor and fadvises the
//                 consumed file range out of the page cache.
//
// The stream has one consumer (its dispatcher). Completions arrive either
// from pool threads (PreadPoolBackend) or inline from poll()/wait() calls
// made under the stream lock (UringBackend) — BlockLoader::inline_completion
// tells the stream which locking discipline the `done` callback needs.
//
// Eviction prefers blocks behind the fetch cursor, then the farthest-ahead
// prefetch; loading blocks and the pinned fetch range are never evicted.
// Capacity is IoConfig::cache_blocks() (readahead window + slack); ranges
// larger than the cache bypass it through BlockLoader::read_sync.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "io/io_backend.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace gpsa {

/// How a backend moves bytes from disk into cache buffers.
class BlockLoader {
 public:
  virtual ~BlockLoader() = default;

  /// Starts reading `length` bytes at `offset` into `dest`; calls
  /// done(status) when finished. Threaded loaders invoke done from a pool
  /// thread; inline loaders only invoke it from inside poll()/wait().
  virtual void read_async(std::uint64_t offset, std::size_t length,
                          std::byte* dest,
                          std::function<void(Status)> done) = 0;

  /// Blocking read for cache-bypass ranges.
  [[nodiscard]] virtual Status read_sync(std::uint64_t offset, std::size_t length,
                           std::byte* dest) = 0;

  /// True when completions are delivered only via poll()/wait() on the
  /// caller's thread (io_uring); false when they arrive from other threads.
  [[nodiscard]] virtual bool inline_completion() const = 0;

  /// Reaps any finished completions without blocking (inline loaders).
  virtual void poll() {}

  /// Blocks until at least one completion was reaped (inline loaders;
  /// callers guarantee at least one operation is in flight).
  virtual void wait() {}

  /// Underlying file descriptor (page-cache drop-behind hints).
  virtual int fd() const = 0;
};

/// Small shared worker pool executing blocking preads for PreadPoolBackend.
class IoThreadPool {
 public:
  explicit IoThreadPool(unsigned threads);
  ~IoThreadPool();

  IoThreadPool(const IoThreadPool&) = delete;
  IoThreadPool& operator=(const IoThreadPool&) = delete;

  void submit(std::function<void()> task) GPSA_EXCLUDES(mutex_);

 private:
  void worker_loop() GPSA_EXCLUDES(mutex_);

  Mutex mutex_{"IoThreadPool.tasks"};
  CondVar cv_;
  std::deque<std::function<void()>> tasks_ GPSA_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  bool stopping_ GPSA_GUARDED_BY(mutex_) = false;
};

class BlockCacheStream final : public IoReadStream {
 public:
  BlockCacheStream(std::unique_ptr<BlockLoader> loader, std::size_t file_size,
                   std::string path, const IoConfig& config);
  ~BlockCacheStream() override;

  std::size_t size() const override { return file_size_; }
  const std::byte* fetch(std::uint64_t offset, std::size_t length) override;
  void will_need(std::uint64_t offset, std::size_t length) override;
  void drop_behind(std::uint64_t offset) override;
  [[nodiscard]] Status status() const override;
  PrefetchCounters counters() const override;

 private:
  struct Entry {
    enum class State { kLoading, kReady, kFailed };
    State state = State::kLoading;
    std::size_t buffer = 0;  // index into buffers_
  };

  [[nodiscard]] std::size_t block_length(std::uint64_t block) const;
  void reap_locked() GPSA_REQUIRES(mutex_);
  void wait_for_completion_locked(MutexLock& lock) GPSA_REQUIRES(mutex_);
  /// Applies one finished load to its entry (Loading -> Ready/Failed).
  void finish_load_locked(std::uint64_t block, const Status& status)
      GPSA_REQUIRES(mutex_);
  /// Frees a buffer, evicting if necessary. Blocks in [protect_lo,
  /// protect_hi) are never evicted. Returns false when nothing is
  /// evictable right now (caller waits or gives up).
  [[nodiscard]] bool take_buffer_locked(std::uint64_t protect_lo, std::uint64_t protect_hi,
                          bool allow_evict_ahead, std::size_t* out)
      GPSA_REQUIRES(mutex_);
  /// Starts loading `block` into a freshly taken buffer.
  void start_load_locked(std::uint64_t block, std::size_t buffer)
      GPSA_REQUIRES(mutex_);

  const std::unique_ptr<BlockLoader> loader_;
  const std::size_t file_size_;
  const std::string path_;
  const std::size_t block_bytes_;
  const std::size_t capacity_;

  mutable Mutex mutex_{"BlockCache.blocks"};
  CondVar cv_;  // signalled (under mutex_) per threaded-load completion
  std::map<std::uint64_t, Entry> blocks_ GPSA_GUARDED_BY(mutex_);
  /// Buffer pool; the vector itself is immutable after construction and
  /// buffer bytes are handed to at most one loader at a time (Loading
  /// entries are never evicted), so only the index sets below need the
  /// lock.
  std::vector<std::unique_ptr<std::byte[]>> buffers_;
  std::vector<std::size_t> free_buffers_ GPSA_GUARDED_BY(mutex_);
  /// Cross-block assembly + bypass target. Consumer-owned: the stream has
  /// one consumer, and completion threads never touch it — which is why
  /// fetch() may legally return scratch_.data() after unlocking.
  std::vector<std::byte> scratch_;
  std::uint64_t pinned_lo_ GPSA_GUARDED_BY(mutex_) = 0;  // last fetch's
  std::uint64_t pinned_hi_ GPSA_GUARDED_BY(mutex_) = 0;  // block range
  std::uint64_t dropped_bytes_below_ GPSA_GUARDED_BY(mutex_) = 0;
  std::size_t inflight_ GPSA_GUARDED_BY(mutex_) = 0;
  Status last_error_ GPSA_GUARDED_BY(mutex_);
  PrefetchCounters counters_ GPSA_GUARDED_BY(mutex_);
};

}  // namespace gpsa
