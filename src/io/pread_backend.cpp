// PreadPoolBackend: buffered pread through the aligned block cache, with
// asynchronous prefetch loads executed on a small shared IoThreadPool.
// Unlike mmap, a miss costs one syscall + memcpy instead of a page fault
// storm, the cache bound is explicit (IoConfig::cache_blocks), and
// drop-behind can actually release page-cache pages via posix_fadvise.
//
// Completion model: threaded. Pool threads invoke the block cache's done
// callbacks, which take the stream lock themselves — the locking half of
// the BlockLoader::inline_completion contract checked by the thread-
// safety annotations in io/block_cache.hpp.
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <utility>

#include "io/block_cache.hpp"
#include "io/io_backend.hpp"

namespace gpsa {
namespace {

Status pread_fully(int fd, std::uint64_t offset, std::size_t length,
                   std::byte* dest) {
  std::size_t filled = 0;
  while (filled < length) {
    const ssize_t n = ::pread(fd, dest + filled, length - filled,
                              static_cast<off_t>(offset + filled));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return io_error_errno("pread failed");
    }
    if (n == 0) {
      return io_error("pread hit EOF before the expected " +
                      std::to_string(length) + " bytes");
    }
    filled += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

class PreadLoader final : public BlockLoader {
 public:
  PreadLoader(int fd, IoThreadPool* pool) : fd_(fd), pool_(pool) {}
  ~PreadLoader() override { ::close(fd_); }

  void read_async(std::uint64_t offset, std::size_t length, std::byte* dest,
                  std::function<void(Status)> done) override {
    pool_->submit([fd = fd_, offset, length, dest,
                   done = std::move(done)]() mutable {
      done(pread_fully(fd, offset, length, dest));
    });
  }

  Status read_sync(std::uint64_t offset, std::size_t length,
                   std::byte* dest) override {
    return pread_fully(fd_, offset, length, dest);
  }

  bool inline_completion() const override { return false; }

  int fd() const override { return fd_; }

 private:
  const int fd_;
  IoThreadPool* const pool_;
};

class PreadPoolBackend final : public IoBackend {
 public:
  explicit PreadPoolBackend(const IoConfig& config)
      : IoBackend(config), pool_(config.io_threads) {}

  IoBackendKind kind() const override { return IoBackendKind::kPread; }

  Result<std::unique_ptr<IoReadStream>> open_stream(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return io_error_errno("open('" + path + "') failed");
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const Status status = io_error_errno("fstat('" + path + "') failed");
      ::close(fd);
      return status;
    }
#if defined(POSIX_FADV_SEQUENTIAL)
    (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
    return std::unique_ptr<IoReadStream>(new BlockCacheStream(
        std::make_unique<PreadLoader>(fd, &pool_),
        static_cast<std::size_t>(st.st_size), path, config_));
  }

 private:
  IoThreadPool pool_;  // shared by all this backend's streams
};

}  // namespace

Result<std::unique_ptr<IoBackend>> make_pread_backend(const IoConfig& config) {
  return std::unique_ptr<IoBackend>(new PreadPoolBackend(config));
}

}  // namespace gpsa
