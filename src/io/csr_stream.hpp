// Unit-indexed view over a CSR entry file's IoReadStream.
//
// The dispatcher thinks in record offsets from the .idx file (Algorithm
// 2's `curoff`); the backend thinks in bytes. This adapter converts, and
// amortizes the per-fetch cost (virtual call, and for pread/uring a lock +
// possible memcpy) by fetching ~256 KiB chunks and serving records out of
// the current chunk until the cursor leaves it.
//
// The offset unit follows the file format (CsrFileReader::unit_bytes):
// int32 entries for v1, bytes for v2. For v1 fetch_record returns a
// pointer straight into the leased chunk (zero-copy). For v2 it decodes
// the one requested record from the chunk's varint bytes into a scratch
// buffer pre-sized at construction — shaped exactly like a v1 record
// ([degree] dst... -1) so the dispatch loop is format-oblivious, and
// never larger than the validated max record, so the dispatch path stays
// allocation-free.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr_file.hpp"
#include "io/io_backend.hpp"

namespace gpsa {

class CsrEntryStream {
 public:
  /// 256 KiB per refill, matching the default block size (64 Ki v1
  /// entries, 256 Ki v2 bytes).
  static constexpr std::uint64_t kChunkBytes = 1u << 18;
  /// Historical name for the v1 refill size, in entries.
  static constexpr std::uint64_t kChunkEntries = kChunkBytes / 4;

  /// v1 view: `stream` is an open IoReadStream over a v1 CSR *entry* file
  /// (the base path, not the .idx); `num_entries` comes from the validated
  /// reader.
  CsrEntryStream(std::unique_ptr<IoReadStream> stream,
                 std::uint64_t num_entries);

  /// Format-negotiated view: takes the unit size, total units, and (for
  /// v2) the decode-scratch bound from the validated reader.
  CsrEntryStream(std::unique_ptr<IoReadStream> stream,
                 const CsrFileReader& reader);

  std::uint64_t num_entries() const { return num_units_; }

  /// Size of one offset unit in bytes (4 for v1, 1 for v2); mirrors
  /// CsrFileReader::unit_bytes for readahead-window accounting.
  unsigned unit_bytes() const { return unit_bytes_; }

  /// The record spanning units [begin, begin+count), as v1-shaped int32
  /// entries; valid until the next call. Throws std::runtime_error on an
  /// I/O error — dispatchers already translate exceptions from
  /// run_iteration into WORKER_FAILED.
  const std::int32_t* fetch_record(std::uint64_t begin, std::uint64_t count);

  /// Readahead/drop-behind in offset units (forwarded as byte hints).
  void will_need_entries(std::uint64_t begin, std::uint64_t count);
  void drop_behind_entries(std::uint64_t unit);

  PrefetchCounters counters() const { return stream_->counters(); }

 private:
  std::uint64_t byte_of(std::uint64_t unit) const {
    return sizeof(CsrFileHeader) + unit * unit_bytes_;
  }

  const std::unique_ptr<IoReadStream> stream_;
  const std::uint64_t num_units_;
  const unsigned unit_bytes_;
  std::vector<std::int32_t> scratch_;  // v2 decode target; empty for v1
  const std::byte* chunk_data_ = nullptr;
  std::uint64_t chunk_begin_ = 0;
  std::uint64_t chunk_end_ = 0;  // == begin: empty
};

}  // namespace gpsa
