// Entry-indexed view over a CSR entry file's IoReadStream.
//
// The dispatcher thinks in int32 entry indices (Algorithm 2's `curoff`);
// the backend thinks in bytes. This adapter converts, and amortizes the
// per-fetch cost (virtual call, and for pread/uring a lock + possible
// memcpy) by fetching in chunks of kChunkEntries and serving records out
// of the current chunk until the cursor leaves it.
#pragma once

#include <cstdint>
#include <memory>

#include "graph/csr_file.hpp"
#include "io/io_backend.hpp"

namespace gpsa {

class CsrEntryStream {
 public:
  /// 64 Ki entries = 256 KiB per refill, matching the default block size.
  static constexpr std::uint64_t kChunkEntries = 1u << 16;

  /// `stream` is an open IoReadStream over the CSR *entry* file (the base
  /// path, not the .idx); `num_entries` comes from the validated reader.
  CsrEntryStream(std::unique_ptr<IoReadStream> stream,
                 std::uint64_t num_entries);

  std::uint64_t num_entries() const { return num_entries_; }

  /// Pointer to entries [begin, begin+count), valid until the next call.
  /// Throws std::runtime_error on an I/O error — dispatchers already
  /// translate exceptions from run_iteration into WORKER_FAILED.
  const std::int32_t* fetch_record(std::uint64_t begin, std::uint64_t count);

  /// Readahead/drop-behind in entry units (forwarded as byte hints).
  void will_need_entries(std::uint64_t begin, std::uint64_t count);
  void drop_behind_entries(std::uint64_t entry);

  PrefetchCounters counters() const { return stream_->counters(); }

 private:
  static std::uint64_t byte_of(std::uint64_t entry) {
    return sizeof(CsrFileHeader) + entry * sizeof(std::int32_t);
  }

  const std::unique_ptr<IoReadStream> stream_;
  const std::uint64_t num_entries_;
  const std::int32_t* chunk_data_ = nullptr;
  std::uint64_t chunk_begin_ = 0;
  std::uint64_t chunk_end_ = 0;  // == begin: empty
};

}  // namespace gpsa
