// Pluggable storage I/O subsystem (ROADMAP: "Batch-level value-file
// prefetch"; BPP and the Waterloo analysis in PAPERS.md both attribute
// most cross-system variance in disk graph engines to the I/O strategy,
// so it is a first-class, swappable component here rather than raw mmap
// calls scattered through storage/ and graph/).
//
// Three planes:
//
//   1. Streaming reads (the dispatcher's sequential CSR record scan — the
//      bulk of every superstep's byte volume) go through IoReadStream, a
//      windowed view with explicit readahead (will_need) and drop-behind
//      hints. Backends: MmapBackend (pointer into the mapping plus
//      madvise windows — the paper's §IV.C substrate), PreadPoolBackend
//      (aligned block cache filled by buffered pread on a small thread
//      pool), and UringBackend (the same block cache with reads submitted
//      as io_uring SQEs; compiled behind the GPSA_WITH_URING probe and
//      runtime-probed, falling back cleanly when the kernel refuses).
//   2. The value file's *data plane* stays mmap in every backend — its
//      slots are shared mutable state accessed through std::atomic_ref by
//      dispatchers and computing actors concurrently, which buffered
//      reads cannot provide (DESIGN.md §9). Construction still flows
//      through the backend so residency policy is applied uniformly, and
//      the readahead scheduler keeps upcoming column pages resident via
//      madvise windows in all backends.
//   3. Counters (bytes prefetched, window hits/misses, stall time) flow
//      into metrics/io_model.hpp's PrefetchCounters for reporting.
//
// Runtime selection: GPSA_IO_BACKEND=mmap|pread|uring (EngineOptions::io
// overrides); readahead window via GPSA_READAHEAD_MB (0 disables).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "metrics/io_model.hpp"
#include "storage/value_file.hpp"
#include "util/status.hpp"

namespace gpsa {

enum class IoBackendKind { kMmap, kPread, kUring };

const char* io_backend_name(IoBackendKind kind);
Result<IoBackendKind> parse_io_backend(std::string_view name);

/// Caller-facing knobs. Every field defaults to its environment variable
/// (falling back to the built-in default) when left unset, so benches and
/// tests can pin values while ordinary runs follow the environment.
struct IoOptions {
  /// GPSA_IO_BACKEND (default mmap). An explicitly requested uring that
  /// the build or kernel cannot provide falls back to pread with a log
  /// warning instead of failing the run.
  std::optional<IoBackendKind> backend;
  /// GPSA_READAHEAD_MB (default 8 MiB). 0 disables readahead and
  /// drop-behind entirely.
  std::optional<std::size_t> readahead_bytes;
  /// GPSA_IO_DROP_BEHIND (default true): DONTNEED/evict the consumed
  /// prefix of the CSR stream behind each dispatcher's cursor.
  std::optional<bool> drop_behind;
  /// GPSA_IO_BLOCK_KB (default 256 KiB): block size of the pread/uring
  /// aligned block cache.
  std::optional<std::size_t> block_bytes;
  /// GPSA_IO_THREADS (default 2): pread prefetch pool size.
  std::optional<unsigned> io_threads;
  /// GPSA_READAHEAD_AUTO (default off): let each ReadaheadScheduler re-arm
  /// its window from the measured per-superstep hit rate — grow (up to 4x
  /// the configured window) while fetches miss the window, shrink (down to
  /// 1/4) while every fetch hits.
  std::optional<bool> readahead_auto;
  /// Evict the engine's working files from the page cache after setup and
  /// before the run starts (bench_ablation_io's cold-cache protocol).
  bool cold_start = false;

  /// Applies environment + defaults, validates, and resolves unsupported
  /// backend requests to their fallback.
  Result<struct IoConfig> resolve() const;
};

/// Fully resolved configuration consumed by the backends.
struct IoConfig {
  IoBackendKind backend = IoBackendKind::kMmap;
  std::size_t readahead_bytes = 8u << 20;
  bool drop_behind = true;
  std::size_t block_bytes = 256u << 10;
  unsigned io_threads = 2;
  bool readahead_auto = false;
  bool cold_start = false;

  /// Block-cache capacity: the readahead window plus slack for the
  /// pinned fetch range.
  [[nodiscard]] std::size_t cache_blocks() const {
    const std::size_t window = readahead_bytes / block_bytes;
    return (window < 2 ? 2 : window) + 2;
  }
};

/// A read-only byte stream over one file. Not thread-safe: each stream
/// belongs to one consumer (a dispatcher); the backend's internals handle
/// any cross-thread completion traffic.
class IoReadStream {
 public:
  virtual ~IoReadStream() = default;

  virtual std::size_t size() const = 0;

  /// Pointer to the `length` bytes at `offset`, contiguous, valid until
  /// the next fetch() on this stream. Returns nullptr on an I/O error
  /// (see status()); out-of-bounds ranges are a programming error
  /// (callers index through validated CSR offsets).
  virtual const std::byte* fetch(std::uint64_t offset, std::size_t length) = 0;

  /// Hint: [offset, offset+length) will be fetched soon. Backends load it
  /// ahead of the cursor (madvise WILLNEED / pool pread / uring submit).
  virtual void will_need(std::uint64_t offset, std::size_t length) = 0;

  /// Hint: bytes below `offset` were consumed and won't be re-fetched.
  virtual void drop_behind(std::uint64_t offset) = 0;

  /// Last I/O error after a nullptr fetch (OK otherwise).
  [[nodiscard]] virtual Status status() const = 0;

  virtual PrefetchCounters counters() const = 0;
};

/// Factory for streams and value files. Create via IoBackend::create; the
/// backend must outlive every stream it opened.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual IoBackendKind kind() const = 0;
  const char* name() const { return io_backend_name(kind()); }
  const IoConfig& config() const { return config_; }

  virtual Result<std::unique_ptr<IoReadStream>> open_stream(
      const std::string& path) = 0;

  /// Value-file construction routed through the backend (see header
  /// comment: the data plane is mmap everywhere; the backend applies its
  /// residency policy).
  virtual Result<ValueFile> create_value_file(const std::string& path,
                                              VertexId num_vertices,
                                              const std::string& app_tag);
  virtual Result<ValueFile> open_value_file(const std::string& path);

  /// Whether `kind` can work here (uring: compile-time probe AND a
  /// successful runtime io_uring_setup; mmap/pread: always).
  [[nodiscard]] static bool supported(IoBackendKind kind);

  /// Builds the backend for config.backend (resolve() already replaced
  /// unsupported requests).
  static Result<std::unique_ptr<IoBackend>> create(const IoConfig& config);

 protected:
  explicit IoBackend(const IoConfig& config) : config_(config) {}

  IoConfig config_;
};

}  // namespace gpsa
