// gpsa-lint: locked-notify — every condition-variable notify in this file
// must be issued while the guarding Mutex is held. The stream destructor
// drains on cv_ and destroys it as soon as inflight_ hits zero, and the
// pool destructor's join races its workers' last wait the same way; an
// unlocked notify could touch a dead condition variable in either case.
#include "io/block_cache.hpp"

#include <fcntl.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gpsa {

// ---------------------------------------------------------------------------
// IoThreadPool

IoThreadPool::IoThreadPool(unsigned threads) {
  GPSA_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

IoThreadPool::~IoThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    // Under the lock (annotation-audit find): previously notified after
    // unlocking, per the file-level locked-notify rationale.
    cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void IoThreadPool::submit(std::function<void()> task) {
  MutexLock lock(mutex_);
  GPSA_CHECK(!stopping_);
  tasks_.push_back(std::move(task));
  cv_.notify_one();  // under the lock, as above
}

void IoThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) {
        cv_.wait(lock);
      }
      if (tasks_.empty()) {
        return;  // stopping_ with a drained queue
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

// ---------------------------------------------------------------------------
// BlockCacheStream

BlockCacheStream::BlockCacheStream(std::unique_ptr<BlockLoader> loader,
                                   std::size_t file_size, std::string path,
                                   const IoConfig& config)
    : loader_(std::move(loader)),
      file_size_(file_size),
      path_(std::move(path)),
      block_bytes_(config.block_bytes),
      capacity_(config.cache_blocks()) {
  buffers_.reserve(capacity_);
  free_buffers_.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    buffers_.push_back(std::make_unique<std::byte[]>(block_bytes_));
    free_buffers_.push_back(i);
  }
}

BlockCacheStream::~BlockCacheStream() {
  // Loads in flight capture `this`; drain them before members go away.
  MutexLock lock(mutex_);
  while (inflight_ > 0) {
    wait_for_completion_locked(lock);
  }
}

std::size_t BlockCacheStream::block_length(std::uint64_t block) const {
  const std::uint64_t begin = block * block_bytes_;
  GPSA_DCHECK(begin < file_size_);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(block_bytes_, file_size_ - begin));
}

void BlockCacheStream::reap_locked() {
  if (loader_->inline_completion()) {
    loader_->poll();
  }
}

void BlockCacheStream::wait_for_completion_locked(MutexLock& lock) {
  GPSA_CHECK(inflight_ > 0);
  if (loader_->inline_completion()) {
    // Inline loaders deliver completions on this thread, from inside
    // wait(), while we still hold the lock — the done callbacks mutate
    // stream state directly instead of re-locking.
    loader_->wait();
  } else {
    cv_.wait(lock);
  }
}

void BlockCacheStream::finish_load_locked(std::uint64_t block,
                                          const Status& status) {
  auto entry = blocks_.find(block);
  // The entry outlives its load (loading blocks are never evicted, and
  // the destructor drains before teardown).
  GPSA_DCHECK(entry != blocks_.end());
  if (status.is_ok()) {
    entry->second.state = Entry::State::kReady;
  } else {
    entry->second.state = Entry::State::kFailed;
    last_error_ = status;
  }
  --inflight_;
}

bool BlockCacheStream::take_buffer_locked(std::uint64_t protect_lo,
                                          std::uint64_t protect_hi,
                                          bool allow_evict_ahead,
                                          std::size_t* out) {
  if (!free_buffers_.empty()) {
    *out = free_buffers_.back();
    free_buffers_.pop_back();
    return true;
  }
  // Prefer evicting the consumed prefix (smallest index behind the
  // protected range), then — only if allowed — the farthest-ahead
  // prefetch, which costs refetch work but never correctness. Failed
  // blocks are evictable too (the error is latched in last_error_).
  auto evictable = [&](const std::map<std::uint64_t, Entry>::value_type& kv) {
    return kv.second.state != Entry::State::kLoading &&
           (kv.first < pinned_lo_ || kv.first >= pinned_hi_);
  };
  auto evict = [&](std::map<std::uint64_t, Entry>::iterator it) {
    *out = it->second.buffer;
    blocks_.erase(it);
    return true;
  };
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (it->first >= protect_lo) {
      break;
    }
    if (evictable(*it)) {
      return evict(it);
    }
  }
  if (allow_evict_ahead) {
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
      if (it->first < protect_hi) {
        break;
      }
      if (evictable(*it)) {
        return evict(std::next(it).base());
      }
    }
  }
  return false;
}

void BlockCacheStream::start_load_locked(std::uint64_t block,
                                         std::size_t buffer) {
  auto [it, inserted] = blocks_.emplace(block, Entry{});
  GPSA_DCHECK(inserted);
  it->second.state = Entry::State::kLoading;
  it->second.buffer = buffer;
  ++inflight_;
  ++counters_.reads_issued;
  const bool inline_done = loader_->inline_completion();
  // The callback crosses a std::function boundary, which the thread-safety
  // analysis cannot follow; its two branches are each safe for a reason
  // the annotations document — the inline branch runs under the stream
  // lock already held by the poll()/wait() caller, the threaded branch
  // takes the lock itself.
  loader_->read_async(
      block * block_bytes_, block_length(block), buffers_[buffer].get(),
      [this, block, inline_done](Status status) GPSA_NO_THREAD_SAFETY_ANALYSIS {
        if (inline_done) {
          finish_load_locked(block, status);  // lock held (see wait/poll)
        } else {
          MutexLock lock(mutex_);
          finish_load_locked(block, status);
          // Notify under the lock (file-level locked-notify rationale).
          cv_.notify_all();
        }
      });
}

const std::byte* BlockCacheStream::fetch(std::uint64_t offset,
                                         std::size_t length) {
  GPSA_DCHECK(offset + length <= file_size_);
  if (length == 0) {
    scratch_.resize(1);
    return scratch_.data();
  }
  MutexLock lock(mutex_);
  reap_locked();
  pinned_lo_ = pinned_hi_ = 0;  // previous fetch's view is now invalid

  const std::uint64_t first = offset / block_bytes_;
  const std::uint64_t last = (offset + length - 1) / block_bytes_;

  // Ranges that would not fit alongside a minimal working set bypass the
  // cache entirely (giant hub records).
  if (last - first + 1 > capacity_ - 1) {
    ++counters_.window_misses;
    counters_.reads_issued += 1;
    scratch_.resize(length);
    WallTimer stall;
    const Status status = loader_->read_sync(offset, length, scratch_.data());
    counters_.stall_seconds += stall.elapsed_seconds();
    if (!status.is_ok()) {
      last_error_ = status;
      return nullptr;
    }
    return scratch_.data();
  }

  // Resident check first so hits stay cheap, then start loads for the
  // missing blocks and wait for the stragglers.
  bool all_ready = true;
  for (std::uint64_t b = first; b <= last; ++b) {
    auto it = blocks_.find(b);
    if (it == blocks_.end() || it->second.state != Entry::State::kReady) {
      all_ready = false;
      break;
    }
  }
  if (all_ready) {
    ++counters_.window_hits;
  } else {
    ++counters_.window_misses;
    WallTimer stall;
    for (std::uint64_t b = first; b <= last; ++b) {
      while (blocks_.find(b) == blocks_.end()) {
        std::size_t buffer = 0;
        if (take_buffer_locked(first, last + 1, /*allow_evict_ahead=*/true,
                               &buffer)) {
          start_load_locked(b, buffer);
        } else {
          // Every buffer is loading; one must finish before we can evict.
          wait_for_completion_locked(lock);
        }
      }
    }
    for (std::uint64_t b = first; b <= last; ++b) {
      while (blocks_.at(b).state == Entry::State::kLoading) {
        wait_for_completion_locked(lock);
      }
      if (blocks_.at(b).state == Entry::State::kFailed) {
        free_buffers_.push_back(blocks_.at(b).buffer);
        blocks_.erase(b);  // allow a retry to reload it
        counters_.stall_seconds += stall.elapsed_seconds();
        return nullptr;
      }
    }
    counters_.stall_seconds += stall.elapsed_seconds();
  }

  if (first == last) {
    pinned_lo_ = first;
    pinned_hi_ = first + 1;
    return buffers_[blocks_.at(first).buffer].get() + (offset % block_bytes_);
  }
  // Cross-block range: assemble into the scratch buffer (which nothing
  // evicts, so no pin is needed).
  scratch_.resize(length);
  std::size_t copied = 0;
  for (std::uint64_t b = first; b <= last; ++b) {
    const std::uint64_t block_begin = b * block_bytes_;
    const std::uint64_t lo = std::max<std::uint64_t>(offset, block_begin);
    const std::uint64_t hi =
        std::min<std::uint64_t>(offset + length, block_begin + block_bytes_);
    std::memcpy(scratch_.data() + copied,
                buffers_[blocks_.at(b).buffer].get() + (lo - block_begin),
                hi - lo);
    copied += hi - lo;
  }
  GPSA_DCHECK(copied == length);
  return scratch_.data();
}

void BlockCacheStream::will_need(std::uint64_t offset, std::size_t length) {
  if (length == 0 || offset >= file_size_) {
    return;
  }
  length = std::min<std::size_t>(length, file_size_ - offset);
  MutexLock lock(mutex_);
  reap_locked();
  const std::uint64_t first = offset / block_bytes_;
  const std::uint64_t last = (offset + length - 1) / block_bytes_;
  for (std::uint64_t b = first; b <= last; ++b) {
    if (blocks_.find(b) != blocks_.end()) {
      continue;
    }
    std::size_t buffer = 0;
    // Prefetch only evicts behind the window — when the cache is full of
    // useful blocks the window is simply saturated, not worth a stall.
    if (!take_buffer_locked(first, last + 1, /*allow_evict_ahead=*/false,
                            &buffer)) {
      break;
    }
    start_load_locked(b, buffer);
    counters_.bytes_prefetched += block_length(b);
  }
}

void BlockCacheStream::drop_behind(std::uint64_t offset) {
  MutexLock lock(mutex_);
  reap_locked();
  const std::uint64_t limit = offset / block_bytes_;  // whole blocks only
  for (auto it = blocks_.begin();
       it != blocks_.end() && it->first < limit;) {
    if (it->second.state == Entry::State::kReady &&
        (it->first < pinned_lo_ || it->first >= pinned_hi_)) {
      counters_.bytes_dropped += block_length(it->first);
      free_buffers_.push_back(it->second.buffer);
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
  // Also release the consumed prefix from the kernel page cache — this is
  // what makes the pread/uring backends genuinely bounded-memory on files
  // larger than RAM. Only the new [dropped, offset) suffix each time.
  const std::uint64_t aligned = limit * block_bytes_;
  if (aligned > dropped_bytes_below_) {
#if defined(POSIX_FADV_DONTNEED)
    (void)::posix_fadvise(loader_->fd(),
                          static_cast<off_t>(dropped_bytes_below_),
                          static_cast<off_t>(aligned - dropped_bytes_below_),
                          POSIX_FADV_DONTNEED);
#endif
    dropped_bytes_below_ = aligned;
  }
}

Status BlockCacheStream::status() const {
  MutexLock lock(mutex_);
  return last_error_;
}

PrefetchCounters BlockCacheStream::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

}  // namespace gpsa
