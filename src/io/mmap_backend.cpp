// MmapBackend: the paper's §IV.C substrate — streams are pointers into a
// read-only mapping, so fetch() is free; will_need()/drop_behind() become
// madvise(WILLNEED)/madvise(DONTNEED) windows over the mapping, which is
// exactly the "madvise windows ahead of the cursor" readahead the ROADMAP
// open item asked for. Counters are plain (non-atomic) members: a stream
// has a single consumer and madvise does the async work in the kernel, so
// there is no cross-thread counter traffic at all in this backend.
#include <memory>

#include "io/io_backend.hpp"
#include "platform/mmap_file.hpp"

namespace gpsa {
namespace {

class MmapStream final : public IoReadStream {
 public:
  explicit MmapStream(MmapFile map) : map_(std::move(map)) {}

  std::size_t size() const override { return map_.size(); }

  const std::byte* fetch(std::uint64_t offset,
                         [[maybe_unused]] std::size_t length) override {
    GPSA_DCHECK(offset + length <= map_.size());
    ++counters_.window_hits;  // the mapping is always "resident" to fetch
    return map_.data() + offset;
  }

  void will_need(std::uint64_t offset, std::size_t length) override {
    if (length == 0 || offset >= map_.size()) {
      return;
    }
    length = std::min(length, map_.size() - offset);
    if (map_.advise_range(offset, length, MmapFile::Advice::kWillNeed)
            .is_ok()) {
      counters_.bytes_prefetched += length;
    }
  }

  void drop_behind(std::uint64_t offset) override {
    // Only the not-yet-dropped prefix [dropped_, offset): repeated full
    // prefix drops would make the madvise work quadratic over a scan.
    if (offset <= dropped_) {
      return;
    }
    const std::uint64_t begin = dropped_;
    if (map_.advise_range(begin, offset - begin, MmapFile::Advice::kDontNeed)
            .is_ok()) {
      counters_.bytes_dropped += offset - begin;
    }
    dropped_ = offset;
  }

  Status status() const override { return Status::ok(); }

  PrefetchCounters counters() const override { return counters_; }

 private:
  MmapFile map_;
  std::uint64_t dropped_ = 0;
  PrefetchCounters counters_;
};

class MmapBackend final : public IoBackend {
 public:
  explicit MmapBackend(const IoConfig& config) : IoBackend(config) {}

  IoBackendKind kind() const override { return IoBackendKind::kMmap; }

  Result<std::unique_ptr<IoReadStream>> open_stream(
      const std::string& path) override {
    GPSA_ASSIGN_OR_RETURN(MmapFile map,
                          MmapFile::open(path, MmapFile::Mode::kReadOnly));
    GPSA_RETURN_IF_ERROR(map.advise(MmapFile::Advice::kSequential));
    return std::unique_ptr<IoReadStream>(new MmapStream(std::move(map)));
  }
};

}  // namespace

Result<std::unique_ptr<IoBackend>> make_mmap_backend(const IoConfig& config) {
  return std::unique_ptr<IoBackend>(new MmapBackend(config));
}

}  // namespace gpsa
