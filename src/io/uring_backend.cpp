// UringBackend: the block cache filled by io_uring reads, submitted as
// IORING_OP_READ SQEs on a per-stream ring driven without liburing (the
// container ships only <linux/io_uring.h>): setup/enter via raw syscalls,
// ring memory mapped and accessed through std::atomic_ref with the
// acquire/release pairing the io_uring ABI requires (src/io/ is on the
// gpsa_lint memory-order allowlist for exactly these kernel-shared words).
//
// Completion model: inline. The stream is the ring's only driver, so SQE
// submission and CQE reaping both happen on the consumer thread from
// inside BlockLoader::poll()/wait() (or read_async when the SQ is full) —
// the `done` callbacks run under the stream lock the caller already holds.
//
// Compiled behind the GPSA_WITH_URING CMake probe; without it this TU
// shrinks to a stub whose runtime probe reports "unsupported", and
// IoOptions::resolve() falls back to pread.
#include <memory>

#include "io/io_backend.hpp"

#if defined(GPSA_WITH_URING)

#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/block_cache.hpp"
#include "util/logging.hpp"

namespace gpsa {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

unsigned load_acquire(unsigned* p) {
  return std::atomic_ref<unsigned>(*p).load(std::memory_order_acquire);
}

Status pread_fully(int fd, std::uint64_t offset, std::size_t length,
                   std::byte* dest) {
  std::size_t filled = 0;
  while (filled < length) {
    const ssize_t n = ::pread(fd, dest + filled, length - filled,
                              static_cast<off_t>(offset + filled));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return io_error_errno("pread failed");
    }
    if (n == 0) {
      return io_error("pread hit EOF before the expected " +
                      std::to_string(length) + " bytes");
    }
    filled += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

class UringLoader final : public BlockLoader {
 public:
  static Result<std::unique_ptr<BlockLoader>> create(int file_fd);
  ~UringLoader() override;

  void read_async(std::uint64_t offset, std::size_t length, std::byte* dest,
                  std::function<void(Status)> done) override {
    const std::uint64_t id = next_id_++;
    ops_.emplace(id, Op{offset, length, dest, std::move(done), 0});
    submit(id);
  }

  Status read_sync(std::uint64_t offset, std::size_t length,
                   std::byte* dest) override {
    return pread_fully(file_fd_, offset, length, dest);
  }

  bool inline_completion() const override { return true; }
  void poll() override { reap(/*block=*/false); }
  void wait() override { reap(/*block=*/true); }
  int fd() const override { return file_fd_; }

 private:
  struct Op {
    std::uint64_t offset;
    std::size_t length;
    std::byte* dest;
    std::function<void(Status)> done;
    std::size_t filled;
  };

  explicit UringLoader(int file_fd) : file_fd_(file_fd) {}

  Status init();

  /// Pushes the unfinished tail of op `id` as one SQE, waiting for
  /// completions first when the SQ is saturated.
  void submit(std::uint64_t id) {
    while (inflight_sqes_ == sq_entry_count_) {
      reap(/*block=*/true);
    }
    const Op& op = ops_.at(id);
    const unsigned tail = *sq_tail_;  // sole producer; no ordering needed
    const unsigned idx = tail & *sq_mask_;
    io_uring_sqe& sqe = sqes_[idx];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_READ;
    sqe.fd = file_fd_;
    sqe.addr = reinterpret_cast<std::uint64_t>(op.dest + op.filled);
    sqe.len = static_cast<unsigned>(op.length - op.filled);
    sqe.off = op.offset + op.filled;
    sqe.user_data = id;
    sq_array_[idx] = idx;
    std::atomic_ref<unsigned>(*sq_tail_).store(tail + 1,
                                               std::memory_order_release);
    ++inflight_sqes_;
    for (;;) {
      const int rc = sys_io_uring_enter(ring_fd_, 1, 0, 0);
      if (rc >= 0) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EBUSY) {
        reap(/*block=*/true);  // kernel backpressure; drain and retry
        continue;
      }
      // Unsubmittable SQE: fail the op via the synchronous path so the
      // cache still gets a definite answer.
      fail_unsubmitted(id);
      return;
    }
  }

  void fail_unsubmitted(std::uint64_t id) {
    --inflight_sqes_;
    auto node = ops_.extract(id);
    node.mapped().done(io_error_errno("io_uring_enter(submit) failed"));
  }

  /// Drains the CQ (optionally blocking for at least one completion),
  /// finishing ops and resubmitting short reads.
  void reap(bool block) {
    if (block) {
      while (sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS) < 0 &&
             errno == EINTR) {
      }
    }
    std::vector<std::uint64_t> resubmit;
    unsigned head = *cq_head_;
    const unsigned tail = load_acquire(cq_tail_);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & *cq_mask_];
      ++head;
      --inflight_sqes_;
      auto it = ops_.find(cqe.user_data);
      GPSA_DCHECK(it != ops_.end());
      Op& op = it->second;
      if (cqe.res < 0) {
        errno = -cqe.res;
        finish(it, io_error_errno("io_uring read failed"));
      } else if (cqe.res == 0) {
        finish(it, io_error("io_uring read hit EOF before the expected " +
                            std::to_string(op.length) + " bytes"));
      } else {
        op.filled += static_cast<std::size_t>(cqe.res);
        if (op.filled < op.length) {
          resubmit.push_back(cqe.user_data);
        } else {
          finish(it, Status::ok());
        }
      }
    }
    std::atomic_ref<unsigned>(*cq_head_).store(head,
                                               std::memory_order_release);
    for (const std::uint64_t id : resubmit) {
      submit(id);
    }
  }

  void finish(std::unordered_map<std::uint64_t, Op>::iterator it,
              Status status) {
    auto node = ops_.extract(it);
    node.mapped().done(std::move(status));
  }

  const int file_fd_;
  int ring_fd_ = -1;
  // Ring mappings (SQ+CQ may share one under IORING_FEAT_SINGLE_MMAP).
  void* sq_ring_ = MAP_FAILED;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = MAP_FAILED;
  std::size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = static_cast<io_uring_sqe*>(MAP_FAILED);
  std::size_t sqes_bytes_ = 0;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
  unsigned sq_entry_count_ = 0;
  unsigned inflight_sqes_ = 0;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, Op> ops_;
};

Result<std::unique_ptr<BlockLoader>> UringLoader::create(int file_fd) {
  std::unique_ptr<UringLoader> loader(new UringLoader(file_fd));
  Status status = loader->init();
  if (!status.is_ok()) {
    // ~UringLoader releases the partial ring state AND file_fd — the
    // caller must not close file_fd again on this path.
    return status;
  }
  return std::unique_ptr<BlockLoader>(std::move(loader));
}

Status UringLoader::init() {
  io_uring_params params{};
  ring_fd_ = sys_io_uring_setup(/*entries=*/128, &params);
  if (ring_fd_ < 0) {
    return io_error_errno("io_uring_setup failed");
  }
  sq_entry_count_ = params.sq_entries;

  sq_ring_bytes_ =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap =
      (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_,
                                               cq_ring_bytes_);
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    return io_error_errno("mmap(io_uring SQ ring) failed");
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_,
                      IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      return io_error_errno("mmap(io_uring CQ ring) failed");
    }
  }
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(::mmap(nullptr, sqes_bytes_,
                                            PROT_READ | PROT_WRITE,
                                            MAP_SHARED | MAP_POPULATE,
                                            ring_fd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    return io_error_errno("mmap(io_uring SQEs) failed");
  }

  auto* sq = static_cast<std::uint8_t*>(sq_ring_);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  auto* cq = static_cast<std::uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
  return Status::ok();
}

UringLoader::~UringLoader() {
  // The owning BlockCacheStream drained every in-flight load before
  // destroying us, so the ring is quiescent here.
  GPSA_DCHECK(ops_.empty());
  if (sqes_ != MAP_FAILED) {
    ::munmap(sqes_, sqes_bytes_);
  }
  if (cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != MAP_FAILED) {
    ::munmap(sq_ring_, sq_ring_bytes_);
  }
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
  }
  ::close(file_fd_);
}

class UringBackend final : public IoBackend {
 public:
  explicit UringBackend(const IoConfig& config) : IoBackend(config) {}

  IoBackendKind kind() const override { return IoBackendKind::kUring; }

  Result<std::unique_ptr<IoReadStream>> open_stream(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return io_error_errno("open('" + path + "') failed");
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      const Status status = io_error_errno("fstat('" + path + "') failed");
      ::close(fd);
      return status;
    }
    auto loader = UringLoader::create(fd);
    if (!loader.is_ok()) {
      return loader.status();  // create() already closed fd on failure
    }
    return std::unique_ptr<IoReadStream>(new BlockCacheStream(
        std::move(loader).value(), static_cast<std::size_t>(st.st_size), path,
        config_));
  }
};

}  // namespace

bool uring_runtime_supported() {
  static const bool supported = [] {
    io_uring_params params{};
    const int fd = sys_io_uring_setup(4, &params);
    if (fd < 0) {
      return false;  // ENOSYS / EPERM (seccomp) / rlimit — all mean "no"
    }
    ::close(fd);
    return true;
  }();
  return supported;
}

Result<std::unique_ptr<IoBackend>> make_uring_backend(const IoConfig& config) {
  return std::unique_ptr<IoBackend>(new UringBackend(config));
}

}  // namespace gpsa

#else  // !GPSA_WITH_URING

namespace gpsa {

bool uring_runtime_supported() { return false; }

Result<std::unique_ptr<IoBackend>> make_uring_backend(const IoConfig&) {
  // resolve() downgrades unsupported uring requests to pread before
  // create() runs, so reaching here is a programming error upstream.
  return failed_precondition(
      "uring backend requested but GPSA_WITH_URING was not compiled in");
}

}  // namespace gpsa

#endif  // GPSA_WITH_URING
