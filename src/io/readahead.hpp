// Readahead scheduling for one dispatcher's interval scan.
//
// Watches the dispatcher's interval cursor and keeps a GPSA_READAHEAD_MB
// window of upcoming bytes resident ahead of it, on both planes:
//
//   CSR entries    will_need on the stream (madvise WILLNEED / pool pread
//                  / uring submit), plus drop-behind on the dispatched
//                  prefix — those entries are never re-read this superstep.
//   value columns  ValueFile::advise_vertex_range(kWillNeed) windows over
//                  the upcoming slot pairs. No drop-behind: the columns are
//                  interleaved per vertex, so pages behind the dispatch
//                  cursor still take update-column writes (DESIGN.md §9).
//
// The cursor check is O(1) per vertex (a trigger-point compare); hints are
// issued every half window, so each byte is requested ahead exactly once.
// Actor-friendly: owned and driven entirely by its dispatcher's thread,
// no locks, no shared state.
#pragma once

#include <cstdint>

#include "graph/partition.hpp"
#include "io/csr_stream.hpp"
#include "storage/value_file.hpp"

namespace gpsa {

class ReadaheadScheduler {
 public:
  /// Both pointers must outlive the scheduler. A zero readahead window
  /// disables it entirely (advance() becomes a no-op).
  ReadaheadScheduler(const IoConfig& config, CsrEntryStream* csr,
                     ValueFile* values, Interval interval);

  /// Resets cursors to the interval start and primes the first window.
  void begin_superstep();

  /// Dispatcher cursor moved to `entry_cursor` (about to process `vertex`).
  void advance(std::uint64_t entry_cursor, VertexId vertex) {
    if (window_entries_ == 0) {
      return;
    }
    if (entry_cursor >= csr_trigger_) {
      advance_csr(entry_cursor);
    }
    if (vertex >= value_trigger_) {
      advance_values(vertex);
    }
  }

  /// Value-plane hint counters (the CSR plane's live in its stream).
  PrefetchCounters value_counters() const { return value_counters_; }

 private:
  void advance_csr(std::uint64_t entry_cursor);
  void advance_values(VertexId vertex);

  CsrEntryStream* const csr_;
  ValueFile* const values_;
  const Interval interval_;
  const std::uint64_t window_entries_;
  const std::uint64_t window_vertices_;
  const bool drop_behind_;

  std::uint64_t csr_trigger_ = 0;
  std::uint64_t csr_prefetched_ = 0;
  std::uint64_t value_trigger_ = 0;
  std::uint64_t value_prefetched_ = 0;
  PrefetchCounters value_counters_;
};

}  // namespace gpsa
