// Readahead scheduling for one dispatcher's interval scan.
//
// Watches the dispatcher's interval cursor and keeps a GPSA_READAHEAD_MB
// window of upcoming bytes resident ahead of it, on both planes:
//
//   CSR entries    will_need on the stream (madvise WILLNEED / pool pread
//                  / uring submit), plus drop-behind on the dispatched
//                  prefix — those entries are never re-read this superstep.
//   value columns  ValueFile::advise_vertex_range(kWillNeed) windows over
//                  the upcoming slot pairs. No drop-behind: the columns are
//                  interleaved per vertex, so pages behind the dispatch
//                  cursor still take update-column writes (DESIGN.md §9).
//
// The cursor check is O(1) per vertex (a trigger-point compare); hints are
// issued every half window, so each byte is requested ahead exactly once.
// Actor-friendly: owned and driven entirely by its dispatcher's thread,
// no locks, no shared state.
//
// Auto re-arm (GPSA_READAHEAD_AUTO=1, IoConfig::readahead_auto): at each
// superstep boundary the scheduler reads its stream's PrefetchCounters
// delta and re-arms the window from the measured hit rate — misses mean
// the window ran behind the cursor, so it doubles (up to 4x the
// configured size); an all-hit superstep means the window over-requests,
// so it halves (down to 1/4, never to zero). The mmap backend reports
// every fetch as a hit (the mapping is always resident), so auto mode
// converges to the floor there — the floor is what keeps that harmless.
#pragma once

#include <cstdint>

#include "graph/partition.hpp"
#include "io/csr_stream.hpp"
#include "storage/value_file.hpp"

namespace gpsa {

class ReadaheadScheduler {
 public:
  /// Both pointers must outlive the scheduler. A zero readahead window
  /// disables it entirely (advance() becomes a no-op).
  ReadaheadScheduler(const IoConfig& config, CsrEntryStream* csr,
                     ValueFile* values, Interval interval);

  /// Resets cursors to the interval start, re-arms the window from the
  /// previous superstep's measured hit rate (auto mode), and primes the
  /// first window.
  void begin_superstep();

  /// Dispatcher cursor moved to `entry_cursor` (about to process `vertex`).
  void advance(std::uint64_t entry_cursor, VertexId vertex) {
    if (window_entries_ == 0) {
      return;
    }
    if (entry_cursor >= csr_trigger_) {
      advance_csr(entry_cursor);
    }
    if (vertex >= value_trigger_) {
      advance_values(vertex);
    }
  }

  /// Value-plane hint counters (the CSR plane's live in its stream).
  PrefetchCounters value_counters() const { return value_counters_; }

  /// Current CSR window, in entries (tests observe the auto re-arm here).
  std::uint64_t window_entries() const { return window_entries_; }

 private:
  void advance_csr(std::uint64_t entry_cursor);
  void advance_values(VertexId vertex);
  void rearm_from_hit_rate();

  /// Auto re-arm thresholds: grow below 90% hits, shrink above 98%.
  static constexpr double kGrowBelowHitRate = 0.90;
  static constexpr double kShrinkAboveHitRate = 0.98;
  /// Bounds as multiples of the configured window: [base/4, base*4].
  static constexpr std::uint64_t kMaxScale = 4;

  CsrEntryStream* const csr_;
  ValueFile* const values_;
  const Interval interval_;
  const std::uint64_t base_window_entries_;
  const std::uint64_t base_window_vertices_;
  const bool drop_behind_;
  const bool auto_tune_;

  std::uint64_t window_entries_ = 0;
  std::uint64_t window_vertices_ = 0;
  std::uint64_t csr_trigger_ = 0;
  std::uint64_t csr_prefetched_ = 0;
  std::uint64_t value_trigger_ = 0;
  std::uint64_t value_prefetched_ = 0;
  /// Stream-counter snapshot at the last re-arm (per-superstep deltas).
  std::uint64_t last_window_hits_ = 0;
  std::uint64_t last_window_misses_ = 0;
  PrefetchCounters value_counters_;
};

}  // namespace gpsa
