#include "io/io_backend.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace gpsa {

// Implemented in the per-backend translation units.
Result<std::unique_ptr<IoBackend>> make_mmap_backend(const IoConfig& config);
Result<std::unique_ptr<IoBackend>> make_pread_backend(const IoConfig& config);
Result<std::unique_ptr<IoBackend>> make_uring_backend(const IoConfig& config);
bool uring_runtime_supported();

const char* io_backend_name(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kMmap:
      return "mmap";
    case IoBackendKind::kPread:
      return "pread";
    case IoBackendKind::kUring:
      return "uring";
  }
  return "unknown";
}

Result<IoBackendKind> parse_io_backend(std::string_view name) {
  if (name == "mmap") {
    return IoBackendKind::kMmap;
  }
  if (name == "pread") {
    return IoBackendKind::kPread;
  }
  if (name == "uring") {
    return IoBackendKind::kUring;
  }
  return invalid_argument("unknown I/O backend '" + std::string(name) +
                          "' (expected mmap|pread|uring)");
}

namespace {

/// Positive integer from the environment, or `fallback` when unset/bad.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    GPSA_LOG(Warn) << name << "='" << raw << "' is not a number; using "
                   << fallback;
    return fallback;
  }
  return parsed;
}

bool env_bool(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  const std::string_view v(raw);
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    return false;
  }
  return fallback;
}

}  // namespace

Result<IoConfig> IoOptions::resolve() const {
  IoConfig config;

  if (backend.has_value()) {
    config.backend = *backend;
  } else if (const char* env = std::getenv("GPSA_IO_BACKEND");
             env != nullptr && *env != '\0') {
    GPSA_ASSIGN_OR_RETURN(config.backend, parse_io_backend(env));
  }

  config.readahead_bytes =
      readahead_bytes.has_value()
          ? *readahead_bytes
          : static_cast<std::size_t>(env_u64("GPSA_READAHEAD_MB", 8)) << 20;
  config.drop_behind =
      drop_behind.has_value() ? *drop_behind
                              : env_bool("GPSA_IO_DROP_BEHIND", true);
  config.block_bytes =
      block_bytes.has_value()
          ? *block_bytes
          : static_cast<std::size_t>(env_u64("GPSA_IO_BLOCK_KB", 256)) << 10;
  config.io_threads = io_threads.has_value()
                          ? *io_threads
                          : static_cast<unsigned>(env_u64("GPSA_IO_THREADS", 2));
  config.readahead_auto = readahead_auto.has_value()
                              ? *readahead_auto
                              : env_bool("GPSA_READAHEAD_AUTO", false);
  config.cold_start = cold_start;

  if (config.block_bytes < (4u << 10)) {
    return invalid_argument("IoOptions: block_bytes must be >= 4 KiB");
  }
  if (config.io_threads == 0) {
    return invalid_argument("IoOptions: io_threads must be >= 1");
  }

  // The clean-fallback contract: a uring request on a build or kernel
  // without io_uring degrades to pread instead of failing the run.
  if (config.backend == IoBackendKind::kUring &&
      !IoBackend::supported(IoBackendKind::kUring)) {
    GPSA_LOG(Warn) << "io: uring backend unavailable "
                   << "(not compiled in or io_uring_setup refused); "
                   << "falling back to pread";
    config.backend = IoBackendKind::kPread;
  }
  return config;
}

Result<ValueFile> IoBackend::create_value_file(const std::string& path,
                                               VertexId num_vertices,
                                               const std::string& app_tag) {
  // The mmap data plane with kRandom advice is the shared default;
  // backends only differ in how the readahead plane keeps column windows
  // resident (readahead.hpp).
  return ValueFile::create(path, num_vertices, app_tag);
}

Result<ValueFile> IoBackend::open_value_file(const std::string& path) {
  return ValueFile::open(path);
}

bool IoBackend::supported(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kMmap:
    case IoBackendKind::kPread:
      return true;
    case IoBackendKind::kUring:
      return uring_runtime_supported();
  }
  return false;
}

Result<std::unique_ptr<IoBackend>> IoBackend::create(const IoConfig& config) {
  switch (config.backend) {
    case IoBackendKind::kMmap:
      return make_mmap_backend(config);
    case IoBackendKind::kPread:
      return make_pread_backend(config);
    case IoBackendKind::kUring:
      return make_uring_backend(config);
  }
  return invalid_argument("IoBackend::create: bad backend kind");
}

}  // namespace gpsa
