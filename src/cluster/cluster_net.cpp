// Socket data plane: rendezvous, transports, superstep barrier, value
// sync (protocol overview in cluster_net.hpp; bit-identity argument in
// node_state.hpp).
//
// Interleave safety: all cross-rank per-superstep state below is indexed
// by superstep parity (s % 2) and reset when consumed. That is race-free
// because the barrier orders supersteps two deep — a peer can only send
// superstep s+2 traffic after receiving release(s+1), which the
// coordinator only issues after every rank entered barrier s+1, which
// requires every rank to have consumed its parity slots for s. Frames on
// one TCP link arrive in send order, so a link's BATCH frames always
// precede its end-of-superstep marker, and a rank's Values always precede
// its SyncRequest on the rank-0 link.
//
// gpsa-lint: locked-notify
#include "cluster/cluster_net.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "actor/actor_system.hpp"
#include "cluster/node_state.hpp"
#include "core/message_pool.hpp"
#include "core/messages.hpp"
#include "core/ownership.hpp"
#include "graph/csr.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "net/wire_frame.hpp"
#include "storage/slot.hpp"
#include "storage/value_file.hpp"
#include "util/check.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace gpsa {

/// FNV-1a over the facts every rank must agree on before values can mix
/// (contract in cluster_net.hpp). Format and order are mixed as u64s so
/// e.g. a v2/degree rank and a v1/none rank abort at HELLO instead of
/// exchanging values keyed by different id spaces.
std::uint64_t cluster_graph_fingerprint(std::uint64_t num_vertices,
                                        std::uint64_t num_edges,
                                        std::uint32_t ranks,
                                        const std::string& program_name,
                                        CsrFormat format, CsrOrder order) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix_byte = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  auto mix_u64 = [&](std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      mix_byte(static_cast<std::uint8_t>((v >> shift) & 0xffu));
    }
  };
  mix_u64(num_vertices);
  mix_u64(num_edges);
  mix_u64(ranks);
  for (char c : program_name) {
    mix_byte(static_cast<std::uint8_t>(c));
  }
  mix_u64(static_cast<std::uint64_t>(format));
  mix_u64(static_cast<std::uint64_t>(order));
  return h;
}

namespace {

// Crash-injection state for the fork-based crash tests (plain global; set
// only in a freshly forked, single-threaded test child).
int g_net_crash_at_superstep = -1;

/// SyncRelease.superstep value of the rank-0 GO broadcast that opens
/// superstep 0 once the whole mesh is connected.
constexpr std::uint64_t kGoSentinel = ~std::uint64_t{0};

using ValueEntries = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

Result<std::uint64_t> parse_env_u64(const char* name, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    return invalid_argument(std::string(name) + ": invalid number '" + text +
                            "'");
  }
  return static_cast<std::uint64_t>(v);
}

struct Deadline {
  explicit Deadline(int timeout_ms)
      : at(std::chrono::steady_clock::now() +
           std::chrono::milliseconds(timeout_ms)) {}
  int remaining_ms() const {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at - std::chrono::steady_clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
  }
  std::chrono::steady_clock::time_point at;
};

/// Blocking read of one frame on the control thread (rendezvous only —
/// after bootstrap the poller owns all reads). Bytes read past the frame
/// stay buffered in `decoder`, which is later handed to the poller.
Result<Frame> read_frame_blocking(const Socket& socket, FrameDecoder& decoder,
                                  int timeout_ms) {
  Deadline deadline(timeout_ms);
  Frame frame;
  for (;;) {
    GPSA_ASSIGN_OR_RETURN(const bool ready, decoder.next(frame));
    if (ready) {
      return frame;
    }
    const int remaining = deadline.remaining_ms();
    if (remaining <= 0) {
      return io_error("timed out waiting for a handshake frame");
    }
    GPSA_ASSIGN_OR_RETURN(const bool readable,
                          wait_readable(socket, remaining));
    if (!readable) {
      return io_error("timed out waiting for a handshake frame");
    }
    std::uint8_t buf[4096];
    bool eof = false;
    GPSA_ASSIGN_OR_RETURN(const std::size_t got,
                          recv_nonblocking(socket, buf, sizeof(buf), eof));
    if (got > 0) {
      decoder.feed(buf, got);
    }
    if (eof && got == 0) {
      return failed_precondition("peer closed the connection mid-handshake");
    }
  }
}

/// Direct (non-actor) frame send, for the handshake and for aborting it.
Status send_frame_direct(const Socket& socket, std::uint16_t version,
                         FrameType type, std::uint16_t src_rank,
                         const std::vector<std::uint8_t>& payload,
                         int timeout_ms) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, version, type, src_rank, /*seq=*/0, payload.data(),
               payload.size());
  return send_all(socket, wire.data(), wire.size(), timeout_ms);
}

/// What the coordinator aggregates out of the peers' SyncRequests.
struct SyncAggregate {
  std::uint64_t messages = 0;
  std::uint64_t updates = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_frames = 0;
};

/// All cross-thread state of a rank's control loop: the inbound frame
/// handler (poller thread) and transport error callbacks (scheduler
/// workers) write it; the control thread consumes it under deadline-bound
/// waits. One mutex, notify under lock (locked-notify).
class ControlState {
 public:
  ControlState(std::uint32_t ranks, std::uint32_t self, MessageBatchPool* pool)
      : ranks_(ranks), self_(self), pool_(pool), peers_(ranks) {}

  void init_mirror(std::vector<Payload>&& initial) GPSA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    mirror_ = std::move(initial);
  }

  std::vector<Payload> take_mirror() GPSA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return std::move(mirror_);
  }

  /// Rank 0 folding its own updated values into the mirror.
  void apply_values_local(const ValueEntries& entries) GPSA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    apply_entries(entries);
    cv_.notify_all();
  }

  /// First error wins; every waiter observes it.
  void fail(Status status) GPSA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    fail_locked(std::move(status));
    cv_.notify_all();
  }

  /// InboundPoller frame handler (poller thread).
  void on_frame(std::uint32_t peer, Frame&& frame) GPSA_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    switch (frame.header.type) {
      case FrameType::kBatch:
        handle_batch(peer, frame);
        break;
      case FrameType::kEndOfSuperstep: {
        auto pl = EndOfSuperstepPayload::decode(frame.payload);
        if (!pl.is_ok()) {
          fail_locked(pl.status());
          break;
        }
        PeerSlot& slot = peers_[peer];
        const unsigned q = pl.value().superstep & 1;
        slot.eos[q] = true;
        slot.eos_payload[q] = pl.value();
        break;
      }
      case FrameType::kSyncRequest: {
        auto pl = SyncRequestPayload::decode(frame.payload);
        if (!pl.is_ok()) {
          fail_locked(pl.status());
          break;
        }
        const unsigned q = pl.value().superstep & 1;
        CoordSlot& slot = coord_[q];
        if (slot.count > 0 && slot.superstep != pl.value().superstep) {
          fail_locked(internal_error(
              "barrier protocol violation: SyncRequest for superstep " +
              std::to_string(pl.value().superstep) + " while aggregating " +
              std::to_string(slot.superstep)));
          break;
        }
        slot.superstep = pl.value().superstep;
        slot.count += 1;
        slot.agg.messages += pl.value().messages_sent;
        slot.agg.updates += pl.value().updates;
        slot.agg.wire_bytes += pl.value().wire_bytes;
        slot.agg.wire_frames += pl.value().wire_frames;
        break;
      }
      case FrameType::kSyncRelease: {
        auto pl = SyncReleasePayload::decode(frame.payload);
        if (!pl.is_ok()) {
          fail_locked(pl.status());
          break;
        }
        if (pl.value().superstep == kGoSentinel) {
          go_ = true;
          break;
        }
        const unsigned q = pl.value().superstep & 1;
        released_[q] = true;
        release_[q] = pl.value();
        break;
      }
      case FrameType::kValues: {
        auto pl = ValuesPayload::decode(frame.payload);
        if (!pl.is_ok()) {
          fail_locked(pl.status());
          break;
        }
        apply_entries(pl.value().entries);
        if (pl.value().final_sync != 0) {
          final_values_ += 1;
        }
        break;
      }
      case FrameType::kAbort:
        fail_locked(failed_precondition(
            "peer rank " + std::to_string(peer) + " aborted the run: " +
            std::string(frame.payload.begin(), frame.payload.end())));
        break;
      default:
        fail_locked(corrupt_data("unexpected " +
                                 std::string(frame_type_name(
                                     frame.header.type)) +
                                 " frame from rank " + std::to_string(peer) +
                                 " after the handshake"));
        break;
    }
    cv_.notify_all();
  }

  /// Waits for the rank-0 GO broadcast.
  Status wait_go(int timeout_ms) GPSA_EXCLUDES(mutex_) {
    Deadline deadline(timeout_ms);
    MutexLock lock(mutex_);
    for (;;) {
      if (go_) {
        return Status::ok();
      }
      if (!error_.is_ok()) {
        return error_;
      }
      const int remaining = deadline.remaining_ms();
      if (remaining <= 0) {
        return io_error("timed out waiting for the cluster GO broadcast");
      }
      cv_.wait_for_ms(lock, remaining);
    }
  }

  /// Waits until every peer's superstep-`superstep` traffic is complete
  /// (EOS received, frame and message counts matching), then moves the
  /// buffered batches into `out` and resets the parity slots.
  Status wait_superstep_inbound(std::uint64_t superstep, int timeout_ms,
                                std::vector<TaggedBatch>& out)
      GPSA_EXCLUDES(mutex_) {
    const unsigned q = superstep & 1;
    Deadline deadline(timeout_ms);
    MutexLock lock(mutex_);
    for (;;) {
      bool complete = true;
      for (std::uint32_t p = 0; p < ranks_ && complete; ++p) {
        if (p == self_) {
          continue;
        }
        const PeerSlot& slot = peers_[p];
        if (!slot.eos[q]) {
          complete = false;
        } else if (slot.eos_payload[q].superstep != superstep) {
          return internal_error(
              "superstep protocol violation: end-of-superstep " +
              std::to_string(slot.eos_payload[q].superstep) +
              " in the parity slot of " + std::to_string(superstep));
        } else if (slot.batches[q] != slot.eos_payload[q].batch_frames ||
                   slot.messages[q] != slot.eos_payload[q].messages) {
          complete = false;  // frames still in flight on that link
        }
      }
      if (complete) {
        break;
      }
      if (!error_.is_ok()) {
        return error_;
      }
      const int remaining = deadline.remaining_ms();
      if (remaining <= 0) {
        return io_error("timed out waiting for superstep " +
                        std::to_string(superstep) +
                        " traffic (peer dead or stalled?)");
      }
      cv_.wait_for_ms(lock, remaining);
    }
    for (std::uint32_t p = 0; p < ranks_; ++p) {
      if (p == self_) {
        continue;
      }
      PeerSlot& slot = peers_[p];
      for (TaggedBatch& batch : slot.pending[q]) {
        out.push_back(std::move(batch));
      }
      slot.pending[q].clear();
      slot.eos[q] = false;
      slot.batches[q] = 0;
      slot.messages[q] = 0;
    }
    return Status::ok();
  }

  /// Coordinator: waits for every peer's barrier entry for `superstep`,
  /// returns the aggregate, resets the parity slot.
  Status wait_sync_requests(std::uint64_t superstep, int timeout_ms,
                            SyncAggregate& out) GPSA_EXCLUDES(mutex_) {
    const unsigned q = superstep & 1;
    Deadline deadline(timeout_ms);
    MutexLock lock(mutex_);
    for (;;) {
      if (coord_[q].count == ranks_ - 1) {
        if (coord_[q].superstep != superstep) {
          return internal_error("barrier protocol violation: aggregated "
                                "superstep " +
                                std::to_string(coord_[q].superstep) +
                                " in the parity slot of " +
                                std::to_string(superstep));
        }
        break;
      }
      if (!error_.is_ok()) {
        return error_;
      }
      const int remaining = deadline.remaining_ms();
      if (remaining <= 0) {
        return io_error("timed out waiting for barrier entries of superstep " +
                        std::to_string(superstep) +
                        " (peer dead or stalled?)");
      }
      cv_.wait_for_ms(lock, remaining);
    }
    out = coord_[q].agg;
    coord_[q] = CoordSlot{};
    return Status::ok();
  }

  /// Non-coordinator: waits for the coordinator's release of `superstep`.
  Status wait_release(std::uint64_t superstep, int timeout_ms,
                      SyncReleasePayload& out) GPSA_EXCLUDES(mutex_) {
    const unsigned q = superstep & 1;
    Deadline deadline(timeout_ms);
    MutexLock lock(mutex_);
    for (;;) {
      if (released_[q] && release_[q].superstep == superstep) {
        break;
      }
      if (!error_.is_ok()) {
        return error_;
      }
      const int remaining = deadline.remaining_ms();
      if (remaining <= 0) {
        return io_error("timed out waiting for the barrier release of "
                        "superstep " +
                        std::to_string(superstep) + " (coordinator dead?)");
      }
      cv_.wait_for_ms(lock, remaining);
    }
    out = release_[q];
    released_[q] = false;
    return Status::ok();
  }

  /// Coordinator, final value sync: waits until every peer delivered its
  /// final_sync-marked Values frame.
  Status wait_final_values(int timeout_ms) GPSA_EXCLUDES(mutex_) {
    Deadline deadline(timeout_ms);
    MutexLock lock(mutex_);
    for (;;) {
      if (final_values_ == ranks_ - 1) {
        return Status::ok();
      }
      if (!error_.is_ok()) {
        return error_;
      }
      const int remaining = deadline.remaining_ms();
      if (remaining <= 0) {
        return io_error("timed out waiting for the final value sync");
      }
      cv_.wait_for_ms(lock, remaining);
    }
  }

 private:
  struct PeerSlot {
    bool eos[2] = {false, false};
    EndOfSuperstepPayload eos_payload[2];
    std::uint64_t batches[2] = {0, 0};
    std::uint64_t messages[2] = {0, 0};
    std::vector<TaggedBatch> pending[2];
  };
  struct CoordSlot {
    std::uint64_t superstep = 0;
    std::uint32_t count = 0;
    SyncAggregate agg;
  };

  void fail_locked(Status status) GPSA_REQUIRES(mutex_) {
    if (error_.is_ok()) {
      error_ = std::move(status);
    }
  }

  void handle_batch(std::uint32_t peer, const Frame& frame)
      GPSA_REQUIRES(mutex_) {
    if (frame.payload.size() < 8) {
      fail_locked(corrupt_data("BATCH frame without a superstep tag"));
      return;
    }
    const std::uint64_t superstep = get_u64(frame.payload.data());
    const unsigned q = superstep & 1;
    std::vector<VertexMessage> batch = pool_->lease();
    const Status decoded = decode_batch_into(
        frame.payload.data() + 8, frame.payload.size() - 8, batch);
    if (!decoded.is_ok()) {
      fail_locked(decoded);
      return;
    }
    PeerSlot& slot = peers_[peer];
    slot.batches[q] += 1;
    slot.messages[q] += batch.size();
    slot.pending[q].push_back(
        TaggedBatch{peer, frame.header.seq, std::move(batch)});
  }

  void apply_entries(const ValueEntries& entries) GPSA_REQUIRES(mutex_) {
    for (const auto& [vertex, payload] : entries) {
      if (vertex >= mirror_.size()) {
        fail_locked(corrupt_data("VALUES entry for vertex " +
                                 std::to_string(vertex) +
                                 " outside the graph"));
        return;
      }
      mirror_[vertex] = payload;
    }
  }

  const std::uint32_t ranks_;
  const std::uint32_t self_;
  MessageBatchPool* pool_;

  Mutex mutex_{"ClusterNet.control"};
  CondVar cv_;
  std::vector<PeerSlot> peers_ GPSA_GUARDED_BY(mutex_);  // [rank]; self unused
  CoordSlot coord_[2] GPSA_GUARDED_BY(mutex_);
  bool released_[2] GPSA_GUARDED_BY(mutex_) = {false, false};
  SyncReleasePayload release_[2] GPSA_GUARDED_BY(mutex_);
  bool go_ GPSA_GUARDED_BY(mutex_) = false;
  std::uint32_t final_values_ GPSA_GUARDED_BY(mutex_) = 0;
  std::vector<Payload> mirror_ GPSA_GUARDED_BY(mutex_);
  Status error_ GPSA_GUARDED_BY(mutex_);
};

/// One fully handshaken peer connection.
struct PeerLink {
  std::uint32_t rank = 0;
  Socket socket;
  std::uint16_t version = kWireVersionMax;
  /// Carries any bytes the handshake read past its frame (handed to the
  /// poller — see InboundPoller::Peer::decoder).
  FrameDecoder decoder;
};

Status abort_handshake(const Socket& socket, std::uint16_t rank,
                       int timeout_ms, const std::string& reason) {
  std::vector<std::uint8_t> payload(reason.begin(), reason.end());
  // Best-effort: the connection is being torn down either way.
  (void)send_frame_direct(socket, kWireVersionMax, FrameType::kAbort, rank,
                          payload, timeout_ms);
  return failed_precondition("handshake rejected: " + reason);
}

/// Bootstrap: connect to every lower rank, accept from every higher rank,
/// Hello/HelloAck on each link. Returns links indexed by peer rank (the
/// self slot left empty).
Result<std::vector<PeerLink>> run_rendezvous(const ClusterNetOptions& net,
                                             std::uint64_t fingerprint) {
  std::vector<PeerLink> links(net.ranks);
  Socket listener;
  if (net.rank + 1 < net.ranks) {
    GPSA_ASSIGN_OR_RETURN(
        listener,
        tcp_listen(static_cast<std::uint16_t>(net.base_port + net.rank)));
  }
  const auto self = static_cast<std::uint16_t>(net.rank);
  // Connector side (toward lower ranks): Hello, then wait for HelloAck.
  for (std::uint32_t p = 0; p < net.rank; ++p) {
    GPSA_ASSIGN_OR_RETURN(
        Socket socket,
        tcp_connect_retry(static_cast<std::uint16_t>(net.base_port + p),
                          net.timeout_ms));
    GPSA_RETURN_IF_ERROR(set_nodelay(socket));
    HelloPayload hello;
    hello.version_min = kWireVersionMin;
    hello.version_max = kWireVersionMax;
    hello.rank = net.rank;
    hello.ranks = net.ranks;
    hello.graph_fingerprint = fingerprint;
    GPSA_RETURN_IF_ERROR(send_frame_direct(socket, kWireVersionMax,
                                           FrameType::kHello, self,
                                           hello.encode(), net.timeout_ms));
    PeerLink link;
    link.rank = p;
    link.socket = std::move(socket);
    GPSA_ASSIGN_OR_RETURN(
        Frame frame,
        read_frame_blocking(link.socket, link.decoder, net.timeout_ms));
    if (frame.header.type == FrameType::kAbort) {
      return failed_precondition(
          "rank " + std::to_string(p) + " rejected the handshake: " +
          std::string(frame.payload.begin(), frame.payload.end()));
    }
    if (frame.header.type != FrameType::kHelloAck) {
      return corrupt_data("expected HelloAck from rank " + std::to_string(p) +
                          ", got " + frame_type_name(frame.header.type));
    }
    GPSA_ASSIGN_OR_RETURN(const HelloAckPayload ack,
                          HelloAckPayload::decode(frame.payload));
    if (ack.version < kWireVersionMin || ack.version > kWireVersionMax) {
      return failed_precondition("rank " + std::to_string(p) +
                                 " negotiated unsupported wire version " +
                                 std::to_string(ack.version));
    }
    link.version = ack.version;
    links[p] = std::move(link);
  }
  // Acceptor side (from higher ranks): validate Hello, reply HelloAck.
  const std::uint32_t expected = net.ranks - net.rank - 1;
  for (std::uint32_t i = 0; i < expected; ++i) {
    GPSA_ASSIGN_OR_RETURN(Socket socket,
                          tcp_accept(listener, net.timeout_ms));
    GPSA_RETURN_IF_ERROR(set_nodelay(socket));
    PeerLink link;
    link.socket = std::move(socket);
    GPSA_ASSIGN_OR_RETURN(
        Frame frame,
        read_frame_blocking(link.socket, link.decoder, net.timeout_ms));
    if (frame.header.type != FrameType::kHello) {
      return corrupt_data(std::string("expected Hello on an accepted "
                                      "connection, got ") +
                          frame_type_name(frame.header.type));
    }
    GPSA_ASSIGN_OR_RETURN(const HelloPayload hello,
                          HelloPayload::decode(frame.payload));
    if (hello.ranks != net.ranks) {
      return abort_handshake(link.socket, self, net.timeout_ms,
                             "cluster size mismatch: peer expects " +
                                 std::to_string(hello.ranks) + " ranks, not " +
                                 std::to_string(net.ranks));
    }
    if (hello.graph_fingerprint != fingerprint) {
      return abort_handshake(link.socket, self, net.timeout_ms,
                             "graph fingerprint mismatch (different dataset, "
                             "program, or partition?)");
    }
    if (hello.rank <= net.rank || hello.rank >= net.ranks) {
      return abort_handshake(
          link.socket, self, net.timeout_ms,
          "unexpected connector rank " + std::to_string(hello.rank));
    }
    if (links[hello.rank].socket.valid()) {
      return abort_handshake(
          link.socket, self, net.timeout_ms,
          "duplicate connection from rank " + std::to_string(hello.rank));
    }
    auto version = negotiate_version(kWireVersionMin, kWireVersionMax,
                                     hello.version_min, hello.version_max);
    if (!version.is_ok()) {
      return abort_handshake(link.socket, self, net.timeout_ms,
                             version.status().message());
    }
    link.rank = hello.rank;
    link.version = version.value();
    HelloAckPayload ack;
    ack.version = version.value();
    GPSA_RETURN_IF_ERROR(send_frame_direct(link.socket, version.value(),
                                           FrameType::kHelloAck, self,
                                           ack.encode(), net.timeout_ms));
    links[hello.rank] = std::move(link);
  }
  return links;
}

void send_control(TransportActor* transport, FrameType type,
                  std::vector<std::uint8_t> payload) {
  TransportMsg msg;
  msg.kind = TransportMsg::Kind::kControl;
  msg.type = type;
  msg.payload = std::move(payload);
  transport->send(std::move(msg));
}

/// Values frames toward rank 0, chunked under the frame payload cap. In
/// final mode the last chunk carries the final_sync marker (an empty
/// entry set still sends one marked frame, so the coordinator's count
/// works for ranks that updated nothing).
void send_values(TransportActor* transport, std::uint64_t superstep,
                 bool final_sync, const ValueEntries& entries) {
  constexpr std::size_t kMaxEntriesPerFrame = (kMaxFramePayload - 13) / 8;
  std::size_t i = 0;
  do {
    const std::size_t count =
        std::min(kMaxEntriesPerFrame, entries.size() - i);
    ValuesPayload payload;
    payload.superstep = superstep;
    payload.entries.assign(entries.begin() + static_cast<std::ptrdiff_t>(i),
                           entries.begin() +
                               static_cast<std::ptrdiff_t>(i + count));
    i += count;
    payload.final_sync = (final_sync && i >= entries.size()) ? 1 : 0;
    send_control(transport, FrameType::kValues, payload.encode());
  } while (i < entries.size());
}

/// Blocks until every frame queued on every transport has reached the
/// kernel (or a send failed). The wait is future-based so a wedged
/// transport surfaces as a clean timeout, not a hang.
Status fence_transports(const std::vector<TransportActor*>& transports,
                        int timeout_ms) {
  std::vector<std::future<Status>> fences;
  for (TransportActor* transport : transports) {
    if (transport == nullptr) {
      continue;
    }
    auto promise = std::make_shared<std::promise<Status>>();
    fences.push_back(promise->get_future());
    TransportMsg msg;
    msg.kind = TransportMsg::Kind::kFence;
    msg.fence = std::move(promise);
    transport->send(std::move(msg));
  }
  for (auto& fence : fences) {
    if (fence.wait_for(std::chrono::milliseconds(timeout_ms)) !=
        std::future_status::ready) {
      return io_error("transport fence timed out (send stalled?)");
    }
    GPSA_RETURN_IF_ERROR(fence.get());
  }
  return Status::ok();
}

/// (vertex, payload) pairs for every vertex this superstep updated: the
/// post-apply non-stale slots of the update column (the column was
/// all-stale entering the superstep — its slots were consumed by the
/// previous dispatch — so non-stale now means written this superstep).
ValueEntries updated_entries(const ClusterNodeState& state,
                             std::uint64_t superstep) {
  ValueEntries out;
  const unsigned column = ValueFile::update_column(superstep);
  for (VertexId v = state.begin; v < state.end; ++v) {
    const Slot slot = state.load(v, column);
    if (!slot_is_stale(slot)) {
      out.emplace_back(v, slot_payload(slot));
    }
  }
  return out;
}

/// (vertex, payload) pairs for the whole owned slice (final sync).
ValueEntries latest_entries(const ClusterNodeState& state) {
  ValueEntries out;
  out.reserve(state.end - state.begin);
  for (VertexId v = state.begin; v < state.end; ++v) {
    out.emplace_back(
        v, slot_payload(state.load(v, state.latest[v - state.begin])));
  }
  return out;
}

}  // namespace

Result<ClusterNetOptions> ClusterNetOptions::from_env() {
  const char* rank_env = std::getenv("GPSA_CLUSTER_RANK");
  const char* ranks_env = std::getenv("GPSA_CLUSTER_RANKS");
  if (rank_env == nullptr || ranks_env == nullptr) {
    return invalid_argument(
        "cluster mode needs both GPSA_CLUSTER_RANK and GPSA_CLUSTER_RANKS");
  }
  ClusterNetOptions net;
  GPSA_ASSIGN_OR_RETURN(const std::uint64_t rank,
                        parse_env_u64("GPSA_CLUSTER_RANK", rank_env));
  GPSA_ASSIGN_OR_RETURN(const std::uint64_t ranks,
                        parse_env_u64("GPSA_CLUSTER_RANKS", ranks_env));
  if (ranks == 0 || rank >= ranks) {
    return invalid_argument("GPSA_CLUSTER_RANK " + std::to_string(rank) +
                            " out of range for GPSA_CLUSTER_RANKS " +
                            std::to_string(ranks));
  }
  net.rank = static_cast<std::uint32_t>(rank);
  net.ranks = static_cast<std::uint32_t>(ranks);
  if (const char* port = std::getenv("GPSA_CLUSTER_PORT")) {
    GPSA_ASSIGN_OR_RETURN(const std::uint64_t value,
                          parse_env_u64("GPSA_CLUSTER_PORT", port));
    if (value == 0 || value > 65535) {
      return invalid_argument("GPSA_CLUSTER_PORT out of range: " +
                              std::to_string(value));
    }
    net.base_port = static_cast<std::uint16_t>(value);
  }
  if (net.base_port + static_cast<std::uint64_t>(net.ranks) > 65536) {
    return invalid_argument("GPSA_CLUSTER_PORT + GPSA_CLUSTER_RANKS exceeds "
                            "the port range");
  }
  if (const char* timeout = std::getenv("GPSA_NET_TIMEOUT_MS")) {
    GPSA_ASSIGN_OR_RETURN(const std::uint64_t value,
                          parse_env_u64("GPSA_NET_TIMEOUT_MS", timeout));
    if (value == 0 || value > 3600 * 1000) {
      return invalid_argument("GPSA_NET_TIMEOUT_MS out of range: " +
                              std::to_string(value));
    }
    net.timeout_ms = static_cast<int>(value);
  }
  if (const char* sync = std::getenv("GPSA_CLUSTER_VALUE_SYNC")) {
    const std::string v(sync);
    if (v == "final") {
      net.value_sync = ValueSync::kFinal;
    } else if (v == "superstep") {
      net.value_sync = ValueSync::kSuperstep;
    } else {
      return invalid_argument("GPSA_CLUSTER_VALUE_SYNC must be 'final' or "
                              "'superstep', got '" +
                              v + "'");
    }
  }
  if (const char* uring = std::getenv("GPSA_NET_URING")) {
    const std::string v(uring);
    net.use_uring = (v == "1" || v == "on" || v == "true");
  }
  return net;
}

Result<ClusterRunResult> run_cluster_rank(const EdgeList& graph,
                                          const Program& program,
                                          const ClusterOptions& options,
                                          const ClusterNetOptions& net) {
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return invalid_argument("run_cluster_rank: empty graph");
  }
  if (net.ranks == 0 || net.rank >= net.ranks) {
    return invalid_argument("run_cluster_rank: rank " +
                            std::to_string(net.rank) +
                            " out of range for ranks " +
                            std::to_string(net.ranks));
  }

  WallTimer timer;
  const Csr csr = Csr::from_edges(graph);
  std::vector<EdgeCount> degrees(n);
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = csr.out_degree(v);
  }
  const auto intervals =
      make_intervals_from_degrees(degrees, net.ranks, options.partition);
  if (intervals.size() != net.ranks) {
    return invalid_argument("run_cluster_rank: the partition produced " +
                            std::to_string(intervals.size()) +
                            " slices for " + std::to_string(net.ranks) +
                            " ranks (graph too small for the rank count?)");
  }
  const OwnerMap owners = OwnerMap::make_range_from_intervals(intervals);
  MessageBatchPool pool(options.message_batch);

  std::unique_ptr<IoBackend> backend;
  if (!options.value_store_dir.empty()) {
    GPSA_ASSIGN_OR_RETURN(const IoConfig io_config, options.io.resolve());
    GPSA_ASSIGN_OR_RETURN(backend, IoBackend::create(io_config));
    std::error_code ec;
    std::filesystem::create_directories(options.value_store_dir, ec);
    if (ec) {
      return io_error("run_cluster_rank: cannot create value store dir " +
                      options.value_store_dir + ": " + ec.message());
    }
  }

  const ExecMode exec = resolve_exec_mode(options.exec);
  ClusterNodeState state;
  if (backend != nullptr) {
    GPSA_RETURN_IF_ERROR(state.init_file_backed(
        *backend,
        options.value_store_dir + "/node" + std::to_string(net.rank) +
            ".values",
        intervals[net.rank].begin_vertex, intervals[net.rank].end_vertex,
        program, n));
  } else {
    state.init(intervals[net.rank].begin_vertex,
               intervals[net.rank].end_vertex, program, n);
  }
  state.prepare_exec(exec == ExecMode::kWorklist, program.delta_messages());

  std::uint64_t budget = program.max_supersteps();
  if (options.max_supersteps != 0) {
    budget = std::min(budget, options.max_supersteps);
  }

  // The cluster engine builds its CSR in memory, so the storage config
  // every rank runs under is whatever the environment resolves to.
  const std::uint64_t fingerprint = cluster_graph_fingerprint(
      n, graph.num_edges(), net.ranks, program.name(),
      resolve_csr_format(std::nullopt), resolve_csr_order(std::nullopt));
  GPSA_ASSIGN_OR_RETURN(std::vector<PeerLink> links,
                        run_rendezvous(net, fingerprint));

  ControlState ctrl(net.ranks, net.rank, &pool);
  if (net.rank == 0) {
    std::vector<Payload> mirror(n);
    for (VertexId v = 0; v < n; ++v) {
      mirror[v] = program.init(v, n).value;
    }
    ctrl.init_mirror(std::move(mirror));
  }

  WireMetrics metrics;
  // One scheduler worker per transport: a peer slow to drain must never
  // stall sends toward the others.
  ActorSystem system(std::max(1u, net.ranks - 1));
  std::vector<TransportActor*> transports(net.ranks, nullptr);
  for (std::uint32_t p = 0; p < net.ranks; ++p) {
    if (p == net.rank) {
      continue;
    }
    transports[p] = system.spawn<TransportActor>(
        static_cast<std::uint16_t>(net.rank), links[p].version,
        &links[p].socket, &pool, &metrics, net.timeout_ms, net.use_uring,
        [&ctrl, p](Status status) {
          ctrl.fail(failed_precondition(
              "send to peer rank " + std::to_string(p) + " failed: " +
              status.message()));
        });
  }

  std::vector<InboundPoller::Peer> poll_peers;
  for (std::uint32_t p = 0; p < net.ranks; ++p) {
    if (p == net.rank) {
      continue;
    }
    InboundPoller::Peer peer;
    peer.rank = p;
    peer.socket = &links[p].socket;
    peer.accept_version = links[p].version;
    peer.decoder = std::move(links[p].decoder);
    poll_peers.push_back(std::move(peer));
  }
  InboundPoller poller(
      std::move(poll_peers),
      [&ctrl](std::uint32_t peer, Frame&& frame) {
        ctrl.on_frame(peer, std::move(frame));
      },
      [&ctrl](std::uint32_t peer, Status status) {
        ctrl.fail(failed_precondition("peer rank " + std::to_string(peer) +
                                      " died: " + status.message()));
      });
  poller.start();

  // Any mid-run failure: tell the survivors why (best-effort), then tear
  // down. The fence bounds how long the abort frames may take to flush.
  auto abort_run = [&](Status status) -> Status {
    for (TransportActor* transport : transports) {
      if (transport != nullptr) {
        send_control(transport, FrameType::kAbort,
                     std::vector<std::uint8_t>(status.message().begin(),
                                               status.message().end()));
      }
    }
    (void)fence_transports(transports, net.timeout_ms);
    poller.stop();
    system.shutdown();
    return status;
  };

  // GO: rank 0's rendezvous finishing means every rank reached rank 0,
  // and a rank only proceeds once its own links are also up.
  if (net.rank == 0) {
    SyncReleasePayload go;
    go.superstep = kGoSentinel;
    for (std::uint32_t p = 1; p < net.ranks; ++p) {
      send_control(transports[p], FrameType::kSyncRelease, go.encode());
    }
  } else {
    const Status go = ctrl.wait_go(net.timeout_ms);
    if (!go.is_ok()) {
      return abort_run(go);
    }
  }

  NodeDispatchCore core(net.rank, state, csr, program, owners, pool,
                        options.message_batch);
  const bool superstep_sync =
      net.value_sync == ClusterNetOptions::ValueSync::kSuperstep;

  struct LoopOutcome {
    std::uint64_t supersteps = 0;
    std::uint64_t total_messages = 0;
    bool converged = false;
    std::uint64_t own_messages = 0;
    std::uint64_t own_received = 0;
    std::uint64_t remote_messages = 0;
    std::uint64_t remote_batches = 0;
    std::uint64_t bytes_on_wire = 0;
    std::uint64_t frames_sent = 0;
    std::vector<std::uint64_t> superstep_wire_bytes;
  };
  std::vector<TaggedBatch> local_pending;
  std::vector<std::uint64_t> batches_to(net.ranks, 0);
  std::vector<std::uint64_t> messages_to(net.ranks, 0);
  std::uint64_t prev_bytes = 0;
  std::uint64_t prev_frames = 0;

  auto run_loop = [&]() -> Result<LoopOutcome> {
    LoopOutcome out;
    if (budget == 0) {
      return out;  // every rank computes this identically — no barrier
    }
    for (std::uint64_t s = 0;; ++s) {
      std::fill(batches_to.begin(), batches_to.end(), std::uint64_t{0});
      std::fill(messages_to.begin(), messages_to.end(), std::uint64_t{0});
      local_pending.clear();
      const NodeDispatchCore::IterationStats stats = core.run_iteration(
          s, [&](unsigned dst, std::uint32_t seq,
                 std::vector<VertexMessage>&& batch) {
            if (dst == net.rank) {
              local_pending.push_back(
                  TaggedBatch{net.rank, seq, std::move(batch)});
              return;
            }
            batches_to[dst] += 1;
            messages_to[dst] += batch.size();
            TransportMsg msg;
            msg.kind = TransportMsg::Kind::kBatch;
            msg.superstep = s;
            msg.seq = seq;
            msg.batch = std::move(batch);
            transports[dst]->send(std::move(msg));
          });
      if (g_net_crash_at_superstep >= 0 &&
          static_cast<std::uint64_t>(g_net_crash_at_superstep) == s) {
        ::_exit(3);  // crash injection: die mid-superstep, before EOS
      }
      for (std::uint32_t p = 0; p < net.ranks; ++p) {
        if (p == net.rank) {
          continue;
        }
        EndOfSuperstepPayload eos;
        eos.superstep = s;
        eos.batch_frames = batches_to[p];
        eos.messages = messages_to[p];
        send_control(transports[p], FrameType::kEndOfSuperstep, eos.encode());
      }
      std::vector<TaggedBatch> inbound;
      GPSA_RETURN_IF_ERROR(
          ctrl.wait_superstep_inbound(s, net.timeout_ms, inbound));
      for (TaggedBatch& batch : local_pending) {
        inbound.push_back(std::move(batch));
      }
      local_pending.clear();
      for (const TaggedBatch& batch : inbound) {
        out.own_received += batch.batch.size();
      }
      const std::uint64_t updates =
          apply_tagged_batches(state, program, inbound, s, pool);
      if (superstep_sync) {
        const ValueEntries entries = updated_entries(state, s);
        if (net.rank == 0) {
          ctrl.apply_values_local(entries);
        } else if (!entries.empty()) {
          // Before the SyncRequest on the same link: the coordinator's
          // poller applies them to the mirror before counting the barrier
          // entry (per-link FIFO).
          send_values(transports[0], s, /*final_sync=*/false, entries);
        }
      }
      GPSA_RETURN_IF_ERROR(fence_transports(transports, net.timeout_ms));
      const std::uint64_t cur_bytes = metrics.bytes.load();
      const std::uint64_t cur_frames = metrics.frames.load();
      const std::uint64_t delta_bytes = cur_bytes - prev_bytes;
      const std::uint64_t delta_frames = cur_frames - prev_frames;
      prev_bytes = cur_bytes;
      prev_frames = cur_frames;
      out.own_messages += stats.messages;
      out.remote_messages += stats.remote_messages;
      out.remote_batches += stats.remote_batches;

      bool halt = false;
      bool converged = false;
      std::uint64_t total_messages = 0;
      std::uint64_t superstep_wire = 0;
      if (net.rank == 0) {
        SyncAggregate agg;
        if (net.ranks > 1) {
          GPSA_RETURN_IF_ERROR(
              ctrl.wait_sync_requests(s, net.timeout_ms, agg));
        }
        total_messages = agg.messages + stats.messages;
        superstep_wire = agg.wire_bytes + delta_bytes;
        out.frames_sent += agg.wire_frames + delta_frames;
        converged = (total_messages == 0);
        halt = converged || (s + 1 >= budget);
        SyncReleasePayload release;
        release.superstep = s;
        release.halt = halt ? 1 : 0;
        release.converged = converged ? 1 : 0;
        release.total_messages = total_messages;
        for (std::uint32_t p = 1; p < net.ranks; ++p) {
          send_control(transports[p], FrameType::kSyncRelease,
                       release.encode());
        }
      } else {
        SyncRequestPayload request;
        request.superstep = s;
        request.messages_sent = stats.messages;
        request.updates = updates;
        request.wire_bytes = delta_bytes;
        request.wire_frames = delta_frames;
        send_control(transports[0], FrameType::kSyncRequest,
                     request.encode());
        SyncReleasePayload release;
        GPSA_RETURN_IF_ERROR(ctrl.wait_release(s, net.timeout_ms, release));
        halt = release.halt != 0;
        converged = release.converged != 0;
        total_messages = release.total_messages;
        superstep_wire = delta_bytes;
        out.frames_sent += delta_frames;
      }
      out.superstep_wire_bytes.push_back(superstep_wire);
      out.bytes_on_wire += superstep_wire;
      out.total_messages += total_messages;
      out.supersteps = s + 1;
      if (halt) {
        out.converged = converged;
        break;
      }
    }
    return out;
  };

  auto loop_result = run_loop();
  if (!loop_result.is_ok()) {
    return abort_run(loop_result.status());
  }
  LoopOutcome outcome = std::move(loop_result).value();

  // Final value sync: the mirror catches up on everything the superstep
  // mode would have streamed (in superstep mode it is already current).
  if (!superstep_sync) {
    if (net.rank == 0) {
      ctrl.apply_values_local(latest_entries(state));
      if (net.ranks > 1) {
        const Status synced = ctrl.wait_final_values(net.timeout_ms);
        if (!synced.is_ok()) {
          return abort_run(synced);
        }
      }
    } else {
      send_values(transports[0], outcome.supersteps, /*final_sync=*/true,
                  latest_entries(state));
    }
  }

  // Quiesce: flush every queued frame, then account the post-barrier tail
  // (final values / last release) to the sender's own totals only.
  const Status quiesced = fence_transports(transports, net.timeout_ms);
  if (!quiesced.is_ok()) {
    return abort_run(quiesced);
  }
  outcome.bytes_on_wire += metrics.bytes.load() - prev_bytes;
  outcome.frames_sent += metrics.frames.load() - prev_frames;
  poller.stop();
  system.shutdown();

  ClusterRunResult result;
  result.supersteps = outcome.supersteps;
  result.total_messages = outcome.total_messages;
  result.remote_messages = outcome.remote_messages;
  result.remote_batches = outcome.remote_batches;
  result.converged = outcome.converged;
  result.elapsed_seconds = timer.elapsed_seconds();
  result.measured_wire = true;
  result.bytes_on_wire = outcome.bytes_on_wire;
  result.frames_sent = outcome.frames_sent;
  result.superstep_wire_bytes = std::move(outcome.superstep_wire_bytes);
  if (net.rank == 0) {
    result.values = ctrl.take_mirror();
  } else {
    result.values.assign(n, Payload{0});
    for (VertexId v = state.begin; v < state.end; ++v) {
      result.values[v] =
          slot_payload(state.load(v, state.latest[v - state.begin]));
    }
  }
  result.node_messages_sent.assign(net.ranks, 0);
  result.node_messages_received.assign(net.ranks, 0);
  result.node_messages_sent[net.rank] = outcome.own_messages;
  result.node_messages_received[net.rank] = outcome.own_received;
  const double bandwidth = options.net_bandwidth_mbps * 1024.0 * 1024.0;
  result.modeled_network_seconds =
      (bandwidth > 0.0 ? static_cast<double>(outcome.remote_messages *
                                             sizeof(VertexMessage)) /
                             bandwidth
                       : 0.0) +
      static_cast<double>(outcome.remote_batches) *
          options.net_latency_us_per_batch * 1e-6;

  if (state.file) {
    GPSA_RETURN_IF_ERROR(state.file->checkpoint(outcome.supersteps));
  }
  return result;
}

void set_cluster_net_crash_at_superstep(int superstep) {
  g_net_crash_at_superstep = superstep;
}

}  // namespace gpsa
