#include "cluster/cluster_engine.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <filesystem>
#include <future>
#include <limits>
#include <memory>
#include <optional>

#include "actor/actor_system.hpp"
#include "core/message_pool.hpp"
#include "core/messages.hpp"
#include "core/ownership.hpp"
#include "graph/csr.hpp"
#include "storage/active_bitmap.hpp"
#include "storage/slot.hpp"
#include "storage/value_file.hpp"
#include "util/check.hpp"
#include "util/thread.hpp"
#include "util/timer.hpp"

namespace gpsa {
namespace {

// Crash-injection state for the fork-based crash tests. Plain global: it
// is only ever set inside a freshly forked, single-threaded child.
int g_checkpoint_crash_after_flushes = -1;

/// One simulated node's vertex state: the same two-column slot protocol
/// as the single-machine value file, held in node-local memory — or, when
/// ClusterOptions::value_store_dir is set, in a real per-node value file
/// constructed through the I/O backend (slots indexed node-locally, so
/// each file covers exactly the node's slice as it would on a real node).
struct NodeState {
  VertexId begin = 0;
  VertexId end = 0;
  std::vector<Slot> columns[2];
  std::vector<std::uint8_t> latest;
  std::optional<ValueFile> file;
  /// Worklist mode: node-local active bitmap over [0, end-begin). The
  /// node's computer publishes activations (local index, update column's
  /// generation); the node's dispatcher drains and clears. Activation
  /// state never crosses nodes — the message itself carries it.
  std::optional<ActiveBitmap> worklist;
  /// Delta programs: per-local-vertex value as of its last dispatch
  /// (written only by this node's dispatcher). Empty otherwise.
  std::vector<Payload> last_sent;

  void init(VertexId begin_vertex, VertexId end_vertex,
            const Program& program, VertexId num_vertices) {
    begin = begin_vertex;
    end = end_vertex;
    const std::size_t size = end - begin;
    columns[0].resize(size);
    columns[1].resize(size);
    latest.assign(size, 0);
    for (VertexId v = begin; v < end; ++v) {
      const Program::InitialState st = program.init(v, num_vertices);
      columns[0][v - begin] = make_slot(st.value, !st.active);
      columns[1][v - begin] = make_slot(st.value, true);
    }
  }

  Status init_file_backed(IoBackend& backend, const std::string& path,
                          VertexId begin_vertex, VertexId end_vertex,
                          const Program& program, VertexId num_vertices) {
    begin = begin_vertex;
    end = end_vertex;
    const VertexId size = end - begin;
    latest.assign(size, 0);
    if (size == 0) {
      return Status::ok();  // nothing to own; keep the (empty) vectors
    }
    GPSA_ASSIGN_OR_RETURN(ValueFile f,
                          backend.create_value_file(path, size, program.name()));
    for (VertexId v = begin; v < end; ++v) {
      const Program::InitialState st = program.init(v, num_vertices);
      f.store(v - begin, 0, make_slot(st.value, !st.active));
      f.store(v - begin, 1, make_slot(st.value, true));
    }
    file.emplace(std::move(f));
    return Status::ok();
  }

  Slot load(VertexId v, unsigned column) const {
    if (file) {
      return file->load(v - begin, column);
    }
    return slot_load_relaxed(columns[column][v - begin]);
  }
  void store(VertexId v, unsigned column, Slot value) {
    if (file) {
      file->store(v - begin, column, value);
      return;
    }
    slot_store_relaxed(columns[column][v - begin], value);
  }
  Slot consume(VertexId v, unsigned column) {
    if (file) {
      return file->consume(v - begin, column);
    }
    return slot_consume_relaxed(columns[column][v - begin]);
  }
};

class ClusterManager;
class ClusterComputer;

// Node placement is the engine's OwnerMap in range mode
// (core/ownership.hpp) — the same contiguous-slice map the
// single-machine message plane routes with, here doubling as the
// per-node store layout (each node's value store covers exactly its
// owner slice, indexed by OwnerMap::local_index).

class ClusterComputer final : public Actor<ComputerMsg> {
 public:
  ClusterComputer(std::uint32_t node, NodeState& state, const Program& program,
                  MessageBatchPool& pool)
      : node_(node), state_(state), program_(program), pool_(pool) {}

  void connect(ClusterManager* manager) { manager_ = manager; }

  std::uint64_t received_total() const { return received_total_; }

 protected:
  void on_message(ComputerMsg msg) override;

 private:
  void apply(const VertexMessage& message, std::uint64_t superstep);

  const std::uint32_t node_;
  NodeState& state_;
  const Program& program_;
  MessageBatchPool& pool_;
  ClusterManager* manager_ = nullptr;
  std::uint64_t updates_this_superstep_ = 0;
  std::uint64_t received_total_ = 0;
};

class ClusterDispatcher final : public Actor<DispatcherMsg> {
 public:
  ClusterDispatcher(std::uint32_t node, NodeState& state, const Csr& graph,
                    const Program& program, const OwnerMap& owners,
                    MessageBatchPool& pool, std::size_t batch_size)
      : node_(node),
        state_(state),
        graph_(graph),
        program_(program),
        owners_(owners),
        pool_(pool),
        batch_size_(batch_size) {}

  void connect(std::vector<ClusterComputer*> computers,
               ClusterManager* manager) {
    computers_ = std::move(computers);
    manager_ = manager;
    // One-time setup of the empty per-node staging slots; the element
    // buffers circulate through the pool.
    staging_.resize(computers_.size());  // gpsa-lint: allow(msg-buffer-alloc)
    for (auto& buffer : staging_) {
      buffer = pool_.lease();
    }
  }

  std::uint64_t sent_total() const { return sent_total_; }
  std::uint64_t remote_messages() const { return remote_messages_; }
  std::uint64_t remote_batches() const { return remote_batches_; }

 protected:
  void on_message(DispatcherMsg msg) override;

 private:
  void run_iteration(std::uint64_t superstep);
  /// Generates and stages one active vertex's out-messages.
  void dispatch_vertex(VertexId v, Payload value, std::uint64_t superstep);
  void flush(std::size_t node, std::uint64_t superstep);

  const std::uint32_t node_;
  NodeState& state_;
  const Csr& graph_;
  const Program& program_;
  const OwnerMap& owners_;
  MessageBatchPool& pool_;
  const std::size_t batch_size_;
  std::vector<ClusterComputer*> computers_;
  ClusterManager* manager_ = nullptr;
  std::vector<std::vector<VertexMessage>> staging_;
  std::uint64_t messages_this_superstep_ = 0;
  std::uint64_t sent_total_ = 0;
  std::uint64_t remote_messages_ = 0;
  std::uint64_t remote_batches_ = 0;
};

class ClusterManager final : public Actor<ManagerMsg> {
 public:
  ClusterManager(std::uint64_t max_supersteps) : budget_(max_supersteps) {}

  void connect(std::vector<ClusterDispatcher*> dispatchers,
               std::vector<ClusterComputer*> computers) {
    dispatchers_ = std::move(dispatchers);
    computers_ = std::move(computers);
  }

  struct Outcome {
    std::uint64_t supersteps = 0;
    std::uint64_t total_messages = 0;
    bool converged = false;
  };
  std::future<Outcome> future() { return promise_.get_future(); }

  std::uint64_t superstep() const { return superstep_; }

 protected:
  void on_message(ManagerMsg msg) override {
    if (finished_) {
      return;
    }
    switch (msg.kind) {
      case ManagerMsg::Kind::kStartRun:
        // A zero budget means zero supersteps. Without this check the
        // first superstep would run before kComputeOver's budget test —
        // the off-by-one the single-machine manager already guards.
        if (budget_ == 0) {
          finish(/*converged=*/false);
          break;
        }
        start_superstep();
        break;
      case ManagerMsg::Kind::kDispatchOver:
        superstep_messages_ += msg.count;
        if (++dispatch_acks_ == dispatchers_.size()) {
          for (ClusterComputer* computer : computers_) {
            ComputerMsg over;
            over.kind = ComputerMsg::Kind::kComputeOver;
            over.superstep = superstep_;
            computer->send(std::move(over));
          }
        }
        break;
      case ManagerMsg::Kind::kComputeOver:
        if (++compute_acks_ == computers_.size()) {
          outcome_.total_messages += superstep_messages_;
          ++superstep_;
          ++outcome_.supersteps;
          if (superstep_messages_ == 0) {
            finish(/*converged=*/true);
          } else if (outcome_.supersteps >= budget_) {
            finish(/*converged=*/false);
          } else {
            start_superstep();
          }
        }
        break;
      case ManagerMsg::Kind::kWorkerFailed:
        finish(/*converged=*/false);
        break;
    }
  }

 private:
  void start_superstep() {
    dispatch_acks_ = 0;
    compute_acks_ = 0;
    superstep_messages_ = 0;
    DispatcherMsg start;
    start.kind = DispatcherMsg::Kind::kIterationStart;
    start.superstep = superstep_;
    for (ClusterDispatcher* dispatcher : dispatchers_) {
      dispatcher->send(start);
    }
  }

  void finish(bool converged) {
    finished_ = true;
    outcome_.converged = converged;
    DispatcherMsg over;
    over.kind = DispatcherMsg::Kind::kSystemOver;
    for (ClusterDispatcher* dispatcher : dispatchers_) {
      dispatcher->send(over);
    }
    for (ClusterComputer* computer : computers_) {
      ComputerMsg stop;
      stop.kind = ComputerMsg::Kind::kSystemOver;
      computer->send(std::move(stop));
    }
    promise_.set_value(outcome_);
  }

  const std::uint64_t budget_;
  std::vector<ClusterDispatcher*> dispatchers_;
  std::vector<ClusterComputer*> computers_;
  std::uint64_t superstep_ = 0;
  std::size_t dispatch_acks_ = 0;
  std::size_t compute_acks_ = 0;
  std::uint64_t superstep_messages_ = 0;
  Outcome outcome_;
  std::promise<Outcome> promise_;
  bool finished_ = false;
};

void ClusterComputer::on_message(ComputerMsg msg) {
  switch (msg.kind) {
    case ComputerMsg::Kind::kBatch:
      for (const VertexMessage& m : msg.batch) {
        apply(m, msg.superstep);
      }
      received_total_ += msg.batch.size();
      pool_.recycle(std::move(msg.batch));
      break;
    case ComputerMsg::Kind::kComputeOver: {
      ManagerMsg ack;
      ack.kind = ManagerMsg::Kind::kComputeOver;
      ack.superstep = msg.superstep;
      ack.worker_id = node_;
      ack.count = updates_this_superstep_;
      updates_this_superstep_ = 0;
      manager_->send(std::move(ack));
      break;
    }
    case ComputerMsg::Kind::kSystemOver:
      break;
  }
}

void ClusterComputer::apply(const VertexMessage& message,
                            std::uint64_t superstep) {
  const VertexId v = message.dst;
  GPSA_DCHECK(v >= state_.begin && v < state_.end);
  const unsigned update_col = ValueFile::update_column(superstep);
  const Slot current = state_.load(v, update_col);
  if (slot_is_stale(current)) {
    const Payload base =
        slot_payload(state_.load(v, state_.latest[v - state_.begin]));
    const Payload seed = program_.first_update(v, base);
    const Payload acc = program_.compute(seed, message.value);
    const bool updated = program_.changed(base, acc);
    state_.store(v, update_col, make_slot(updated ? acc : base, !updated));
    state_.latest[v - state_.begin] = static_cast<std::uint8_t>(update_col);
    if (updated) {
      ++updates_this_superstep_;
      // Bit and stale flag publish together (the same lock-step as the
      // single-machine ComputerActor::apply).
      if (state_.worklist.has_value()) {
        state_.worklist->set(v - state_.begin, update_col);
      }
    }
    return;
  }
  const Payload seed = slot_payload(current);
  const Payload acc = program_.compute(seed, message.value);
  if (acc != seed) {
    state_.store(v, update_col, make_slot(acc, /*stale=*/false));
  }
}

void ClusterDispatcher::on_message(DispatcherMsg msg) {
  switch (msg.kind) {
    case DispatcherMsg::Kind::kIterationStart:
      run_iteration(msg.superstep);
      break;
    case DispatcherMsg::Kind::kSystemOver:
      break;
  }
}

void ClusterDispatcher::run_iteration(std::uint64_t superstep) {
  messages_this_superstep_ = 0;
  const unsigned dispatch_col = ValueFile::dispatch_column(superstep);
  if (state_.worklist.has_value()) {
    // Worklist: only the set bits of the dispatch generation, O(active).
    ActiveBitmap& wl = *state_.worklist;
    const VertexId local_size = state_.end - state_.begin;
    if (local_size > 0) {
      const std::size_t last = ActiveBitmap::word_index(local_size - 1);
      for (std::size_t w = 0; w <= last; ++w) {
        BitmapWord bits = wl.word(dispatch_col, w) &
                          ActiveBitmap::range_mask(w, 0, local_size);
        while (bits != 0) {
          const unsigned bit =
              static_cast<unsigned>(std::countr_zero(bits));
          bits &= bits - 1;
          const VertexId v = state_.begin +
                             static_cast<VertexId>(w) * kBitmapWordBits + bit;
          const Slot slot = state_.load(v, dispatch_col);
          GPSA_DCHECK(!slot_is_stale(slot));
          dispatch_vertex(v, slot_payload(slot), superstep);
          state_.consume(v, dispatch_col);
        }
      }
      wl.clear_range(dispatch_col, 0, local_size);
    }
  } else {
    // Sweep: every owned vertex, skipping stale slots, O(local size).
    for (VertexId v = state_.begin; v < state_.end; ++v) {
      const Slot slot = state_.load(v, dispatch_col);
      if (slot_is_stale(slot)) {
        continue;
      }
      dispatch_vertex(v, slot_payload(slot), superstep);
      state_.consume(v, dispatch_col);
    }
  }
  for (std::size_t node = 0; node < staging_.size(); ++node) {
    flush(node, superstep);
  }
  sent_total_ += messages_this_superstep_;
  ManagerMsg done;
  done.kind = ManagerMsg::Kind::kDispatchOver;
  done.superstep = superstep;
  done.worker_id = node_;
  done.count = messages_this_superstep_;
  manager_->send(std::move(done));
}

void ClusterDispatcher::dispatch_vertex(VertexId v, Payload value,
                                        std::uint64_t superstep) {
  if (!state_.last_sent.empty()) {
    // Delta program: hand gen_msg the change since v's last dispatch, not
    // the absolute value (this dispatcher is the plane's single writer).
    const Payload current = value;
    value = program_.delta(current, state_.last_sent[v - state_.begin]);
    state_.last_sent[v - state_.begin] = current;
  }
  const auto degree = static_cast<std::uint32_t>(graph_.out_degree(v));
  for (VertexId dst : graph_.neighbors(v)) {
    const Payload message = program_.gen_msg(v, dst, value, degree);
    const unsigned owner = owners_.owner_of(dst);
    staging_[owner].push_back(VertexMessage{dst, message});
    ++messages_this_superstep_;
    if (owner != node_) {
      ++remote_messages_;
    }
    if (staging_[owner].size() >= batch_size_) {
      flush(owner, superstep);
    }
  }
}

void ClusterDispatcher::flush(std::size_t node, std::uint64_t superstep) {
  auto& buffer = staging_[node];
  if (buffer.empty()) {
    return;
  }
  if (node != node_) {
    ++remote_batches_;
  }
  ComputerMsg msg;
  msg.kind = ComputerMsg::Kind::kBatch;
  msg.superstep = superstep;
  msg.batch = std::move(buffer);
  buffer = pool_.lease();
  computers_[node]->send(std::move(msg));
}

}  // namespace

double ClusterRunResult::send_imbalance() const {
  if (node_messages_sent.empty()) {
    return 1.0;
  }
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (std::uint64_t m : node_messages_sent) {
    max = std::max(max, m);
    sum += m;
  }
  const double mean =
      static_cast<double>(sum) / static_cast<double>(node_messages_sent.size());
  return mean > 0.0 ? static_cast<double>(max) / mean : 1.0;
}

Result<ClusterRunResult> ClusterEngine::run(const EdgeList& graph,
                                            const Program& program,
                                            const ClusterOptions& options) {
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return invalid_argument("ClusterEngine: empty graph");
  }
  if (options.num_nodes == 0) {
    return invalid_argument("ClusterEngine: num_nodes must be >= 1");
  }

  const Csr csr = Csr::from_edges(graph);
  std::vector<EdgeCount> degrees(n);
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = csr.out_degree(v);
  }
  const auto intervals = make_intervals_from_degrees(
      degrees, options.num_nodes, options.partition);
  GPSA_CHECK(!intervals.empty());
  const OwnerMap owners = OwnerMap::make_range_from_intervals(intervals);
  const unsigned nodes = owners.parts();
  // Outlives the ActorSystem (message_pool.hpp lifetime note).
  MessageBatchPool pool(options.message_batch);

  std::unique_ptr<IoBackend> backend;
  if (!options.value_store_dir.empty()) {
    GPSA_ASSIGN_OR_RETURN(const IoConfig io_config, options.io.resolve());
    GPSA_ASSIGN_OR_RETURN(backend, IoBackend::create(io_config));
    std::error_code ec;
    std::filesystem::create_directories(options.value_store_dir, ec);
    if (ec) {
      return io_error("ClusterEngine: cannot create value store dir " +
                      options.value_store_dir + ": " + ec.message());
    }
  }

  const ExecMode exec = resolve_exec_mode(options.exec);
  std::vector<NodeState> states(nodes);
  for (unsigned node = 0; node < nodes; ++node) {
    if (backend != nullptr) {
      GPSA_RETURN_IF_ERROR(states[node].init_file_backed(
          *backend,
          options.value_store_dir + "/node" + std::to_string(node) + ".values",
          intervals[node].begin_vertex, intervals[node].end_vertex, program,
          n));
    } else {
      states[node].init(intervals[node].begin_vertex,
                        intervals[node].end_vertex, program, n);
    }
    NodeState& state = states[node];
    const VertexId local_size = state.end - state.begin;
    if (exec == ExecMode::kWorklist) {
      // Seed generation 0 (superstep 0's dispatch column) from the
      // freshly initialized stale flags.
      state.worklist.emplace(local_size);
      for (VertexId v = state.begin; v < state.end; ++v) {
        if (!slot_is_stale(state.load(v, 0))) {
          state.worklist->set(v - state.begin, 0);
        }
      }
    }
    if (program.delta_messages()) {
      state.last_sent.assign(local_size, Payload{0});
    }
  }

  std::uint64_t budget = program.max_supersteps();
  if (options.max_supersteps != 0) {
    budget = std::min(budget, options.max_supersteps);
  }

  const unsigned workers = options.scheduler_workers != 0
                               ? options.scheduler_workers
                               : default_worker_count();
  ActorSystem system(workers);
  std::vector<ClusterComputer*> computers;
  std::vector<ClusterDispatcher*> dispatchers;
  computers.reserve(nodes);
  dispatchers.reserve(nodes);
  for (unsigned node = 0; node < nodes; ++node) {
    computers.push_back(system.spawn<ClusterComputer>(
        node, std::ref(states[node]), std::cref(program), std::ref(pool)));
  }
  auto* manager = system.spawn<ClusterManager>(budget);
  for (unsigned node = 0; node < nodes; ++node) {
    dispatchers.push_back(system.spawn<ClusterDispatcher>(
        node, std::ref(states[node]), std::cref(csr), std::cref(program),
        std::cref(owners), std::ref(pool), options.message_batch));
    dispatchers.back()->connect(computers, manager);
    computers[node]->connect(manager);
  }
  manager->connect(dispatchers, computers);

  auto future = manager->future();
  WallTimer timer;
  ManagerMsg start;
  start.kind = ManagerMsg::Kind::kStartRun;
  manager->send(std::move(start));
  const ClusterManager::Outcome outcome = future.get();

  ClusterRunResult out;
  out.supersteps = outcome.supersteps;
  out.total_messages = outcome.total_messages;
  out.converged = outcome.converged;
  out.elapsed_seconds = timer.elapsed_seconds();
  out.values.resize(n);
  out.node_messages_sent.resize(nodes);
  out.node_messages_received.resize(nodes);
  for (unsigned node = 0; node < nodes; ++node) {
    const NodeState& state = states[node];
    for (VertexId v = state.begin; v < state.end; ++v) {
      out.values[v] =
          slot_payload(state.load(v, state.latest[v - state.begin]));
    }
    out.node_messages_sent[node] = dispatchers[node]->sent_total();
    out.node_messages_received[node] = computers[node]->received_total();
    out.remote_messages += dispatchers[node]->remote_messages();
    out.remote_batches += dispatchers[node]->remote_batches();
  }
  const double bandwidth =
      options.net_bandwidth_mbps * 1024.0 * 1024.0;
  out.modeled_network_seconds =
      (bandwidth > 0.0
           ? static_cast<double>(out.remote_messages * sizeof(VertexMessage)) /
                 bandwidth
           : 0.0) +
      static_cast<double>(out.remote_batches) *
          options.net_latency_us_per_batch * 1e-6;
  system.shutdown();

  // End-of-run checkpoint sweep: bump every node store's completed-
  // superstep header so a later validate/recover sees one consistent
  // cluster epoch. Each checkpoint is an independent flush, so a crash
  // mid-sweep leaves the headers disagreeing — validate_value_stores
  // detects exactly that.
  if (backend != nullptr) {
    int checkpoints_done = 0;
    for (unsigned node = 0; node < nodes; ++node) {
      if (!states[node].file) {
        continue;
      }
      if (g_checkpoint_crash_after_flushes >= 0 &&
          checkpoints_done++ == g_checkpoint_crash_after_flushes) {
        ::_exit(0);  // crash injection: die between per-node flushes
      }
      GPSA_RETURN_IF_ERROR(states[node].file->checkpoint(outcome.supersteps));
    }
  }
  return out;
}

void set_cluster_checkpoint_crash_after_flushes(int flushes) {
  g_checkpoint_crash_after_flushes = flushes;
}

Result<std::uint64_t> ClusterEngine::validate_value_stores(
    const std::string& dir, unsigned num_nodes,
    const std::string& expected_app_tag) {
  // Nodes with empty vertex slices create no file, so this full-set check
  // applies to runs where every node owned vertices — which the interval
  // partitioners guarantee whenever num_vertices >= num_nodes.
  std::uint64_t common = 0;
  bool have_common = false;
  for (unsigned node = 0; node < num_nodes; ++node) {
    const std::string path = dir + "/node" + std::to_string(node) + ".values";
    auto file = ValueFile::open(path);
    if (!file.is_ok()) {
      return corrupt_data("cluster store invalid: node " +
                          std::to_string(node) + " unreadable (" +
                          file.status().to_string() + ")");
    }
    if (file.value().app_tag() != expected_app_tag) {
      return corrupt_data("cluster store invalid: node " +
                          std::to_string(node) + " app tag '" +
                          file.value().app_tag() + "' != expected '" +
                          expected_app_tag + "'");
    }
    const std::uint64_t completed = file.value().completed_supersteps();
    if (!have_common) {
      common = completed;
      have_common = true;
    } else if (completed != common) {
      return corrupt_data("cluster store torn: node " + std::to_string(node) +
                          " completed " + std::to_string(completed) +
                          " supersteps but an earlier node completed " +
                          std::to_string(common) +
                          " (crash between per-node checkpoint flushes)");
    }
  }
  if (!have_common) {
    return corrupt_data("cluster store invalid: no node files under " + dir);
  }
  return common;
}

}  // namespace gpsa
