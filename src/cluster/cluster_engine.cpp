#include "cluster/cluster_engine.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <future>
#include <limits>
#include <memory>
#include <optional>

#include "actor/actor_system.hpp"
#include "cluster/node_state.hpp"
#include "core/message_pool.hpp"
#include "core/messages.hpp"
#include "core/ownership.hpp"
#include "graph/csr.hpp"
#include "storage/slot.hpp"
#include "storage/value_file.hpp"
#include "util/check.hpp"
#include "util/thread.hpp"
#include "util/timer.hpp"

namespace gpsa {
namespace {

// Crash-injection state for the fork-based crash tests. Plain global: it
// is only ever set inside a freshly forked, single-threaded child.
int g_checkpoint_crash_after_flushes = -1;

class ClusterManager;
class ClusterComputer;

// Node placement is the engine's OwnerMap in range mode
// (core/ownership.hpp) — the same contiguous-slice map the
// single-machine message plane routes with, here doubling as the
// per-node store layout (each node's value store covers exactly its
// owner slice, indexed by OwnerMap::local_index).
//
// The per-node state, dispatch loop, and apply order all live in
// cluster/node_state.hpp, shared with the socket data plane
// (cluster_net.cpp) — the sharing is what makes the two engines
// bit-identical and this simulation a usable oracle.

class ClusterComputer final : public Actor<ComputerMsg> {
 public:
  ClusterComputer(std::uint32_t node, ClusterNodeState& state,
                  const Program& program, MessageBatchPool& pool)
      : node_(node), state_(state), program_(program), pool_(pool) {}

  void connect(ClusterManager* manager) { manager_ = manager; }

  std::uint64_t received_total() const { return received_total_; }

 protected:
  void on_message(ComputerMsg msg) override;

 private:
  const std::uint32_t node_;
  ClusterNodeState& state_;
  const Program& program_;
  MessageBatchPool& pool_;
  ClusterManager* manager_ = nullptr;
  /// Batches buffered until the superstep boundary; applied in canonical
  /// (src_node, seq) order by apply_tagged_batches. Mailbox causality
  /// guarantees completeness: a dispatcher's batches are enqueued before
  /// its DISPATCH_OVER ack, which precedes the manager's COMPUTE_OVER.
  std::vector<TaggedBatch> pending_;
  std::uint64_t received_total_ = 0;
};

class ClusterDispatcher final : public Actor<DispatcherMsg> {
 public:
  ClusterDispatcher(std::uint32_t node, ClusterNodeState& state,
                    const Csr& graph, const Program& program,
                    const OwnerMap& owners, MessageBatchPool& pool,
                    std::size_t batch_size)
      : node_(node),
        core_(node, state, graph, program, owners, pool, batch_size) {}

  void connect(std::vector<ClusterComputer*> computers,
               ClusterManager* manager) {
    computers_ = std::move(computers);
    manager_ = manager;
  }

  std::uint64_t sent_total() const { return sent_total_; }
  std::uint64_t remote_messages() const { return remote_messages_; }
  std::uint64_t remote_batches() const { return remote_batches_; }

 protected:
  void on_message(DispatcherMsg msg) override;

 private:
  void run_iteration(std::uint64_t superstep);

  const std::uint32_t node_;
  NodeDispatchCore core_;
  std::vector<ClusterComputer*> computers_;
  ClusterManager* manager_ = nullptr;
  std::uint64_t sent_total_ = 0;
  std::uint64_t remote_messages_ = 0;
  std::uint64_t remote_batches_ = 0;
};

class ClusterManager final : public Actor<ManagerMsg> {
 public:
  ClusterManager(std::uint64_t max_supersteps) : budget_(max_supersteps) {}

  void connect(std::vector<ClusterDispatcher*> dispatchers,
               std::vector<ClusterComputer*> computers) {
    dispatchers_ = std::move(dispatchers);
    computers_ = std::move(computers);
  }

  struct Outcome {
    std::uint64_t supersteps = 0;
    std::uint64_t total_messages = 0;
    std::uint64_t wire_bytes = 0;
    std::uint64_t wire_frames = 0;
    std::vector<std::uint64_t> superstep_wire_bytes;
    bool converged = false;
  };
  std::future<Outcome> future() { return promise_.get_future(); }

  std::uint64_t superstep() const { return superstep_; }

 protected:
  void on_message(ManagerMsg msg) override {
    if (finished_) {
      return;
    }
    switch (msg.kind) {
      case ManagerMsg::Kind::kStartRun:
        // A zero budget means zero supersteps. Without this check the
        // first superstep would run before kComputeOver's budget test —
        // the off-by-one the single-machine manager already guards.
        if (budget_ == 0) {
          finish(/*converged=*/false);
          break;
        }
        start_superstep();
        break;
      case ManagerMsg::Kind::kDispatchOver:
        superstep_messages_ += msg.count;
        superstep_wire_ += msg.wire_bytes;
        superstep_frames_ += msg.wire_frames;
        if (++dispatch_acks_ == dispatchers_.size()) {
          for (ClusterComputer* computer : computers_) {
            ComputerMsg over;
            over.kind = ComputerMsg::Kind::kComputeOver;
            over.superstep = superstep_;
            computer->send(std::move(over));
          }
        }
        break;
      case ManagerMsg::Kind::kComputeOver:
        if (++compute_acks_ == computers_.size()) {
          outcome_.total_messages += superstep_messages_;
          outcome_.wire_bytes += superstep_wire_;
          outcome_.wire_frames += superstep_frames_;
          outcome_.superstep_wire_bytes.push_back(superstep_wire_);
          ++superstep_;
          ++outcome_.supersteps;
          if (superstep_messages_ == 0) {
            finish(/*converged=*/true);
          } else if (outcome_.supersteps >= budget_) {
            finish(/*converged=*/false);
          } else {
            start_superstep();
          }
        }
        break;
      case ManagerMsg::Kind::kWorkerFailed:
        finish(/*converged=*/false);
        break;
    }
  }

 private:
  void start_superstep() {
    dispatch_acks_ = 0;
    compute_acks_ = 0;
    superstep_messages_ = 0;
    superstep_wire_ = 0;
    superstep_frames_ = 0;
    DispatcherMsg start;
    start.kind = DispatcherMsg::Kind::kIterationStart;
    start.superstep = superstep_;
    for (ClusterDispatcher* dispatcher : dispatchers_) {
      dispatcher->send(start);
    }
  }

  void finish(bool converged) {
    finished_ = true;
    outcome_.converged = converged;
    DispatcherMsg over;
    over.kind = DispatcherMsg::Kind::kSystemOver;
    for (ClusterDispatcher* dispatcher : dispatchers_) {
      dispatcher->send(over);
    }
    for (ClusterComputer* computer : computers_) {
      ComputerMsg stop;
      stop.kind = ComputerMsg::Kind::kSystemOver;
      computer->send(std::move(stop));
    }
    promise_.set_value(outcome_);
  }

  const std::uint64_t budget_;
  std::vector<ClusterDispatcher*> dispatchers_;
  std::vector<ClusterComputer*> computers_;
  std::uint64_t superstep_ = 0;
  std::size_t dispatch_acks_ = 0;
  std::size_t compute_acks_ = 0;
  std::uint64_t superstep_messages_ = 0;
  std::uint64_t superstep_wire_ = 0;
  std::uint64_t superstep_frames_ = 0;
  Outcome outcome_;
  std::promise<Outcome> promise_;
  bool finished_ = false;
};

void ClusterComputer::on_message(ComputerMsg msg) {
  switch (msg.kind) {
    case ComputerMsg::Kind::kBatch:
      received_total_ += msg.batch.size();
      pending_.push_back(
          TaggedBatch{msg.src_node, msg.seq, std::move(msg.batch)});
      break;
    case ComputerMsg::Kind::kComputeOver: {
      const std::uint64_t updates = apply_tagged_batches(
          state_, program_, pending_, msg.superstep, pool_);
      ManagerMsg ack;
      ack.kind = ManagerMsg::Kind::kComputeOver;
      ack.superstep = msg.superstep;
      ack.worker_id = node_;
      ack.count = updates;
      manager_->send(std::move(ack));
      break;
    }
    case ComputerMsg::Kind::kSystemOver:
      break;
  }
}

void ClusterDispatcher::on_message(DispatcherMsg msg) {
  switch (msg.kind) {
    case DispatcherMsg::Kind::kIterationStart:
      run_iteration(msg.superstep);
      break;
    case DispatcherMsg::Kind::kSystemOver:
      break;
  }
}

void ClusterDispatcher::run_iteration(std::uint64_t superstep) {
  const NodeDispatchCore::IterationStats stats = core_.run_iteration(
      superstep,
      [&](unsigned dst, std::uint32_t seq, std::vector<VertexMessage>&& batch) {
        ComputerMsg msg;
        msg.kind = ComputerMsg::Kind::kBatch;
        msg.superstep = superstep;
        msg.src_node = node_;
        msg.seq = seq;
        msg.batch = std::move(batch);
        computers_[dst]->send(std::move(msg));
      });
  sent_total_ += stats.messages;
  remote_messages_ += stats.remote_messages;
  remote_batches_ += stats.remote_batches;
  ManagerMsg done;
  done.kind = ManagerMsg::Kind::kDispatchOver;
  done.superstep = superstep;
  done.worker_id = node_;
  done.count = stats.messages;
  done.wire_bytes = stats.remote_wire_bytes;
  done.wire_frames = stats.remote_batches;
  manager_->send(std::move(done));
}

}  // namespace

double ClusterRunResult::send_imbalance() const {
  if (node_messages_sent.empty()) {
    return 1.0;
  }
  std::uint64_t max = 0;
  std::uint64_t sum = 0;
  for (std::uint64_t m : node_messages_sent) {
    max = std::max(max, m);
    sum += m;
  }
  const double mean =
      static_cast<double>(sum) / static_cast<double>(node_messages_sent.size());
  return mean > 0.0 ? static_cast<double>(max) / mean : 1.0;
}

Result<ClusterRunResult> ClusterEngine::run(const EdgeList& graph,
                                            const Program& program,
                                            const ClusterOptions& options) {
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return invalid_argument("ClusterEngine: empty graph");
  }
  if (options.num_nodes == 0) {
    return invalid_argument("ClusterEngine: num_nodes must be >= 1");
  }

  const Csr csr = Csr::from_edges(graph);
  std::vector<EdgeCount> degrees(n);
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = csr.out_degree(v);
  }
  const auto intervals = make_intervals_from_degrees(
      degrees, options.num_nodes, options.partition);
  GPSA_CHECK(!intervals.empty());
  const OwnerMap owners = OwnerMap::make_range_from_intervals(intervals);
  const unsigned nodes = owners.parts();
  // Outlives the ActorSystem (message_pool.hpp lifetime note).
  MessageBatchPool pool(options.message_batch);

  std::unique_ptr<IoBackend> backend;
  if (!options.value_store_dir.empty()) {
    GPSA_ASSIGN_OR_RETURN(const IoConfig io_config, options.io.resolve());
    GPSA_ASSIGN_OR_RETURN(backend, IoBackend::create(io_config));
    std::error_code ec;
    std::filesystem::create_directories(options.value_store_dir, ec);
    if (ec) {
      return io_error("ClusterEngine: cannot create value store dir " +
                      options.value_store_dir + ": " + ec.message());
    }
  }

  const ExecMode exec = resolve_exec_mode(options.exec);
  std::vector<ClusterNodeState> states(nodes);
  for (unsigned node = 0; node < nodes; ++node) {
    if (backend != nullptr) {
      GPSA_RETURN_IF_ERROR(states[node].init_file_backed(
          *backend,
          options.value_store_dir + "/node" + std::to_string(node) + ".values",
          intervals[node].begin_vertex, intervals[node].end_vertex, program,
          n));
    } else {
      states[node].init(intervals[node].begin_vertex,
                        intervals[node].end_vertex, program, n);
    }
    states[node].prepare_exec(exec == ExecMode::kWorklist,
                              program.delta_messages());
  }

  std::uint64_t budget = program.max_supersteps();
  if (options.max_supersteps != 0) {
    budget = std::min(budget, options.max_supersteps);
  }

  const unsigned workers = options.scheduler_workers != 0
                               ? options.scheduler_workers
                               : default_worker_count();
  ActorSystem system(workers);
  std::vector<ClusterComputer*> computers;
  std::vector<ClusterDispatcher*> dispatchers;
  computers.reserve(nodes);
  dispatchers.reserve(nodes);
  for (unsigned node = 0; node < nodes; ++node) {
    computers.push_back(system.spawn<ClusterComputer>(
        node, std::ref(states[node]), std::cref(program), std::ref(pool)));
  }
  auto* manager = system.spawn<ClusterManager>(budget);
  for (unsigned node = 0; node < nodes; ++node) {
    dispatchers.push_back(system.spawn<ClusterDispatcher>(
        node, std::ref(states[node]), std::cref(csr), std::cref(program),
        std::cref(owners), std::ref(pool), options.message_batch));
    dispatchers.back()->connect(computers, manager);
    computers[node]->connect(manager);
  }
  manager->connect(dispatchers, computers);

  auto future = manager->future();
  WallTimer timer;
  ManagerMsg start;
  start.kind = ManagerMsg::Kind::kStartRun;
  manager->send(std::move(start));
  const ClusterManager::Outcome outcome = future.get();

  ClusterRunResult out;
  out.supersteps = outcome.supersteps;
  out.total_messages = outcome.total_messages;
  out.converged = outcome.converged;
  out.elapsed_seconds = timer.elapsed_seconds();
  out.measured_wire = false;
  out.bytes_on_wire = outcome.wire_bytes;
  out.frames_sent = outcome.wire_frames;
  out.superstep_wire_bytes = outcome.superstep_wire_bytes;
  out.values.resize(n);
  out.node_messages_sent.resize(nodes);
  out.node_messages_received.resize(nodes);
  for (unsigned node = 0; node < nodes; ++node) {
    const ClusterNodeState& state = states[node];
    for (VertexId v = state.begin; v < state.end; ++v) {
      out.values[v] =
          slot_payload(state.load(v, state.latest[v - state.begin]));
    }
    out.node_messages_sent[node] = dispatchers[node]->sent_total();
    out.node_messages_received[node] = computers[node]->received_total();
    out.remote_messages += dispatchers[node]->remote_messages();
    out.remote_batches += dispatchers[node]->remote_batches();
  }
  const double bandwidth =
      options.net_bandwidth_mbps * 1024.0 * 1024.0;
  out.modeled_network_seconds =
      (bandwidth > 0.0
           ? static_cast<double>(out.remote_messages * sizeof(VertexMessage)) /
                 bandwidth
           : 0.0) +
      static_cast<double>(out.remote_batches) *
          options.net_latency_us_per_batch * 1e-6;
  system.shutdown();

  // End-of-run checkpoint sweep: bump every node store's completed-
  // superstep header so a later validate/recover sees one consistent
  // cluster epoch. Each checkpoint is an independent flush, so a crash
  // mid-sweep leaves the headers disagreeing — validate_value_stores
  // detects exactly that.
  if (backend != nullptr) {
    int checkpoints_done = 0;
    for (unsigned node = 0; node < nodes; ++node) {
      if (!states[node].file) {
        continue;
      }
      if (g_checkpoint_crash_after_flushes >= 0 &&
          checkpoints_done++ == g_checkpoint_crash_after_flushes) {
        ::_exit(0);  // crash injection: die between per-node flushes
      }
      GPSA_RETURN_IF_ERROR(states[node].file->checkpoint(outcome.supersteps));
    }
  }
  return out;
}

void set_cluster_checkpoint_crash_after_flushes(int flushes) {
  g_checkpoint_crash_after_flushes = flushes;
}

Result<std::uint64_t> ClusterEngine::validate_value_stores(
    const std::string& dir, unsigned num_nodes,
    const std::string& expected_app_tag) {
  // Nodes with empty vertex slices create no file, so this full-set check
  // applies to runs where every node owned vertices — which the interval
  // partitioners guarantee whenever num_vertices >= num_nodes.
  std::uint64_t common = 0;
  bool have_common = false;
  for (unsigned node = 0; node < num_nodes; ++node) {
    const std::string path = dir + "/node" + std::to_string(node) + ".values";
    auto file = ValueFile::open(path);
    if (!file.is_ok()) {
      return corrupt_data("cluster store invalid: node " +
                          std::to_string(node) + " unreadable (" +
                          file.status().to_string() + ")");
    }
    if (file.value().app_tag() != expected_app_tag) {
      return corrupt_data("cluster store invalid: node " +
                          std::to_string(node) + " app tag '" +
                          file.value().app_tag() + "' != expected '" +
                          expected_app_tag + "'");
    }
    const std::uint64_t completed = file.value().completed_supersteps();
    if (!have_common) {
      common = completed;
      have_common = true;
    } else if (completed != common) {
      return corrupt_data("cluster store torn: node " + std::to_string(node) +
                          " completed " + std::to_string(completed) +
                          " supersteps but an earlier node completed " +
                          std::to_string(common) +
                          " (crash between per-node checkpoint flushes)");
    }
  }
  if (!have_common) {
    return corrupt_data("cluster store invalid: no node files under " + dir);
  }
  return common;
}

}  // namespace gpsa
