// Multi-process cluster engine over real sockets (DESIGN.md §14).
//
// run_cluster_rank() is ClusterEngine::run's distributed twin: N real
// processes, one per rank, connected pairwise over localhost TCP. Every
// process loads the same graph, partitions it identically, and runs the
// shared per-node compute core (cluster/node_state.hpp) over its own
// vertex slice; remote batches travel as wire frames through one
// transport actor per peer, and supersteps close with a coordinator
// barrier at rank 0. Because dispatch order, batch boundaries, and the
// canonical (src_node, seq) apply order are shared with the in-process
// simulation, the per-rank value stores come out bit-identical to the
// simulation's — the single-process run is the correctness oracle the
// multi-process tests diff against, byte for byte.
//
// Bootstrap is rendezvous by rank: rank k listens on base_port + k and
// accepts one connection from every higher rank; higher ranks connect to
// all lower ranks (retrying until the peer's listener exists). The
// connector opens with a Hello carrying its version range, rank topology,
// and a graph fingerprint; the acceptor validates, negotiates the highest
// common version, and replies HelloAck. Rank 0 broadcasts a GO release
// once all of its links are up.
//
// Environment (mirrored by ClusterNetOptions::from_env):
//   GPSA_CLUSTER_RANK        this process's rank            [required]
//   GPSA_CLUSTER_RANKS       total process count            [required]
//   GPSA_CLUSTER_PORT        rendezvous base port           [29600]
//   GPSA_CLUSTER_VALUE_SYNC  final | superstep              [final]
//   GPSA_NET_TIMEOUT_MS      peer-death / barrier deadline  [30000]
//   GPSA_NET_URING           opt into the io_uring send path [off]
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cluster/cluster_engine.hpp"
#include "graph/csr_v2.hpp"

namespace gpsa {

/// The rendezvous fingerprint every rank must agree on before values can
/// mix: |V|, |E|, the rank count (fixes the partition), the program name,
/// and the CSR storage configuration (format + vertex order — a rank
/// renumbered under GPSA_CSR_ORDER=degree partitions a different id
/// space, so mixing its values with an unrenumbered rank's would be
/// silent corruption). Exposed so tests can assert that mismatched
/// configurations produce unequal fingerprints.
std::uint64_t cluster_graph_fingerprint(std::uint64_t num_vertices,
                                        std::uint64_t num_edges,
                                        std::uint32_t ranks,
                                        const std::string& program_name,
                                        CsrFormat format, CsrOrder order);

struct ClusterNetOptions {
  std::uint32_t rank = 0;
  std::uint32_t ranks = 1;
  /// Rank k's listener binds 127.0.0.1:(base_port + k).
  std::uint16_t base_port = 29600;
  /// Deadline on every network wait: rendezvous, barrier entry, peer
  /// frames. A peer silent past this is declared dead and the run errors
  /// out cleanly instead of hanging.
  int timeout_ms = 30000;
  /// When a rank's updated values reach the rank-0 mirror: once after
  /// halt (kFinal, the default — one bulk sync) or at every superstep
  /// boundary (kSuperstep — rank 0's mirror tracks the cluster live, the
  /// delta-sync mode).
  enum class ValueSync : std::uint8_t { kFinal, kSuperstep };
  ValueSync value_sync = ValueSync::kFinal;
  /// Route sends through the io_uring path when the build has it
  /// (GPSA_NET_URING; runtime-probed, silently falls back to sendmsg).
  bool use_uring = false;

  /// Builds options from the GPSA_CLUSTER_* / GPSA_NET_* environment.
  /// Errors when GPSA_CLUSTER_RANK / GPSA_CLUSTER_RANKS are missing or
  /// inconsistent (rank >= ranks, ranks == 0).
  static Result<ClusterNetOptions> from_env();
};

/// Runs this process's rank of a multi-process cluster execution.
/// `options.num_nodes` is ignored — the partition count is net.ranks, one
/// node per process. Returns once the cluster halts (converged or budget)
/// with this rank's view of the result:
///   - values: rank 0 holds the full, bit-exact value vector (mirror fed
///     by value sync); other ranks fill only their own slice.
///   - wire metrics: measured at the transports (measured_wire = true).
///     Rank 0 reports cluster-wide totals and the per-superstep series
///     aggregated through the barrier; other ranks report their own
///     share. Bytes sent after the last barrier (the final value sync)
///     are counted only in each sender's own totals.
/// Any peer dying mid-run surfaces as a clean error within
/// net.timeout_ms — never a hang.
Result<ClusterRunResult> run_cluster_rank(const EdgeList& graph,
                                          const Program& program,
                                          const ClusterOptions& options,
                                          const ClusterNetOptions& net);

/// Test-only crash injection (the fork-based crash suite): the rank
/// _exit()s mid-superstep — after dispatching, before announcing
/// end-of-superstep — leaving peers to detect the death. Negative
/// disables (the default). Only ever set in a test child process.
void set_cluster_net_crash_at_superstep(int superstep);

}  // namespace gpsa
