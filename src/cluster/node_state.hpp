// The per-node compute core shared by both cluster engines
// (DESIGN.md §14).
//
// ClusterEngine::run (the in-process simulation) and
// run_cluster_rank (the socket data plane) must produce
// bit-identical value columns — the simulation is the oracle the
// multi-process tests diff against, byte for byte, including
// order-sensitive float programs like PageRank. That only works if both
// engines share, by construction:
//
//   1. the node state itself (ClusterNodeState): the two-column slot
//      protocol, worklist bitmap, and delta-dispatch memory;
//   2. the dispatch loop (NodeDispatchCore): identical vertex visit
//      order, identical batch boundaries, and a per-destination sequence
//      number stamped on every flushed batch;
//   3. the apply order: batches are buffered per superstep and applied
//      sorted by (source node, sequence) — apply_tagged_batches — so the
//      nondeterministic arrival order (mailbox interleaving in-process,
//      TCP timing across processes) never reaches the float accumulator.
//
// The engines differ only in how a flushed batch travels: a mailbox send
// in-process, a BATCH wire frame across ranks.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/message_pool.hpp"
#include "core/messages.hpp"
#include "core/ownership.hpp"
#include "core/program.hpp"
#include "graph/csr.hpp"
#include "io/io_backend.hpp"
#include "net/wire_frame.hpp"
#include "storage/active_bitmap.hpp"
#include "storage/slot.hpp"
#include "storage/value_file.hpp"
#include "util/check.hpp"

namespace gpsa {

/// One node's vertex state: the same two-column slot protocol as the
/// single-machine value file, held in node-local memory — or, when a
/// value-store directory is configured, in a real per-node value file
/// constructed through the I/O backend (slots indexed node-locally, so
/// each file covers exactly the node's slice as it would on a real node).
struct ClusterNodeState {
  VertexId begin = 0;
  VertexId end = 0;
  std::vector<Slot> columns[2];
  std::vector<std::uint8_t> latest;
  std::optional<ValueFile> file;
  /// Worklist mode: node-local active bitmap over [0, end-begin). The
  /// node's computer publishes activations (local index, update column's
  /// generation); the node's dispatcher drains and clears. Activation
  /// state never crosses nodes — the message itself carries it.
  std::optional<ActiveBitmap> worklist;
  /// Delta programs: per-local-vertex value as of its last dispatch
  /// (written only by this node's dispatcher). Empty otherwise.
  std::vector<Payload> last_sent;

  void init(VertexId begin_vertex, VertexId end_vertex,
            const Program& program, VertexId num_vertices) {
    begin = begin_vertex;
    end = end_vertex;
    const std::size_t size = end - begin;
    columns[0].resize(size);
    columns[1].resize(size);
    latest.assign(size, 0);
    for (VertexId v = begin; v < end; ++v) {
      const Program::InitialState st = program.init(v, num_vertices);
      columns[0][v - begin] = make_slot(st.value, !st.active);
      columns[1][v - begin] = make_slot(st.value, true);
    }
  }

  Status init_file_backed(IoBackend& backend, const std::string& path,
                          VertexId begin_vertex, VertexId end_vertex,
                          const Program& program, VertexId num_vertices) {
    begin = begin_vertex;
    end = end_vertex;
    const VertexId size = end - begin;
    latest.assign(size, 0);
    if (size == 0) {
      return Status::ok();  // nothing to own; keep the (empty) vectors
    }
    GPSA_ASSIGN_OR_RETURN(ValueFile f,
                          backend.create_value_file(path, size, program.name()));
    for (VertexId v = begin; v < end; ++v) {
      const Program::InitialState st = program.init(v, num_vertices);
      f.store(v - begin, 0, make_slot(st.value, !st.active));
      f.store(v - begin, 1, make_slot(st.value, true));
    }
    file.emplace(std::move(f));
    return Status::ok();
  }

  /// Seeds the worklist / delta memory after init, mirroring the engine
  /// front-ends (generation 0 = superstep 0's dispatch column).
  void prepare_exec(bool worklist_mode, bool delta_messages) {
    const VertexId local_size = end - begin;
    if (worklist_mode) {
      worklist.emplace(local_size);
      for (VertexId v = begin; v < end; ++v) {
        if (!slot_is_stale(load(v, 0))) {
          worklist->set(v - begin, 0);
        }
      }
    }
    if (delta_messages) {
      last_sent.assign(local_size, Payload{0});
    }
  }

  Slot load(VertexId v, unsigned column) const {
    if (file) {
      return file->load(v - begin, column);
    }
    return slot_load_relaxed(columns[column][v - begin]);
  }
  void store(VertexId v, unsigned column, Slot value) {
    if (file) {
      file->store(v - begin, column, value);
      return;
    }
    slot_store_relaxed(columns[column][v - begin], value);
  }
  Slot consume(VertexId v, unsigned column) {
    if (file) {
      return file->consume(v - begin, column);
    }
    return slot_consume_relaxed(columns[column][v - begin]);
  }
};

/// A flushed batch tagged with its canonical position in the superstep's
/// apply order: the sending node and that sender's per-destination
/// sequence number.
struct TaggedBatch {
  std::uint32_t src_node = 0;
  std::uint32_t seq = 0;
  std::vector<VertexMessage> batch;
};

/// Applies one message to the update column — the single shared
/// implementation both engines' computers run. Returns true when the
/// vertex's value changed (an "update" in the manager's accounting).
[[nodiscard]] inline bool cluster_apply_message(ClusterNodeState& state,
                                  const Program& program,
                                  const VertexMessage& message,
                                  std::uint64_t superstep) {
  const VertexId v = message.dst;
  GPSA_DCHECK(v >= state.begin && v < state.end);
  const unsigned update_col = ValueFile::update_column(superstep);
  const Slot current = state.load(v, update_col);
  if (slot_is_stale(current)) {
    const Payload base =
        slot_payload(state.load(v, state.latest[v - state.begin]));
    const Payload seed = program.first_update(v, base);
    const Payload acc = program.compute(seed, message.value);
    const bool updated = program.changed(base, acc);
    state.store(v, update_col, make_slot(updated ? acc : base, !updated));
    state.latest[v - state.begin] = static_cast<std::uint8_t>(update_col);
    if (updated) {
      // Bit and stale flag publish together (the same lock-step as the
      // single-machine ComputerActor::apply).
      if (state.worklist.has_value()) {
        state.worklist->set(v - state.begin, update_col);
      }
      return true;
    }
    return false;
  }
  const Payload seed = slot_payload(current);
  const Payload acc = program.compute(seed, message.value);
  if (acc != seed) {
    state.store(v, update_col, make_slot(acc, /*stale=*/false));
  }
  return false;
}

/// Superstep-boundary apply in canonical order: sorts the buffered
/// batches by (src_node, seq), applies every message, recycles the
/// buffers, and clears the list. Returns the number of updated vertices.
inline std::uint64_t apply_tagged_batches(ClusterNodeState& state,
                                          const Program& program,
                                          std::vector<TaggedBatch>& batches,
                                          std::uint64_t superstep,
                                          MessageBatchPool& pool) {
  std::sort(batches.begin(), batches.end(),
            [](const TaggedBatch& a, const TaggedBatch& b) {
              if (a.src_node != b.src_node) {
                return a.src_node < b.src_node;
              }
              return a.seq < b.seq;
            });
  std::uint64_t updates = 0;
  for (TaggedBatch& tagged : batches) {
    for (const VertexMessage& m : tagged.batch) {
      if (cluster_apply_message(state, program, m, superstep)) {
        ++updates;
      }
    }
    pool.recycle(std::move(tagged.batch));
  }
  batches.clear();
  return updates;
}

/// The dispatch half of a node's superstep, parameterized over how a
/// flushed batch travels. Visit order (worklist bits ascending / sweep
/// ascending), batch boundaries, and sequence numbering are fixed here,
/// so every engine flushes byte-identical batches in the same order.
class NodeDispatchCore {
 public:
  /// `flush(dst_node, seq, batch)`: takes ownership of a leased buffer.
  using FlushFn =
      std::function<void(unsigned, std::uint32_t, std::vector<VertexMessage>&&)>;

  struct IterationStats {
    std::uint64_t messages = 0;        // all messages dispatched
    std::uint64_t remote_messages = 0; // crossed a node boundary
    std::uint64_t remote_batches = 0;
    /// Frame-accurate wire model: one BATCH frame per remote flush.
    std::uint64_t remote_wire_bytes = 0;
  };

  NodeDispatchCore(std::uint32_t node, ClusterNodeState& state,
                   const Csr& graph, const Program& program,
                   const OwnerMap& owners, MessageBatchPool& pool,
                   std::size_t batch_size)
      : node_(node),
        state_(state),
        graph_(graph),
        program_(program),
        owners_(owners),
        pool_(pool),
        batch_size_(batch_size) {
    // One-time setup of the empty per-node staging slots; the element
    // buffers circulate through the pool.
    staging_.resize(owners.parts());  // gpsa-lint: allow(msg-buffer-alloc)
    seq_.resize(staging_.size());
    for (auto& buffer : staging_) {
      buffer = pool_.lease();  // gpsa-analyze: transfer(staging slot; shipped by flush, recycled by the peer's apply)
    }
  }

  IterationStats run_iteration(std::uint64_t superstep, const FlushFn& flush) {
    stats_ = IterationStats{};
    std::fill(seq_.begin(), seq_.end(), 0u);
    const unsigned dispatch_col = ValueFile::dispatch_column(superstep);
    if (state_.worklist.has_value()) {
      // Worklist: only the set bits of the dispatch generation, O(active).
      ActiveBitmap& wl = *state_.worklist;
      const VertexId local_size = state_.end - state_.begin;
      if (local_size > 0) {
        const std::size_t last = ActiveBitmap::word_index(local_size - 1);
        for (std::size_t w = 0; w <= last; ++w) {
          BitmapWord bits = wl.word(dispatch_col, w) &
                            ActiveBitmap::range_mask(w, 0, local_size);
          while (bits != 0) {
            const unsigned bit =
                static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            const VertexId v = state_.begin +
                               static_cast<VertexId>(w) * kBitmapWordBits +
                               bit;
            const Slot slot = state_.load(v, dispatch_col);
            GPSA_DCHECK(!slot_is_stale(slot));
            dispatch_vertex(v, slot_payload(slot), flush);
            state_.consume(v, dispatch_col);
          }
        }
        wl.clear_range(dispatch_col, 0, local_size);
      }
    } else {
      // Sweep: every owned vertex, skipping stale slots, O(local size).
      for (VertexId v = state_.begin; v < state_.end; ++v) {
        const Slot slot = state_.load(v, dispatch_col);
        if (slot_is_stale(slot)) {
          continue;
        }
        dispatch_vertex(v, slot_payload(slot), flush);
        state_.consume(v, dispatch_col);
      }
    }
    for (std::size_t node = 0; node < staging_.size(); ++node) {
      flush_one(node, flush);
    }
    return stats_;
  }

 private:
  void dispatch_vertex(VertexId v, Payload value, const FlushFn& flush) {
    if (!state_.last_sent.empty()) {
      // Delta program: hand gen_msg the change since v's last dispatch,
      // not the absolute value (this core is the plane's single writer).
      const Payload current = value;
      value = program_.delta(current, state_.last_sent[v - state_.begin]);
      state_.last_sent[v - state_.begin] = current;
    }
    const auto degree = static_cast<std::uint32_t>(graph_.out_degree(v));
    for (VertexId dst : graph_.neighbors(v)) {
      const Payload message = program_.gen_msg(v, dst, value, degree);
      const unsigned owner = owners_.owner_of(dst);
      staging_[owner].push_back(VertexMessage{dst, message});
      ++stats_.messages;
      if (owner != node_) {
        ++stats_.remote_messages;
      }
      if (staging_[owner].size() >= batch_size_) {
        flush_one(owner, flush);
      }
    }
  }

  void flush_one(std::size_t node, const FlushFn& flush) {
    auto& buffer = staging_[node];
    if (buffer.empty()) {
      return;
    }
    if (node != node_) {
      ++stats_.remote_batches;
      stats_.remote_wire_bytes += batch_frame_wire_bytes(buffer.size());
    }
    const std::uint32_t seq = seq_[node]++;
    std::vector<VertexMessage> out = std::move(buffer);
    buffer = pool_.lease();
    flush(static_cast<unsigned>(node), seq, std::move(out));
  }

  const std::uint32_t node_;
  ClusterNodeState& state_;
  const Csr& graph_;
  const Program& program_;
  const OwnerMap& owners_;
  MessageBatchPool& pool_;
  const std::size_t batch_size_;
  std::vector<std::vector<VertexMessage>> staging_;
  std::vector<std::uint32_t> seq_;  // per-destination, reset each superstep
  IterationStats stats_;
};

}  // namespace gpsa
