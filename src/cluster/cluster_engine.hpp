// Simulated distributed GPSA (paper §III.B, motivation c: "Actor-based
// graph processing can ... be directly applicable to distributed
// systems").
//
// The cluster engine deploys the same actor protocol across N simulated
// nodes in one process. Each node owns a contiguous vertex interval, the
// matching slice of the CSR, and its own two-column value store (the same
// slot protocol as storage/value_file.hpp, held in memory — a distributed
// deployment would place one value file per node). Dispatching actors on
// node A route messages to the computing actor owning the destination,
// which may live on any node: the send is the same mailbox operation —
// the actor model's location transparency — but the engine accounts every
// node-crossing message as network traffic, so the bench can report
// communication volume and per-node load balance versus cluster size (the
// distributed-systems costs the paper's introduction calls out).
#pragma once

#include <cstdint>
#include <vector>

#include <optional>
#include <string>

#include "core/exec_mode.hpp"
#include "core/program.hpp"
#include "graph/edge_list.hpp"
#include "graph/partition.hpp"
#include "io/io_backend.hpp"
#include "util/status.hpp"

namespace gpsa {

struct ClusterOptions {
  unsigned num_nodes = 4;
  /// Vertex-interval assignment across nodes.
  PartitionStrategy partition = PartitionStrategy::kBalancedEdges;
  /// Scheduler worker threads backing the whole simulated cluster.
  unsigned scheduler_workers = 0;  // 0 = default
  /// VertexMessages per inter-node batch (matches
  /// EngineOptions::message_batch; see the rationale there).
  std::size_t message_batch = 4096;
  std::uint64_t max_supersteps = 0;  // 0 = program/quiescence only
  /// Modeled interconnect for the network-time estimate.
  double net_bandwidth_mbps = 1000.0;  // ~gigabit
  double net_latency_us_per_batch = 50.0;
  /// When non-empty, each node's two-column value store becomes a real
  /// on-disk value file at "<value_store_dir>/node<k>.values", constructed
  /// through the configured I/O backend — the per-node placement a
  /// distributed deployment would use. Empty keeps the in-memory store.
  std::string value_store_dir;
  /// Storage I/O configuration for the per-node value files (src/io/).
  IoOptions io;
  /// How each node's dispatcher finds its active vertices. Unset follows
  /// GPSA_EXEC (default worklist; see EngineOptions::exec). Each node
  /// keeps its own node-local bitmap — on a real deployment no activation
  /// state crosses the network, because a remote message already carries
  /// the activation.
  std::optional<ExecMode> exec;
};

struct ClusterRunResult {
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t remote_messages = 0;  // crossed a node boundary
  std::uint64_t remote_batches = 0;
  double elapsed_seconds = 0.0;
  /// remote bytes / bandwidth + batches * latency — kept as a cross-check
  /// next to the measured wire metrics below (the bench asserts the two
  /// agree within a sane factor).
  double modeled_network_seconds = 0.0;
  /// Wire traffic. In-process simulation: a frame-accurate *model* — the
  /// exact bytes the remote batches would occupy as BATCH frames
  /// (measured_wire=false). Socket data plane: *measured* at the
  /// transports, control frames included, aggregated cluster-wide at rank
  /// 0 through the superstep barriers (measured_wire=true; non-zero
  /// ranks report their own share).
  bool measured_wire = false;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t frames_sent = 0;
  /// Wire bytes attributed to each superstep (same provenance as
  /// bytes_on_wire; index = superstep).
  std::vector<std::uint64_t> superstep_wire_bytes;
  bool converged = false;
  std::vector<Payload> values;
  /// Messages *sent* by each node (dispatch-side load).
  std::vector<std::uint64_t> node_messages_sent;
  /// Messages *received* by each node (compute-side load).
  std::vector<std::uint64_t> node_messages_received;

  /// max/mean of node_messages_sent — the load-imbalance factor the
  /// paper's introduction attributes to distributed partitioning.
  double send_imbalance() const;
};

class ClusterEngine {
 public:
  static Result<ClusterRunResult> run(const EdgeList& graph,
                                      const Program& program,
                                      const ClusterOptions& options);

  /// Validates the per-node value stores a file-backed run left under
  /// `dir`: every node file present and well-formed, app tags matching
  /// `expected_app_tag`, and all headers agreeing on the completed
  /// superstep. Returns that common superstep count. A crash between the
  /// per-node checkpoint flushes leaves the headers disagreeing — a torn
  /// cluster state this rejects (the distributed analogue of the
  /// single-file recovery header check, §IV.G).
  static Result<std::uint64_t> validate_value_stores(
      const std::string& dir, unsigned num_nodes,
      const std::string& expected_app_tag);
};

/// Test-only crash injection for the end-of-run per-node checkpoint sweep
/// (the fork-based crash suite): after `flushes` successful node
/// checkpoints the process _exit()s, leaving the remaining nodes' headers
/// behind the finished ones. Negative disables (the default). Only ever
/// set inside a forked child.
void set_cluster_checkpoint_crash_after_flushes(int flushes);

}  // namespace gpsa
