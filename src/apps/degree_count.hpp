// In-degree counting — the simplest possible vertex program, useful as a
// one-superstep engine exercise and a building block (PageRank dangling
// handling, degree-ordered layouts).
//
// Every vertex sends 1 along each out-edge in superstep 0; receivers sum.
// first_update resets the accumulator to zero (the stored init value is
// not carried over), so the final payload of v is exactly in-degree(v).
#pragma once

#include "core/program.hpp"

namespace gpsa {

class InDegreeProgram final : public Program {
 public:
  std::string name() const override { return "in-degree"; }

  InitialState init(VertexId /*v*/, VertexId /*n*/) const override {
    return {0, true};
  }

  Payload gen_msg(VertexId /*src*/, VertexId /*dst*/, Payload /*value*/,
                  std::uint32_t /*out_degree*/) const override {
    return 1;
  }

  Payload first_update(VertexId /*v*/, Payload /*stored*/) const override {
    return 0;  // fresh counter
  }

  Payload compute(Payload accumulator, Payload message) const override {
    return accumulator + message;
  }

  bool changed(Payload /*before*/, Payload /*after*/) const override {
    return true;
  }

  std::uint64_t max_supersteps() const override { return 1; }

  bool has_combiner() const override { return true; }

  Payload combine(Payload a, Payload b) const override { return a + b; }
};

}  // namespace gpsa
