// BfsProgram is header-only; this TU anchors the vtable.
#include "apps/bfs.hpp"

namespace gpsa {}  // namespace gpsa
