// ConnectedComponentsProgram is header-only; this TU anchors the vtable.
#include "apps/cc.hpp"

namespace gpsa {}  // namespace gpsa
