// Breadth-first search as a GPSA vertex program (paper benchmark #3).
//
// Payloads are levels; kPayloadInfinity marks "unreached". Only the root
// starts active; a vertex activates when a message improves its level, so
// the frontier expands exactly one hop per superstep and the run quiesces
// when no message improves anything — the selective-scheduling behaviour
// the paper contrasts against X-Stream's every-edge streaming.
#pragma once

#include <algorithm>

#include "core/program.hpp"

namespace gpsa {

class BfsProgram final : public Program {
 public:
  explicit BfsProgram(VertexId root = 0) : root_(root) {}

  std::string name() const override { return "bfs"; }

  InitialState init(VertexId v, VertexId /*n*/) const override {
    if (v == root_) {
      return {0, true};
    }
    return {kPayloadInfinity, false};
  }

  Payload gen_msg(VertexId /*src*/, VertexId /*dst*/, Payload value,
                  std::uint32_t /*out_degree*/) const override {
    // Saturate so INF never wraps (an inactive INF vertex is never
    // dispatched, but saturation keeps the hook total anyway).
    return value >= kPayloadInfinity - 1 ? kPayloadInfinity : value + 1;
  }

  bool uniform_gen_msg() const override { return true; }

  Payload first_update(VertexId /*v*/, Payload stored) const override {
    return stored;
  }

  Payload compute(Payload accumulator, Payload message) const override {
    return std::min(accumulator, message);
  }

  bool changed(Payload before, Payload after) const override {
    return after < before;
  }

  bool has_combiner() const override { return true; }

  Payload combine(Payload a, Payload b) const override {
    return std::min(a, b);
  }

  VertexId root() const { return root_; }

 private:
  VertexId root_;
};

}  // namespace gpsa
