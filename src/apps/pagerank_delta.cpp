#include "apps/pagerank_delta.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace gpsa {

float resolve_delta_eps(std::optional<float> requested) {
  constexpr float kDefault = 1e-7F;
  if (requested.has_value()) {
    return *requested;
  }
  const char* raw = std::getenv("GPSA_DELTA_EPS");
  if (raw == nullptr || *raw == '\0') {
    return kDefault;
  }
  char* end = nullptr;
  const float parsed = std::strtof(raw, &end);
  if (end == raw || *end != '\0' || !(parsed >= 0.0F)) {
    GPSA_LOG(Warn) << "GPSA_DELTA_EPS: invalid value '" << raw
                   << "' (expected a non-negative float); using " << kDefault;
    return kDefault;
  }
  return parsed;
}

}  // namespace gpsa
