// Single-source shortest paths (Bellman-Ford style), an extension beyond
// the paper's three benchmarks exercising gen_msg's destination parameter:
// edge weights are derived deterministically from the endpoints
// (apps/weights.hpp) since the CSR stores none.
#pragma once

#include <algorithm>

#include "apps/weights.hpp"
#include "core/program.hpp"

namespace gpsa {

class SsspProgram final : public Program {
 public:
  explicit SsspProgram(VertexId source = 0) : source_(source) {}

  std::string name() const override { return "sssp"; }

  InitialState init(VertexId v, VertexId /*n*/) const override {
    if (v == source_) {
      return {0, true};
    }
    return {kPayloadInfinity, false};
  }

  Payload gen_msg(VertexId src, VertexId dst, Payload value,
                  std::uint32_t /*out_degree*/) const override {
    const std::uint64_t relaxed =
        static_cast<std::uint64_t>(value) + synthetic_edge_weight(src, dst);
    return relaxed >= kPayloadInfinity
               ? kPayloadInfinity
               : static_cast<Payload>(relaxed);
  }

  Payload first_update(VertexId /*v*/, Payload stored) const override {
    return stored;
  }

  Payload compute(Payload accumulator, Payload message) const override {
    return std::min(accumulator, message);
  }

  bool changed(Payload before, Payload after) const override {
    return after < before;
  }

  bool has_combiner() const override { return true; }

  Payload combine(Payload a, Payload b) const override {
    return std::min(a, b);
  }

  VertexId source() const { return source_; }

 private:
  VertexId source_;
};

}  // namespace gpsa
