// MultiSourceReachabilityProgram is header-only; this TU anchors the vtable.
#include "apps/multi_bfs.hpp"

namespace gpsa {}  // namespace gpsa
