#include "apps/reference.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "apps/weights.hpp"
#include "util/check.hpp"

namespace gpsa {

ReferenceResult reference_run(const Csr& graph, const Program& program,
                              std::uint64_t max_supersteps) {
  const VertexId n = graph.num_vertices();
  ReferenceResult out;
  out.values.resize(n);

  std::vector<char> active(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    const Program::InitialState st = program.init(v, n);
    out.values[v] = st.value;
    active[v] = st.active ? 1 : 0;
  }

  std::uint64_t budget = program.max_supersteps();
  if (max_supersteps != 0) {
    budget = std::min(budget, max_supersteps);
  }

  std::vector<Payload> accumulator(n, 0);
  std::vector<char> touched(n, 0);
  std::vector<VertexId> touched_list;
  // Delta programs (Program::delta_messages): dispatch the change since
  // the vertex's previous dispatch instead of the absolute value.
  const bool delta = program.delta_messages();
  std::vector<Payload> last_sent;
  if (delta) {
    last_sent.assign(n, Payload{0});
  }

  for (std::uint64_t s = 0; s < budget; ++s) {
    std::uint64_t messages = 0;
    touched_list.clear();
    for (VertexId src = 0; src < n; ++src) {
      if (!active[src]) {
        continue;
      }
      Payload value = out.values[src];
      if (delta) {
        const Payload current = value;
        value = program.delta(current, last_sent[src]);
        last_sent[src] = current;
      }
      const auto degree =
          static_cast<std::uint32_t>(graph.out_degree(src));
      for (VertexId dst : graph.neighbors(src)) {
        const Payload msg = program.gen_msg(src, dst, value, degree);
        ++messages;
        if (!touched[dst]) {
          touched[dst] = 1;
          touched_list.push_back(dst);
          accumulator[dst] =
              program.compute(program.first_update(dst, out.values[dst]), msg);
        } else {
          accumulator[dst] = program.compute(accumulator[dst], msg);
        }
      }
    }
    out.superstep_messages.push_back(messages);
    out.total_messages += messages;
    ++out.supersteps;
    if (messages == 0) {
      out.converged = true;
      break;
    }
    // Commit: activity for the next superstep is "received a message and
    // the fold changed the value".
    std::fill(active.begin(), active.end(), 0);
    for (VertexId v : touched_list) {
      touched[v] = 0;
      if (program.changed(out.values[v], accumulator[v])) {
        out.values[v] = accumulator[v];
        active[v] = 1;
      }
    }
  }
  return out;
}

std::vector<Payload> oracle_bfs_levels(const Csr& graph, VertexId root) {
  const VertexId n = graph.num_vertices();
  std::vector<Payload> level(n, kPayloadInfinity);
  if (root >= n) {
    return level;
  }
  level[root] = 0;
  std::deque<VertexId> frontier{root};
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop_front();
    for (VertexId v : graph.neighbors(u)) {
      if (level[v] == kPayloadInfinity) {
        level[v] = level[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  return level;
}

std::vector<Payload> oracle_min_label(const Csr& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<Payload> label(n);
  for (VertexId v = 0; v < n; ++v) {
    label[v] = v;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : graph.neighbors(u)) {
        if (label[u] < label[v]) {
          label[v] = label[u];
          changed = true;
        }
      }
    }
  }
  return label;
}

std::vector<Payload> oracle_sssp(const Csr& graph, VertexId source) {
  const VertexId n = graph.num_vertices();
  std::vector<std::uint64_t> dist(n,
                                  std::numeric_limits<std::uint64_t>::max());
  std::vector<Payload> out(n, kPayloadInfinity);
  if (source >= n) {
    return out;
  }
  using Entry = std::pair<std::uint64_t, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0;
  heap.emplace(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) {
      continue;
    }
    for (VertexId v : graph.neighbors(u)) {
      const std::uint64_t nd = d + synthetic_edge_weight(u, v);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.emplace(nd, v);
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (dist[v] < kPayloadInfinity) {
      out[v] = static_cast<Payload>(dist[v]);
    }
  }
  return out;
}

std::vector<Payload> oracle_pagerank(const Csr& graph,
                                     std::uint64_t iterations,
                                     float damping) {
  const VertexId n = graph.num_vertices();
  GPSA_CHECK(n > 0);
  const double teleport =
      (1.0 - static_cast<double>(damping)) / static_cast<double>(n);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> acc(n, 0.0);
  std::vector<char> active(n, 1);
  std::vector<char> touched(n, 0);
  for (std::uint64_t it = 0; it < iterations; ++it) {
    std::fill(acc.begin(), acc.end(), 0.0);
    std::fill(touched.begin(), touched.end(), 0);
    bool any = false;
    for (VertexId u = 0; u < n; ++u) {
      if (!active[u]) {
        continue;
      }
      const auto degree = graph.out_degree(u);
      if (degree == 0) {
        continue;
      }
      const double share =
          static_cast<double>(damping) * rank[u] / static_cast<double>(degree);
      for (VertexId v : graph.neighbors(u)) {
        acc[v] += share;
        touched[v] = 1;
        any = true;
      }
    }
    if (!any) {
      break;
    }
    for (VertexId v = 0; v < n; ++v) {
      active[v] = touched[v];
      if (touched[v]) {
        rank[v] = teleport + acc[v];
      }
    }
  }
  std::vector<Payload> out(n);
  for (VertexId v = 0; v < n; ++v) {
    out[v] = float_to_payload(static_cast<float>(rank[v]));
  }
  return out;
}

}  // namespace gpsa
