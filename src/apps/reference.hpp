// Sequential reference executor.
//
// Executes any Program over an in-memory CSR with exactly the semantics
// the engines implement — push messages from active vertices, first-touch
// accumulator seeding, per-superstep activity from Program::changed, and
// zero-message termination — but in a single thread with deterministic
// (vertex-id) message order. Every engine's results are validated against
// this executor: exactly for integer-payload apps, within a float
// tolerance for PageRank (fold order differs across threads).
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.hpp"
#include "graph/csr.hpp"

namespace gpsa {

struct ReferenceResult {
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;
  bool converged = false;
  std::vector<Payload> values;
  std::vector<std::uint64_t> superstep_messages;
};

/// Runs `program` to quiescence or to min(program.max_supersteps(),
/// max_supersteps) when the latter is non-zero.
ReferenceResult reference_run(const Csr& graph, const Program& program,
                              std::uint64_t max_supersteps = 0);

// --- Classic-algorithm oracles (independent of the Program machinery) -----
// Used to validate the reference executor itself; the engines are checked
// against reference_run, which is checked against these.

/// BFS levels from `root` (kPayloadInfinity when unreached).
std::vector<Payload> oracle_bfs_levels(const Csr& graph, VertexId root);

/// Min-reachable-label fixpoint (equals connected components on a
/// symmetrized graph).
std::vector<Payload> oracle_min_label(const Csr& graph);

/// Dijkstra with the synthetic edge weights (apps/weights.hpp).
std::vector<Payload> oracle_sssp(const Csr& graph, VertexId source);

/// Push PageRank with double accumulation and the same selective-activity
/// rule; returns float payloads.
std::vector<Payload> oracle_pagerank(const Csr& graph,
                                     std::uint64_t iterations,
                                     float damping = 0.85F);

}  // namespace gpsa
