// PageRankProgram is header-only; this TU anchors the vtable.
#include "apps/pagerank.hpp"

namespace gpsa {
// Intentionally empty: keying the vtable to one translation unit keeps the
// per-app binaries small.
}  // namespace gpsa
