// InDegreeProgram is header-only; this TU anchors the vtable.
#include "apps/degree_count.hpp"

namespace gpsa {}  // namespace gpsa
