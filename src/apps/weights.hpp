// Synthetic edge weights.
//
// The CSR format stores no weights (the paper's datasets are unweighted),
// but SSSP needs them. Instead of a parallel weight file we derive a
// deterministic pseudo-random weight from the edge endpoints, so every
// engine — and the sequential reference — sees exactly the same weighted
// graph without any storage.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace gpsa {

/// Weight in [1, 16], stable across runs and engines.
inline std::uint32_t synthetic_edge_weight(VertexId src, VertexId dst) {
  std::uint64_t x = (static_cast<std::uint64_t>(src) << 32) | dst;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::uint32_t>(x & 0xF) + 1;
}

}  // namespace gpsa
