// SsspProgram is header-only; this TU anchors the vtable.
#include "apps/sssp.hpp"

namespace gpsa {}  // namespace gpsa
