// Multi-source reachability in one pass.
//
// Payloads are 31-bit reachability bitmasks: bit i of vertex v's value is
// set iff v is reachable from source i. Messages carry the sender's mask,
// the fold is bitwise OR (commutative, associative, idempotent — ideal
// for the message-driven model and for the combiner). One run answers
// "which of up to 31 landmark pages reach v?" — a workload web-graph
// systems use for landmark labeling.
#pragma once

#include <vector>

#include "core/program.hpp"
#include "util/check.hpp"

namespace gpsa {

class MultiSourceReachabilityProgram final : public Program {
 public:
  static constexpr std::size_t kMaxSources = 31;

  explicit MultiSourceReachabilityProgram(std::vector<VertexId> sources)
      : sources_(std::move(sources)) {
    GPSA_CHECK(!sources_.empty() && sources_.size() <= kMaxSources);
  }

  std::string name() const override { return "multi-bfs"; }

  InitialState init(VertexId v, VertexId /*n*/) const override {
    Payload mask = 0;
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (sources_[i] == v) {
        mask |= Payload{1} << i;
      }
    }
    return {mask, mask != 0};
  }

  Payload gen_msg(VertexId /*src*/, VertexId /*dst*/, Payload value,
                  std::uint32_t /*out_degree*/) const override {
    return value;
  }

  Payload first_update(VertexId /*v*/, Payload stored) const override {
    return stored;
  }

  Payload compute(Payload accumulator, Payload message) const override {
    return accumulator | message;
  }

  bool changed(Payload before, Payload after) const override {
    return after != before;  // OR only grows
  }

  bool has_combiner() const override { return true; }

  Payload combine(Payload a, Payload b) const override { return a | b; }

  const std::vector<VertexId>& sources() const { return sources_; }

 private:
  std::vector<VertexId> sources_;
};

}  // namespace gpsa
