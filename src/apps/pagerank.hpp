// PageRank as a GPSA vertex program (one of the paper's three benchmark
// algorithms).
//
// Push formulation matching the engine's message-driven semantics:
//   rank_0(v)   = 1 / N
//   rank_s+1(v) = (1-d)/N + d * sum over active in-neighbors u of
//                 rank_s(u) / out_degree(u)
// with damping d = 0.85. The damping and degree division live in
// gen_msg — "in the PageRank algorithm, the value of a message is related
// to both the out-degree and the vertex value" (§IV.E) — which is why the
// Fig. 4c CSR variant inlines the degree.
//
// Vertices that receive no messages in a superstep keep their rank and go
// inactive (selective-scheduling semantics shared by all engines here).
#pragma once

#include "core/program.hpp"

namespace gpsa {

class PageRankProgram final : public Program {
 public:
  /// `iterations` bounds the run (PageRank never quiesces on its own);
  /// the paper's timing runs use 5.
  explicit PageRankProgram(std::uint64_t iterations = 20,
                           float damping = 0.85F)
      : iterations_(iterations), damping_(damping) {}

  std::string name() const override { return "pagerank"; }

  InitialState init(VertexId /*v*/, VertexId num_vertices) const override {
    // Every engine calls init() for all vertices before superstep 0, so
    // caching the teleport term here keeps the program self-configuring.
    teleport_ = (1.0F - damping_) / static_cast<float>(num_vertices);
    return {float_to_payload(1.0F / static_cast<float>(num_vertices)), true};
  }

  Payload gen_msg(VertexId /*src*/, VertexId /*dst*/, Payload value,
                  std::uint32_t out_degree) const override {
    const float rank = payload_to_float(value);
    const float share =
        damping_ * rank / static_cast<float>(out_degree == 0 ? 1 : out_degree);
    return float_to_payload(share);
  }

  bool uniform_gen_msg() const override { return true; }

  Payload first_update(VertexId /*v*/, Payload /*stored*/) const override {
    // Teleport term; the old rank does not carry over in push PageRank.
    return float_to_payload(teleport_);
  }

  Payload compute(Payload accumulator, Payload message) const override {
    return float_to_payload(payload_to_float(accumulator) +
                            payload_to_float(message));
  }

  bool changed(Payload /*before*/, Payload /*after*/) const override {
    return true;  // any received contribution re-activates the vertex
  }

  std::uint64_t max_supersteps() const override { return iterations_; }

  bool has_combiner() const override { return true; }

  Payload combine(Payload a, Payload b) const override {
    return float_to_payload(payload_to_float(a) + payload_to_float(b));
  }

 private:
  std::uint64_t iterations_;
  float damping_;
  mutable float teleport_ = 0.15F;
};

}  // namespace gpsa
