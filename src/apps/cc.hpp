// Connected components via min-label propagation (paper benchmark #2).
//
// Every vertex starts with its own id as the label and active; labels
// propagate along edges and fold with min until quiescence. On a directed
// input this yields "min label reachable via directed paths"; for the
// paper's connected-components semantics (undirected connectivity) the
// harness symmetrizes the edge list first — the same treatment GraphChi's
// and X-Stream's CC implementations give directed inputs.
#pragma once

#include <algorithm>

#include "core/program.hpp"

namespace gpsa {

class ConnectedComponentsProgram final : public Program {
 public:
  std::string name() const override { return "cc"; }

  InitialState init(VertexId v, VertexId /*n*/) const override {
    return {v, true};
  }

  Payload gen_msg(VertexId /*src*/, VertexId /*dst*/, Payload value,
                  std::uint32_t /*out_degree*/) const override {
    return value;
  }

  bool uniform_gen_msg() const override { return true; }

  Payload first_update(VertexId /*v*/, Payload stored) const override {
    return stored;
  }

  Payload compute(Payload accumulator, Payload message) const override {
    return std::min(accumulator, message);
  }

  bool changed(Payload before, Payload after) const override {
    return after < before;
  }

  bool has_combiner() const override { return true; }

  Payload combine(Payload a, Payload b) const override {
    return std::min(a, b);
  }
};

}  // namespace gpsa
