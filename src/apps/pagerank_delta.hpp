// Delta (residual) PageRank — the delta-programming variant the worklist
// execution mode exists for (DESIGN.md §12).
//
// Push PageRank re-sends every vertex's full share every superstep, so
// the frontier never shrinks and the run only stops on the iteration
// budget. The delta formulation instead accumulates rank in place and
// sends only the *change* since the vertex last dispatched:
//   rank_0(v)  = (1-d)/N                      (the teleport term)
//   message    = d * delta(u) / out_degree(u)
//   rank(v)   += sum of received messages
// Expanding the recurrence, rank(v) converges to the power series
// (1-d)/N * sum_k (dM)^k — the same fixed point as classic PageRank — but
// a vertex only re-activates while its received mass still exceeds the
// epsilon, so the active set decays and the run quiesces on its own
// instead of exhausting a superstep budget. Mass below the epsilon is
// dropped with the deactivation, bounding the result's deviation from the
// exact fixed point by O(eps * supersteps) per vertex.
//
// The engine side: delta_messages() makes the dispatchers keep the
// last-sent plane and hand gen_msg delta(current, last_sent); `changed`
// gates re-activation on the epsilon (GPSA_DELTA_EPS).
#pragma once

#include <optional>

#include "core/program.hpp"

namespace gpsa {

/// Re-activation threshold resolution: an explicit value beats
/// GPSA_DELTA_EPS beats the 1e-7 default (warn + default on a bad env
/// value, mirroring GPSA_EXEC).
float resolve_delta_eps(std::optional<float> requested);

class PageRankDeltaProgram final : public Program {
 public:
  /// `max_iterations` is a guard rail only — unlike push PageRank the
  /// delta program quiesces on its own once every residual drops below
  /// the epsilon.
  explicit PageRankDeltaProgram(std::uint64_t max_iterations = 100,
                                float damping = 0.85F,
                                std::optional<float> eps = std::nullopt)
      : max_iterations_(max_iterations),
        damping_(damping),
        eps_(resolve_delta_eps(eps)) {}

  std::string name() const override { return "pagerank_delta"; }

  InitialState init(VertexId /*v*/, VertexId num_vertices) const override {
    teleport_ = (1.0F - damping_) / static_cast<float>(num_vertices);
    // Rank starts at the teleport term (not 1/N): everything else arrives
    // as accumulated deltas. last_sent starts at 0, so the first dispatch
    // propagates exactly this seed.
    return {float_to_payload(teleport_), true};
  }

  Payload gen_msg(VertexId /*src*/, VertexId /*dst*/, Payload value,
                  std::uint32_t out_degree) const override {
    // `value` is the residual (rank - last_sent), courtesy of delta().
    const float residual = payload_to_float(value);
    const float share =
        damping_ * residual /
        static_cast<float>(out_degree == 0 ? 1 : out_degree);
    return float_to_payload(share);
  }

  bool uniform_gen_msg() const override { return true; }

  Payload first_update(VertexId /*v*/, Payload stored) const override {
    return stored;  // rank accumulates in place; no per-superstep reset
  }

  Payload compute(Payload accumulator, Payload message) const override {
    return float_to_payload(payload_to_float(accumulator) +
                            payload_to_float(message));
  }

  bool changed(Payload before, Payload after) const override {
    // Contributions are non-negative, so the growth is the received mass;
    // below the epsilon the vertex stays inactive and the mass is dropped.
    return payload_to_float(after) - payload_to_float(before) > eps_;
  }

  std::uint64_t max_supersteps() const override { return max_iterations_; }

  bool has_combiner() const override { return true; }

  Payload combine(Payload a, Payload b) const override {
    return float_to_payload(payload_to_float(a) + payload_to_float(b));
  }

  bool delta_messages() const override { return true; }

  Payload delta(Payload current, Payload last_sent) const override {
    return float_to_payload(payload_to_float(current) -
                            payload_to_float(last_sent));
  }

  float epsilon() const { return eps_; }

 private:
  std::uint64_t max_iterations_;
  float damping_;
  float eps_;
  mutable float teleport_ = 0.15F;
};

}  // namespace gpsa
