// Dense active-vertex bitmap for the worklist execution mode
// (GPSA_EXEC=worklist, DESIGN.md §12).
//
// Two generations of one-bit-per-vertex words mirror the value file's two
// columns: generation g is read (and then cleared) by dispatchers in the
// supersteps whose dispatch column is g, and written by computing actors
// in the preceding superstep (whose *update* column is g). A set bit is
// exactly equivalent to a clear stale flag in the matching column — the
// computing actor sets it in the same first-update branch that stores the
// non-stale slot — which is what keeps worklist results bit-identical to
// the sweep's.
//
// Concurrency (see the BitmapWord helpers in slot.hpp): computing actors
// publish with an atomic fetch_or because a 64-vertex word can straddle
// two computers' ownership ranges; dispatchers retire their interval with
// masked fetch_and because a word can likewise straddle two dispatcher
// intervals. Within a superstep, setters touch generation (s+1)%2 while
// the reader/clearer touches generation s%2 — disjoint arrays — so the
// only cross-thread sharing is same-generation neighbours on boundary
// words, which the atomics make race-free.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "storage/slot.hpp"
#include "util/check.hpp"

namespace gpsa {

class ActiveBitmap {
 public:
  static constexpr unsigned kGenerations = 2;

  explicit ActiveBitmap(VertexId num_vertices)
      : num_vertices_(num_vertices),
        words_per_generation_(
            (static_cast<std::size_t>(num_vertices) + kBitmapWordBits - 1) /
            kBitmapWordBits) {
    for (auto& generation : generations_) {
      generation.assign(words_per_generation_, 0);
    }
  }

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t words_per_generation() const { return words_per_generation_; }

  static std::size_t word_index(VertexId v) { return v / kBitmapWordBits; }
  static unsigned bit_index(VertexId v) {
    return static_cast<unsigned>(v % kBitmapWordBits);
  }

  /// Activates v for the supersteps that dispatch `generation`. Safe from
  /// any computing actor: neighbouring owners may share the word.
  void set(VertexId v, unsigned generation) {
    GPSA_DCHECK(v < num_vertices_ && generation < kGenerations);
    bitmap_word_set_relaxed(generations_[generation][word_index(v)],
                            BitmapWord{1} << bit_index(v));
  }

  bool test(VertexId v, unsigned generation) const {
    GPSA_DCHECK(v < num_vertices_ && generation < kGenerations);
    return (bitmap_word_load_relaxed(generations_[generation][word_index(v)]) >>
            bit_index(v)) &
           1U;
  }

  /// One whole word of a generation (the dispatcher's scan granule; callers
  /// mask it to their interval and walk set bits with countr_zero).
  BitmapWord word(unsigned generation, std::size_t w) const {
    GPSA_DCHECK(w < words_per_generation_ && generation < kGenerations);
    return bitmap_word_load_relaxed(generations_[generation][w]);
  }

  /// Bits of word `w` that fall inside the vertex range [begin, end) —
  /// all-ones for interior words, partial for the boundary words a range
  /// shares with its neighbours.
  static BitmapWord range_mask(std::size_t w, VertexId begin, VertexId end) {
    const VertexId word_first = static_cast<VertexId>(w * kBitmapWordBits);
    BitmapWord mask = ~BitmapWord{0};
    if (begin > word_first) {
      mask &= ~BitmapWord{0} << (begin - word_first);
    }
    const VertexId word_last = word_first + kBitmapWordBits;  // exclusive
    if (end < word_last) {
      mask &= ~(~BitmapWord{0} << (end - word_first));
    }
    return mask;
  }

  /// Retires [begin, end) of a consumed generation. Boundary words are
  /// cleared with an interval mask so a neighbouring dispatcher clearing
  /// the same word never loses bits.
  void clear_range(unsigned generation, VertexId begin, VertexId end) {
    GPSA_DCHECK(generation < kGenerations && begin <= end &&
                end <= num_vertices_);
    if (begin >= end) {
      return;
    }
    std::vector<BitmapWord>& words = generations_[generation];
    const std::size_t first = word_index(begin);
    const std::size_t last = word_index(end - 1);
    for (std::size_t w = first; w <= last; ++w) {
      bitmap_word_clear_relaxed(words[w], range_mask(w, begin, end));
    }
  }

 private:
  VertexId num_vertices_;
  std::size_t words_per_generation_;
  std::vector<BitmapWord> generations_[kGenerations];
};

}  // namespace gpsa
