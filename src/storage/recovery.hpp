// Lightweight fault tolerance (paper §IV.G).
//
// Within superstep s the dispatch column (s % 2) is only flag-mutated —
// its payloads are immutable — while the update column may hold torn
// writes if the process crashed mid-superstep. The header's
// completed_supersteps counter (bumped by ValueFile::checkpoint after each
// superstep) identifies which column holds the last completed superstep's
// results.
//
// recover_value_file() restores a crashed file to a restartable state:
// every vertex's payload is taken from the valid column; the dispatch
// column for the resumed superstep is marked active (flag 0) and the
// update column stale (flag 1). Re-activating all vertices is
// conservative: dispatch flags in the valid column may have been partially
// consumed before the crash, so the safe choice is to re-dispatch
// everything. This preserves exact results for monotone apps (BFS, CC,
// SSSP: compute is idempotent min) and restarts PageRank's crashed
// superstep with a full contribution set.
#pragma once

#include <cstdint>
#include <string>

#include "graph/types.hpp"
#include "storage/value_file.hpp"
#include "util/status.hpp"

namespace gpsa {

struct RecoveryReport {
  /// Supersteps known complete at crash time; execution resumes here.
  std::uint64_t resume_superstep = 0;
  /// Column that held the valid payloads.
  unsigned valid_column = 0;
  VertexId vertices_restored = 0;
};

/// Repairs `file` in place. Safe to call on a clean file (it simply
/// re-arms the current superstep).
Result<RecoveryReport> recover_value_file(ValueFile& file);

/// Convenience: open + recover by path.
Result<RecoveryReport> recover_value_file_at(const std::string& path);

}  // namespace gpsa
