#include "storage/recovery.hpp"

#include "util/logging.hpp"

namespace gpsa {

Result<RecoveryReport> recover_value_file(ValueFile& file) {
  RecoveryReport report;
  report.resume_superstep = file.completed_supersteps();
  // The dispatch column of the superstep being resumed is the column that
  // the last *completed* superstep wrote — the immutable copy.
  report.valid_column = ValueFile::dispatch_column(report.resume_superstep);
  const unsigned other = 1 - report.valid_column;

  const VertexId n = file.num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    const Payload payload = slot_payload(file.load(v, report.valid_column));
    file.store(v, report.valid_column, make_slot(payload, /*stale=*/false));
    file.store(v, other, make_slot(payload, /*stale=*/true));
  }
  report.vertices_restored = n;
  GPSA_RETURN_IF_ERROR(file.sync());
  GPSA_LOG(Info) << "recovered value file " << file.path() << ": resume at superstep "
                 << report.resume_superstep << ", valid column "
                 << report.valid_column << ", " << n << " vertices";
  return report;
}

Result<RecoveryReport> recover_value_file_at(const std::string& path) {
  GPSA_ASSIGN_OR_RETURN(auto file, ValueFile::open(path));
  return recover_value_file(file);
}

}  // namespace gpsa
