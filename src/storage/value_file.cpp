// Slot access lives in storage/slot.hpp (the one sanctioned atomic_ref
// construction site — gpsa_lint rule slot-atomic-ref); this TU only
// handles file lifecycle, checkpointing, and page-cache advice.
#include "storage/value_file.hpp"

#include <cstring>

#include "platform/file_util.hpp"

namespace gpsa {

std::size_t ValueFile::file_size(VertexId num_vertices) {
  return sizeof(ValueFileHeader) +
         static_cast<std::size_t>(num_vertices) * kColumns * sizeof(Slot);
}

Result<ValueFile> ValueFile::create(const std::string& path,
                                    VertexId num_vertices,
                                    const std::string& app_tag) {
  if (num_vertices == 0) {
    return invalid_argument("ValueFile::create: zero vertices");
  }
  ValueFile out;
  GPSA_ASSIGN_OR_RETURN(out.map_,
                        MmapFile::create(path, file_size(num_vertices)));
  ValueFileHeader& h = out.header();
  h.magic = ValueFileHeader::kMagic;
  h.version = ValueFileHeader::kVersion;
  h.num_vertices = num_vertices;
  h.completed_supersteps = 0;
  std::memset(h.app_tag, 0, sizeof(h.app_tag));
  std::strncpy(h.app_tag, app_tag.c_str(), sizeof(h.app_tag) - 1);
  // The value file is accessed randomly by computing actors (§IV.B: "the
  // vertex values should be accessed both randomly and efficiently").
  GPSA_RETURN_IF_ERROR(out.map_.advise(MmapFile::Advice::kRandom));
  return out;
}

Result<ValueFile> ValueFile::open(const std::string& path) {
  ValueFile out;
  GPSA_ASSIGN_OR_RETURN(out.map_,
                        MmapFile::open(path, MmapFile::Mode::kReadWrite));
  if (out.map_.size() < sizeof(ValueFileHeader)) {
    return corrupt_data("value file too small: " + path);
  }
  const ValueFileHeader& h = out.header();
  if (h.magic != ValueFileHeader::kMagic) {
    return corrupt_data("bad value-file magic in " + path);
  }
  if (h.version != ValueFileHeader::kVersion) {
    return corrupt_data("unsupported value-file version in " + path);
  }
  if (out.map_.size() != file_size(h.num_vertices)) {
    return corrupt_data("value-file size mismatch in " + path);
  }
  GPSA_RETURN_IF_ERROR(out.map_.advise(MmapFile::Advice::kRandom));
  return out;
}

std::string ValueFile::app_tag() const {
  const ValueFileHeader& h = header();
  return std::string(h.app_tag,
                     ::strnlen(h.app_tag, sizeof(h.app_tag)));
}

Status ValueFile::drop_cache() {
  ++flush_syscalls_;
  GPSA_RETURN_IF_ERROR(map_.sync());
  GPSA_RETURN_IF_ERROR(
      map_.advise_range(0, map_.size(), MmapFile::Advice::kDontNeed));
  return evict_from_page_cache(map_.path());
}

Status ValueFile::advise_vertex_range(VertexId begin, VertexId end,
                                      MmapFile::Advice advice) {
  const VertexId n = header().num_vertices;
  end = end < n ? end : n;
  if (begin >= end) {
    return Status::ok();
  }
  const std::size_t offset =
      sizeof(ValueFileHeader) +
      static_cast<std::size_t>(begin) * kColumns * sizeof(Slot);
  const std::size_t length =
      static_cast<std::size_t>(end - begin) * kColumns * sizeof(Slot);
  return map_.advise_range(offset, length, advice);
}

Status ValueFile::checkpoint(std::uint64_t completed_supersteps) {
  flush_syscalls_ += 2;  // data msync + header msync below
  GPSA_RETURN_IF_ERROR(map_.sync());
  header().completed_supersteps = completed_supersteps;
  return map_.sync();
}

}  // namespace gpsa
