// The memory-mapped vertex value file (paper §IV.D/F).
//
// Layout: a fixed header, then |V| pairs of adjacent 32-bit slots —
// "the two copies of the value are next to each other. The offset of the
// value for vertex V can be calculated with |V| * sizeof(Val)":
//
//   [header][v0.colA v0.colB][v1.colA v1.colB]...
//
// Column roles alternate each superstep (Fig. 5):
//   superstep s:  dispatch column = s % 2   (read by dispatchers, whose
//                                            only writes are flag bits)
//                 update   column = (s+1)%2 (written by computing actors)
// so the column written in superstep s is the one dispatched in s+1.
//
// Concurrency: dispatchers own disjoint vertex intervals; computing actors
// own disjoint vertex sets (dst mod worker-count). The one cross-role
// overlap — a computing actor reading the dispatch-column payload while
// the owning dispatcher sets its flag bit — is made race-free by doing all
// slot access through std::atomic_ref with relaxed ordering (the mailbox
// handoff provides the necessary happens-before for payloads).
//
// The header records `completed_supersteps`, bumped and msync'd by the
// engine's checkpoint after each superstep; recovery (recovery.hpp) uses
// it to locate the immutable column (§IV.G).
#pragma once

#include <cstdint>
#include <string>

#include "graph/types.hpp"
#include "platform/mmap_file.hpp"
#include "storage/slot.hpp"
#include "util/status.hpp"

namespace gpsa {

struct ValueFileHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t num_vertices;
  std::uint32_t reserved0;
  std::uint64_t completed_supersteps;
  char app_tag[24];  // NUL-padded; sanity check between runs

  static constexpr std::uint32_t kMagic = 0x4750'5641;  // "GPVA"
  static constexpr std::uint32_t kVersion = 1;
};
static_assert(sizeof(ValueFileHeader) == 48);

class ValueFile {
 public:
  static constexpr unsigned kColumns = 2;

  /// Creates the file with all slots zero (callers must initialize via the
  /// program's init function before superstep 0).
  static Result<ValueFile> create(const std::string& path,
                                  VertexId num_vertices,
                                  const std::string& app_tag);

  /// Opens an existing file read-write (recovery, inspection, resume).
  static Result<ValueFile> open(const std::string& path);

  VertexId num_vertices() const { return header().num_vertices; }
  const std::string& path() const { return map_.path(); }
  std::string app_tag() const;

  static unsigned dispatch_column(std::uint64_t superstep) {
    return static_cast<unsigned>(superstep % 2);
  }
  static unsigned update_column(std::uint64_t superstep) {
    return static_cast<unsigned>((superstep + 1) % 2);
  }

  /// Relaxed-atomic slot accessors (see concurrency note above); the
  /// atomic_ref construction itself is centralized in storage/slot.hpp.
  Slot load(VertexId v, unsigned column) const {
    return slot_load_relaxed(slot_at(v, column));
  }
  void store(VertexId v, unsigned column, Slot value) {
    slot_store_relaxed(slot_at(v, column), value);
  }

  /// Sets the stale bit of (v, column), returning the previous slot.
  /// Used by dispatchers to consume a vertex (Algorithm 2 line 20).
  Slot consume(VertexId v, unsigned column) {
    return slot_consume_relaxed(slot_at(v, column));
  }

  std::uint64_t completed_supersteps() const {
    return header().completed_supersteps;
  }

  /// Checkpoint: flushes slot data, then bumps the completed counter and
  /// flushes the header (write ordering makes the counter trustworthy).
  Status checkpoint(std::uint64_t completed_supersteps);

  Status sync() {
    ++flush_syscalls_;
    return map_.sync();
  }

  /// msync calls issued against this file (sync/checkpoint/drop_cache).
  /// The write-back-batching bench reports this so GPSA_CHECKPOINT_INTERVAL
  /// has a measurable effect (DESIGN.md §16: O_DIRECT feasibility note).
  std::uint64_t flush_syscalls() const { return flush_syscalls_; }

  /// Cold-cache protocol (bench_ablation_io): flush dirty slots, then
  /// release the mapping's pages and the kernel page-cache copies.
  Status drop_cache();

  /// Residency hint over the slot pairs of vertices [begin, end) — the
  /// readahead scheduler keeps upcoming column pages resident with
  /// kWillNeed windows ahead of each dispatcher's cursor. Hints always
  /// cover whole pairs (the columns are interleaved per vertex), which is
  /// also why drop-behind is never issued here: pages behind the dispatch
  /// cursor still receive update-column writes (DESIGN.md §9).
  Status advise_vertex_range(VertexId begin, VertexId end,
                             MmapFile::Advice advice);

  /// Byte size of the whole file for `num_vertices` vertices.
  static std::size_t file_size(VertexId num_vertices);

 private:
  ValueFileHeader& header() {
    return *reinterpret_cast<ValueFileHeader*>(map_.data());
  }
  const ValueFileHeader& header() const {
    return *reinterpret_cast<const ValueFileHeader*>(map_.data());
  }

  Slot& slot_at(VertexId v, unsigned column) const {
    GPSA_DCHECK(v < header().num_vertices && column < kColumns);
    Slot* slots = reinterpret_cast<Slot*>(
        const_cast<std::byte*>(map_.data()) + sizeof(ValueFileHeader));
    return slots[static_cast<std::size_t>(v) * kColumns + column];
  }

  MmapFile map_;
  std::uint64_t flush_syscalls_ = 0;
};

}  // namespace gpsa
