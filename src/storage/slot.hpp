// Vertex-value slot encoding (paper §IV.F).
//
// A slot is a 32-bit word whose highest bit is the *stale flag* and whose
// low 31 bits are the application payload:
//
//   flag == 1  ->  the vertex was NOT updated in the last superstep;
//                  the dispatcher skips it (Algorithm 2, line 8).
//   flag == 0  ->  the vertex was updated; the dispatcher generates its
//                  messages and then re-sets the flag to 1 ("after a
//                  dispatcher finishes processing, it will invalidate the
//                  value of the current vertex by setting its highest bit
//                  to 1").
//
// Payload interpretations: integer apps (BFS level, CC label) store values
// < 2^31 directly; PageRank stores non-negative IEEE floats, whose sign
// bit is always 0, so the flag occupies exactly the bit the float never
// uses — the same trick the paper relies on.
//
// Note on the paper's prose: §IV.F says "At first, all the values will be
// set [to 1]", yet Figure 5 shows superstep 0 dispatching those vertices.
// We resolve the contradiction in favour of the algorithm listings: the
// *initially active* vertices start with flag 0 in superstep 0's dispatch
// column, everything else starts with flag 1.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace gpsa {

using Slot = std::uint32_t;
using Payload = std::uint32_t;  // low 31 bits meaningful

inline constexpr Slot kSlotStaleBit = 0x8000'0000U;
inline constexpr Payload kPayloadMask = 0x7fff'ffffU;

/// Largest representable integer payload; used as "infinity" by BFS/SSSP.
inline constexpr Payload kPayloadInfinity = kPayloadMask;

constexpr bool slot_is_stale(Slot s) { return (s & kSlotStaleBit) != 0; }
constexpr Slot slot_set_stale(Slot s) { return s | kSlotStaleBit; }
constexpr Slot slot_clear_stale(Slot s) {
  return s & static_cast<Slot>(~kSlotStaleBit);
}
constexpr Payload slot_payload(Slot s) { return s & kPayloadMask; }

constexpr Slot make_slot(Payload payload, bool stale) {
  const Slot base = payload & kPayloadMask;
  return stale ? slot_set_stale(base) : base;
}

/// Non-negative float <-> payload. The float's sign bit must be 0 (checked
/// only in debug builds; PageRank values are probabilities).
inline Payload float_to_payload(float value) {
  return std::bit_cast<std::uint32_t>(value) & kPayloadMask;
}

inline float payload_to_float(Payload payload) {
  return std::bit_cast<float>(payload & kPayloadMask);
}

// --- The two-column slot protocol's only sanctioned atomic accessors. ---
//
// Dispatchers and computing actors share slot storage (mmap'd value files
// and the cluster engine's in-memory columns) with exactly one cross-role
// overlap: a computing actor reading the dispatch-column payload while the
// owning dispatcher sets its stale bit. All slot access therefore goes
// through std::atomic_ref with relaxed ordering — the mailbox handoff
// provides the happens-before for payloads, so stronger ordering here
// would buy nothing (DESIGN.md §9).
//
// These helpers are the ONE place that constructs atomic_ref over Slot
// storage; the gpsa-lint `slot-atomic-ref` rule rejects direct
// construction anywhere else, so the protocol cannot quietly fork.

inline Slot slot_load_relaxed(const Slot& storage) {
  return std::atomic_ref<const Slot>(storage).load(std::memory_order_relaxed);
}

inline void slot_store_relaxed(Slot& storage, Slot value) {
  std::atomic_ref<Slot>(storage).store(value, std::memory_order_relaxed);
}

/// Sets the stale bit, returning the previous slot (Algorithm 2 line 20's
/// consume step).
inline Slot slot_consume_relaxed(Slot& storage) {
  return std::atomic_ref<Slot>(storage).fetch_or(kSlotStaleBit,
                                                 std::memory_order_relaxed);
}

// --- Active-bitmap word protocol (worklist execution mode) --------------
//
// The worklist mode (storage/active_bitmap.hpp, DESIGN.md §12) mirrors the
// two-column slot protocol with two generations of dense per-vertex bits:
// a computing actor publishes "dispatch v next superstep" by setting v's
// bit in the next generation, and dispatchers consume a generation by
// iterating and then clearing their interval's bits. Bitmap words straddle
// both computer ownership boundaries (concurrent set) and dispatcher
// interval boundaries (concurrent masked clear), so word access is always
// atomic. Relaxed ordering is sufficient for exactly the slot protocol's
// reason: the superstep barrier's mailbox handoff provides the
// happens-before between the setter's superstep and the reader's.
//
// Like the slot accessors above, these helpers are the ONE place that
// constructs atomic_ref over BitmapWord storage; the gpsa-lint
// `bitmap-atomic-ref` rule rejects direct construction anywhere else.

using BitmapWord = std::uint64_t;

inline constexpr unsigned kBitmapWordBits = 64;

inline BitmapWord bitmap_word_load_relaxed(const BitmapWord& storage) {
  return std::atomic_ref<const BitmapWord>(storage).load(
      std::memory_order_relaxed);
}

/// Publishes bits (a computing actor activating vertices for the next
/// generation). Returns the previous word.
inline BitmapWord bitmap_word_set_relaxed(BitmapWord& storage,
                                          BitmapWord bits) {
  return std::atomic_ref<BitmapWord>(storage).fetch_or(
      bits, std::memory_order_relaxed);
}

/// Clears the masked bits (a dispatcher retiring its interval's slice of a
/// consumed generation; boundary words are shared with the neighbouring
/// dispatcher's mask, hence fetch_and instead of a plain store).
inline BitmapWord bitmap_word_clear_relaxed(BitmapWord& storage,
                                            BitmapWord mask) {
  return std::atomic_ref<BitmapWord>(storage).fetch_and(
      ~mask, std::memory_order_relaxed);
}

}  // namespace gpsa
