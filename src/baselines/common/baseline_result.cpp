#include "baselines/common/baseline_result.hpp"

#include <algorithm>

namespace gpsa {

unsigned default_partition_count(std::uint64_t num_vertices) {
  // One partition per ~64k vertices, clamped to [1, 64]. Real GraphChi
  // sizes shards to memory budget; this keeps several shards in play for
  // realistic sliding-window behaviour at our scaled-down sizes.
  const std::uint64_t parts = num_vertices / 65'536;
  return static_cast<unsigned>(std::clamp<std::uint64_t>(parts, 1, 64));
}

}  // namespace gpsa
