// Shared result/options types for the baseline engines, aligned with the
// GPSA engine's RunResult so the harness can compare engines uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/io_model.hpp"
#include "storage/slot.hpp"

namespace gpsa {

struct BaselineOptions {
  /// Worker threads for phase-internal parallelism; 0 = default.
  unsigned threads = 0;
  /// Number of intervals/shards (GraphChi) or streaming partitions
  /// (X-Stream); 0 = pick from graph size.
  unsigned partitions = 0;
  /// Superstep cap in addition to Program::max_supersteps; 0 = none.
  std::uint64_t max_supersteps = 0;
  /// Working directory for shard/update files; empty = private scratch.
  std::string work_dir;
  /// X-Stream only: keep update streams in memory instead of spilling
  /// through files (the paper: "X-Stream supports both in-memory and
  /// out-of-core graphs on a single machine"). Results are identical;
  /// only the spill path changes.
  bool xstream_in_memory = false;
};

struct BaselineResult {
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;   // updates appended / edge values written
  std::uint64_t edges_streamed = 0;   // X-Stream: every edge, every superstep
  bool converged = false;
  double elapsed_seconds = 0.0;
  double preprocess_seconds = 0.0;
  std::vector<double> superstep_seconds;
  std::vector<Payload> values;
  /// Fundamental I/O volume at the system's native storage widths
  /// (metrics/io_model.hpp).
  IoStats io;
  /// Resident data at the system's native widths, for the I/O model's
  /// regime decision.
  std::uint64_t working_set_bytes = 0;
};

/// Default partition count heuristic shared by both baselines.
unsigned default_partition_count(std::uint64_t num_vertices);

}  // namespace gpsa
