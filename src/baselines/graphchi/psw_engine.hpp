// GraphChi-style Parallel Sliding Windows engine (baseline #1, §VI.B).
//
// Vertex-centric, out-of-core, selective: per superstep it makes a scatter
// pass (for every scheduled vertex, walk one sliding window per shard and
// write stamped message values onto the out-edges) followed by a gather
// pass (per interval, stream its shard and fold the freshly stamped
// in-edge values into the vertex values). Only scheduled vertices scatter
// — the selective-scheduling property the paper credits for GraphChi's
// (and GPSA's) BFS advantage over X-Stream.
//
// Deviations from real GraphChi, recorded in DESIGN.md: synchronous
// semantics (edge stamps delay visibility one superstep) so results are
// comparable across engines, and scatter/gather run as two whole-graph
// phases rather than fused per-interval updates.
#pragma once

#include "baselines/common/baseline_result.hpp"
#include "core/program.hpp"
#include "graph/edge_list.hpp"
#include "util/status.hpp"

namespace gpsa {

class PswEngine {
 public:
  static Result<BaselineResult> run(const EdgeList& graph,
                                    const Program& program,
                                    const BaselineOptions& options);
};

}  // namespace gpsa
