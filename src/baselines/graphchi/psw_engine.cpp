#include "baselines/graphchi/psw_engine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <optional>
#include <vector>

#include "baselines/graphchi/shard.hpp"
#include "platform/file_util.hpp"
#include "util/check.hpp"
#include "util/parallel_for.hpp"
#include "util/thread.hpp"
#include "util/timer.hpp"

namespace gpsa {

Result<BaselineResult> PswEngine::run(const EdgeList& graph,
                                      const Program& program,
                                      const BaselineOptions& options) {
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return invalid_argument("PswEngine: empty graph");
  }
  const unsigned threads =
      options.threads != 0 ? options.threads : default_worker_count();
  const unsigned partitions = options.partitions != 0
                                  ? options.partitions
                                  : default_partition_count(n);

  std::optional<ScratchDir> scratch;
  std::string dir = options.work_dir;
  if (dir.empty()) {
    GPSA_ASSIGN_OR_RETURN(auto s, ScratchDir::create("psw"));
    dir = s.path();
    scratch.emplace(std::move(s));
  }

  BaselineResult out;
  WallTimer preprocess_timer;
  GPSA_ASSIGN_OR_RETURN(ShardSet shards,
                        ShardSet::build(graph, partitions, dir));
  const unsigned parts = shards.num_partitions();

  // Out-degrees feed gen_msg (GraphChi vertices know their degrees).
  std::vector<std::uint32_t> out_degree(n, 0);
  for (const Edge& e : graph.edges()) {
    ++out_degree[e.src];
  }
  out.preprocess_seconds = preprocess_timer.elapsed_seconds();

  std::vector<Payload> values(n);
  std::vector<char> scheduled(n, 0);
  std::vector<char> next_scheduled(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    const Program::InitialState st = program.init(v, n);
    values[v] = st.value;
    scheduled[v] = st.active ? 1 : 0;
  }

  std::uint64_t budget = program.max_supersteps();
  if (options.max_supersteps != 0) {
    budget = std::min(budget, options.max_supersteps);
  }

  WallTimer total_timer;
  // Per-shard count of freshly stamped edges, for gather-side skipping
  // (GraphChi's selective scheduling skips intervals with no work), plus
  // block-granular dirty flags: GraphChi performs shard I/O in blocks, so
  // both the write-back and the gather re-read touch only blocks that
  // actually contain fresh edges. Blocks are kBlockEdges edges.
  constexpr std::uint64_t kBlockEdges = 4096;
  constexpr std::uint64_t kBlockBytes = kBlockEdges * 8;  // modeled width
  std::vector<std::atomic<std::uint64_t>> stamped_in_shard(parts);
  std::vector<std::vector<std::atomic<std::uint8_t>>> block_flags(parts);
  for (unsigned q = 0; q < parts; ++q) {
    const std::uint64_t blocks =
        (shards.shard(q).size() + kBlockEdges - 1) / kBlockEdges;
    block_flags[q] = std::vector<std::atomic<std::uint8_t>>(
        std::max<std::uint64_t>(blocks, 1));
  }

  for (std::uint64_t s = 0; s < budget; ++s) {
    WallTimer superstep_timer;
    const auto stamp = static_cast<std::uint32_t>(s);
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> io_read{0};
    std::atomic<std::uint64_t> io_written{0};
    for (auto& c : stamped_in_shard) {
      c.store(0, std::memory_order_relaxed);
    }
    for (auto& flags : block_flags) {
      for (auto& f : flags) {
        f.store(0, std::memory_order_relaxed);
      }
    }

    // Intervals with no scheduled vertex are skipped outright.
    std::vector<std::uint64_t> scheduled_in_interval(parts, 0);
    for (unsigned p = 0; p < parts; ++p) {
      for (VertexId v = shards.interval_begin(p); v < shards.interval_end(p);
           ++v) {
        scheduled_in_interval[p] += scheduled[v];
      }
    }

    // --- Scatter: per interval, walk one sliding window per shard. -------
    parallel_for_blocks(0, parts, threads, [&](std::uint64_t lo,
                                               std::uint64_t hi,
                                               unsigned /*block*/) {
      std::uint64_t local_messages = 0;
      std::uint64_t local_read = 0;
      std::vector<std::uint64_t> local_stamped(parts, 0);
      for (unsigned p = static_cast<unsigned>(lo); p < hi; ++p) {
        if (scheduled_in_interval[p] == 0) {
          continue;  // no scheduled vertex: the windows are never loaded
        }
        // One cursor per shard, advanced monotonically as v increases —
        // the sliding window.
        std::vector<std::uint64_t> cursor(parts);
        std::vector<std::uint64_t> window_end(parts);
        for (unsigned q = 0; q < parts; ++q) {
          cursor[q] = shards.window_begin(q, p);
          window_end[q] = shards.window_end(q, p);
        }
        for (VertexId v = shards.interval_begin(p);
             v < shards.interval_end(p); ++v) {
          if (!scheduled[v]) {
            // Still slide the cursors past v's edges.
            for (unsigned q = 0; q < parts; ++q) {
              auto shard = shards.shard(q);
              while (cursor[q] < window_end[q] &&
                     shard[cursor[q]].src == v) {
                ++cursor[q];
              }
            }
            continue;
          }
          const Payload value = values[v];
          const std::uint32_t degree = out_degree[v];
          for (unsigned q = 0; q < parts; ++q) {
            auto shard = shards.shard(q);
            while (cursor[q] < window_end[q] && shard[cursor[q]].src == v) {
              ShardEdge& edge = shard[cursor[q]];
              edge.value = program.gen_msg(v, edge.dst, value, degree);
              edge.stamp = stamp;
              block_flags[q][cursor[q] / kBlockEdges].store(
                  1, std::memory_order_relaxed);
              ++local_messages;
              ++local_stamped[q];
              ++cursor[q];
            }
          }
        }
      }
      messages.fetch_add(local_messages, std::memory_order_relaxed);
      (void)local_read;
      // Written-back edge values: 4 B each in GraphChi's layout.
      io_written.fetch_add(4 * local_messages, std::memory_order_relaxed);
      for (unsigned q = 0; q < parts; ++q) {
        if (local_stamped[q] != 0) {
          stamped_in_shard[q].fetch_add(local_stamped[q],
                                        std::memory_order_relaxed);
        }
      }
    });

    // Block-granular read accounting: the scatter read each dirty block
    // before modifying it, and the gather reads it again below.
    {
      std::uint64_t dirty_block_bytes = 0;
      for (unsigned q = 0; q < parts; ++q) {
        for (const auto& f : block_flags[q]) {
          if (f.load(std::memory_order_relaxed) != 0) {
            dirty_block_bytes += kBlockBytes;
          }
        }
      }
      io_read.fetch_add(2 * dirty_block_bytes, std::memory_order_relaxed);
    }

    // --- Gather: per interval, stream its shard, fold fresh stamps. ------
    parallel_for_blocks(0, parts, threads, [&](std::uint64_t lo,
                                               std::uint64_t hi,
                                               unsigned /*block*/) {
      for (unsigned q = static_cast<unsigned>(lo); q < hi; ++q) {
        if (stamped_in_shard[q].load(std::memory_order_relaxed) == 0) {
          // No fresh in-edges anywhere in this shard: nothing to fold,
          // but next-superstep scheduling still needs clearing.
          std::fill(next_scheduled.begin() + shards.interval_begin(q),
                    next_scheduled.begin() + shards.interval_end(q), 0);
          continue;
        }
        const VertexId begin = shards.interval_begin(q);
        const VertexId end = shards.interval_end(q);
        std::vector<Payload> acc(end - begin);
        std::vector<char> touched(end - begin, 0);
        // Stream only the dirty blocks (GraphChi's block-level shard I/O).
        const auto shard = shards.shard(q);
        for (std::uint64_t b = 0; b < block_flags[q].size(); ++b) {
          if (block_flags[q][b].load(std::memory_order_relaxed) == 0) {
            continue;
          }
          const std::uint64_t first = b * kBlockEdges;
          const std::uint64_t last =
              std::min<std::uint64_t>(first + kBlockEdges, shard.size());
          for (std::uint64_t i = first; i < last; ++i) {
            const ShardEdge& edge = shard[i];
            if (edge.stamp != stamp) {
              continue;
            }
            const VertexId local = edge.dst - begin;
            if (!touched[local]) {
              touched[local] = 1;
              acc[local] = program.compute(
                  program.first_update(edge.dst, values[edge.dst]),
                  edge.value);
            } else {
              acc[local] = program.compute(acc[local], edge.value);
            }
          }
        }
        for (VertexId v = begin; v < end; ++v) {
          const VertexId local = v - begin;
          next_scheduled[v] = 0;
          if (touched[local] && program.changed(values[v], acc[local])) {
            values[v] = acc[local];
            next_scheduled[v] = 1;
          }
        }
      }
    });

    out.superstep_seconds.push_back(superstep_timer.elapsed_seconds());
    out.total_messages += messages.load();
    out.io.bytes_read += io_read.load();
    out.io.bytes_written += io_written.load();
    ++out.supersteps;
    scheduled.swap(next_scheduled);
    if (messages.load() == 0) {
      out.converged = true;
      break;
    }
  }
  out.elapsed_seconds = total_timer.elapsed_seconds();
  // Shards at GraphChi's 8 B/edge plus the vertex value array.
  out.working_set_bytes =
      8 * graph.num_edges() + 4 * static_cast<std::uint64_t>(n);
  out.values = std::move(values);
  return out;
}

}  // namespace gpsa
