#include "baselines/graphchi/shard.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gpsa {
namespace {

unsigned find_interval(const std::vector<VertexId>& boundaries, VertexId v) {
  // boundaries[0] == 0 <= v < boundaries.back(); the owning interval p
  // satisfies boundaries[p] <= v < boundaries[p+1].
  const auto it = std::upper_bound(boundaries.begin(), boundaries.end(), v);
  GPSA_DCHECK(it != boundaries.begin() && it != boundaries.end());
  return static_cast<unsigned>(it - boundaries.begin() - 1);
}

}  // namespace

Result<ShardSet> ShardSet::build(const EdgeList& graph, unsigned partitions,
                                 const std::string& dir) {
  if (partitions == 0) {
    return invalid_argument("ShardSet::build: partitions must be >= 1");
  }
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return invalid_argument("ShardSet::build: empty graph");
  }
  ShardSet out;
  out.num_vertices_ = n;
  out.num_edges_ = graph.num_edges();
  partitions = std::min<unsigned>(partitions, n);

  out.boundaries_.resize(partitions + 1);
  for (unsigned p = 0; p <= partitions; ++p) {
    out.boundaries_[p] = static_cast<VertexId>(
        (static_cast<std::uint64_t>(n) * p) / partitions);
  }

  // Bucket edges by destination interval.
  std::vector<std::vector<ShardEdge>> buckets(partitions);
  for (const Edge& e : graph.edges()) {
    GPSA_CHECK(e.src < n && e.dst < n);
    const unsigned q = find_interval(out.boundaries_, e.dst);
    buckets[q].push_back(
        ShardEdge{e.src, e.dst, 0, ShardEdge::kNeverStamped});
  }

  out.shards_.reserve(partitions);
  out.shard_sizes_.reserve(partitions);
  out.windows_.resize(partitions);
  for (unsigned q = 0; q < partitions; ++q) {
    auto& bucket = buckets[q];
    std::sort(bucket.begin(), bucket.end(),
              [](const ShardEdge& a, const ShardEdge& b) {
                return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
    // Persist the shard and map it read-write. Zero-length files cannot be
    // mapped, so an empty shard gets one placeholder slot; shard_sizes_
    // keeps the logical edge count.
    const std::string path = dir + "/shard." + std::to_string(q);
    const std::size_t bytes =
        std::max<std::size_t>(bucket.size(), 1) * sizeof(ShardEdge);
    GPSA_ASSIGN_OR_RETURN(MmapFile map, MmapFile::create(path, bytes));
    std::copy(bucket.begin(), bucket.end(), map.as_span<ShardEdge>().begin());
    // Window index: boundaries of src intervals within the sorted shard.
    auto& win = out.windows_[q];
    win.resize(partitions + 1);
    std::uint64_t cursor = 0;
    for (unsigned p = 0; p < partitions; ++p) {
      win[p] = cursor;
      const VertexId hi = out.boundaries_[p + 1];
      while (cursor < bucket.size() && bucket[cursor].src < hi) {
        ++cursor;
      }
    }
    win[partitions] = cursor;
    out.shards_.push_back(std::move(map));
    out.shard_sizes_.push_back(bucket.size());
    bucket.clear();
    bucket.shrink_to_fit();
  }
  return out;
}

unsigned ShardSet::interval_of(VertexId v) const {
  return find_interval(boundaries_, v);
}

}  // namespace gpsa
