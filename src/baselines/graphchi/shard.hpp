// Shard storage for the GraphChi-style PSW baseline.
//
// Following GraphChi's Parallel Sliding Windows layout: vertices are split
// into P equal intervals; shard q holds every edge whose *destination*
// lies in interval q, sorted by *source*. Because of the source ordering,
// the out-edges of interval p inside shard q form one contiguous block —
// the "window" (q, p) — so a full scatter pass over interval p touches one
// sliding window per shard, all sequentially.
//
// Each edge slot carries a message value and the superstep stamp it was
// written for; the gather pass of superstep s consumes exactly the slots
// stamped s. This gives the baseline synchronous (Pregel-equivalent)
// semantics so its results are comparable with GPSA and the reference
// executor (real GraphChi also supports async execution; see DESIGN.md).
//
// Shards live in memory-mapped files under the engine's working
// directory, as in the real system.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "platform/mmap_file.hpp"
#include "storage/slot.hpp"
#include "util/status.hpp"

namespace gpsa {

struct ShardEdge {
  VertexId src;
  VertexId dst;
  Payload value;
  std::uint32_t stamp;  // superstep this value targets; kNeverStamped if none

  static constexpr std::uint32_t kNeverStamped = 0xffff'ffffU;
};
static_assert(sizeof(ShardEdge) == 16);

class ShardSet {
 public:
  /// Buckets, sorts, and writes the P shards plus window indices.
  static Result<ShardSet> build(const EdgeList& graph, unsigned partitions,
                                const std::string& dir);

  unsigned num_partitions() const {
    return static_cast<unsigned>(shards_.size());
  }
  VertexId num_vertices() const { return num_vertices_; }
  EdgeCount num_edges() const { return num_edges_; }

  VertexId interval_begin(unsigned p) const { return boundaries_[p]; }
  VertexId interval_end(unsigned p) const { return boundaries_[p + 1]; }

  /// Mutable view of shard q's edges (dst in interval q, sorted by src).
  std::span<ShardEdge> shard(unsigned q) {
    return shards_[q].as_span<ShardEdge>().subspan(0, shard_sizes_[q]);
  }
  std::span<const ShardEdge> shard(unsigned q) const {
    return shards_[q].as_span<const ShardEdge>().subspan(0, shard_sizes_[q]);
  }

  /// Window (q, p): index range within shard q of edges with src in
  /// interval p.
  std::uint64_t window_begin(unsigned q, unsigned p) const {
    return windows_[q][p];
  }
  std::uint64_t window_end(unsigned q, unsigned p) const {
    return windows_[q][p + 1];
  }

  /// Interval owning vertex v.
  unsigned interval_of(VertexId v) const;

 private:
  VertexId num_vertices_ = 0;
  EdgeCount num_edges_ = 0;
  std::vector<VertexId> boundaries_;         // P+1
  std::vector<MmapFile> shards_;             // P mappings
  std::vector<std::uint64_t> shard_sizes_;   // edges per shard
  std::vector<std::vector<std::uint64_t>> windows_;  // P x (P+1)
};

}  // namespace gpsa
