#include "baselines/xstream/xstream_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>
#include <vector>

#include "platform/file_util.hpp"
#include "util/check.hpp"
#include "util/parallel_for.hpp"
#include "util/thread.hpp"
#include "util/timer.hpp"

namespace gpsa {
namespace {

struct Update {
  VertexId dst;
  Payload value;
};

/// Append-only spill stream for one (source partition -> dest partition)
/// update flow. Out-of-core mode buffers through a file (sequential
/// writes, sequential read-back, truncated between supersteps); in-memory
/// mode (the paper's other X-Stream configuration) keeps the stream in a
/// vector. The gather path is identical either way.
class UpdateStream {
 public:
  UpdateStream(std::string path, bool in_memory)
      : path_(std::move(path)), in_memory_(in_memory) {}

  Status append(const std::vector<Update>& updates) {
    if (in_memory_) {
      buffer_.insert(buffer_.end(), updates.begin(), updates.end());
      return Status::ok();
    }
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    if (f == nullptr) {
      return io_error_errno("UpdateStream: open " + path_);
    }
    const std::size_t written =
        std::fwrite(updates.data(), sizeof(Update), updates.size(), f);
    std::fclose(f);
    if (written != updates.size()) {
      return io_error("UpdateStream: short write to " + path_);
    }
    return Status::ok();
  }

  Result<std::vector<Update>> read_all() const {
    if (in_memory_) {
      return buffer_;
    }
    std::vector<Update> out;
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) {
      return out;  // never written this superstep
    }
    Update buffer[4096];
    std::size_t got = 0;
    while ((got = std::fread(buffer, sizeof(Update), 4096, f)) > 0) {
      out.insert(out.end(), buffer, buffer + got);
    }
    std::fclose(f);
    return out;
  }

  void reset() {
    if (in_memory_) {
      buffer_.clear();
      return;
    }
    (void)remove_file(path_);
  }

 private:
  std::string path_;
  bool in_memory_;
  std::vector<Update> buffer_;
};

}  // namespace

Result<BaselineResult> XStreamEngine::run(const EdgeList& graph,
                                          const Program& program,
                                          const BaselineOptions& options) {
  const VertexId n = graph.num_vertices();
  if (n == 0) {
    return invalid_argument("XStreamEngine: empty graph");
  }
  const unsigned threads =
      options.threads != 0 ? options.threads : default_worker_count();
  const unsigned partitions = std::min<unsigned>(
      options.partitions != 0 ? options.partitions
                              : default_partition_count(n),
      n);

  std::optional<ScratchDir> scratch;
  std::string dir = options.work_dir;
  if (dir.empty()) {
    GPSA_ASSIGN_OR_RETURN(auto s, ScratchDir::create("xstream"));
    dir = s.path();
    scratch.emplace(std::move(s));
  }

  BaselineResult out;
  WallTimer preprocess_timer;

  // Partition boundaries (equal vertex ranges) and per-partition edge
  // arrays (edges bucketed by source partition — X-Stream's layout; no
  // sorting, "streaming completely unordered edge lists").
  std::vector<VertexId> boundaries(partitions + 1);
  for (unsigned p = 0; p <= partitions; ++p) {
    boundaries[p] =
        static_cast<VertexId>((static_cast<std::uint64_t>(n) * p) / partitions);
  }
  const auto partition_of = [&boundaries](VertexId v) {
    const auto it = std::upper_bound(boundaries.begin(), boundaries.end(), v);
    return static_cast<unsigned>(it - boundaries.begin() - 1);
  };
  std::vector<std::vector<Edge>> partition_edges(partitions);
  std::vector<std::uint32_t> out_degree(n, 0);
  for (const Edge& e : graph.edges()) {
    GPSA_CHECK(e.src < n && e.dst < n);
    partition_edges[partition_of(e.src)].push_back(e);
    ++out_degree[e.src];
  }
  out.preprocess_seconds = preprocess_timer.elapsed_seconds();

  std::vector<Payload> values(n);
  std::vector<char> active(n, 0);
  std::vector<char> next_active(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    const Program::InitialState st = program.init(v, n);
    values[v] = st.value;
    active[v] = st.active ? 1 : 0;
  }

  // K x K spill streams.
  std::vector<std::vector<UpdateStream>> spill;
  spill.reserve(partitions);
  for (unsigned p = 0; p < partitions; ++p) {
    std::vector<UpdateStream> row;
    row.reserve(partitions);
    for (unsigned q = 0; q < partitions; ++q) {
      row.emplace_back(dir + "/upd." + std::to_string(p) + "." +
                           std::to_string(q),
                       options.xstream_in_memory);
    }
    spill.push_back(std::move(row));
  }

  std::uint64_t budget = program.max_supersteps();
  if (options.max_supersteps != 0) {
    budget = std::min(budget, options.max_supersteps);
  }

  WallTimer total_timer;
  for (std::uint64_t s = 0; s < budget; ++s) {
    WallTimer superstep_timer;
    std::atomic<std::uint64_t> updates_appended{0};
    std::atomic<bool> failed{false};

    // --- Scatter: stream every edge of every partition. ------------------
    parallel_for_blocks(0, partitions, threads, [&](std::uint64_t lo,
                                                    std::uint64_t hi,
                                                    unsigned /*block*/) {
      for (unsigned p = static_cast<unsigned>(lo); p < hi; ++p) {
        std::vector<std::vector<Update>> staging(partitions);
        for (const Edge& e : partition_edges[p]) {
          if (!active[e.src]) {
            continue;  // the edge was still streamed (counted below)
          }
          staging[partition_of(e.dst)].push_back(Update{
              e.dst,
              program.gen_msg(e.src, e.dst, values[e.src], out_degree[e.src])});
        }
        for (unsigned q = 0; q < partitions; ++q) {
          if (staging[q].empty()) {
            continue;
          }
          updates_appended.fetch_add(staging[q].size(),
                                     std::memory_order_relaxed);
          if (!spill[p][q].append(staging[q]).is_ok()) {
            failed.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
    out.edges_streamed += graph.num_edges();  // every edge, every superstep
    // Edge-centric streaming: 8 B per edge read, 8 B per update written.
    out.io.bytes_read += 8 * graph.num_edges();
    out.io.bytes_written += 8 * updates_appended.load();
    if (failed.load()) {
      return io_error("XStreamEngine: update spill failed");
    }

    // --- Gather: stream each destination partition's update files. -------
    parallel_for_blocks(0, partitions, threads, [&](std::uint64_t lo,
                                                    std::uint64_t hi,
                                                    unsigned /*block*/) {
      for (unsigned q = static_cast<unsigned>(lo); q < hi; ++q) {
        const VertexId begin = boundaries[q];
        const VertexId end = boundaries[q + 1];
        std::vector<Payload> acc(end - begin);
        std::vector<char> touched(end - begin, 0);
        for (unsigned p = 0; p < partitions; ++p) {
          auto updates = spill[p][q].read_all();
          if (!updates.is_ok()) {
            failed.store(true, std::memory_order_relaxed);
            continue;
          }
          for (const Update& u : updates.value()) {
            const VertexId local = u.dst - begin;
            if (!touched[local]) {
              touched[local] = 1;
              acc[local] = program.compute(
                  program.first_update(u.dst, values[u.dst]), u.value);
            } else {
              acc[local] = program.compute(acc[local], u.value);
            }
          }
          spill[p][q].reset();
        }
        for (VertexId v = begin; v < end; ++v) {
          const VertexId local = v - begin;
          next_active[v] = 0;
          if (touched[local] && program.changed(values[v], acc[local])) {
            values[v] = acc[local];
            next_active[v] = 1;
          }
        }
      }
    });
    if (failed.load()) {
      return io_error("XStreamEngine: update read-back failed");
    }
    // Gather reads every spilled update back: 8 B per update.
    out.io.bytes_read += 8 * updates_appended.load();

    out.superstep_seconds.push_back(superstep_timer.elapsed_seconds());
    out.total_messages += updates_appended.load();
    ++out.supersteps;
    active.swap(next_active);
    if (updates_appended.load() == 0) {
      out.converged = true;
      break;
    }
  }
  out.elapsed_seconds = total_timer.elapsed_seconds();
  // Edge lists, vertex values, and one superstep of update spill
  // (approximated by the per-superstep average).
  const std::uint64_t avg_updates =
      out.total_messages / std::max<std::uint64_t>(out.supersteps, 1);
  out.working_set_bytes = 8 * graph.num_edges() +
                          4 * static_cast<std::uint64_t>(n) +
                          8 * avg_updates;
  out.values = std::move(values);
  return out;
}

}  // namespace gpsa
