// X-Stream-style edge-centric scatter-gather engine (baseline #2, §VI.B).
//
// Vertices are split into K streaming partitions; each partition owns its
// vertex state slice and the edge list of edges originating in it. Every
// superstep runs:
//
//   scatter: stream EVERY edge of every partition (this is the defining
//            X-Stream property — "X-Stream iterates over each edge every
//            superstep"); edges whose source is active append an update
//            (dst, gen_msg(...)) to the update file of the destination's
//            partition;
//   gather:  stream each partition's update files and fold them into the
//            vertex values with the shared Program semantics.
//
// Updates spill through per-(source, destination)-partition files in the
// working directory, reproducing the sequential-streaming I/O pattern;
// `edges_streamed` counts the full-edge scans that make BFS/CC expensive
// for X-Stream in the paper's Figures 8-10.
#pragma once

#include "baselines/common/baseline_result.hpp"
#include "core/program.hpp"
#include "graph/edge_list.hpp"
#include "util/status.hpp"

namespace gpsa {

class XStreamEngine {
 public:
  static Result<BaselineResult> run(const EdgeList& graph,
                                    const Program& program,
                                    const BaselineOptions& options);
};

}  // namespace gpsa
