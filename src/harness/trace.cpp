#include "harness/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace gpsa {

Status write_run_trace_csv(const RunResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return io_error("write_run_trace_csv: cannot open " + path);
  }
  out << "superstep,seconds,messages,updates\n";
  for (std::size_t s = 0; s < result.superstep_seconds.size(); ++s) {
    out << s << ',' << result.superstep_seconds[s] << ','
        << result.superstep_messages[s] << ',' << result.superstep_updates[s]
        << '\n';
  }
  if (!out) {
    return io_error("write_run_trace_csv: short write to " + path);
  }
  return Status::ok();
}

std::string format_run_trace(const RunResult& result) {
  std::string out = "superstep  seconds    messages    updates\n";
  const std::uint64_t peak = result.superstep_messages.empty()
                                 ? 1
                                 : std::max<std::uint64_t>(
                                       1, *std::max_element(
                                              result.superstep_messages.begin(),
                                              result.superstep_messages.end()));
  for (std::size_t s = 0; s < result.superstep_seconds.size(); ++s) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-9zu  %-9.5f  %-10llu  %-9llu  ", s,
                  result.superstep_seconds[s],
                  static_cast<unsigned long long>(result.superstep_messages[s]),
                  static_cast<unsigned long long>(result.superstep_updates[s]));
    out += line;
    const int bars = static_cast<int>(
        40.0 * static_cast<double>(result.superstep_messages[s]) /
        static_cast<double>(peak));
    out.append(static_cast<std::size_t>(bars), '#');
    out += '\n';
  }
  return out;
}

}  // namespace gpsa
