// Superstep trace export: per-superstep timings/messages/updates as CSV
// for offline analysis and plotting (every RunResult carries the series).
#pragma once

#include <string>

#include "core/engine.hpp"
#include "util/status.hpp"

namespace gpsa {

/// Writes "superstep,seconds,messages,updates" rows.
Status write_run_trace_csv(const RunResult& result, const std::string& path);

/// Renders the same series as an inline text sparkline table (examples).
std::string format_run_trace(const RunResult& result);

}  // namespace gpsa
