#include "harness/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "platform/file_util.hpp"
#include "util/check.hpp"

namespace gpsa {

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(2 * container_has_items_.size(), ' ');
}

void JsonWriter::prepare_slot() {
  // A keyed slot ("key": _) already placed its comma/indent with the key.
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (container_has_items_.empty()) {
    return;  // root value
  }
  if (container_has_items_.back()) {
    out_ += ',';
  }
  container_has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  prepare_slot();
  out_ += '{';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  GPSA_CHECK(!container_has_items_.empty() && !pending_key_);
  const bool had_items = container_has_items_.back();
  container_has_items_.pop_back();
  if (had_items) {
    newline_indent();
  }
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_slot();
  out_ += '[';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  GPSA_CHECK(!container_has_items_.empty() && !pending_key_);
  const bool had_items = container_has_items_.back();
  container_has_items_.pop_back();
  if (had_items) {
    newline_indent();
  }
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  GPSA_CHECK(!container_has_items_.empty() && !pending_key_);
  if (container_has_items_.back()) {
    out_ += ',';
  }
  container_has_items_.back() = true;
  newline_indent();
  append_escaped(name);
  out_ += ": ";
  pending_key_ = true;  // the next value/begin fills this slot directly
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prepare_slot();
  append_escaped(text);
  return *this;
}

void JsonWriter::append_escaped(std::string_view text) {
  out_ += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::value(double number) {
  prepare_slot();
  if (!std::isfinite(number)) {
    number = 0.0;  // keep the document parseable; the gate fails on value
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  prepare_slot();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  prepare_slot();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  prepare_slot();
  out_ += flag ? "true" : "false";
  return *this;
}

Status write_bench_json(const JsonWriter& w) {
  const char* path = std::getenv("GPSA_BENCH_JSON");
  if (path == nullptr || *path == '\0') {
    return Status::ok();
  }
  std::string doc = w.str();
  doc += '\n';
  GPSA_RETURN_IF_ERROR(write_file(path, doc.data(), doc.size()));
  std::printf("\nwrote %s\n", path);
  return Status::ok();
}

}  // namespace gpsa
