#include "harness/experiment.hpp"

#include <cstdlib>
#include <memory>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/pagerank.hpp"
#include "baselines/graphchi/psw_engine.hpp"
#include "baselines/xstream/xstream_engine.hpp"
#include "core/engine.hpp"
#include "metrics/cpu_monitor.hpp"
#include "metrics/table.hpp"
#include "util/logging.hpp"
#include "util/thread.hpp"

namespace gpsa {

std::string system_name(SystemKind system) {
  switch (system) {
    case SystemKind::kGpsa:
      return "GPSA";
    case SystemKind::kGraphChi:
      return "GraphChi-PSW";
    case SystemKind::kXStream:
      return "X-Stream";
  }
  return "?";
}

std::string algo_name(AlgoKind algo) {
  switch (algo) {
    case AlgoKind::kPageRank:
      return "PageRank";
    case AlgoKind::kConnectedComponents:
      return "CC";
    case AlgoKind::kBfs:
      return "BFS";
  }
  return "?";
}

std::vector<SystemKind> all_systems() {
  return {SystemKind::kGpsa, SystemKind::kGraphChi, SystemKind::kXStream};
}

std::vector<AlgoKind> paper_algos() {
  return {AlgoKind::kPageRank, AlgoKind::kConnectedComponents,
          AlgoKind::kBfs};
}

ExperimentOptions ExperimentOptions::from_env() {
  ExperimentOptions out;
  if (const char* env = std::getenv("GPSA_BENCH_SCALE")) {
    const double parsed = std::strtod(env, nullptr);
    if (parsed > 0.0) {
      out.scale = parsed;
    }
  }
  if (const char* env = std::getenv("GPSA_BENCH_RUNS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      out.runs = static_cast<unsigned>(parsed);
    }
  }
  return out;
}

namespace {

std::unique_ptr<Program> make_program(AlgoKind algo,
                                      std::uint64_t supersteps) {
  switch (algo) {
    case AlgoKind::kPageRank:
      return std::make_unique<PageRankProgram>(supersteps);
    case AlgoKind::kConnectedComponents:
      return std::make_unique<ConnectedComponentsProgram>();
    case AlgoKind::kBfs:
      return std::make_unique<BfsProgram>(/*root=*/0);
  }
  GPSA_UNREACHABLE("invalid AlgoKind");
}

struct SingleRun {
  double seconds = 0.0;
  std::uint64_t supersteps = 0;
  std::uint64_t messages = 0;
  std::uint64_t edges_streamed = 0;
  IoStats io;
  std::uint64_t working_set = 0;
};

Result<SingleRun> run_system_once(SystemKind system, const EdgeList& graph,
                                  const Program& program,
                                  const ExperimentOptions& options) {
  SingleRun out;
  switch (system) {
    case SystemKind::kGpsa: {
      EngineOptions eo;
      const unsigned threads = options.threads != 0 ? options.threads
                                                    : default_worker_count();
      eo.num_dispatchers = std::max(1U, threads);
      eo.num_computers = std::max(1U, threads);
      eo.scheduler_workers = threads;
      eo.max_supersteps = options.supersteps;
      GPSA_ASSIGN_OR_RETURN(const RunResult r,
                            Engine::run(graph, program, eo));
      out.seconds = r.elapsed_seconds;
      out.supersteps = r.supersteps;
      out.messages = r.total_messages;
      out.io = r.io;
      out.working_set = r.working_set_bytes;
      return out;
    }
    case SystemKind::kGraphChi: {
      BaselineOptions bo;
      bo.threads = options.threads;
      bo.max_supersteps = options.supersteps;
      GPSA_ASSIGN_OR_RETURN(const BaselineResult r,
                            PswEngine::run(graph, program, bo));
      out.seconds = r.elapsed_seconds;
      out.supersteps = r.supersteps;
      out.messages = r.total_messages;
      out.io = r.io;
      out.working_set = r.working_set_bytes;
      return out;
    }
    case SystemKind::kXStream: {
      BaselineOptions bo;
      bo.threads = options.threads;
      bo.max_supersteps = options.supersteps;
      GPSA_ASSIGN_OR_RETURN(const BaselineResult r,
                            XStreamEngine::run(graph, program, bo));
      out.seconds = r.elapsed_seconds;
      out.supersteps = r.supersteps;
      out.messages = r.total_messages;
      out.edges_streamed = r.edges_streamed;
      out.io = r.io;
      out.working_set = r.working_set_bytes;
      return out;
    }
  }
  GPSA_UNREACHABLE("invalid SystemKind");
}

}  // namespace

EdgeList symmetrize(const EdgeList& graph) {
  EdgeList out;
  out.ensure_vertices(graph.num_vertices());
  out.edges().reserve(graph.num_edges() * 2);
  for (const Edge& e : graph.edges()) {
    out.add_edge(e.src, e.dst);
    out.add_edge(e.dst, e.src);
  }
  out.canonicalize();
  return out;
}

EdgeList prepare_graph(PaperGraph dataset, AlgoKind algo,
                       const ExperimentOptions& options) {
  EdgeList graph =
      generate_paper_graph(dataset, options.scale, options.seed);
  if (algo == AlgoKind::kConnectedComponents) {
    return symmetrize(graph);
  }
  return graph;
}

Result<CellResult> run_cell(SystemKind system, AlgoKind algo,
                            const EdgeList& graph,
                            const ExperimentOptions& options) {
  const auto program = make_program(algo, options.supersteps);
  CellResult cell;
  cell.system = system;
  cell.algo = algo;
  double total_seconds = 0.0;
  double cpu_percent = 0.0;
  double cpu_peak = 0.0;
  for (unsigned r = 0; r < options.runs; ++r) {
    std::optional<CpuMonitor> monitor;
    if (options.measure_cpu) {
      monitor.emplace();
      monitor->start();
    }
    GPSA_ASSIGN_OR_RETURN(const SingleRun run,
                          run_system_once(system, graph, *program, options));
    if (monitor) {
      const CpuMonitor::Report report = monitor->stop();
      cpu_percent += report.mean_percent_of_machine;
      cpu_peak = std::max(cpu_peak, report.peak_cores);
    }
    total_seconds += run.seconds;
    cell.supersteps = run.supersteps;
    cell.messages = run.messages;
    cell.edges_streamed = run.edges_streamed;
    cell.io_bytes = run.io.total();
    cell.working_set_bytes = run.working_set;
  }
  cell.avg_seconds = total_seconds / options.runs;
  cell.avg_superstep_seconds =
      cell.supersteps == 0
          ? 0.0
          : cell.avg_seconds / static_cast<double>(cell.supersteps);
  {
    IoStats io;
    io.bytes_read = cell.io_bytes;  // priced as one total transfer volume
    cell.modeled_seconds = modeled_out_of_core_seconds(
        cell.avg_seconds, io, cell.working_set_bytes);
  }
  if (options.measure_cpu) {
    cell.cpu_mean_percent = cpu_percent / options.runs;
    cell.cpu_peak_cores = cpu_peak;
  }
  return cell;
}

Result<std::vector<CellResult>> run_figure(PaperGraph dataset,
                                           const ExperimentOptions& options,
                                           const std::string& title) {
  const DatasetSpec spec = paper_dataset_spec(dataset);
  std::vector<CellResult> cells;
  TextTable table({"algorithm", "system", "measured (s)", "io (MB)",
                   "modeled ooc (s)", "vs GPSA", "supersteps", "messages"});
  for (AlgoKind algo : paper_algos()) {
    const EdgeList graph = prepare_graph(dataset, algo, options);
    double gpsa_modeled = 0.0;
    for (SystemKind system : all_systems()) {
      GPSA_ASSIGN_OR_RETURN(const CellResult cell,
                            run_cell(system, algo, graph, options));
      cells.push_back(cell);
      if (system == SystemKind::kGpsa) {
        gpsa_modeled = cell.modeled_seconds;
      }
      const double ratio =
          gpsa_modeled > 0.0 ? cell.modeled_seconds / gpsa_modeled : 1.0;
      table.add_row({algo_name(algo), system_name(system),
                     TextTable::num(cell.avg_seconds, 4),
                     TextTable::num(static_cast<double>(cell.io_bytes) /
                                        (1024.0 * 1024.0),
                                    1),
                     TextTable::num(cell.modeled_seconds, 4),
                     TextTable::num(ratio, 2) + "x",
                     TextTable::num(cell.supersteps),
                     TextTable::num(cell.messages)});
    }
  }
  std::printf("== %s — dataset %s (stand-in, scale %.3g, |V| target %u) ==\n",
              title.c_str(), spec.name.c_str(), options.scale,
              spec.stand_in_vertices);
  table.print();
  std::printf(
      "\nmodeled ooc: measured time + fundamental I/O volume priced at the "
      "paper's disk class (GPSA_MODEL_DISK_MBPS, default 120); see "
      "metrics/io_model.hpp and EXPERIMENTS.md.\n\n");
  return cells;
}

}  // namespace gpsa
