// Shared experiment driver for the benchmark binaries.
//
// Reproduces the paper's measurement protocol (§VI.B): each (system,
// algorithm, dataset) cell runs `runs` times (paper: 3) over
// `supersteps` supersteps (paper: 5) and reports the average elapsed
// time; connected components runs on the symmetrized graph (undirected
// semantics). Environment knobs honoured by every bench binary:
//
//   GPSA_BENCH_SCALE  dataset scale multiplier (default 0.25; 1.0 is the
//                     full stand-in size from DESIGN.md)
//   GPSA_BENCH_RUNS   repetitions per cell (default 3)
//   GPSA_THREADS      worker threads for every engine
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "util/status.hpp"

namespace gpsa {

enum class SystemKind { kGpsa, kGraphChi, kXStream };
enum class AlgoKind { kPageRank, kConnectedComponents, kBfs };

std::string system_name(SystemKind system);
std::string algo_name(AlgoKind algo);
std::vector<SystemKind> all_systems();
std::vector<AlgoKind> paper_algos();

struct ExperimentOptions {
  double scale = 0.25;        // dataset scale multiplier
  unsigned runs = 3;          // repetitions per cell (paper: 3)
  std::uint64_t supersteps = 5;  // timing window (paper: 5)
  unsigned threads = 0;       // 0 = default_worker_count()
  std::uint64_t seed = 42;
  bool measure_cpu = false;   // attach a CpuMonitor per run

  /// Reads GPSA_BENCH_SCALE / GPSA_BENCH_RUNS on top of the defaults.
  static ExperimentOptions from_env();
};

struct CellResult {
  SystemKind system;
  AlgoKind algo;
  double avg_seconds = 0.0;          // mean elapsed over runs
  double avg_superstep_seconds = 0.0;
  std::uint64_t supersteps = 0;
  std::uint64_t messages = 0;        // per run
  std::uint64_t edges_streamed = 0;  // X-Stream only
  double cpu_mean_percent = 0.0;     // when measure_cpu
  double cpu_peak_cores = 0.0;
  /// Fundamental I/O volume per run and the modeled out-of-core time
  /// (metrics/io_model.hpp) — the figure the paper's disk-bound numbers
  /// correspond to.
  std::uint64_t io_bytes = 0;
  std::uint64_t working_set_bytes = 0;
  double modeled_seconds = 0.0;
};

/// Runs one (system, algorithm) cell on `graph` (already symmetrized for
/// CC by the caller via prepare_graph).
Result<CellResult> run_cell(SystemKind system, AlgoKind algo,
                            const EdgeList& graph,
                            const ExperimentOptions& options);

/// Dataset preparation: generates the stand-in and symmetrizes when the
/// algorithm needs undirected semantics.
EdgeList prepare_graph(PaperGraph dataset, AlgoKind algo,
                       const ExperimentOptions& options);

/// Adds the reverse of every edge (then canonicalizes).
EdgeList symmetrize(const EdgeList& graph);

/// Full figure: all systems x the paper's three algorithms on one dataset,
/// printed as a table. Returns the cells for further inspection.
Result<std::vector<CellResult>> run_figure(PaperGraph dataset,
                                           const ExperimentOptions& options,
                                           const std::string& title);

}  // namespace gpsa
