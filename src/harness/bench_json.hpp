// Minimal JSON emitter for the bench binaries.
//
// Every ablation bench honours GPSA_BENCH_JSON=<path> by dumping its
// result cells for the CI gate scripts (scripts/check_*.py). The format
// those scripts need is flat — an object of scalars and arrays of
// flat objects — so this is an append-only writer with comma/indent
// bookkeeping, not a DOM: values are emitted in call order and the
// output is deterministic, which keeps bench JSON diffable across runs.
//
// Usage:
//
//   JsonWriter w;
//   w.begin_object();
//   w.key("bench").value("ablation_io");
//   w.key("cells").begin_array();
//   for (...) {
//     w.begin_object();
//     w.key("backend").value(name).key("seconds").value(seconds);
//     w.end_object();
//   }
//   w.end_array();
//   w.end_object();
//   GPSA_RETURN_IF_ERROR(write_bench_json(w));  // no-op if env unset
//
// Numbers: non-finite doubles (a cell that never ran divides 0/0) are
// emitted as 0 so the consumer sees valid JSON and fails on the *value*,
// not on a parse error.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gpsa {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the member key; the next value()/begin_*() call supplies it.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);  // escaped
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(std::int64_t{number}); }
  JsonWriter& value(unsigned number) { return value(std::uint64_t{number}); }
  JsonWriter& value(bool flag);

  /// The serialized document. Valid once every begin_* is closed.
  const std::string& str() const { return out_; }

 private:
  void prepare_slot();
  void newline_indent();
  void append_escaped(std::string_view text);

  std::string out_;
  std::vector<bool> container_has_items_;  // one flag per open container
  bool pending_key_ = false;
};

/// Writes `w.str()` to $GPSA_BENCH_JSON. Ok (and a no-op) when the
/// variable is unset — benches call this unconditionally.
Status write_bench_json(const JsonWriter& w);

}  // namespace gpsa
