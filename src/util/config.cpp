#include "util/config.hpp"

#include <charconv>

namespace gpsa {

Result<Config> Config::from_args(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string_view token(argv[i]);
    if (token.rfind("--", 0) == 0) {
      GPSA_RETURN_IF_ERROR(config.set_entry(token.substr(2)));
    } else {
      config.positional_.emplace_back(token);
    }
  }
  return config;
}

Status Config::set_entry(std::string_view entry) {
  if (entry.empty()) {
    return invalid_argument("empty config entry");
  }
  const auto eq = entry.find('=');
  if (eq == std::string_view::npos) {
    set(std::string(entry), "true");
    return Status::ok();
  }
  if (eq == 0) {
    return invalid_argument("config entry has empty key: '" +
                            std::string(entry) + "'");
  }
  set(std::string(entry.substr(0, eq)), std::string(entry.substr(eq + 1)));
  return Status::ok();
}

void Config::set(std::string key, std::string value) {
  entries_.insert_or_assign(std::move(key), std::move(value));
}

bool Config::contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::string Config::get_string(std::string_view key,
                               std::string default_value) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::move(default_value) : it->second;
}

std::int64_t Config::get_int(std::string_view key,
                             std::int64_t default_value) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return default_value;
  }
  std::int64_t out = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return default_value;
  }
  return out;
}

double Config::get_double(std::string_view key, double default_value) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return default_value;
  }
  try {
    std::size_t consumed = 0;
    const double out = std::stod(it->second, &consumed);
    return consumed == it->second.size() ? out : default_value;
  } catch (...) {
    return default_value;
  }
}

bool Config::get_bool(std::string_view key, bool default_value) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return default_value;
  }
  const auto& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") {
    return true;
  }
  if (s == "false" || s == "0" || s == "no" || s == "off") {
    return false;
  }
  return default_value;
}

}  // namespace gpsa
