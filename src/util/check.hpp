// Invariant-checking macros.
//
// GPSA_CHECK(cond)        -- always-on check; aborts with a message on failure.
// GPSA_DCHECK(cond)       -- debug-only check, compiled out in NDEBUG builds.
// GPSA_UNREACHABLE(msg)   -- marks impossible control flow.
//
// These are used for programmer errors (broken invariants). Recoverable
// conditions (bad input files, OS errors) are reported through
// gpsa::Status / gpsa::Result instead.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gpsa::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "GPSA_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace gpsa::detail

#define GPSA_CHECK(cond)                                      \
  do {                                                        \
    if (!(cond)) {                                            \
      ::gpsa::detail::check_failed(#cond, __FILE__, __LINE__); \
    }                                                         \
  } while (false)

#ifdef NDEBUG
#define GPSA_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define GPSA_DCHECK(cond) GPSA_CHECK(cond)
#endif

#define GPSA_UNREACHABLE(msg) \
  ::gpsa::detail::check_failed(msg, __FILE__, __LINE__)
