// Thread helpers: naming, concurrency sizing, and a join guard.
#pragma once

#include <string>
#include <thread>
#include <vector>

namespace gpsa {

/// Names the calling thread (visible in /proc and debuggers). Truncated to
/// the platform limit (15 chars on Linux).
void set_current_thread_name(const std::string& name);

/// Worker-count default: the GPSA_THREADS environment variable when set,
/// otherwise std::thread::hardware_concurrency() (minimum 1).
unsigned default_worker_count();

/// Joins a set of threads on destruction (exception safety for tests and
/// the scheduler shutdown paths).
class JoinGuard {
 public:
  explicit JoinGuard(std::vector<std::thread>& threads) : threads_(threads) {}
  ~JoinGuard() {
    for (auto& t : threads_) {
      if (t.joinable()) {
        t.join();
      }
    }
  }

  JoinGuard(const JoinGuard&) = delete;
  JoinGuard& operator=(const JoinGuard&) = delete;

 private:
  std::vector<std::thread>& threads_;
};

}  // namespace gpsa
