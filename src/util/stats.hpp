// Streaming and batch statistics used by the benchmark harness and the
// metrics module (per-superstep timings, CPU samples, degree distributions).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace gpsa {

/// Welford running mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const RunningStat& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch summary over a sample vector.
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string to_string() const;
};

/// Computes a Summary; sorts a copy of the input.
Summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a *sorted* sample vector, q in [0,1].
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace gpsa
