#include "util/stats.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace gpsa {

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * (n2 / total);
  m2_ += other.m2_ + delta * delta * (n1 * n2 / total);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  GPSA_CHECK(!sorted.empty());
  GPSA_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary out;
  if (samples.empty()) {
    return out;
  }
  std::sort(samples.begin(), samples.end());
  RunningStat rs;
  for (double s : samples) {
    rs.add(s);
  }
  out.count = rs.count();
  out.mean = rs.mean();
  out.stddev = rs.stddev();
  out.min = samples.front();
  out.max = samples.back();
  out.p50 = percentile_sorted(samples, 0.50);
  out.p90 = percentile_sorted(samples, 0.90);
  out.p99 = percentile_sorted(samples, 0.99);
  return out;
}

std::string Summary::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.4f sd=%.4f min=%.4f p50=%.4f p90=%.4f "
                "p99=%.4f max=%.4f",
                static_cast<unsigned long long>(count), mean, stddev, min, p50,
                p90, p99, max);
  return buf;
}

}  // namespace gpsa
