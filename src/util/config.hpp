// Flat key=value configuration used by example and benchmark binaries.
//
// Accepts `--key=value` / `--flag` command-line tokens and `key=value`
// strings. Typed getters fall back to supplied defaults; unknown keys are
// preserved so callers can validate or forward them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gpsa {

class Config {
 public:
  Config() = default;

  /// Parses argv-style tokens. Tokens that do not start with "--" are
  /// collected as positional arguments.
  static Result<Config> from_args(int argc, const char* const* argv);

  /// Parses a single "key=value" entry ("key" alone means "key=true").
  Status set_entry(std::string_view entry);

  void set(std::string key, std::string value);

  bool contains(std::string_view key) const;

  std::string get_string(std::string_view key, std::string default_value) const;
  std::int64_t get_int(std::string_view key, std::int64_t default_value) const;
  double get_double(std::string_view key, double default_value) const;
  bool get_bool(std::string_view key, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
  std::vector<std::string> positional_;
};

}  // namespace gpsa
