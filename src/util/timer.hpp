// Wall-clock timing utilities used by the engine and the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace gpsa {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t elapsed_micros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed time into a double (seconds) on destruction.
/// Used to attribute time to phases without scattering timer plumbing.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.elapsed_seconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace gpsa
