// Deterministic, seedable PRNGs.
//
// All randomized components (graph generators, property tests, workload
// shufflers) take an explicit seed so every experiment is reproducible.
// SplitMix64 seeds Xoshiro256**; both are public-domain algorithms
// (Blackman & Vigna) reimplemented here.
#pragma once

#include <bit>
#include <cstdint>

namespace gpsa {

/// SplitMix64: used to expand a single 64-bit seed into stream state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast general-purpose PRNG for generators and tests.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Unbiased via mask-and-reject: draw bit_width
  /// bits, retry above the bound (expected < 2 draws).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound < 2) {
      return 0;
    }
    const std::uint64_t mask = ~0ULL >> std::countl_zero(bound - 1);
    while (true) {
      const std::uint64_t x = next_u64() & mask;
      if (x < bound) {
        return x;
      }
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace gpsa
