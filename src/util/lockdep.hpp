// Runtime lock-order validation (lockdep; DESIGN.md §15).
//
// The static analyzer (scripts/gpsa_analyze.py) proves the absence of
// acquisition-order cycles over the *annotated* source; this module is
// the runtime half of the cross-check: when GPSA_LOCKDEP=1, every
// gpsa::Mutex acquisition records a per-thread held-lock stack, each
// (held, acquired) pair accretes an edge in a process-global order
// graph, and the first edge that closes a cycle aborts the process with
// both lock names and the full cycle in the report. The TSan CI leg runs
// the whole suite with it on, so the statically derived graph and the
// dynamically observed graph validate each other: a cycle the analyzer
// missed (through a function pointer, say) still dies loudly in CI, and
// an analyzer finding with no runtime witness is inspected, not shrugged
// off.
//
// Keying: order is tracked per *named* lock class, not per instance —
// two MessageBatchPool instances share the class "MessagePool.free", the
// classic lockdep design. Mutexes constructed without a name do not
// participate in order edges (they still detect same-instance recursive
// acquisition); the subsystem sweep names every long-lived mutex in the
// tree, and keying unnamed temporaries by address would alias freed
// addresses across short-lived locks. Same-class nesting across two
// *different* instances is deliberately not an edge either (it would be
// a self-cycle); acquiring the same instance twice aborts as recursive.
//
// The abort path writes with fprintf, never GPSA_LOG: the logging sink
// has its own named Mutex and must not be re-entered mid-report.
#pragma once

#include <atomic>
#include <cstdint>

namespace gpsa::lockdep {

namespace detail {
// 0 = not yet latched from the environment, 1 = off, 2 = on.
extern std::atomic<int> g_state;
int latch_from_env();
}  // namespace detail

/// True when lock-order tracking is active (GPSA_LOCKDEP=1 in the
/// environment, or enable_for_testing). Latched on first call; the fast
/// path is one relaxed load so release-mode acquisitions stay free.
inline bool enabled() {
  const int state = detail::g_state.load(std::memory_order_relaxed);
  if (state == 0) {
    return detail::latch_from_env() == 2;
  }
  return state == 2;
}

/// Overrides the environment latch (tests provoke inversions in forked
/// children regardless of the parent's env). Not for production code.
void enable_for_testing(bool on);

/// Records that the calling thread acquired `mutex`. `name` is the lock
/// class (nullptr = unnamed: recursion-checked but excluded from order
/// edges). Aborts with a report on the first order cycle or on a
/// same-instance recursive acquisition.
void on_acquire(const void* mutex, const char* name);

/// Records that the calling thread released `mutex` (any order, not just
/// LIFO — the drop-the-lock-around-blocking-work pattern releases out of
/// order).
void on_release(const void* mutex);

/// Order edges recorded so far (test introspection).
std::uint64_t edges_recorded();

}  // namespace gpsa::lockdep
