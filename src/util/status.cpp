#include "util/status.hpp"

#include <cerrno>
#include <cstring>

namespace gpsa {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruptData:
      return "CORRUPT_DATA";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) {
    return "OK";
  }
  std::string out(status_code_name(code_));
  out += ": ";
  out += message_;
  return out;
}

Status io_error_errno(std::string msg) {
  msg += ": ";
  msg += std::strerror(errno);
  return Status(StatusCode::kIoError, std::move(msg));
}

}  // namespace gpsa
