// Bounded single-producer single-consumer ring buffer.
//
// Lock-free and allocation-free after construction; used for metric
// sampling channels and as a comparison point in the substrate
// micro-benchmarks. Capacity is rounded up to a power of two.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <optional>
#include <vector>

#include "util/check.hpp"

namespace gpsa {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity)
      : mask_(std::bit_ceil(min_capacity < 2 ? 2 : min_capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      return std::nullopt;
    }
    std::optional<T> out(std::move(slots_[tail & mask_]));
    // Reset the vacated slot: a moved-from T may legally keep its heap
    // allocations, which would otherwise stay pinned until the ring wraps
    // all the way around to this index again.
    slots_[tail & mask_] = T{};
    tail_.store(tail + 1, std::memory_order_release);
    return out;
  }

  std::size_t approx_size() const {
    return head_.load(std::memory_order_relaxed) -
           tail_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace gpsa
