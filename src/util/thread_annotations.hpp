// Clang Thread Safety Analysis annotations (DESIGN.md §10).
//
// Every mutex-guarded structure in the concurrency substrate declares its
// locking contract with these macros and the annotated Mutex / MutexLock /
// CondVar wrappers below, so `-Wthread-safety -Werror` (the CI
// static-analysis leg) rejects lock-scope gaps at compile time instead of
// hoping TSan's schedule happens to expose them. On non-clang compilers
// the macros expand to nothing and the wrappers degrade to thin aliases
// over the <mutex>/<condition_variable> primitives they wrap.
//
// Conventions (enforced by review + the gpsa-lint locked-notify rule):
//   - shared fields:            T field_ GPSA_GUARDED_BY(mutex_);
//   - "call with lock held":    void f() GPSA_REQUIRES(mutex_);
//   - "must not hold the lock": void f() GPSA_EXCLUDES(mutex_);
//   - lambdas handed to type-erased callbacks (std::function) escape the
//     analysis; mark them GPSA_NO_THREAD_SAFETY_ANALYSIS and document the
//     lock discipline they rely on at the capture site.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/lockdep.hpp"

#if defined(__clang__) && !defined(SWIG)
#define GPSA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GPSA_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define GPSA_CAPABILITY(x) GPSA_THREAD_ANNOTATION(capability(x))
#define GPSA_SCOPED_CAPABILITY GPSA_THREAD_ANNOTATION(scoped_lockable)
#define GPSA_GUARDED_BY(x) GPSA_THREAD_ANNOTATION(guarded_by(x))
#define GPSA_PT_GUARDED_BY(x) GPSA_THREAD_ANNOTATION(pt_guarded_by(x))
#define GPSA_ACQUIRED_BEFORE(...) \
  GPSA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GPSA_ACQUIRED_AFTER(...) \
  GPSA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define GPSA_REQUIRES(...) \
  GPSA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GPSA_ACQUIRE(...) \
  GPSA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GPSA_RELEASE(...) \
  GPSA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GPSA_TRY_ACQUIRE(...) \
  GPSA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GPSA_EXCLUDES(...) GPSA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GPSA_RETURN_CAPABILITY(x) GPSA_THREAD_ANNOTATION(lock_returned(x))
#define GPSA_NO_THREAD_SAFETY_ANALYSIS \
  GPSA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gpsa {

class CondVar;

/// std::mutex carrying the `capability` attribute so GPSA_GUARDED_BY /
/// GPSA_REQUIRES declarations against it are checkable. Prefer MutexLock
/// for scoped acquisition; lock()/unlock() exist for the rare manual
/// protocols and stay annotated.
///
/// The optional `name` is the lockdep class (DESIGN.md §15): long-lived
/// subsystem mutexes pass a stable "Subsystem.role" string so GPSA_LOCKDEP
/// runs can accrete a cross-instance acquisition-order graph; unnamed
/// mutexes are tracked for recursive acquisition only. Naming costs one
/// pointer per mutex and nothing per acquisition when lockdep is off.
class GPSA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* lockdep_name) : name_(lockdep_name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GPSA_ACQUIRE() {
    // The lockdep hook runs BEFORE the raw lock: recursive acquisition
    // and established-order inversions then abort with a report instead
    // of deadlocking on the futex underneath.
    if (lockdep::enabled()) {
      lockdep::on_acquire(this, name_);
    }
    mutex_.lock();
  }
  void unlock() GPSA_RELEASE() {
    if (lockdep::enabled()) {
      lockdep::on_release(this);
    }
    mutex_.unlock();
  }
  bool try_lock() GPSA_TRY_ACQUIRE(true) {
    const bool acquired = mutex_.try_lock();
    // A successful try_lock held-set entry matters (later acquisitions
    // order against it), but a try that *fails* can never deadlock, so
    // no edge is recorded for the attempt itself.
    if (acquired && lockdep::enabled()) {
      lockdep::on_acquire(this, name_);
    }
    return acquired;
  }

  const char* lockdep_name() const { return name_; }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mutex_;
  const char* name_ = nullptr;
};

/// RAII scoped acquisition of a Mutex (std::unique_lock underneath, so
/// CondVar::wait can release/reacquire it). Mid-scope unlock()/lock() are
/// annotated for the drop-the-lock-around-blocking-work pattern.
///
/// Lockdep note: CondVar::wait releases and reacquires the underlying
/// std::mutex without touching the held-stack. That is sound: a thread
/// blocked in wait() acquires nothing, so no spurious edge can form, and
/// on return the lock is held again exactly as the stack says.
class GPSA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GPSA_ACQUIRE(mutex)
      : mutex_(&mutex), lock_(lockdep_note(mutex).mutex_) {}
  ~MutexLock() GPSA_RELEASE() {
    // unique_lock releases if still held
    if (lock_.owns_lock() && lockdep::enabled()) {
      lockdep::on_release(mutex_);
    }
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() GPSA_RELEASE() {
    if (lockdep::enabled()) {
      lockdep::on_release(mutex_);
    }
    lock_.unlock();
  }
  void lock() GPSA_ACQUIRE() {
    lockdep_note(*mutex_);
    lock_.lock();
  }

 private:
  friend class CondVar;

  /// Pre-acquisition lockdep hook (see Mutex::lock for why it runs
  /// before the raw lock). Returns the mutex so the constructor can call
  /// it inside the member-initializer list.
  static Mutex& lockdep_note(Mutex& mutex) {
    if (lockdep::enabled()) {
      lockdep::on_acquire(&mutex, mutex.name_);
    }
    return mutex;
  }

  Mutex* mutex_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with MutexLock. wait() atomically releases
/// and reacquires the lock; the analysis cannot see that round trip, so
/// callers re-check guarded predicates in the canonical
/// `while (!pred) cv.wait(lock);` shape, which is exactly what the
/// analysis expects (the capability is held at every guarded access it
/// can observe). Notifications follow the locked-notify protocol where
/// the owning file opts in (gpsa-lint rule `locked-notify`).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  /// Timed wait: false when `timeout_ms` elapsed without a notification.
  /// Callers re-check their predicate either way (same canonical loop as
  /// wait(), with a deadline cutting the loop off).
  bool wait_for_ms(MutexLock& lock, int timeout_ms) {
    return cv_.wait_for(lock.lock_, std::chrono::milliseconds(timeout_ms)) ==
           std::cv_status::no_timeout;
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gpsa
