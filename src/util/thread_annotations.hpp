// Clang Thread Safety Analysis annotations (DESIGN.md §10).
//
// Every mutex-guarded structure in the concurrency substrate declares its
// locking contract with these macros and the annotated Mutex / MutexLock /
// CondVar wrappers below, so `-Wthread-safety -Werror` (the CI
// static-analysis leg) rejects lock-scope gaps at compile time instead of
// hoping TSan's schedule happens to expose them. On non-clang compilers
// the macros expand to nothing and the wrappers degrade to thin aliases
// over the <mutex>/<condition_variable> primitives they wrap.
//
// Conventions (enforced by review + the gpsa-lint locked-notify rule):
//   - shared fields:            T field_ GPSA_GUARDED_BY(mutex_);
//   - "call with lock held":    void f() GPSA_REQUIRES(mutex_);
//   - "must not hold the lock": void f() GPSA_EXCLUDES(mutex_);
//   - lambdas handed to type-erased callbacks (std::function) escape the
//     analysis; mark them GPSA_NO_THREAD_SAFETY_ANALYSIS and document the
//     lock discipline they rely on at the capture site.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define GPSA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GPSA_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define GPSA_CAPABILITY(x) GPSA_THREAD_ANNOTATION(capability(x))
#define GPSA_SCOPED_CAPABILITY GPSA_THREAD_ANNOTATION(scoped_lockable)
#define GPSA_GUARDED_BY(x) GPSA_THREAD_ANNOTATION(guarded_by(x))
#define GPSA_PT_GUARDED_BY(x) GPSA_THREAD_ANNOTATION(pt_guarded_by(x))
#define GPSA_ACQUIRED_BEFORE(...) \
  GPSA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GPSA_ACQUIRED_AFTER(...) \
  GPSA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define GPSA_REQUIRES(...) \
  GPSA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GPSA_ACQUIRE(...) \
  GPSA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GPSA_RELEASE(...) \
  GPSA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GPSA_TRY_ACQUIRE(...) \
  GPSA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define GPSA_EXCLUDES(...) GPSA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define GPSA_RETURN_CAPABILITY(x) GPSA_THREAD_ANNOTATION(lock_returned(x))
#define GPSA_NO_THREAD_SAFETY_ANALYSIS \
  GPSA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gpsa {

class CondVar;

/// std::mutex carrying the `capability` attribute so GPSA_GUARDED_BY /
/// GPSA_REQUIRES declarations against it are checkable. Prefer MutexLock
/// for scoped acquisition; lock()/unlock() exist for the rare manual
/// protocols and stay annotated.
class GPSA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GPSA_ACQUIRE() { mutex_.lock(); }
  void unlock() GPSA_RELEASE() { mutex_.unlock(); }
  bool try_lock() GPSA_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mutex_;
};

/// RAII scoped acquisition of a Mutex (std::unique_lock underneath, so
/// CondVar::wait can release/reacquire it). Mid-scope unlock()/lock() are
/// annotated for the drop-the-lock-around-blocking-work pattern.
class GPSA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GPSA_ACQUIRE(mutex) : lock_(mutex.mutex_) {}
  ~MutexLock() GPSA_RELEASE() {}  // unique_lock releases if still held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() GPSA_RELEASE() { lock_.unlock(); }
  void lock() GPSA_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with MutexLock. wait() atomically releases
/// and reacquires the lock; the analysis cannot see that round trip, so
/// callers re-check guarded predicates in the canonical
/// `while (!pred) cv.wait(lock);` shape, which is exactly what the
/// analysis expects (the capability is held at every guarded access it
/// can observe). Notifications follow the locked-notify protocol where
/// the owning file opts in (gpsa-lint rule `locked-notify`).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  /// Timed wait: false when `timeout_ms` elapsed without a notification.
  /// Callers re-check their predicate either way (same canonical loop as
  /// wait(), with a deadline cutting the loop off).
  bool wait_for_ms(MutexLock& lock, int timeout_ms) {
    return cv_.wait_for(lock.lock_, std::chrono::milliseconds(timeout_ms)) ==
           std::cv_status::no_timeout;
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gpsa
