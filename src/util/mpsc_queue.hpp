// Unbounded multi-producer single-consumer queue with blocking consume.
//
// This is the substrate for actor mailboxes (src/actor/mailbox.hpp). The
// push path is the non-intrusive Vyukov MPSC algorithm: wait-free for
// producers (one exchange + one store). The single consumer pops in FIFO
// order with respect to each producer, and in tail-exchange linearization
// order across producers.
//
// Blocking uses an eventcount built on C++20 atomic wait/notify so that
// producers only pay a notify syscall when a consumer is actually parked.
//
// Lock-free substrate: this file is on the gpsa_lint memory-order
// allowlist (scripts/gpsa_lint.py); explicit orderings here are load-
// bearing and each carries its own justification below. Code outside the
// allowlist must use the annotated wrappers in util/thread_annotations.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "util/check.hpp"

namespace gpsa {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_ = stub;
    tail_.store(stub, std::memory_order_relaxed);
  }

  ~MpscQueue() {
    // Drain remaining nodes (including the stub).
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Producer side. Safe to call from any number of threads concurrently.
  void push(T value) {
    Node* node = new Node(std::move(value));
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    // Between the exchange and this store the queue is momentarily
    // "disconnected"; the consumer treats that window as empty.
    prev->next.store(node, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) > 0) {
      signal_.fetch_add(1, std::memory_order_relaxed);
      // Single-consumer queue: at most one thread is ever parked, so
      // notify_one suffices (notify_all was a per-push syscall broadcast
      // for a waiter set of size <= 1).
      signal_.notify_one();
    }
  }

  /// Non-blocking pop. Single consumer only.
  std::optional<T> try_pop() {
    Node* head = head_;
    Node* next = head->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      return std::nullopt;
    }
    std::optional<T> out(std::move(next->value));
    head_ = next;
    delete head;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return out;
  }

  /// Blocking pop. Single consumer only. Spins briefly, then parks.
  T pop() {
    // Fast path: spin a little to absorb producer bursts without a futex
    // round-trip.
    for (int spin = 0; spin < 64; ++spin) {
      if (auto v = try_pop()) {
        return std::move(*v);
      }
    }
    while (true) {
      const std::uint32_t ticket = signal_.load(std::memory_order_seq_cst);
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (auto v = try_pop()) {
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
        return std::move(*v);
      }
      signal_.wait(ticket, std::memory_order_seq_cst);
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      if (auto v = try_pop()) {
        return std::move(*v);
      }
    }
  }

  /// Approximate number of queued elements (exact when quiescent).
  std::size_t approx_size() const {
    return size_.load(std::memory_order_relaxed);
  }

  bool approx_empty() const { return approx_size() == 0; }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  // Consumer-owned head (points at the consumed stub).
  alignas(64) Node* head_;
  // Producer-shared tail.
  alignas(64) std::atomic<Node*> tail_;
  alignas(64) std::atomic<std::size_t> size_{0};
  // Eventcount for blocking consumers.
  std::atomic<std::uint32_t> signal_{0};
  std::atomic<std::uint32_t> sleepers_{0};
};

}  // namespace gpsa
