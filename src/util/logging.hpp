// Minimal leveled logger.
//
//   GPSA_LOG(INFO) << "loaded " << n << " edges";
//
// Messages below the global threshold are discarded without formatting.
// Output goes to stderr with a monotonic timestamp and thread tag; the sink
// is swappable for tests. Thread-safe: each statement is written atomically.
#pragma once

#include <chrono>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace gpsa {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view log_level_name(LogLevel level);

/// Global threshold; messages with level < threshold are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Replaces the output sink (default writes to stderr). Pass nullptr to
/// restore the default. The sink receives fully formatted lines.
using LogSink = std::function<void(LogLevel, std::string_view line)>;
void set_log_sink(LogSink sink);

namespace detail {

class LogStatement {
 public:
  LogStatement(LogLevel level, const char* file, int line);
  ~LogStatement();

  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// No-op stream for disabled levels; operator<< compiles away the operands'
/// formatting cost is avoided by the level check in the macro.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail
}  // namespace gpsa

#define GPSA_LOG(severity)                                             \
  if (::gpsa::LogLevel::k##severity < ::gpsa::log_level()) {           \
  } else                                                               \
    ::gpsa::detail::LogStatement(::gpsa::LogLevel::k##severity,        \
                                 __FILE__, __LINE__)
