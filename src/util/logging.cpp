#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.hpp"

namespace gpsa {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

Mutex g_sink_mutex{"Log.sink"};
LogSink g_sink GPSA_GUARDED_BY(g_sink_mutex);  // empty => default stderr sink

std::chrono::steady_clock::time_point start_time() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

void write_line(LogLevel level, std::string_view line) {
  MutexLock lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fputc('\n', stderr);
  }
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  MutexLock lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace detail {

LogStatement::LogStatement(LogLevel level, const char* file, int line)
    : level_(level) {
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start_time())
                           .count();
  // Strip directories from __FILE__ for compact output.
  std::string_view path(file);
  if (auto pos = path.find_last_of('/'); pos != std::string_view::npos) {
    path.remove_prefix(pos + 1);
  }
  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "[%9.3fs %s %s:%d] ",
                static_cast<double>(elapsed) / 1e6,
                std::string(log_level_name(level)).c_str(),
                std::string(path).c_str(), line);
  stream_ << prefix;
}

LogStatement::~LogStatement() { write_line(level_, stream_.str()); }

}  // namespace detail
}  // namespace gpsa
