// Block-partitioned parallel loop for the baseline engines (which the
// paper describes as thread-based, in contrast to GPSA's actors).
//
// Spawns worker-1 threads plus the calling thread, each handling one
// contiguous block. Coarse-grained by design: callers invoke it once per
// phase, not per element.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace gpsa {

/// Calls fn(block_begin, block_end, block_index) for `threads` contiguous
/// blocks covering [begin, end). fn must be safe to run concurrently on
/// disjoint blocks.
template <typename Fn>
void parallel_for_blocks(std::uint64_t begin, std::uint64_t end,
                         unsigned threads, Fn&& fn) {
  GPSA_CHECK(threads >= 1);
  const std::uint64_t total = end > begin ? end - begin : 0;
  if (total == 0) {
    return;
  }
  const unsigned blocks =
      static_cast<unsigned>(std::min<std::uint64_t>(threads, total));
  if (blocks == 1) {
    fn(begin, end, 0U);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(blocks - 1);
  for (unsigned b = 0; b < blocks; ++b) {
    const std::uint64_t lo = begin + total * b / blocks;
    const std::uint64_t hi = begin + total * (b + 1) / blocks;
    if (b + 1 == blocks) {
      fn(lo, hi, b);  // run the last block inline
    } else {
      pool.emplace_back([&fn, lo, hi, b] { fn(lo, hi, b); });
    }
  }
  for (auto& t : pool) {
    t.join();
  }
}

}  // namespace gpsa
