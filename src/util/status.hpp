// Error handling: Status (code + message) and Result<T> (value or Status).
//
// All fallible operations in the library that can fail for environmental
// reasons (I/O, parsing, resource limits) return Status or Result<T>.
// Broken internal invariants use GPSA_CHECK instead.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "util/check.hpp"

namespace gpsa {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kCorruptData,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// Human-readable name of a status code ("OK", "IO_ERROR", ...).
std::string_view status_code_name(StatusCode code);

/// A success-or-error value. Cheap to copy when OK (no allocation).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "IO_ERROR: <message>".
  std::string to_string() const;

  /// Aborts the process if not OK. Use at call sites where failure is a
  /// programmer error (e.g. writing to a path the caller just created).
  void expect_ok() const {
    if (!is_ok()) {
      detail::check_failed(to_string().c_str(), "Status::expect_ok", 0);
    }
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status io_error(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
inline Status corrupt_data(std::string msg) {
  return Status(StatusCode::kCorruptData, std::move(msg));
}
inline Status failed_precondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status resource_exhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status internal_error(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// Appends the current errno string to `msg` (for OS call failures).
Status io_error_errno(std::string msg);

/// Value-or-Status. Like std::expected<T, Status> (not yet in our stdlib).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit)
  Result(Status status) : state_(std::move(status)) {
    GPSA_CHECK(!std::get<Status>(state_).is_ok());
  }

  bool is_ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    GPSA_CHECK(is_ok());
    return std::get<T>(state_);
  }
  T& value() & {
    GPSA_CHECK(is_ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    GPSA_CHECK(is_ok());
    return std::get<T>(std::move(state_));
  }

  const Status& status() const {
    static const Status kOk;
    return is_ok() ? kOk : std::get<Status>(state_);
  }

  /// Returns the value, aborting with the status message if this is an error.
  T expect(const char* context) && {
    if (!is_ok()) {
      std::string msg = std::string(context) + ": " + status().to_string();
      detail::check_failed(msg.c_str(), "Result::expect", 0);
    }
    return std::get<T>(std::move(state_));
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace gpsa

/// Propagates a non-OK Status from an expression that yields Status.
#define GPSA_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::gpsa::Status gpsa_status__ = (expr);  \
    if (!gpsa_status__.is_ok()) {           \
      return gpsa_status__;                 \
    }                                       \
  } while (false)

/// Assigns the value of a Result expression or propagates its Status.
/// Usage: GPSA_ASSIGN_OR_RETURN(auto file, MmapFile::open(path));
#define GPSA_INTERNAL_CONCAT2(a, b) a##b
#define GPSA_INTERNAL_CONCAT(a, b) GPSA_INTERNAL_CONCAT2(a, b)
#define GPSA_ASSIGN_OR_RETURN(decl, expr) \
  GPSA_ASSIGN_OR_RETURN_IMPL(GPSA_INTERNAL_CONCAT(gpsa_result_, __LINE__), \
                             decl, expr)
#define GPSA_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.is_ok()) {                               \
    return tmp.status();                            \
  }                                                 \
  decl = std::move(tmp).value()
