#include "util/lockdep.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gpsa::lockdep {

namespace detail {
std::atomic<int> g_state{0};

int latch_from_env() {
  const char* env = std::getenv("GPSA_LOCKDEP");
  const int state = (env != nullptr && std::strcmp(env, "1") == 0) ? 2 : 1;
  int expected = 0;
  // A racing first call latches the same value; keep whichever landed.
  g_state.compare_exchange_strong(expected, state);
  return g_state.load(std::memory_order_relaxed);
}
}  // namespace detail

void enable_for_testing(bool on) {
  detail::g_state.store(on ? 2 : 1, std::memory_order_seq_cst);
}

namespace {

/// One acquisition held by the current thread.
struct Held {
  const void* mutex = nullptr;
  int cls = -1;  // class id, -1 for unnamed
};

/// Global order graph. Everything inside is guarded by `mu` — a raw
/// std::mutex on purpose: a gpsa::Mutex here would recurse into its own
/// instrumentation. Function-local static so lockdep works from other
/// translation units' static initializers.
struct Graph {
  std::mutex mu;
  std::unordered_map<std::string, int> class_ids;
  std::vector<const char*> class_names;    // id -> name (interned copy)
  std::vector<std::vector<int>> adjacency; // id -> successors
  std::unordered_set<std::uint64_t> edges; // (from << 32) | to
  std::atomic<std::uint64_t> edge_count{0};

  int intern(const char* name) {
    const auto it = class_ids.find(name);
    if (it != class_ids.end()) {
      return it->second;
    }
    const int id = static_cast<int>(class_names.size());
    // Own a copy: nothing requires the caller's string to outlive us.
    char* copy = new char[std::strlen(name) + 1];
    std::strcpy(copy, name);
    class_ids.emplace(copy, id);
    class_names.push_back(copy);
    adjacency.emplace_back();
    return id;
  }

  /// DFS: is `to` reachable from `from`? Fills `path` with the class-id
  /// chain from -> ... -> to when it is.
  bool reachable(int from, int to, std::vector<int>& path) {
    path.push_back(from);
    if (from == to) {
      return true;
    }
    for (const int next : adjacency[static_cast<std::size_t>(from)]) {
      // The graph was acyclic before this probe, so no visited set is
      // needed to terminate; depth is bounded by the class count.
      if (reachable(next, to, path)) {
        return true;
      }
    }
    path.pop_back();
    return false;
  }
};

Graph& graph() {
  static Graph* g = new Graph();  // leaked: alive for process lifetime
  return *g;
}

struct ThreadState {
  std::vector<Held> held;
  /// Edges this thread has already pushed to the global graph; skipping
  /// the global mutex for repeats keeps steady-state acquisition cheap.
  std::unordered_set<std::uint64_t> seen_edges;
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

[[noreturn]] void report_cycle(Graph& g, int held_cls, int new_cls,
                               const std::vector<int>& path) {
  std::fprintf(stderr,
               "GPSA_LOCKDEP: lock-order inversion: acquiring \"%s\" while "
               "holding \"%s\", but the opposite order is already "
               "established:\n",
               g.class_names[static_cast<std::size_t>(new_cls)],
               g.class_names[static_cast<std::size_t>(held_cls)]);
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::fprintf(stderr, "  %s%s\n",
                 g.class_names[static_cast<std::size_t>(path[i])],
                 i + 1 < path.size() ? " ->" : "");
  }
  std::fprintf(stderr,
               "  %s  (closing the cycle)\n"
               "GPSA_LOCKDEP: aborting\n",
               g.class_names[static_cast<std::size_t>(held_cls)]);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void report_recursion(const void* mutex, const char* name) {
  std::fprintf(stderr,
               "GPSA_LOCKDEP: recursive acquisition of \"%s\" (%p) — this "
               "thread already holds this exact mutex\nGPSA_LOCKDEP: "
               "aborting\n",
               name != nullptr ? name : "<unnamed>", mutex);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void on_acquire(const void* mutex, const char* name) {
  ThreadState& ts = thread_state();
  for (const Held& held : ts.held) {
    if (held.mutex == mutex) {
      report_recursion(mutex, name);
    }
  }
  int cls = -1;
  if (name != nullptr) {
    Graph& g = graph();
    {
      std::lock_guard<std::mutex> guard(g.mu);
      cls = g.intern(name);
    }
    for (const Held& held : ts.held) {
      if (held.cls < 0 || held.cls == cls) {
        continue;  // unnamed or same-class-different-instance: no edge
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(held.cls) << 32) |
          static_cast<std::uint32_t>(cls);
      if (!ts.seen_edges.insert(key).second) {
        continue;  // this thread already recorded held -> cls
      }
      std::lock_guard<std::mutex> guard(g.mu);
      if (!g.edges.insert(key).second) {
        continue;  // another thread recorded it first
      }
      // New edge held.cls -> cls: a cycle exists iff held.cls was already
      // reachable FROM cls. Probe before wiring the edge in so the DFS
      // runs on the known-acyclic graph.
      std::vector<int> path;
      if (g.reachable(cls, held.cls, path)) {
        report_cycle(g, held.cls, cls, path);
      }
      g.adjacency[static_cast<std::size_t>(held.cls)].push_back(cls);
      g.edge_count.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ts.held.push_back(Held{mutex, cls});
}

void on_release(const void* mutex) {
  std::vector<Held>& held = thread_state().held;
  for (std::size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].mutex == mutex) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
  // Release of a mutex this thread never recorded: acquisition predated
  // enabling (enable_for_testing mid-run). Ignore.
}

std::uint64_t edges_recorded() {
  return graph().edge_count.load(std::memory_order_relaxed);
}

}  // namespace gpsa::lockdep
