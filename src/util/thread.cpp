#include "util/thread.hpp"

#include <pthread.h>

#include <cstdlib>

namespace gpsa {

void set_current_thread_name(const std::string& name) {
  std::string truncated = name.substr(0, 15);
  pthread_setname_np(pthread_self(), truncated.c_str());
}

unsigned default_worker_count() {
  if (const char* env = std::getenv("GPSA_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<unsigned>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace gpsa
