// Umbrella header: everything a downstream application needs.
//
//   #include "gpsa.hpp"
//
//   gpsa::EdgeList graph = gpsa::rmat(14, 300'000, 1);
//   gpsa::PageRankProgram pagerank(20);
//   auto result = gpsa::Engine::run(graph, pagerank, {});
//
// Finer-grained headers remain available for targeted includes; the
// baseline engines (baselines/...) and the experiment harness
// (harness/...) are intentionally not re-exported here — they are
// evaluation machinery, not the product API.
#pragma once

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/degree_count.hpp"
#include "apps/multi_bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/reference.hpp"
#include "apps/sssp.hpp"
#include "cluster/cluster_engine.hpp"
#include "core/engine.hpp"
#include "core/program.hpp"
#include "graph/adjacency.hpp"
#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "service/graph_service.hpp"
#include "storage/recovery.hpp"
#include "storage/slot.hpp"
#include "storage/value_file.hpp"
#include "util/config.hpp"
#include "util/status.hpp"
