#include "graph/csr_v2.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace gpsa {

const char* csr_format_name(CsrFormat format) {
  switch (format) {
    case CsrFormat::kV1:
      return "v1";
    case CsrFormat::kV2:
      return "v2";
  }
  return "unknown";
}

Result<CsrFormat> parse_csr_format(std::string_view name) {
  if (name == "v1") {
    return CsrFormat::kV1;
  }
  if (name == "v2") {
    return CsrFormat::kV2;
  }
  return invalid_argument("unknown csr format '" + std::string(name) +
                          "' (expected v1|v2)");
}

CsrFormat resolve_csr_format(std::optional<CsrFormat> requested) {
  if (requested.has_value()) {
    return *requested;
  }
  const char* raw = std::getenv("GPSA_CSR_FORMAT");
  if (raw == nullptr || *raw == '\0') {
    return CsrFormat::kV1;
  }
  auto parsed = parse_csr_format(raw);
  if (!parsed.is_ok()) {
    GPSA_LOG(Warn) << "GPSA_CSR_FORMAT: " << parsed.status().to_string()
                   << "; using v1";
    return CsrFormat::kV1;
  }
  return parsed.value();
}

const char* csr_order_name(CsrOrder order) {
  switch (order) {
    case CsrOrder::kNone:
      return "none";
    case CsrOrder::kDegree:
      return "degree";
    case CsrOrder::kBfs:
      return "bfs";
  }
  return "unknown";
}

Result<CsrOrder> parse_csr_order(std::string_view name) {
  if (name == "none") {
    return CsrOrder::kNone;
  }
  if (name == "degree") {
    return CsrOrder::kDegree;
  }
  if (name == "bfs") {
    return CsrOrder::kBfs;
  }
  return invalid_argument("unknown csr order '" + std::string(name) +
                          "' (expected none|degree|bfs)");
}

CsrOrder resolve_csr_order(std::optional<CsrOrder> requested) {
  if (requested.has_value()) {
    return *requested;
  }
  const char* raw = std::getenv("GPSA_CSR_ORDER");
  if (raw == nullptr || *raw == '\0') {
    return CsrOrder::kNone;
  }
  auto parsed = parse_csr_order(raw);
  if (!parsed.is_ok()) {
    GPSA_LOG(Warn) << "GPSA_CSR_ORDER: " << parsed.status().to_string()
                   << "; using none";
    return CsrOrder::kNone;
  }
  return parsed.value();
}

void append_varint(std::vector<std::uint8_t>& out, std::uint32_t value) {
  while (value >= 0x80U) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80U);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool decode_varint(const std::uint8_t*& p, const std::uint8_t* end,
                   std::uint32_t& value) {
  std::uint32_t out = 0;
  for (unsigned shift = 0; shift < 7 * kMaxVarintBytes; shift += 7) {
    if (p == end) {
      return false;  // truncated group
    }
    const std::uint32_t b = *p++;
    // The 5th byte may only carry the top 4 bits of a u32; anything more
    // is an overflow the shift below would silently drop.
    if (shift == 28 && (b & ~0x0fU) != 0) {
      return false;
    }
    out |= (b & 0x7fU) << shift;
    if ((b & 0x80U) == 0) {
      value = out;
      return true;
    }
  }
  return false;  // continuation bit still set after 5 bytes
}

void encode_csr_v2_record(std::span<const VertexId> targets,
                          std::vector<std::uint8_t>& out) {
  append_varint(out, static_cast<std::uint32_t>(targets.size()));
  VertexId prev = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const VertexId dst = targets[i];
    if (i % kCsrV2RestartInterval == 0) {
      append_varint(out, dst);  // restart point: absolute value
    } else {
      GPSA_DCHECK(dst >= prev);
      append_varint(out, dst - prev);
    }
    prev = dst;
  }
}

Status decode_csr_v2_record_checked(std::span<const std::uint8_t> bytes,
                                    VertexId num_vertices,
                                    std::vector<std::int32_t>& out) {
  const std::uint8_t* p = bytes.data();
  const std::uint8_t* const end = p + bytes.size();
  std::uint32_t degree = 0;
  if (!decode_varint(p, end, degree)) {
    return corrupt_data("csr v2 record: bad degree varint");
  }
  // Each target costs at least one body byte, which bounds the decoded
  // size before any allocation — a forged huge degree cannot command a
  // huge resize.
  if (degree > bytes.size()) {
    return corrupt_data("csr v2 record: degree exceeds record bytes");
  }
  out.push_back(static_cast<std::int32_t>(degree));
  VertexId prev = 0;
  for (std::uint32_t i = 0; i < degree; ++i) {
    std::uint32_t raw = 0;
    if (!decode_varint(p, end, raw)) {
      return corrupt_data("csr v2 record: bad target varint");
    }
    VertexId dst = 0;
    if (i % kCsrV2RestartInterval == 0) {
      dst = raw;
    } else {
      if (raw > std::numeric_limits<VertexId>::max() - prev) {
        return corrupt_data("csr v2 record: gap overflows vertex id");
      }
      dst = prev + raw;
    }
    // Ascending across restart points too: the encoder sorts the whole
    // record, so a descending restart is corruption, not a format option.
    if (i > 0 && dst < prev) {
      return corrupt_data("csr v2 record: non-ascending target");
    }
    if (dst >= num_vertices) {
      return corrupt_data("csr v2 record: target out of range");
    }
    out.push_back(static_cast<std::int32_t>(dst));
    prev = dst;
  }
  if (p != end) {
    return corrupt_data("csr v2 record: trailing bytes");
  }
  out.push_back(kCsrEndOfList);
  return Status::ok();
}

std::size_t decode_csr_v2_record_fast(const std::uint8_t* p,
                                      std::int32_t* out) {
  const std::uint32_t degree = read_varint_fast(p);
  out[0] = static_cast<std::int32_t>(degree);
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i < degree; ++i) {
    const std::uint32_t raw = read_varint_fast(p);
    prev = (i % kCsrV2RestartInterval == 0) ? raw : prev + raw;
    out[1 + i] = static_cast<std::int32_t>(prev);
  }
  out[1 + degree] = kCsrEndOfList;
  return static_cast<std::size_t>(degree) + 2;
}

std::vector<VertexId> build_order_permutation(const Csr& csr,
                                              CsrOrder order) {
  const VertexId n = csr.num_vertices();
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  if (order == CsrOrder::kNone || n == 0) {
    return perm;
  }
  // Degree-descending candidate order; stable so equal-degree vertices
  // keep their id order and the permutation is deterministic.
  std::vector<VertexId> by_degree = perm;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&csr](VertexId a, VertexId b) {
                     return csr.out_degree(a) > csr.out_degree(b);
                   });
  if (order == CsrOrder::kDegree) {
    return by_degree;
  }
  // BFS child order: roots tried hubs-first so giant components are laid
  // out from their densest vertex; isolated/unreached vertices land when
  // their candidate-root turn comes, keeping the map total.
  std::vector<VertexId> visit_order;
  visit_order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<VertexId> queue;
  for (const VertexId root : by_degree) {
    if (visited[root]) {
      continue;
    }
    visited[root] = true;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId v = queue[head];
      visit_order.push_back(v);
      for (const VertexId next : csr.neighbors(v)) {
        if (!visited[next]) {
          visited[next] = true;
          queue.push_back(next);
        }
      }
    }
  }
  GPSA_CHECK(visit_order.size() == n);
  return visit_order;
}

Status write_perm_file(const std::string& base_path, CsrOrder order,
                       std::span<const VertexId> new_to_old) {
  const std::string path = base_path + ".perm";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return io_error("write_perm_file: cannot open " + path);
  }
  CsrPermHeader header{};
  header.magic = CsrPermHeader::kMagic;
  header.version = CsrPermHeader::kVersion;
  header.order = static_cast<std::uint32_t>(order);
  header.num_vertices = static_cast<std::uint32_t>(new_to_old.size());
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(new_to_old.data()),
            static_cast<std::streamsize>(new_to_old.size_bytes()));
  if (!out) {
    return io_error("write_perm_file: short write to " + path);
  }
  return Status::ok();
}

Result<std::vector<VertexId>> read_perm_file(const std::string& base_path,
                                             CsrOrder order,
                                             VertexId num_vertices) {
  const std::string path = base_path + ".perm";
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return not_found("read_perm_file: cannot open " + path);
  }
  CsrPermHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || header.magic != CsrPermHeader::kMagic) {
    return corrupt_data("bad perm magic in " + path);
  }
  if (header.version != CsrPermHeader::kVersion) {
    return corrupt_data("unsupported perm version in " + path);
  }
  if (header.order != static_cast<std::uint32_t>(order)) {
    return corrupt_data("perm order disagrees with csr flags in " + path);
  }
  if (header.num_vertices != num_vertices) {
    return corrupt_data("perm vertex count mismatch in " + path);
  }
  std::vector<VertexId> perm(num_vertices);
  in.read(reinterpret_cast<char*>(perm.data()),
          static_cast<std::streamsize>(perm.size() * sizeof(VertexId)));
  if (!in || in.peek() != std::ifstream::traits_type::eof()) {
    return corrupt_data("perm size mismatch in " + path);
  }
  // Bijection check: engines write output arrays through this map, so an
  // out-of-range or duplicated entry would be an OOB/aliased write.
  std::vector<bool> seen(num_vertices, false);
  for (const VertexId old_id : perm) {
    if (old_id >= num_vertices || seen[old_id]) {
      return corrupt_data("perm is not a permutation in " + path);
    }
    seen[old_id] = true;
  }
  return perm;
}

}  // namespace gpsa
