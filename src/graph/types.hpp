// Fundamental graph types shared by all engines.
//
// Vertices are dense integer ids in [0, |V|), matching the paper's
// assumption ("vertices are labeled from 0 to |V|"). Edge counts use
// 64 bits (twitter-2010 has 1.47 B edges).
#pragma once

#include <cstdint>
#include <limits>

namespace gpsa {

using VertexId = std::uint32_t;
using EdgeCount = std::uint64_t;

/// Sentinel for "no vertex" (e.g. unreached BFS parent).
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();

/// The paper's CSR record terminator (§IV.D, Fig. 4): a -1 entry marks the
/// end of a vertex's out-edge list in the on-disk edge array.
inline constexpr std::int32_t kCsrEndOfList = -1;

struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

}  // namespace gpsa
