#include "graph/edge_list.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>

namespace gpsa {
namespace {

constexpr std::uint32_t kBinaryMagic = 0x47504531;  // "GPE1"

/// Largest vertex id accepted from untrusted inputs, mirroring the
/// adjacency parser: CSR entries are int32 with -1 reserved as the record
/// sentinel, and add_edge computes num_vertices = max_id + 1, which wraps
/// to 0 for id 0xffffffff — both make out-of-range ids corruption, not
/// data.
constexpr VertexId kMaxParsedVertexId = (VertexId{1} << 31) - 2;

}  // namespace

void EdgeList::add_edge(VertexId src, VertexId dst) {
  edges_.push_back(Edge{src, dst});
  const VertexId hi = std::max(src, dst);
  if (hi >= num_vertices_) {
    num_vertices_ = hi + 1;
  }
}

void EdgeList::ensure_vertices(VertexId count) {
  num_vertices_ = std::max(num_vertices_, count);
}

void EdgeList::canonicalize(bool remove_self_loops) {
  if (remove_self_loops) {
    std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

Result<EdgeList> EdgeList::read_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return not_found("EdgeList::read_text: cannot open " + path);
  }
  EdgeList out;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const char* p = line.data();
    const char* end = p + line.size();
    while (p != end && (*p == ' ' || *p == '\t')) ++p;
    if (p == end || *p == '#' || *p == '%') {
      continue;
    }
    VertexId src = 0;
    VertexId dst = 0;
    auto r1 = std::from_chars(p, end, src);
    if (r1.ec != std::errc() || src > kMaxParsedVertexId) {
      return corrupt_data(path + ":" + std::to_string(line_no) +
                          ": bad source vertex");
    }
    p = r1.ptr;
    while (p != end && (*p == ' ' || *p == '\t' || *p == ',')) ++p;
    auto r2 = std::from_chars(p, end, dst);
    if (r2.ec != std::errc() || dst > kMaxParsedVertexId) {
      return corrupt_data(path + ":" + std::to_string(line_no) +
                          ": bad destination vertex");
    }
    out.add_edge(src, dst);
  }
  return out;
}

Status EdgeList::write_text(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return io_error("EdgeList::write_text: cannot open " + path);
  }
  out << "# gpsa edge list: " << num_vertices_ << " vertices, "
      << edges_.size() << " edges\n";
  for (const Edge& e : edges_) {
    out << e.src << '\t' << e.dst << '\n';
  }
  if (!out) {
    return io_error("EdgeList::write_text: short write to " + path);
  }
  return Status::ok();
}

Result<EdgeList> EdgeList::read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return not_found("EdgeList::read_binary: cannot open " + path);
  }
  std::uint32_t magic = 0;
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&num_vertices), sizeof(num_vertices));
  in.read(reinterpret_cast<char*>(&num_edges), sizeof(num_edges));
  if (!in || magic != kBinaryMagic) {
    return corrupt_data("EdgeList::read_binary: bad header in " + path);
  }
  // Size the body from the file, not the header: a corrupt edge count
  // would otherwise drive a multi-gigabyte resize (or a std::streamsize
  // overflow) before the read ever fails.
  const auto body_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(body_begin);
  static_assert(sizeof(Edge) == 2 * sizeof(VertexId));
  if (body_begin == std::streampos(-1) || file_end == std::streampos(-1) ||
      static_cast<std::uint64_t>(file_end - body_begin) !=
          num_edges * sizeof(Edge)) {
    return corrupt_data("EdgeList::read_binary: edge count disagrees with "
                        "file size in " + path);
  }
  EdgeList out;
  out.num_vertices_ = num_vertices;
  out.edges_.resize(num_edges);
  in.read(reinterpret_cast<char*>(out.edges_.data()),
          static_cast<std::streamsize>(num_edges * sizeof(Edge)));
  if (!in) {
    return corrupt_data("EdgeList::read_binary: truncated body in " + path);
  }
  for (const Edge& e : out.edges_) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      return corrupt_data("EdgeList::read_binary: edge endpoint beyond "
                          "declared vertex count in " + path);
    }
  }
  return out;
}

Status EdgeList::write_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return io_error("EdgeList::write_binary: cannot open " + path);
  }
  const std::uint32_t magic = kBinaryMagic;
  const std::uint32_t num_vertices = num_vertices_;
  const std::uint64_t num_edges = edges_.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&num_vertices), sizeof(num_vertices));
  out.write(reinterpret_cast<const char*>(&num_edges), sizeof(num_edges));
  out.write(reinterpret_cast<const char*>(edges_.data()),
            static_cast<std::streamsize>(edges_.size() * sizeof(Edge)));
  if (!out) {
    return io_error("EdgeList::write_binary: short write to " + path);
  }
  return Status::ok();
}

}  // namespace gpsa
