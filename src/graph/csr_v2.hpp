// v2 CSR record codec: delta-gap varint edges + vertex renumbering.
//
// The v1 on-disk CSR (csr_file.hpp, the paper's Fig. 4c) spends a flat
// 4 bytes per edge. At billion-edge scale raw byte volume is the wall the
// readahead scheduler cannot climb (BPP in PAPERS.md: compact layouts are
// the dominant lever for disk-based engines), so v2 re-encodes each
// vertex record as:
//
//     varint(out_degree)  varint(dst0)  varint(dst1-dst0) ...
//
// with targets sorted ascending inside the record, LEB128 groups (7 data
// bits per byte, high bit = continuation, <= 5 bytes per value), and an
// absolute restart value every kCsrV2RestartInterval targets so a decoder
// never chases an unbounded delta chain inside one hub record. Every
// record start is itself a restart point: the companion ".idx" file holds
// per-vertex *byte* offsets, which is what keeps CsrEntryStream's chunked
// fetch and the dispatcher's worklist-mode random jumps working unchanged.
//
// Renumbering (GPSA_CSR_ORDER=none|degree|bfs) permutes vertex ids at
// preprocessing time — degree-descending packs the hubs (small ids =>
// small gaps), BFS child order packs neighborhoods — improving both the
// gap compression and apply-loop locality. The permutation (new -> old)
// is persisted in "<base>.perm"; engines translate ids at the Program
// boundary and invert the map on output, so results stay keyed by the
// original vertex ids (DESIGN.md §16).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "util/status.hpp"

namespace gpsa {

enum class CsrFormat : std::uint32_t { kV1 = 1, kV2 = 2 };
enum class CsrOrder : std::uint32_t { kNone = 0, kDegree = 1, kBfs = 2 };

const char* csr_format_name(CsrFormat format);
Result<CsrFormat> parse_csr_format(std::string_view name);
/// Explicit request beats GPSA_CSR_FORMAT beats the v1 default (compat:
/// every pre-v2 deployment keeps reading and writing its existing files).
CsrFormat resolve_csr_format(std::optional<CsrFormat> requested);

const char* csr_order_name(CsrOrder order);
Result<CsrOrder> parse_csr_order(std::string_view name);
/// Explicit request beats GPSA_CSR_ORDER beats none.
CsrOrder resolve_csr_order(std::optional<CsrOrder> requested);

/// Absolute-value restart cadence inside one record's target list.
inline constexpr std::uint32_t kCsrV2RestartInterval = 256;

/// LEB128 upper bound for a 32-bit value.
inline constexpr std::size_t kMaxVarintBytes = 5;

/// Appends the LEB128 encoding of `value` to `out`.
void append_varint(std::vector<std::uint8_t>& out, std::uint32_t value);

/// Bounds- and overflow-checked LEB128 decode: advances `p` and returns
/// true on success; false on truncation, a >5-byte group, or set bits
/// beyond 32 (the fuzzer's required no-UB rejection path).
bool decode_varint(const std::uint8_t*& p, const std::uint8_t* end,
                   std::uint32_t& value);

/// Unchecked LEB128 decode for open-time-validated bytes (the streaming
/// hot path). The caller guarantees a well-formed group at `p`.
inline std::uint32_t read_varint_fast(const std::uint8_t*& p) {
  std::uint32_t b = *p++;
  if (b < 0x80) {
    return b;
  }
  std::uint32_t value = b & 0x7fU;
  unsigned shift = 7;
  do {
    b = *p++;
    value |= (b & 0x7fU) << shift;
    shift += 7;
  } while (b & 0x80U);
  return value;
}

/// Appends one encoded record to `out`. `targets` must be sorted
/// ascending (duplicates allowed: a zero gap).
void encode_csr_v2_record(std::span<const VertexId> targets,
                          std::vector<std::uint8_t>& out);

/// Fully validating decode of one record that must occupy exactly
/// `bytes`: rejects truncated or overlong varints, non-ascending targets,
/// targets >= num_vertices, id overflow, and trailing bytes. On success
/// appends the record in v1 entry shape — [degree] dst... kCsrEndOfList —
/// to `out`. Used by CsrFileReader::open (once per record) and the fuzz
/// harness; after it has accepted a record, decode_csr_v2_record_fast is
/// safe on the same bytes.
Status decode_csr_v2_record_checked(std::span<const std::uint8_t> bytes,
                                    VertexId num_vertices,
                                    std::vector<std::int32_t>& out);

/// Hot-path decode of one open-time-validated record into `out`, which
/// must have room for degree + 2 entries (CsrFileReader::max_record_entries
/// bounds it). Returns the entry count written (degree + 2).
std::size_t decode_csr_v2_record_fast(const std::uint8_t* p,
                                      std::int32_t* out);

/// Builds the new -> old permutation for `order` over `csr`:
///   kNone    identity;
///   kDegree  stable sort by out-degree descending (hubs first — small new
///            ids, small gaps);
///   kBfs     BFS visit order, roots tried in degree-descending order so
///            every component is covered, children in adjacency order.
std::vector<VertexId> build_order_permutation(const Csr& csr, CsrOrder order);

/// Permutation sidecar "<base>.perm": 16-byte header + new->old u32 array.
struct CsrPermHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t order;  // CsrOrder, must match the entry file's flags
  std::uint32_t num_vertices;

  static constexpr std::uint32_t kMagic = 0x4750524D;  // "GPRM"
  static constexpr std::uint32_t kVersion = 1;
};
static_assert(sizeof(CsrPermHeader) == 16);

Status write_perm_file(const std::string& base_path, CsrOrder order,
                       std::span<const VertexId> new_to_old);

/// Reads and fully validates "<base>.perm": header fields must match the
/// entry file's, and the body must be a bijection on [0, num_vertices) —
/// engines index output arrays through it, so an unvalidated entry would
/// be an out-of-bounds write primitive.
Result<std::vector<VertexId>> read_perm_file(const std::string& base_path,
                                             CsrOrder order,
                                             VertexId num_vertices);

}  // namespace gpsa
