// Text adjacency-graph format (the paper's second accepted input format,
// §V.A: "text-based edge list or adjacency graph").
//
// One line per vertex:
//
//     src dst0 dst1 dst2 ...
//
// '#'/'%' comment lines are skipped; vertices may be omitted (isolated)
// and lines may appear in any order. Because the format already groups a
// vertex's out-edges, preprocessing can stream it straight into the
// on-disk CSR without the sorting pass an edge list needs (§V.B: "If the
// input graph is in adjacency format, we can just write the destination
// vertex id into the memory-mapped file") — provided the lines are in
// ascending source order, which adjacency_text_to_csr verifies.
#pragma once

#include <string>

#include "graph/edge_list.hpp"
#include "util/status.hpp"

namespace gpsa {

/// Loads an adjacency-format text file into an edge list.
Result<EdgeList> read_adjacency_text(const std::string& path);

/// Writes an edge list in adjacency format (sorted by source).
Status write_adjacency_text(const EdgeList& graph, const std::string& path);

struct AdjacencyToCsrReport {
  VertexId num_vertices = 0;
  EdgeCount num_edges = 0;
  /// True if the input lines were already in ascending source order and
  /// the streaming (sort-free) path was used end to end.
  bool streamed = true;
};

/// Streaming preprocessing: adjacency text -> on-disk CSR file pair
/// ("<csr_base>" + ".idx"), single pass, no in-memory edge list, when the
/// input is source-sorted. Falls back to the sorting pipeline otherwise.
Result<AdjacencyToCsrReport> adjacency_text_to_csr(
    const std::string& text_path, const std::string& csr_base,
    bool with_degree);

}  // namespace gpsa
