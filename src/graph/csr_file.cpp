#include "graph/csr_file.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include "platform/file_util.hpp"

namespace gpsa {

namespace {
// Crash-injection state for the fork-based crash tests. Plain globals:
// they are only ever set inside a freshly forked, single-threaded child.
int g_crash_after_flushes = -1;
bool g_crash_before_index = false;

// Flush cadence of the entry-file byte buffer. 1<<18 bytes is the
// historical 1<<16 int32-entry threshold, so v1 emission (and the crash
// tests counting flushes) keeps the exact flush boundaries it always had.
constexpr std::size_t kWriterFlushBytes = std::size_t{1} << 18;
}  // namespace

void set_csr_write_crash_after_flushes(int flushes) {
  g_crash_after_flushes = flushes;
}

void set_csr_write_crash_before_index(bool crash) {
  g_crash_before_index = crash;
}

struct CsrFileWriter::Stream {
  std::ofstream out;
};

CsrFileWriter::CsrFileWriter(std::string base_path, CsrFormat format,
                             bool with_degree, CsrOrder order)
    : base_path_(std::move(base_path)),
      format_(format),
      // The degree varint is structural in v2 — the record has no sentinel,
      // so the decoder needs it to find the record end.
      with_degree_(format == CsrFormat::kV2 ? true : with_degree),
      order_(order) {}

Status CsrFileWriter::begin(VertexId num_vertices, EdgeCount num_edges) {
  GPSA_CHECK(out_ == nullptr);
  if (format_ == CsrFormat::kV1 && order_ != CsrOrder::kNone) {
    return invalid_argument(
        "v1 csr files cannot carry a vertex order (flags are reserved); "
        "use format v2 for ordered files");
  }
  if (format_ == CsrFormat::kV2 &&
      num_vertices >
          static_cast<VertexId>(std::numeric_limits<std::int32_t>::max())) {
    return invalid_argument(
        "v2 csr requires num_vertices <= 2^31-1 (decoded targets are "
        "positive int32 entries)");
  }
  header_.magic = CsrFileHeader::kMagic;
  header_.version = format_ == CsrFormat::kV2 ? CsrFileHeader::kVersionV2
                                              : CsrFileHeader::kVersion;
  header_.flags = (with_degree_ ? CsrFileHeader::kFlagHasDegree : 0) |
                  (static_cast<std::uint32_t>(order_)
                   << CsrFileHeader::kOrderShift);
  header_.num_vertices = num_vertices;
  header_.num_edges = num_edges;
  // v1 totals are known up front, so the header written here is final and
  // the emitted file is byte-for-byte the historical layout. v2 body bytes
  // are only known after encoding: placeholder, rewritten by finish().
  header_.num_entries =
      format_ == CsrFormat::kV1
          ? num_edges + std::uint64_t{num_vertices} * (with_degree_ ? 2 : 1)
          : 0;

  out_ = std::make_shared<Stream>();
  out_->out.open(base_path_, std::ios::binary | std::ios::trunc);
  if (!out_->out) {
    return io_error("write_csr_file: cannot open " + base_path_);
  }
  out_->out.write(reinterpret_cast<const char*>(&header_), sizeof(header_));
  if (!out_->out) {
    return io_error("write_csr_file: short write to " + base_path_);
  }
  offsets_.reserve(static_cast<std::size_t>(num_vertices) + 1);
  buffer_.reserve(kWriterFlushBytes);
  return Status::ok();
}

Status CsrFileWriter::flush_buffer() {
  out_->out.write(reinterpret_cast<const char*>(buffer_.data()),
                  static_cast<std::streamsize>(buffer_.size()));
  if (!out_->out) {
    return io_error("write_csr_file: short write to " + base_path_);
  }
  buffer_.clear();
  if (g_crash_after_flushes >= 0 && flush_count_++ == g_crash_after_flushes) {
    out_->out.flush();  // make the torn prefix durable, then die mid-write
    ::_exit(0);
  }
  return Status::ok();
}

Status CsrFileWriter::append_record(std::span<const VertexId> targets) {
  GPSA_CHECK(out_ != nullptr && records_written_ < header_.num_vertices);
  offsets_.push_back(unit_cursor_);
  if (format_ == CsrFormat::kV1) {
    const auto push_entry = [this](std::int32_t entry) {
      const std::size_t at = buffer_.size();
      buffer_.resize(at + sizeof(entry));
      std::memcpy(buffer_.data() + at, &entry, sizeof(entry));
    };
    if (with_degree_) {
      push_entry(static_cast<std::int32_t>(targets.size()));
      ++unit_cursor_;
    }
    for (const VertexId dst : targets) {
      push_entry(static_cast<std::int32_t>(dst));
    }
    unit_cursor_ += targets.size();
    push_entry(kCsrEndOfList);
    ++unit_cursor_;
  } else {
    GPSA_DCHECK(std::is_sorted(targets.begin(), targets.end()));
    const std::size_t before = buffer_.size();
    encode_csr_v2_record(targets, buffer_);
    unit_cursor_ += buffer_.size() - before;
  }
  ++records_written_;
  if (buffer_.size() >= kWriterFlushBytes) {
    GPSA_RETURN_IF_ERROR(flush_buffer());
  }
  return Status::ok();
}

Status CsrFileWriter::finish(std::span<const VertexId> new_to_old) {
  GPSA_CHECK(out_ != nullptr && records_written_ == header_.num_vertices);
  offsets_.push_back(unit_cursor_);
  GPSA_RETURN_IF_ERROR(flush_buffer());
  if (format_ == CsrFormat::kV1) {
    GPSA_CHECK(unit_cursor_ == header_.num_entries);
  } else {
    header_.num_entries = unit_cursor_;
    out_->out.seekp(0);
    out_->out.write(reinterpret_cast<const char*>(&header_), sizeof(header_));
    if (!out_->out) {
      return io_error("write_csr_file: header rewrite failed for " +
                      base_path_);
    }
    out_->out.seekp(0, std::ios::end);
  }
  if (g_crash_before_index) {
    out_->out.flush();
    ::_exit(0);
  }

  std::ofstream idx(base_path_ + ".idx", std::ios::binary | std::ios::trunc);
  if (!idx) {
    return io_error("write_csr_file: cannot open " + base_path_ + ".idx");
  }
  idx.write(reinterpret_cast<const char*>(offsets_.data()),
            static_cast<std::streamsize>(offsets_.size() *
                                         sizeof(std::uint64_t)));
  if (!idx) {
    return io_error("write_csr_file: short write to " + base_path_ + ".idx");
  }
  if (order_ != CsrOrder::kNone) {
    GPSA_CHECK(new_to_old.size() == header_.num_vertices);
    GPSA_RETURN_IF_ERROR(write_perm_file(base_path_, order_, new_to_old));
  }
  return Status::ok();
}

Status write_csr_file(const Csr& csr, const std::string& base_path,
                      bool with_degree) {
  CsrFileWriter writer(base_path, CsrFormat::kV1, with_degree);
  GPSA_RETURN_IF_ERROR(writer.begin(csr.num_vertices(), csr.num_edges()));
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    GPSA_RETURN_IF_ERROR(writer.append_record(csr.neighbors(v)));
  }
  return writer.finish();
}

Status write_csr_file(const Csr& csr, const std::string& base_path,
                      bool with_degree, CsrFormat format, CsrOrder order) {
  if (format == CsrFormat::kV1) {
    if (order != CsrOrder::kNone) {
      return invalid_argument(
          "GPSA_CSR_ORDER requires GPSA_CSR_FORMAT=v2 (v1 layout is frozen "
          "for compatibility)");
    }
    return write_csr_file(csr, base_path, with_degree);
  }
  const VertexId n = csr.num_vertices();
  CsrFileWriter writer(base_path, CsrFormat::kV2, /*with_degree=*/true,
                       order);
  GPSA_RETURN_IF_ERROR(writer.begin(n, csr.num_edges()));

  std::vector<VertexId> new_to_old;
  std::vector<VertexId> old_to_new;
  if (order != CsrOrder::kNone) {
    new_to_old = build_order_permutation(csr, order);
    old_to_new.resize(n);
    for (VertexId new_id = 0; new_id < n; ++new_id) {
      old_to_new[new_to_old[new_id]] = new_id;
    }
  }
  // Records go out in *new* id order; each target list is relabeled and
  // sorted ascending (the gap encoder's precondition). Sorting within one
  // record is result-neutral: messages to distinct destinations commute
  // across the per-destination mailbox split, and duplicate targets
  // produce identical messages.
  std::vector<VertexId> targets;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId old_v = order == CsrOrder::kNone ? v : new_to_old[v];
    const auto nbrs = csr.neighbors(old_v);
    targets.assign(nbrs.begin(), nbrs.end());
    if (order != CsrOrder::kNone) {
      for (VertexId& t : targets) {
        t = old_to_new[t];
      }
    }
    std::sort(targets.begin(), targets.end());
    GPSA_RETURN_IF_ERROR(writer.append_record(targets));
  }
  return writer.finish(new_to_old);
}

Status preprocess_edges_to_csr(const EdgeList& edges,
                               const std::string& base_path,
                               bool with_degree) {
  // Counting-sort into adjacency order (§V.B: "an extra sorting operation
  // is needed to transform [edge lists] into the adjacency format").
  const Csr csr = Csr::from_edges(edges);
  return write_csr_file(csr, base_path, with_degree);
}

Status preprocess_edges_to_csr(const EdgeList& edges,
                               const std::string& base_path, bool with_degree,
                               CsrFormat format, CsrOrder order) {
  const Csr csr = Csr::from_edges(edges);
  return write_csr_file(csr, base_path, with_degree, format, order);
}

Status convert_csr_file(const std::string& in_base,
                        const std::string& out_base, CsrFormat format,
                        CsrOrder order, bool with_degree) {
  GPSA_ASSIGN_OR_RETURN(CsrFileReader reader, CsrFileReader::open(in_base));
  // Reconstruct the edge list in *original* ids — translating through the
  // input's permutation, if any — so ordering decisions always start from
  // the same graph and converting never compounds relabelings.
  const VertexId n = reader.num_vertices();
  const std::span<const VertexId> perm = reader.permutation();
  EdgeList edges;
  edges.ensure_vertices(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto rec = reader.record(v);
    const VertexId src = perm.empty() ? v : perm[v];
    for (const std::int32_t t : rec.targets) {
      const VertexId dst = static_cast<VertexId>(t);
      edges.add_edge(src, perm.empty() ? dst : perm[dst]);
    }
  }
  return preprocess_edges_to_csr(edges, out_base, with_degree, format, order);
}

Result<CsrFileReader> CsrFileReader::open(const std::string& base_path) {
  CsrFileReader reader;
  GPSA_ASSIGN_OR_RETURN(reader.entry_map_,
                        MmapFile::open(base_path, MmapFile::Mode::kReadOnly));
  if (reader.entry_map_.size() < sizeof(CsrFileHeader)) {
    return corrupt_data("csr file too small: " + base_path);
  }
  std::memcpy(&reader.header_, reader.entry_map_.data(),
              sizeof(CsrFileHeader));
  if (reader.header_.magic != CsrFileHeader::kMagic) {
    return corrupt_data("bad csr magic in " + base_path);
  }
  if (reader.header_.version != CsrFileHeader::kVersion &&
      reader.header_.version != CsrFileHeader::kVersionV2) {
    return corrupt_data("unsupported csr version in " + base_path);
  }
  const bool v2 = reader.header_.version == CsrFileHeader::kVersionV2;
  const std::uint64_t body_bytes =
      reader.entry_map_.size() - sizeof(CsrFileHeader);
  const std::uint64_t n = reader.header_.num_vertices;

  if (!v2) {
    if ((reader.header_.flags & ~CsrFileHeader::kFlagHasDegree) != 0) {
      return corrupt_data("unknown csr flags in " + base_path);
    }
    // Compare via division: `num_entries * 4` can wrap uint64 for a forged
    // header and collide with a small body.
    if (body_bytes % sizeof(std::int32_t) != 0 ||
        body_bytes / sizeof(std::int32_t) != reader.header_.num_entries) {
      return corrupt_data("csr entry count mismatch in " + base_path);
    }
    // Structural accounting: one entry per edge, one sentinel per vertex,
    // one degree per vertex when the flag is set. Checked up front so the
    // per-record loop below cannot be fooled by a self-consistent offset
    // table over the wrong totals.
    const std::uint64_t per_vertex =
        1 + (reader.header_.flags & CsrFileHeader::kFlagHasDegree ? 1 : 0);
    if (reader.header_.num_entries !=
        reader.header_.num_edges + per_vertex * n) {
      return corrupt_data("csr header totals inconsistent in " + base_path);
    }
    reader.entries_ = std::span<const std::int32_t>(
        reinterpret_cast<const std::int32_t*>(reader.entry_map_.data() +
                                              sizeof(CsrFileHeader)),
        reader.header_.num_entries);
  } else {
    const std::uint32_t known =
        CsrFileHeader::kFlagHasDegree | CsrFileHeader::kOrderMask;
    if ((reader.header_.flags & ~known) != 0) {
      return corrupt_data("unknown csr flags in " + base_path);
    }
    // v2 records carry the degree varint structurally; a v2 file claiming
    // otherwise was not written by any known writer.
    if ((reader.header_.flags & CsrFileHeader::kFlagHasDegree) == 0) {
      return corrupt_data("csr v2 file missing degree flag in " + base_path);
    }
    const std::uint32_t order_bits =
        (reader.header_.flags & CsrFileHeader::kOrderMask) >>
        CsrFileHeader::kOrderShift;
    if (order_bits > static_cast<std::uint32_t>(CsrOrder::kBfs)) {
      return corrupt_data("unknown csr order in " + base_path);
    }
    if (n > static_cast<std::uint64_t>(
                std::numeric_limits<std::int32_t>::max())) {
      return corrupt_data("csr v2 vertex count exceeds int32 in " + base_path);
    }
    // v2 num_entries counts body *bytes* directly.
    if (body_bytes != reader.header_.num_entries) {
      return corrupt_data("csr entry count mismatch in " + base_path);
    }
    reader.body_ = std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(reader.entry_map_.data() +
                                              sizeof(CsrFileHeader)),
        body_bytes);
  }
  GPSA_RETURN_IF_ERROR(reader.entry_map_.advise(MmapFile::Advice::kSequential));

  GPSA_ASSIGN_OR_RETURN(
      reader.index_map_,
      MmapFile::open(base_path + ".idx", MmapFile::Mode::kReadOnly));
  const std::uint64_t expected_idx = (n + 1) * sizeof(std::uint64_t);
  if (reader.index_map_.size() != expected_idx) {
    return corrupt_data("csr index size mismatch in " + base_path + ".idx");
  }
  reader.offsets_ = reader.index_map_.as_span<const std::uint64_t>();

  // Validate the whole record structure once, here, so record() below can
  // stay an infallible accessor: every downstream consumer (dispatchers,
  // baselines, tests) indexes through offsets_ without re-checking. Both
  // files are untrusted input — a hostile offset table would otherwise
  // turn record() into an out-of-bounds read.
  if (reader.offsets_[0] != 0 ||
      reader.offsets_[n] != reader.header_.num_entries) {
    return corrupt_data("csr index endpoints invalid in " + base_path +
                        ".idx");
  }
  if (!v2) {
    const bool with_degree =
        (reader.header_.flags & CsrFileHeader::kFlagHasDegree) != 0;
    const std::uint64_t per_vertex = with_degree ? 2 : 1;
    for (std::uint64_t v = 0; v < n; ++v) {
      const std::uint64_t begin = reader.offsets_[v];
      const std::uint64_t end = reader.offsets_[v + 1];
      // Monotonicity plus the endpoint checks above bound every record
      // inside entries_ (begin is the previous record's validated end).
      // The minimum record is sentinel-only (+ degree). Written to avoid
      // arithmetic on unvalidated offsets: `begin + per_vertex` could wrap.
      if (end > reader.header_.num_entries || begin > end ||
          end - begin < per_vertex) {
        return corrupt_data("csr record " + std::to_string(v) +
                            " malformed in " + base_path + ".idx");
      }
      std::uint64_t pos = begin;
      const std::uint64_t degree = end - begin - per_vertex;
      if (with_degree) {
        if (reader.entries_[pos] != static_cast<std::int64_t>(degree)) {
          return corrupt_data("csr record " + std::to_string(v) +
                              " degree mismatch in " + base_path);
        }
        ++pos;
      }
      for (; pos != end - 1; ++pos) {
        const std::int32_t target = reader.entries_[pos];
        if (target < 0 || static_cast<std::uint64_t>(target) >= n) {
          return corrupt_data("csr record " + std::to_string(v) +
                              " target out of range in " + base_path);
        }
      }
      if (reader.entries_[end - 1] != kCsrEndOfList) {
        return corrupt_data("csr record " + std::to_string(v) +
                            " missing sentinel in " + base_path);
      }
      reader.max_record_entries_ =
          std::max<std::size_t>(reader.max_record_entries_, end - begin);
    }
  } else {
    // Every record is decoded once by the checked decoder; after this
    // pass the unchecked streaming decoder is safe on any record, and
    // max_record_entries_ bounds the decode scratch allocations.
    std::uint64_t degree_sum = 0;
    std::vector<std::int32_t> decoded;
    for (std::uint64_t v = 0; v < n; ++v) {
      const std::uint64_t begin = reader.offsets_[v];
      const std::uint64_t end = reader.offsets_[v + 1];
      if (end > reader.header_.num_entries || begin > end) {
        return corrupt_data("csr record " + std::to_string(v) +
                            " malformed in " + base_path + ".idx");
      }
      decoded.clear();
      const Status st = decode_csr_v2_record_checked(
          reader.body_.subspan(begin, end - begin),
          static_cast<VertexId>(n), decoded);
      if (!st.is_ok()) {
        return corrupt_data("csr record " + std::to_string(v) + " in " +
                            base_path + ": " + st.to_string());
      }
      degree_sum += static_cast<std::uint32_t>(decoded[0]);
      reader.max_record_entries_ =
          std::max(reader.max_record_entries_, decoded.size());
    }
    if (degree_sum != reader.header_.num_edges) {
      return corrupt_data("csr degree sum disagrees with header in " +
                          base_path);
    }
    const CsrOrder order = reader.order();
    if (order != CsrOrder::kNone) {
      GPSA_ASSIGN_OR_RETURN(
          reader.permutation_,
          read_perm_file(base_path, order, static_cast<VertexId>(n)));
    }
  }
  return reader;
}

Status CsrFileReader::drop_cache() {
  GPSA_RETURN_IF_ERROR(
      entry_map_.advise_range(0, entry_map_.size(), MmapFile::Advice::kDontNeed));
  GPSA_RETURN_IF_ERROR(
      index_map_.advise_range(0, index_map_.size(), MmapFile::Advice::kDontNeed));
  GPSA_RETURN_IF_ERROR(evict_from_page_cache(entry_map_.path()));
  return evict_from_page_cache(index_map_.path());
}

CsrFileReader::VertexRecord CsrFileReader::record(VertexId v) const {
  GPSA_CHECK(v < header_.num_vertices);
  VertexRecord out;
  out.vertex = v;
  if (format() == CsrFormat::kV2) {
    record_scratch_.resize(max_record_entries_);
    const std::size_t count = decode_csr_v2_record_fast(
        body_.data() + offsets_[v], record_scratch_.data());
    out.out_degree = static_cast<std::uint32_t>(record_scratch_[0]);
    out.targets = std::span<const std::int32_t>(record_scratch_.data() + 1,
                                                count - 2);
    return out;
  }
  std::uint64_t pos = offsets_[v];
  const std::uint64_t end = offsets_[v + 1];
  if (has_degree()) {
    out.out_degree = static_cast<std::uint32_t>(entries_[pos]);
    ++pos;
  } else {
    // end - pos includes the sentinel.
    out.out_degree = static_cast<std::uint32_t>(end - pos - 1);
  }
  GPSA_DCHECK(entries_[end - 1] == kCsrEndOfList);
  out.targets = entries_.subspan(pos, end - 1 - pos);
  return out;
}

std::uint32_t CsrFileReader::out_degree(VertexId v) const {
  GPSA_CHECK(v < header_.num_vertices);
  if (format() == CsrFormat::kV2) {
    const std::uint8_t* p = body_.data() + offsets_[v];
    return read_varint_fast(p);
  }
  const std::uint64_t begin = offsets_[v];
  if (has_degree()) {
    return static_cast<std::uint32_t>(entries_[begin]);
  }
  return static_cast<std::uint32_t>(offsets_[v + 1] - begin - 1);
}

}  // namespace gpsa
