#include "graph/csr_file.hpp"

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <vector>

#include "platform/file_util.hpp"

namespace gpsa {

namespace {
// Crash-injection state for the fork-based crash tests. Plain globals:
// they are only ever set inside a freshly forked, single-threaded child.
int g_crash_after_flushes = -1;
bool g_crash_before_index = false;
}  // namespace

void set_csr_write_crash_after_flushes(int flushes) {
  g_crash_after_flushes = flushes;
}

void set_csr_write_crash_before_index(bool crash) {
  g_crash_before_index = crash;
}

Status write_csr_file(const Csr& csr, const std::string& base_path,
                      bool with_degree) {
  const VertexId n = csr.num_vertices();
  // Entries: one per edge, one sentinel per vertex, one degree per vertex
  // when with_degree.
  const std::uint64_t num_entries =
      csr.num_edges() + n + (with_degree ? n : 0);

  CsrFileHeader header{};
  header.magic = CsrFileHeader::kMagic;
  header.version = CsrFileHeader::kVersion;
  header.flags = with_degree ? CsrFileHeader::kFlagHasDegree : 0;
  header.num_vertices = n;
  header.num_edges = csr.num_edges();
  header.num_entries = num_entries;

  std::ofstream out(base_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return io_error("write_csr_file: cannot open " + base_path);
  }
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));

  std::vector<std::uint64_t> offsets;
  offsets.reserve(static_cast<std::size_t>(n) + 1);

  // Buffered record emission: int32 entries staged in chunks.
  std::vector<std::int32_t> buffer;
  buffer.reserve(1 << 16);
  std::uint64_t entry_cursor = 0;
  int flush_count = 0;
  const auto flush = [&]() -> Status {
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size() * sizeof(std::int32_t)));
    if (!out) {
      return io_error("write_csr_file: short write to " + base_path);
    }
    buffer.clear();
    if (g_crash_after_flushes >= 0 && flush_count++ == g_crash_after_flushes) {
      out.flush();  // make the torn prefix durable, then die mid-write
      ::_exit(0);
    }
    return Status::ok();
  };

  for (VertexId v = 0; v < n; ++v) {
    offsets.push_back(entry_cursor);
    const auto nbrs = csr.neighbors(v);
    if (with_degree) {
      buffer.push_back(static_cast<std::int32_t>(nbrs.size()));
      ++entry_cursor;
    }
    for (VertexId dst : nbrs) {
      buffer.push_back(static_cast<std::int32_t>(dst));
    }
    entry_cursor += nbrs.size();
    buffer.push_back(kCsrEndOfList);
    ++entry_cursor;
    if (buffer.size() >= (1 << 16)) {
      GPSA_RETURN_IF_ERROR(flush());
    }
  }
  offsets.push_back(entry_cursor);
  GPSA_RETURN_IF_ERROR(flush());
  GPSA_CHECK(entry_cursor == num_entries);
  if (g_crash_before_index) {
    out.flush();
    ::_exit(0);
  }

  std::ofstream idx(base_path + ".idx", std::ios::binary | std::ios::trunc);
  if (!idx) {
    return io_error("write_csr_file: cannot open " + base_path + ".idx");
  }
  idx.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() * sizeof(std::uint64_t)));
  if (!idx) {
    return io_error("write_csr_file: short write to " + base_path + ".idx");
  }
  return Status::ok();
}

Status preprocess_edges_to_csr(const EdgeList& edges,
                               const std::string& base_path,
                               bool with_degree) {
  // Counting-sort into adjacency order (§V.B: "an extra sorting operation
  // is needed to transform [edge lists] into the adjacency format").
  const Csr csr = Csr::from_edges(edges);
  return write_csr_file(csr, base_path, with_degree);
}

Result<CsrFileReader> CsrFileReader::open(const std::string& base_path) {
  CsrFileReader reader;
  GPSA_ASSIGN_OR_RETURN(reader.entry_map_,
                        MmapFile::open(base_path, MmapFile::Mode::kReadOnly));
  if (reader.entry_map_.size() < sizeof(CsrFileHeader)) {
    return corrupt_data("csr file too small: " + base_path);
  }
  std::memcpy(&reader.header_, reader.entry_map_.data(),
              sizeof(CsrFileHeader));
  if (reader.header_.magic != CsrFileHeader::kMagic) {
    return corrupt_data("bad csr magic in " + base_path);
  }
  if (reader.header_.version != CsrFileHeader::kVersion) {
    return corrupt_data("unsupported csr version in " + base_path);
  }
  if ((reader.header_.flags & ~CsrFileHeader::kFlagHasDegree) != 0) {
    return corrupt_data("unknown csr flags in " + base_path);
  }
  const std::uint64_t body_bytes =
      reader.entry_map_.size() - sizeof(CsrFileHeader);
  // Compare via division: `num_entries * 4` can wrap uint64 for a forged
  // header and collide with a small body.
  if (body_bytes % sizeof(std::int32_t) != 0 ||
      body_bytes / sizeof(std::int32_t) != reader.header_.num_entries) {
    return corrupt_data("csr entry count mismatch in " + base_path);
  }
  // Structural accounting: one entry per edge, one sentinel per vertex,
  // one degree per vertex when the flag is set. Checked up front so the
  // per-record loop below cannot be fooled by a self-consistent offset
  // table over the wrong totals.
  const std::uint64_t per_vertex =
      1 + (reader.header_.flags & CsrFileHeader::kFlagHasDegree ? 1 : 0);
  if (reader.header_.num_entries !=
      reader.header_.num_edges +
          per_vertex * std::uint64_t{reader.header_.num_vertices}) {
    return corrupt_data("csr header totals inconsistent in " + base_path);
  }
  reader.entries_ = std::span<const std::int32_t>(
      reinterpret_cast<const std::int32_t*>(reader.entry_map_.data() +
                                            sizeof(CsrFileHeader)),
      reader.header_.num_entries);
  GPSA_RETURN_IF_ERROR(reader.entry_map_.advise(MmapFile::Advice::kSequential));

  GPSA_ASSIGN_OR_RETURN(
      reader.index_map_,
      MmapFile::open(base_path + ".idx", MmapFile::Mode::kReadOnly));
  const std::uint64_t expected_idx =
      (static_cast<std::uint64_t>(reader.header_.num_vertices) + 1) *
      sizeof(std::uint64_t);
  if (reader.index_map_.size() != expected_idx) {
    return corrupt_data("csr index size mismatch in " + base_path + ".idx");
  }
  reader.offsets_ = reader.index_map_.as_span<const std::uint64_t>();

  // Validate the whole record structure once, here, so record() below can
  // stay an infallible accessor: every downstream consumer (dispatchers,
  // baselines, tests) indexes through offsets_ without re-checking. Both
  // files are untrusted input — a hostile offset table would otherwise
  // turn record() into an out-of-bounds read.
  const bool with_degree =
      (reader.header_.flags & CsrFileHeader::kFlagHasDegree) != 0;
  const std::uint64_t n = reader.header_.num_vertices;
  if (reader.offsets_[0] != 0 ||
      reader.offsets_[n] != reader.header_.num_entries) {
    return corrupt_data("csr index endpoints invalid in " + base_path +
                        ".idx");
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    const std::uint64_t begin = reader.offsets_[v];
    const std::uint64_t end = reader.offsets_[v + 1];
    // Monotonicity plus the endpoint checks above bound every record
    // inside entries_ (begin is the previous record's validated end).
    // The minimum record is sentinel-only (+ degree). Written to avoid
    // arithmetic on unvalidated offsets: `begin + per_vertex` could wrap.
    if (end > reader.header_.num_entries || begin > end ||
        end - begin < per_vertex) {
      return corrupt_data("csr record " + std::to_string(v) +
                          " malformed in " + base_path + ".idx");
    }
    std::uint64_t pos = begin;
    const std::uint64_t degree = end - begin - per_vertex;
    if (with_degree) {
      if (reader.entries_[pos] !=
          static_cast<std::int64_t>(degree)) {
        return corrupt_data("csr record " + std::to_string(v) +
                            " degree mismatch in " + base_path);
      }
      ++pos;
    }
    for (; pos != end - 1; ++pos) {
      const std::int32_t target = reader.entries_[pos];
      if (target < 0 || static_cast<std::uint64_t>(target) >= n) {
        return corrupt_data("csr record " + std::to_string(v) +
                            " target out of range in " + base_path);
      }
    }
    if (reader.entries_[end - 1] != kCsrEndOfList) {
      return corrupt_data("csr record " + std::to_string(v) +
                          " missing sentinel in " + base_path);
    }
  }
  return reader;
}

Status CsrFileReader::drop_cache() {
  GPSA_RETURN_IF_ERROR(
      entry_map_.advise_range(0, entry_map_.size(), MmapFile::Advice::kDontNeed));
  GPSA_RETURN_IF_ERROR(
      index_map_.advise_range(0, index_map_.size(), MmapFile::Advice::kDontNeed));
  GPSA_RETURN_IF_ERROR(evict_from_page_cache(entry_map_.path()));
  return evict_from_page_cache(index_map_.path());
}

CsrFileReader::VertexRecord CsrFileReader::record(VertexId v) const {
  GPSA_CHECK(v < header_.num_vertices);
  std::uint64_t pos = offsets_[v];
  const std::uint64_t end = offsets_[v + 1];
  VertexRecord out;
  out.vertex = v;
  if (has_degree()) {
    out.out_degree = static_cast<std::uint32_t>(entries_[pos]);
    ++pos;
  } else {
    // end - pos includes the sentinel.
    out.out_degree = static_cast<std::uint32_t>(end - pos - 1);
  }
  GPSA_DCHECK(entries_[end - 1] == kCsrEndOfList);
  out.targets = entries_.subspan(pos, end - 1 - pos);
  return out;
}

}  // namespace gpsa
