// Vertex-interval assignment for dispatchers (paper §V.A).
//
// Each dispatcher owns a contiguous vertex-id interval plus the matching
// [start, end) offsets into the on-disk CSR entry array. Two strategies,
// both from the paper:
//   kUniformVertices  -- "a simple mod algorithm": equal vertex counts;
//   kBalancedEdges    -- "assign vertices ... by the average edges to
//                         ensure that every dispatcher sends exactly the
//                         same number of messages": equal edge counts.
// The ablation bench (bench_ablation_partition) compares the two on skewed
// graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_file.hpp"
#include "graph/types.hpp"

namespace gpsa {

struct Interval {
  VertexId begin_vertex = 0;
  VertexId end_vertex = 0;          // exclusive
  std::uint64_t begin_entry = 0;    // offset into the CSR entry array
  std::uint64_t end_entry = 0;      // exclusive
  EdgeCount edge_count = 0;

  VertexId vertex_count() const { return end_vertex - begin_vertex; }
};

enum class PartitionStrategy { kUniformVertices, kBalancedEdges };

/// Splits [0, |V|) into at most `parts` non-empty intervals. Every vertex is
/// covered exactly once; intervals are in ascending id order.
std::vector<Interval> make_intervals(const CsrFileReader& csr, unsigned parts,
                                     PartitionStrategy strategy);

/// Same computation from in-memory degree data (used by tests and baselines).
std::vector<Interval> make_intervals_from_degrees(
    const std::vector<EdgeCount>& out_degrees, unsigned parts,
    PartitionStrategy strategy);

}  // namespace gpsa
