// On-disk CSR in the paper's format (§IV.D, Fig. 4).
//
// The edge structure is one flat array of 32-bit entries, vertices in id
// order. Each vertex record is:
//
//     [out_degree]  dst0 dst1 ... dstK-1  -1
//
// where the leading out_degree entry is present when the file was written
// `with_degree` (Fig. 4c) — the variant the paper recommends so PageRank's
// genMsg needs no extra degree lookup — and absent otherwise (Fig. 4b).
// A -1 sentinel (kCsrEndOfList) terminates every record, including empty
// ones.
//
// A companion "<base>.idx" file stores |V|+1 64-bit record-start offsets so
// dispatch intervals can be assigned without scanning (the paper's
// dispatcher `interval` holds exactly these start/end offsets).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"
#include "platform/mmap_file.hpp"
#include "util/status.hpp"

namespace gpsa {

struct CsrFileHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t flags;  // bit 0: has_degree
  std::uint32_t num_vertices;
  std::uint64_t num_edges;
  std::uint64_t num_entries;  // int32 entries following the header

  static constexpr std::uint32_t kMagic = 0x47435352;  // "GCSR"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kFlagHasDegree = 1U << 0;
};
static_assert(sizeof(CsrFileHeader) == 32);

/// Serializes an in-memory CSR into "<base>" + "<base>.idx".
Status write_csr_file(const Csr& csr, const std::string& base_path,
                      bool with_degree);

/// Convenience: canonical preprocessing pipeline (paper §V.B) — sorts the
/// edge list into adjacency order and writes the CSR file pair.
Status preprocess_edges_to_csr(const EdgeList& edges,
                               const std::string& base_path, bool with_degree);

/// Test-only crash injection for write_csr_file (the fork-based crash
/// suite): after `flushes` successful entry-buffer flushes the process
/// _exit()s, leaving a torn entry file and no index. Negative disables
/// (the default). Only ever set inside a forked child.
void set_csr_write_crash_after_flushes(int flushes);

/// Test-only: _exit() after the entry file is complete but before the
/// .idx file is (re)written — the torn state where a stale index from a
/// previous build can point into a fresh entry file.
void set_csr_write_crash_before_index(bool crash);

/// Memory-mapped reader over the file pair. The mapping is advised
/// MADV_SEQUENTIAL: dispatchers stream records in id order.
class CsrFileReader {
 public:
  static Result<CsrFileReader> open(const std::string& base_path);

  VertexId num_vertices() const { return header_.num_vertices; }
  EdgeCount num_edges() const { return header_.num_edges; }
  bool has_degree() const {
    return (header_.flags & CsrFileHeader::kFlagHasDegree) != 0;
  }

  /// The raw entry array (degrees, destinations, -1 sentinels).
  std::span<const std::int32_t> entries() const { return entries_; }

  /// Record-start offsets into entries(); |V|+1 values, the last one equals
  /// entries().size().
  std::span<const std::uint64_t> record_offsets() const { return offsets_; }

  struct VertexRecord {
    VertexId vertex;
    std::uint32_t out_degree;
    std::span<const std::int32_t> targets;  // excludes the -1 sentinel
  };

  /// Decodes the record of vertex v (random access; tests and baselines).
  VertexRecord record(VertexId v) const;

  /// Total bytes of the entry file (reported in the Table I bench, which
  /// reproduces the paper's CSR-compression observation for twitter-2010).
  std::uint64_t entry_file_bytes() const { return entry_map_.size(); }

  /// Path of the entry file (the .idx path is this + ".idx"). I/O backends
  /// open their record streams against it.
  const std::string& entry_path() const { return entry_map_.path(); }

  /// Cold-cache protocol (bench_ablation_io): release this reader's pages
  /// from its mappings (madvise DONTNEED) and from the kernel page cache
  /// (fadvise), so the next scan refaults from disk. Open-time validation
  /// touches every page, which would otherwise leave a warm cache.
  Status drop_cache();

 private:
  CsrFileHeader header_{};
  MmapFile entry_map_;
  MmapFile index_map_;
  std::span<const std::int32_t> entries_;
  std::span<const std::uint64_t> offsets_;
};

}  // namespace gpsa
