// On-disk CSR in the paper's format (§IV.D, Fig. 4) plus the compressed
// v2 format (DESIGN.md §16).
//
// v1: one flat array of 32-bit entries, vertices in id order. Each vertex
// record is:
//
//     [out_degree]  dst0 dst1 ... dstK-1  -1
//
// where the leading out_degree entry is present when the file was written
// `with_degree` (Fig. 4c) — the variant the paper recommends so PageRank's
// genMsg needs no extra degree lookup — and absent otherwise (Fig. 4b).
// A -1 sentinel (kCsrEndOfList) terminates every record, including empty
// ones. The companion "<base>.idx" stores |V|+1 64-bit record-start
// *entry* offsets so dispatch intervals can be assigned without scanning
// (the paper's dispatcher `interval` holds exactly these offsets).
//
// v2: each record is delta-gap varint encoded (graph/csr_v2.hpp) — sorted
// targets, LEB128 gaps, absolute restarts every kCsrV2RestartInterval.
// The same header struct negotiates the two (version field); for v2,
// `num_entries` counts *body bytes* and "<base>.idx" stores per-vertex
// byte offsets, so every index-driven consumer (partition intervals,
// CsrEntryStream chunks, worklist jumps) works in the file's native unit
// without caring which one it is. Renumbered files carry the order kind
// in the flags and a "<base>.perm" new->old sidecar.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/csr_v2.hpp"
#include "graph/types.hpp"
#include "platform/mmap_file.hpp"
#include "util/status.hpp"

namespace gpsa {

struct CsrFileHeader {
  std::uint32_t magic;
  std::uint32_t version;  // CsrFormat: 1 flat entries, 2 varint delta-gap
  std::uint32_t flags;    // bit 0: has_degree; bits 8-9: CsrOrder (v2)
  std::uint32_t num_vertices;
  std::uint64_t num_edges;
  std::uint64_t num_entries;  // v1: int32 entries; v2: body bytes

  static constexpr std::uint32_t kMagic = 0x47435352;  // "GCSR"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::uint32_t kVersionV2 = 2;
  static constexpr std::uint32_t kFlagHasDegree = 1U << 0;
  static constexpr std::uint32_t kOrderShift = 8;
  static constexpr std::uint32_t kOrderMask = 3U << kOrderShift;
};
static_assert(sizeof(CsrFileHeader) == 32);

/// Streaming record writer for both formats, shared by write_csr_file and
/// the offline converter. Usage: begin(), append_record() per vertex in id
/// order, finish(). v1 emission is byte-for-byte the historical layout;
/// v2 sorts nothing itself — callers pass ascending targets (CHECKed).
class CsrFileWriter {
 public:
  CsrFileWriter(std::string base_path, CsrFormat format, bool with_degree,
                CsrOrder order = CsrOrder::kNone);

  /// Opens the entry file and writes the header (v1: final; v2: a
  /// placeholder rewritten by finish(), body size unknown up front).
  Status begin(VertexId num_vertices, EdgeCount num_edges);

  /// Appends one vertex record. v2 requires ascending targets.
  Status append_record(std::span<const VertexId> targets);

  /// Flushes, rewrites the v2 header, writes "<base>.idx" and — when the
  /// order is not kNone — "<base>.perm" from `new_to_old`.
  Status finish(std::span<const VertexId> new_to_old = {});

 private:
  Status flush_buffer();

  const std::string base_path_;
  const CsrFormat format_;
  const bool with_degree_;
  const CsrOrder order_;
  CsrFileHeader header_{};
  std::vector<std::uint8_t> buffer_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t unit_cursor_ = 0;  // v1: entries; v2: body bytes
  VertexId records_written_ = 0;
  int flush_count_ = 0;
  // std::ofstream kept behind a pimpl-free trick: the stream object lives
  // in the cpp via this opaque holder to keep <fstream> out of the header.
  struct Stream;
  std::shared_ptr<Stream> out_;
};

/// Serializes an in-memory CSR into "<base>" + "<base>.idx" (v1 layout —
/// the historical entry point, byte-for-byte unchanged).
Status write_csr_file(const Csr& csr, const std::string& base_path,
                      bool with_degree);

/// Format/order-aware serialization. `csr` is in *original* ids; when
/// `order` != kNone the graph is renumbered (new ids assigned by the
/// order's permutation, targets relabeled and sorted) and "<base>.perm"
/// records new->old. order != kNone requires v2 — a v1 file has no flag
/// bits to carry it, and v1 files must stay byte-identical — so the
/// combination is rejected up front.
Status write_csr_file(const Csr& csr, const std::string& base_path,
                      bool with_degree, CsrFormat format, CsrOrder order);

/// Convenience: canonical preprocessing pipeline (paper §V.B) — sorts the
/// edge list into adjacency order and writes the CSR file pair.
Status preprocess_edges_to_csr(const EdgeList& edges,
                               const std::string& base_path, bool with_degree);
Status preprocess_edges_to_csr(const EdgeList& edges,
                               const std::string& base_path, bool with_degree,
                               CsrFormat format, CsrOrder order);

/// Offline converter (gpsa_cli convert): reads any supported format,
/// translates back to original ids through the input's permutation, and
/// rewrites with the requested format/order.
Status convert_csr_file(const std::string& in_base,
                        const std::string& out_base, CsrFormat format,
                        CsrOrder order, bool with_degree);

/// Test-only crash injection for write_csr_file (the fork-based crash
/// suite): after `flushes` successful entry-buffer flushes the process
/// _exit()s, leaving a torn entry file and no index. Negative disables
/// (the default). Only ever set inside a forked child.
void set_csr_write_crash_after_flushes(int flushes);

/// Test-only: _exit() after the entry file is complete but before the
/// .idx file is (re)written — the torn state where a stale index from a
/// previous build can point into a fresh entry file.
void set_csr_write_crash_before_index(bool crash);

/// Memory-mapped reader over the file pair. The mapping is advised
/// MADV_SEQUENTIAL: dispatchers stream records in id order. open()
/// negotiates the format from the header and fully validates the record
/// structure (both formats), so the accessors below are infallible.
class CsrFileReader {
 public:
  static Result<CsrFileReader> open(const std::string& base_path);

  VertexId num_vertices() const { return header_.num_vertices; }
  EdgeCount num_edges() const { return header_.num_edges; }
  bool has_degree() const {
    return (header_.flags & CsrFileHeader::kFlagHasDegree) != 0;
  }
  CsrFormat format() const {
    return header_.version == CsrFileHeader::kVersionV2 ? CsrFormat::kV2
                                                        : CsrFormat::kV1;
  }
  /// Renumbering the file was written with (always kNone for v1).
  CsrOrder order() const {
    return static_cast<CsrOrder>((header_.flags & CsrFileHeader::kOrderMask) >>
                                 CsrFileHeader::kOrderShift);
  }
  /// new->old id map loaded from "<base>.perm"; empty when order()==kNone
  /// (identity). Engines translate Program-boundary ids and invert this on
  /// output so results stay keyed by original ids.
  std::span<const VertexId> permutation() const { return permutation_; }

  /// The raw entry array (degrees, destinations, -1 sentinels). v1 only;
  /// empty for v2 (whose raw body is bytes — see body()).
  std::span<const std::int32_t> entries() const { return entries_; }

  /// The raw encoded record body (v2 only; empty for v1).
  std::span<const std::uint8_t> body() const { return body_; }

  /// Size of one addressing unit in the entry file: 4 (int32 entries) for
  /// v1, 1 (bytes) for v2. record_offsets(), Interval::begin/end_entry,
  /// and the dispatcher's streamed-entry counters are all in this unit.
  unsigned unit_bytes() const {
    return format() == CsrFormat::kV2 ? 1U : sizeof(std::int32_t);
  }
  /// Total addressing units in the body (== record_offsets().back()).
  std::uint64_t num_units() const { return header_.num_entries; }

  /// Upper bound on one decoded record's entry count (degree + degree
  /// slot + sentinel) — sizes the streaming decode scratch so the
  /// dispatch path never allocates.
  std::size_t max_record_entries() const { return max_record_entries_; }

  /// Record-start offsets (in unit_bytes() units); |V|+1 values, the last
  /// equals num_units().
  std::span<const std::uint64_t> record_offsets() const { return offsets_; }

  struct VertexRecord {
    VertexId vertex;
    std::uint32_t out_degree;
    std::span<const std::int32_t> targets;  // excludes the -1 sentinel
  };

  /// Decodes the record of vertex v (random access; tests and baselines).
  /// For v2 the targets view aliases an internal scratch buffer: valid
  /// until the next record() call, and not thread-safe. Dispatchers never
  /// come through here — they stream via CsrEntryStream.
  VertexRecord record(VertexId v) const;

  /// Out-degree of v without materializing the record (v2: decodes only
  /// the leading varint). The partitioner's per-vertex pass uses this.
  std::uint32_t out_degree(VertexId v) const;

  /// Total bytes of the entry file (reported in the Table I bench, which
  /// reproduces the paper's CSR-compression observation for twitter-2010).
  std::uint64_t entry_file_bytes() const { return entry_map_.size(); }

  /// Path of the entry file (the .idx path is this + ".idx"). I/O backends
  /// open their record streams against it.
  const std::string& entry_path() const { return entry_map_.path(); }

  /// Cold-cache protocol (bench_ablation_io): release this reader's pages
  /// from its mappings (madvise DONTNEED) and from the kernel page cache
  /// (fadvise), so the next scan refaults from disk. Open-time validation
  /// touches every page, which would otherwise leave a warm cache.
  Status drop_cache();

 private:
  CsrFileHeader header_{};
  MmapFile entry_map_;
  MmapFile index_map_;
  std::span<const std::int32_t> entries_;
  std::span<const std::uint8_t> body_;
  std::span<const std::uint64_t> offsets_;
  std::vector<VertexId> permutation_;
  std::size_t max_record_entries_ = 2;
  /// v2 record() decode target (see the record() contract above).
  mutable std::vector<std::int32_t> record_scratch_;
};

}  // namespace gpsa
