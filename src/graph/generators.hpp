// Synthetic graph generators.
//
// Two roles: (1) structured family graphs (chain, grid, star, complete,
// tree) with analytically known properties for unit and property tests;
// (2) R-MAT power-law graphs standing in for the paper's datasets
// (web-Google, soc-Pokec, soc-LiveJournal, twitter-2010), which are not
// redistributable here. The stand-ins keep each dataset's node:edge aspect
// ratio and heavy-tailed out-degree skew — the properties the paper's
// experiments actually exercise (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace gpsa {

/// G(n, m): m directed edges drawn uniformly (self-loops excluded,
/// duplicates possible unless canonicalized by the caller).
EdgeList erdos_renyi(VertexId n, EdgeCount m, std::uint64_t seed);

struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
  double noise = 0.10;  // per-level probability smoothing
};

/// R-MAT graph over 2^scale vertices with m edges.
EdgeList rmat(unsigned scale, EdgeCount m, std::uint64_t seed,
              const RmatParams& params = {});

/// 0 -> 1 -> ... -> n-1.
EdgeList chain(VertexId n);

/// rows x cols lattice, right and down edges.
EdgeList grid(VertexId rows, VertexId cols);

/// Hub 0 -> {1..n-1} and back edges {1..n-1} -> 0.
EdgeList star(VertexId n);

/// All ordered pairs (i, j), i != j.
EdgeList complete(VertexId n);

/// Complete binary out-tree with n vertices (parent -> children).
EdgeList binary_tree(VertexId n);

// --- Paper dataset stand-ins -----------------------------------------------

enum class PaperGraph { kGoogle, kPokec, kLiveJournal, kTwitter2010 };

struct DatasetSpec {
  std::string name;          // paper's dataset name
  VertexId paper_vertices;   // Table I values
  EdgeCount paper_edges;
  VertexId stand_in_vertices;  // our scaled stand-in (at scale = 1.0)
  EdgeCount stand_in_edges;
};

/// Table I row + our stand-in sizing for a dataset.
DatasetSpec paper_dataset_spec(PaperGraph which);

std::vector<PaperGraph> all_paper_graphs();

/// Generates the R-MAT stand-in. `scale` multiplies the stand-in size
/// (0.1 for quick tests, 1.0 for the benchmark runs).
EdgeList generate_paper_graph(PaperGraph which, double scale,
                              std::uint64_t seed);

}  // namespace gpsa
