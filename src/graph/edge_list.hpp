// Edge-list container and the text/binary interchange formats the paper's
// preprocessing stage accepts (§V.A: "text-based edge list or adjacency
// graph").
#pragma once

#include <string>
#include <vector>

#include "graph/types.hpp"
#include "util/status.hpp"

namespace gpsa {

/// A directed multigraph as a flat list of (src, dst) pairs plus the vertex
/// count (max id + 1, or an explicit larger bound for isolated vertices).
class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  VertexId num_vertices() const { return num_vertices_; }
  EdgeCount num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& edges() { return edges_; }

  void add_edge(VertexId src, VertexId dst);

  /// Raises the vertex-count bound (never lowers it).
  void ensure_vertices(VertexId count);

  /// Sorts by (src, dst) and removes duplicate edges and self-loops.
  void canonicalize(bool remove_self_loops = true);

  /// SNAP-style text: one "src<ws>dst" pair per line; '#'-prefixed comment
  /// lines are skipped.
  static Result<EdgeList> read_text(const std::string& path);
  Status write_text(const std::string& path) const;

  /// Binary: u32 magic, u32 num_vertices, u64 num_edges, then (u32,u32)
  /// pairs. This is the fast path the benchmark harness uses.
  static Result<EdgeList> read_binary(const std::string& path);
  Status write_binary(const std::string& path) const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace gpsa
