#include "graph/partition.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gpsa {
namespace {

/// Cuts [0, n) after computing per-part vertex boundaries, then fills in
/// entry offsets. `boundary(i)` returns the first vertex of part i.
template <typename BoundaryFn>
std::vector<Interval> build(const std::vector<EdgeCount>& degrees,
                            unsigned parts, BoundaryFn boundary) {
  const VertexId n = static_cast<VertexId>(degrees.size());
  std::vector<Interval> out;
  out.reserve(parts);
  for (unsigned p = 0; p < parts; ++p) {
    const VertexId begin = boundary(p);
    const VertexId end = boundary(p + 1);
    if (begin >= end) {
      continue;  // fewer parts than requested on tiny graphs
    }
    Interval iv;
    iv.begin_vertex = begin;
    iv.end_vertex = end;
    for (VertexId v = begin; v < end; ++v) {
      iv.edge_count += degrees[v];
    }
    out.push_back(iv);
  }
  GPSA_CHECK(!out.empty() || n == 0);
  return out;
}

}  // namespace

std::vector<Interval> make_intervals_from_degrees(
    const std::vector<EdgeCount>& out_degrees, unsigned parts,
    PartitionStrategy strategy) {
  GPSA_CHECK(parts >= 1);
  const VertexId n = static_cast<VertexId>(out_degrees.size());
  if (n == 0) {
    return {};
  }

  std::vector<Interval> intervals;
  if (strategy == PartitionStrategy::kUniformVertices) {
    intervals = build(out_degrees, parts, [n, parts](unsigned p) {
      return static_cast<VertexId>(
          (static_cast<std::uint64_t>(n) * p) / parts);
    });
  } else {
    // Greedy prefix cut at multiples of total_edges / parts. Vertices with
    // huge degree can force an interval past the ideal cut; the remainder
    // rebalances over the remaining parts.
    EdgeCount total = 0;
    for (EdgeCount d : out_degrees) {
      total += d;
    }
    std::vector<VertexId> cuts(parts + 1, n);
    cuts[0] = 0;
    VertexId v = 0;
    EdgeCount prefix = 0;
    for (unsigned p = 1; p < parts; ++p) {
      const EdgeCount target = total * p / parts;  // ideal prefix sum
      while (v < n && prefix < target) {
        prefix += out_degrees[v];
        ++v;
      }
      cuts[p] = v;
    }
    intervals = build(out_degrees, parts,
                      [&cuts](unsigned p) { return cuts[p]; });
  }
  return intervals;
}

std::vector<Interval> make_intervals(const CsrFileReader& csr, unsigned parts,
                                     PartitionStrategy strategy) {
  const VertexId n = csr.num_vertices();
  std::vector<EdgeCount> degrees(n);
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = csr.record(v).out_degree;
  }
  auto intervals = make_intervals_from_degrees(degrees, parts, strategy);
  const auto offsets = csr.record_offsets();
  for (Interval& iv : intervals) {
    iv.begin_entry = offsets[iv.begin_vertex];
    iv.end_entry = offsets[iv.end_vertex];
  }
  return intervals;
}

}  // namespace gpsa
