#include "graph/partition.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gpsa {
namespace {

/// Cuts [0, n) after computing per-part vertex boundaries, then fills in
/// entry offsets. `boundary(i)` returns the first vertex of part i.
template <typename BoundaryFn>
std::vector<Interval> build(const std::vector<EdgeCount>& degrees,
                            unsigned parts, BoundaryFn boundary) {
  const VertexId n = static_cast<VertexId>(degrees.size());
  std::vector<Interval> out;
  out.reserve(parts);
  for (unsigned p = 0; p < parts; ++p) {
    const VertexId begin = boundary(p);
    const VertexId end = boundary(p + 1);
    if (begin >= end) {
      continue;  // fewer parts than requested on tiny graphs
    }
    Interval iv;
    iv.begin_vertex = begin;
    iv.end_vertex = end;
    for (VertexId v = begin; v < end; ++v) {
      iv.edge_count += degrees[v];
    }
    out.push_back(iv);
  }
  GPSA_CHECK(!out.empty() || n == 0);
  return out;
}

}  // namespace

std::vector<Interval> make_intervals_from_degrees(
    const std::vector<EdgeCount>& out_degrees, unsigned parts,
    PartitionStrategy strategy) {
  GPSA_CHECK(parts >= 1);
  const VertexId n = static_cast<VertexId>(out_degrees.size());
  if (n == 0) {
    return {};
  }

  std::vector<Interval> intervals;
  if (strategy == PartitionStrategy::kUniformVertices) {
    intervals = build(out_degrees, parts, [n, parts](unsigned p) {
      return static_cast<VertexId>(
          (static_cast<std::uint64_t>(n) * p) / parts);
    });
  } else {
    // Greedy prefix cut. Each part's target is recomputed from the edges
    // and parts *remaining*, so a huge-degree vertex that overshoots its
    // cut rebalances over the rest instead of starving later parts: with
    // fixed prefix targets total*p/parts, one hub vertex can exceed several
    // cumulative targets at once, collapsing those cuts onto the same
    // vertex and leaving their dispatchers with empty intervals.
    EdgeCount remaining = 0;
    for (EdgeCount d : out_degrees) {
      remaining += d;
    }
    std::vector<VertexId> cuts(parts + 1, n);
    cuts[0] = 0;
    VertexId v = 0;
    for (unsigned p = 1; p < parts; ++p) {
      const unsigned parts_left = parts - p + 1;
      const EdgeCount target = remaining / parts_left;  // ideal for part p-1
      // Keep at least one vertex available for each later part.
      const VertexId later_parts = static_cast<VertexId>(parts - p);
      const VertexId max_end = n > later_parts ? n - later_parts : v;
      EdgeCount part_edges = 0;
      while (v < max_end && part_edges < target) {
        part_edges += out_degrees[v];
        ++v;
      }
      if (v == cuts[p - 1] && v < max_end) {
        // Zero target (edge-starved tail): still take one vertex so every
        // part is non-empty whenever parts <= |V|.
        part_edges += out_degrees[v];
        ++v;
      }
      cuts[p] = v;
      remaining -= part_edges;
    }
    intervals = build(out_degrees, parts,
                      [&cuts](unsigned p) { return cuts[p]; });
  }
  return intervals;
}

std::vector<Interval> make_intervals(const CsrFileReader& csr, unsigned parts,
                                     PartitionStrategy strategy) {
  const VertexId n = csr.num_vertices();
  const auto offsets = csr.record_offsets();
  const bool v2 = csr.format() == CsrFormat::kV2;
  // Balance weights: out-degrees for v1, where every edge costs the same
  // 4-byte entry, but *encoded record bytes* for v2 — varint compression
  // decouples byte skew from degree skew (a hub of near-consecutive
  // targets is cheap, a scattered one expensive), and a dispatcher's
  // streaming cost is proportional to the bytes it scans, not the edges.
  std::vector<EdgeCount> weights(n);
  for (VertexId v = 0; v < n; ++v) {
    weights[v] = v2 ? offsets[v + 1] - offsets[v] : csr.out_degree(v);
  }
  auto intervals = make_intervals_from_degrees(weights, parts, strategy);
  for (Interval& iv : intervals) {
    iv.begin_entry = offsets[iv.begin_vertex];
    iv.end_entry = offsets[iv.end_vertex];
    if (v2) {
      // build() summed byte weights into edge_count; restore true edges
      // (progress accounting and the stats line report edge counts).
      iv.edge_count = 0;
      for (VertexId v = iv.begin_vertex; v < iv.end_vertex; ++v) {
        iv.edge_count += csr.out_degree(v);
      }
    }
  }
  return intervals;
}

}  // namespace gpsa
