#include "graph/generators.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gpsa {

EdgeList erdos_renyi(VertexId n, EdgeCount m, std::uint64_t seed) {
  GPSA_CHECK(n >= 2);
  Rng rng(seed);
  EdgeList out;
  out.ensure_vertices(n);
  out.edges().reserve(m);
  for (EdgeCount i = 0; i < m; ++i) {
    const VertexId src = static_cast<VertexId>(rng.next_below(n));
    VertexId dst = static_cast<VertexId>(rng.next_below(n - 1));
    if (dst >= src) {
      ++dst;  // skip self-loop
    }
    out.add_edge(src, dst);
  }
  return out;
}

EdgeList rmat(unsigned scale, EdgeCount m, std::uint64_t seed,
              const RmatParams& params) {
  GPSA_CHECK(scale >= 1 && scale <= 31);
  const double d = 1.0 - params.a - params.b - params.c;
  GPSA_CHECK(d > 0.0);
  const VertexId n = static_cast<VertexId>(1U) << scale;
  Rng rng(seed);
  EdgeList out;
  out.ensure_vertices(n);
  out.edges().reserve(m);
  for (EdgeCount i = 0; i < m; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    // Descend the adjacency-matrix quadtree; smooth the quadrant
    // probabilities per level so degree skew is not perfectly geometric.
    double a = params.a;
    double b = params.b;
    double c = params.c;
    for (unsigned level = 0; level < scale; ++level) {
      const double u = rng.next_double();
      VertexId bit_src = 0;
      VertexId bit_dst = 0;
      if (u < a) {
        // top-left: no bits
      } else if (u < a + b) {
        bit_dst = 1;
      } else if (u < a + b + c) {
        bit_src = 1;
      } else {
        bit_src = 1;
        bit_dst = 1;
      }
      src = (src << 1) | bit_src;
      dst = (dst << 1) | bit_dst;
      // Multiplicative noise, renormalized.
      const double na = a * (1.0 - params.noise * (rng.next_double() - 0.5));
      const double nb = b * (1.0 - params.noise * (rng.next_double() - 0.5));
      const double nc = c * (1.0 - params.noise * (rng.next_double() - 0.5));
      const double nd =
          (1.0 - a - b - c) * (1.0 - params.noise * (rng.next_double() - 0.5));
      const double norm = na + nb + nc + nd;
      a = na / norm;
      b = nb / norm;
      c = nc / norm;
    }
    if (src == dst) {
      dst = static_cast<VertexId>((dst + 1) % n);
    }
    out.add_edge(src, dst);
  }
  out.ensure_vertices(n);
  return out;
}

EdgeList chain(VertexId n) {
  GPSA_CHECK(n >= 1);
  EdgeList out;
  out.ensure_vertices(n);
  for (VertexId v = 0; v + 1 < n; ++v) {
    out.add_edge(v, v + 1);
  }
  return out;
}

EdgeList grid(VertexId rows, VertexId cols) {
  GPSA_CHECK(rows >= 1 && cols >= 1);
  EdgeList out;
  out.ensure_vertices(rows * cols);
  const auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        out.add_edge(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows) {
        out.add_edge(id(r, c), id(r + 1, c));
      }
    }
  }
  return out;
}

EdgeList star(VertexId n) {
  GPSA_CHECK(n >= 2);
  EdgeList out;
  out.ensure_vertices(n);
  for (VertexId v = 1; v < n; ++v) {
    out.add_edge(0, v);
    out.add_edge(v, 0);
  }
  return out;
}

EdgeList complete(VertexId n) {
  GPSA_CHECK(n >= 2);
  EdgeList out;
  out.ensure_vertices(n);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i != j) {
        out.add_edge(i, j);
      }
    }
  }
  return out;
}

EdgeList binary_tree(VertexId n) {
  GPSA_CHECK(n >= 1);
  EdgeList out;
  out.ensure_vertices(n);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId left = 2 * v + 1;
    const VertexId right = 2 * v + 2;
    if (left < n) {
      out.add_edge(v, left);
    }
    if (right < n) {
      out.add_edge(v, right);
    }
  }
  return out;
}

DatasetSpec paper_dataset_spec(PaperGraph which) {
  switch (which) {
    case PaperGraph::kGoogle:
      return {"google", 875'713, 5'105'039, 16'384, 95'000};
    case PaperGraph::kPokec:
      return {"soc-pokec", 1'632'803, 30'622'564, 40'960, 768'000};
    case PaperGraph::kLiveJournal:
      return {"soc-liveJournal", 4'847'571, 68'993'773, 131'072, 1'900'000};
    case PaperGraph::kTwitter2010:
      return {"twitter-2010", 41'652'230, 1'468'365'182, 393'216, 14'000'000};
  }
  GPSA_UNREACHABLE("invalid PaperGraph");
}

std::vector<PaperGraph> all_paper_graphs() {
  return {PaperGraph::kGoogle, PaperGraph::kPokec, PaperGraph::kLiveJournal,
          PaperGraph::kTwitter2010};
}

EdgeList generate_paper_graph(PaperGraph which, double scale,
                              std::uint64_t seed) {
  GPSA_CHECK(scale > 0.0);
  const DatasetSpec spec = paper_dataset_spec(which);
  const auto scaled_vertices = static_cast<VertexId>(
      std::max(64.0, static_cast<double>(spec.stand_in_vertices) * scale));
  const auto scaled_edges = static_cast<EdgeCount>(
      std::max(128.0, static_cast<double>(spec.stand_in_edges) * scale));
  const unsigned rmat_scale =
      static_cast<unsigned>(std::bit_width(std::bit_ceil(scaled_vertices)) - 1);
  EdgeList graph = rmat(rmat_scale, scaled_edges, seed);
  return graph;
}

}  // namespace gpsa
