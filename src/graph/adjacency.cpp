#include "graph/adjacency.hpp"

#include <charconv>
#include <fstream>
#include <vector>

#include "graph/csr_file.hpp"
#include "util/check.hpp"

namespace gpsa {
namespace {

/// Largest vertex id the pipeline can represent end to end: CSR entries
/// are int32 with -1 (kCsrEndOfList) reserved as the record sentinel, so
/// any id that casts to a negative int32 — in particular 0xffffffff,
/// which casts to the sentinel itself — must be rejected at parse time,
/// not silently folded into the binary format.
constexpr VertexId kMaxParsedVertexId = (VertexId{1} << 31) - 2;

/// Recognizes the writer's header comment and extracts the vertex-count
/// bound (isolated trailing vertices are otherwise unrepresentable in
/// adjacency text). Returns 0 if the line is not a header or declares an
/// unrepresentable bound.
VertexId parse_header_bound(const std::string& line) {
  VertexId bound = 0;
  unsigned long long parsed = 0;
  if (std::sscanf(line.c_str(), "# gpsa adjacency graph: %llu vertices",
                  &parsed) == 1 &&
      parsed <= std::uint64_t{kMaxParsedVertexId} + 1) {
    bound = static_cast<VertexId>(parsed);
  }
  return bound;
}

/// Parses one adjacency line into (src, dsts). Returns false for blank or
/// comment lines.
Result<bool> parse_line(const std::string& line, std::uint64_t line_no,
                        const std::string& path, VertexId& src,
                        std::vector<VertexId>& dsts) {
  dsts.clear();
  const char* p = line.data();
  const char* end = p + line.size();
  while (p != end && (*p == ' ' || *p == '\t')) ++p;
  if (p == end || *p == '#' || *p == '%') {
    return false;
  }
  auto r = std::from_chars(p, end, src);
  if (r.ec != std::errc() || src > kMaxParsedVertexId) {
    return corrupt_data(path + ":" + std::to_string(line_no) +
                        ": bad source vertex");
  }
  p = r.ptr;
  // Optional ':' separator after the source.
  while (p != end && (*p == ' ' || *p == '\t' || *p == ':')) ++p;
  while (p != end) {
    VertexId dst = 0;
    r = std::from_chars(p, end, dst);
    if (r.ec != std::errc() || dst > kMaxParsedVertexId) {
      return corrupt_data(path + ":" + std::to_string(line_no) +
                          ": bad destination vertex");
    }
    dsts.push_back(dst);
    p = r.ptr;
    while (p != end && (*p == ' ' || *p == '\t' || *p == ',')) ++p;
  }
  return true;
}

}  // namespace

Result<EdgeList> read_adjacency_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return not_found("read_adjacency_text: cannot open " + path);
  }
  EdgeList out;
  std::string line;
  std::vector<VertexId> dsts;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    VertexId src = 0;
    GPSA_ASSIGN_OR_RETURN(const bool has_record,
                          parse_line(line, line_no, path, src, dsts));
    if (!has_record) {
      out.ensure_vertices(parse_header_bound(line));
      continue;
    }
    out.ensure_vertices(src + 1);
    for (VertexId dst : dsts) {
      out.add_edge(src, dst);
    }
  }
  return out;
}

Status write_adjacency_text(const EdgeList& graph, const std::string& path) {
  // Group by source via CSR (stable in input order).
  const Csr csr = Csr::from_edges(graph);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return io_error("write_adjacency_text: cannot open " + path);
  }
  out << "# gpsa adjacency graph: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    const auto neighbors = csr.neighbors(v);
    if (neighbors.empty()) {
      continue;
    }
    out << v;
    for (VertexId dst : neighbors) {
      out << ' ' << dst;
    }
    out << '\n';
  }
  if (!out) {
    return io_error("write_adjacency_text: short write to " + path);
  }
  return Status::ok();
}

Result<AdjacencyToCsrReport> adjacency_text_to_csr(
    const std::string& text_path, const std::string& csr_base,
    bool with_degree) {
  std::ifstream in(text_path);
  if (!in) {
    return not_found("adjacency_text_to_csr: cannot open " + text_path);
  }

  std::ofstream out(csr_base, std::ios::binary | std::ios::trunc);
  if (!out) {
    return io_error("adjacency_text_to_csr: cannot open " + csr_base);
  }
  CsrFileHeader header{};  // placeholder; rewritten at the end
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));

  std::vector<std::uint64_t> offsets;
  std::vector<std::int32_t> buffer;
  std::uint64_t entries = 0;
  std::uint64_t edges = 0;
  VertexId next_vertex = 0;
  VertexId max_seen = 0;
  bool sorted = true;

  const auto emit_empty = [&](VertexId upto) {
    while (next_vertex < upto) {
      offsets.push_back(entries);
      if (with_degree) {
        buffer.push_back(0);
        ++entries;
      }
      buffer.push_back(kCsrEndOfList);
      ++entries;
      ++next_vertex;
    }
  };
  const auto flush = [&]() -> Status {
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size() *
                                           sizeof(std::int32_t)));
    if (!out) {
      return io_error("adjacency_text_to_csr: short write to " + csr_base);
    }
    buffer.clear();
    return Status::ok();
  };

  std::string line;
  std::vector<VertexId> dsts;
  std::uint64_t line_no = 0;
  while (sorted && std::getline(in, line)) {
    ++line_no;
    VertexId src = 0;
    GPSA_ASSIGN_OR_RETURN(const bool has_record,
                          parse_line(line, line_no, text_path, src, dsts));
    if (!has_record) {
      const VertexId bound = parse_header_bound(line);
      if (bound > 0) {
        max_seen = std::max(max_seen, bound - 1);
      }
      continue;
    }
    if (src < next_vertex) {
      sorted = false;  // out-of-order input: fall back to the sort path
      break;
    }
    emit_empty(src);
    offsets.push_back(entries);
    if (with_degree) {
      buffer.push_back(static_cast<std::int32_t>(dsts.size()));
      ++entries;
    }
    for (VertexId dst : dsts) {
      buffer.push_back(static_cast<std::int32_t>(dst));
      max_seen = std::max(max_seen, dst);
    }
    entries += dsts.size();
    edges += dsts.size();
    buffer.push_back(kCsrEndOfList);
    ++entries;
    max_seen = std::max(max_seen, src);
    next_vertex = src + 1;
    if (buffer.size() >= (1 << 16)) {
      GPSA_RETURN_IF_ERROR(flush());
    }
  }

  if (!sorted) {
    out.close();
    GPSA_ASSIGN_OR_RETURN(const EdgeList graph,
                          read_adjacency_text(text_path));
    GPSA_RETURN_IF_ERROR(
        preprocess_edges_to_csr(graph, csr_base, with_degree));
    AdjacencyToCsrReport report;
    report.num_vertices = graph.num_vertices();
    report.num_edges = graph.num_edges();
    report.streamed = false;
    return report;
  }

  // Trailing empty records for destinations beyond the last source.
  emit_empty(next_vertex == 0 ? 0 : std::max(next_vertex, max_seen + 1));
  if (next_vertex == 0) {
    return invalid_argument("adjacency_text_to_csr: empty graph in " +
                            text_path);
  }
  offsets.push_back(entries);
  GPSA_RETURN_IF_ERROR(flush());

  header.magic = CsrFileHeader::kMagic;
  header.version = CsrFileHeader::kVersion;
  header.flags = with_degree ? CsrFileHeader::kFlagHasDegree : 0;
  header.num_vertices = next_vertex;
  header.num_edges = edges;
  header.num_entries = entries;
  out.seekp(0);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  if (!out) {
    return io_error("adjacency_text_to_csr: header rewrite failed for " +
                    csr_base);
  }
  out.close();

  std::ofstream idx(csr_base + ".idx", std::ios::binary | std::ios::trunc);
  if (!idx) {
    return io_error("adjacency_text_to_csr: cannot open " + csr_base +
                    ".idx");
  }
  idx.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size() *
                                         sizeof(std::uint64_t)));
  if (!idx) {
    return io_error("adjacency_text_to_csr: short write to " + csr_base +
                    ".idx");
  }

  AdjacencyToCsrReport report;
  report.num_vertices = next_vertex;
  report.num_edges = edges;
  report.streamed = true;
  return report;
}

}  // namespace gpsa
