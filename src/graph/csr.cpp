#include "graph/csr.hpp"

#include "util/check.hpp"

namespace gpsa {

Csr Csr::from_edges(const EdgeList& edges) {
  Csr out;
  const VertexId n = edges.num_vertices();
  out.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges.edges()) {
    GPSA_CHECK(e.src < n && e.dst < n);
    ++out.offsets_[e.src + 1];
  }
  for (std::size_t v = 1; v < out.offsets_.size(); ++v) {
    out.offsets_[v] += out.offsets_[v - 1];
  }
  out.targets_.resize(edges.num_edges());
  std::vector<EdgeCount> cursor(out.offsets_.begin(), out.offsets_.end() - 1);
  for (const Edge& e : edges.edges()) {
    out.targets_[cursor[e.src]++] = e.dst;
  }
  return out;
}

Csr Csr::transpose() const {
  Csr out;
  const VertexId n = num_vertices();
  out.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId t : targets_) {
    ++out.offsets_[t + 1];
  }
  for (std::size_t v = 1; v < out.offsets_.size(); ++v) {
    out.offsets_[v] += out.offsets_[v - 1];
  }
  out.targets_.resize(targets_.size());
  std::vector<EdgeCount> cursor(out.offsets_.begin(), out.offsets_.end() - 1);
  for (VertexId src = 0; src < n; ++src) {
    for (VertexId dst : neighbors(src)) {
      out.targets_[cursor[dst]++] = src;
    }
  }
  return out;
}

}  // namespace gpsa
