// In-memory Compressed Sparse Row adjacency.
//
// Used by the sequential reference algorithms and the baseline engines; the
// GPSA engine itself streams the on-disk variant (csr_file.hpp). Both are
// built by the same counting pass.
#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace gpsa {

class Csr {
 public:
  Csr() = default;

  /// Builds out-adjacency from an edge list (counting sort by source;
  /// O(V + E), stable in destination input order).
  static Csr from_edges(const EdgeList& edges);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeCount num_edges() const { return targets_.size(); }

  EdgeCount out_degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const VertexId> neighbors(VertexId v) const {
    return std::span<const VertexId>(targets_.data() + offsets_[v],
                                     out_degree(v));
  }

  const std::vector<EdgeCount>& offsets() const { return offsets_; }
  const std::vector<VertexId>& targets() const { return targets_; }

  /// Reversed graph (in-adjacency of this one). Needed by the GraphChi
  /// baseline, whose update function reads in-edges.
  Csr transpose() const;

 private:
  std::vector<EdgeCount> offsets_;  // |V|+1 entries
  std::vector<VertexId> targets_;  // |E| entries
};

}  // namespace gpsa
