// Out-of-core I/O model.
//
// The paper's experiments are disk-bound: twitter-2010's CSR is 6.5 GB
// against 16 GB of RAM on a 7200 RPM disk, GraphChi reshards, X-Stream
// streams edges from disk every superstep. Our scaled-down stand-ins fit
// in page cache, so raw wall-clock comparisons lose exactly the effect
// the paper measures. Rather than inflating datasets past RAM (not
// possible here), each engine *counts the bytes its access pattern
// fundamentally moves*, priced at the system's native storage widths:
//
//   GPSA        reads  4 B per CSR entry of dispatched records
//                      + 4 B per vertex per superstep (value-column scan)
//               writes 4 B per vertex update
//               (no message spill — the paper's central I/O claim)
//   GraphChi    reads  8 B per edge (src + edge value) for every shard /
//                      window scanned (shards with no scheduled or
//                      stamped work are skipped, as GraphChi's selective
//                      scheduling skips intervals)
//               writes 4 B per edge value written
//   X-Stream    reads  8 B per edge, every edge, every superstep,
//                      + 8 B per update read back in gather
//               writes 8 B per update appended
//
// The modeled out-of-core time is measured_time + bytes / disk_bandwidth
// (sequential HDD; all three systems are built around sequential I/O).
// Controlled by GPSA_MODEL_DISK_MBPS (default 120 MB/s; 0 disables).
#pragma once

#include <cstdint>

namespace gpsa {

struct IoStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  std::uint64_t total() const { return bytes_read + bytes_written; }

  IoStats& operator+=(const IoStats& other) {
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    return *this;
  }
};

/// Measured (not modeled) counters from the storage I/O subsystem
/// (src/io/): what the backend and readahead scheduler actually did during
/// a run. Backends accumulate these with relaxed atomics (DESIGN.md §9
/// explains why no stronger ordering is needed on the counter paths) and
/// snapshot into this plain struct for reporting.
struct PrefetchCounters {
  std::uint64_t bytes_prefetched = 0;  // readahead issued ahead of the cursor
  std::uint64_t bytes_dropped = 0;     // drop-behind on the consumed prefix
  std::uint64_t window_hits = 0;       // fetches served from a resident window
  std::uint64_t window_misses = 0;     // fetches that had to load synchronously
  std::uint64_t reads_issued = 0;      // backend read ops (pread calls / SQEs)
  double stall_seconds = 0.0;          // time fetches spent waiting on loads

  PrefetchCounters& operator+=(const PrefetchCounters& other) {
    bytes_prefetched += other.bytes_prefetched;
    bytes_dropped += other.bytes_dropped;
    window_hits += other.window_hits;
    window_misses += other.window_misses;
    reads_issued += other.reads_issued;
    stall_seconds += other.stall_seconds;
    return *this;
  }

  double hit_rate() const {
    const std::uint64_t total = window_hits + window_misses;
    return total == 0 ? 1.0
                      : static_cast<double>(window_hits) /
                            static_cast<double>(total);
  }
};

/// Disk bandwidth for the model, from GPSA_MODEL_DISK_MBPS (default 120).
/// Returns 0 when modeling is disabled.
double model_disk_bandwidth_bytes_per_sec();

/// Modeled RAM budget, from GPSA_MODEL_RAM_MB (default 0.5 — the paper's
/// 16 GB scaled down by roughly the same factor as the datasets). An
/// engine whose working set fits the budget runs in the in-memory regime
/// and is charged no disk traffic — this is what reproduces Figure 7's
/// observation that on the small google graph "all the updating happened
/// in memory" and GPSA's I/O advantages vanish.
std::uint64_t model_ram_bytes();

/// measured_seconds plus the modeled transfer time of `io`.
double modeled_out_of_core_seconds(double measured_seconds, const IoStats& io);

/// Regime-aware variant: in-memory (working set <= RAM budget) charges
/// nothing; out-of-core charges the full transfer time.
double modeled_out_of_core_seconds(double measured_seconds, const IoStats& io,
                                   std::uint64_t working_set_bytes);

}  // namespace gpsa
