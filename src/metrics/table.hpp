// Column-aligned text tables for the benchmark binaries, which print the
// same rows/series the paper's tables and figures report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gpsa {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double value, int precision = 3);
  static std::string num(std::uint64_t value);

  /// Renders with a header underline, columns padded to content width.
  std::string to_string() const;

  /// Renders to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpsa
