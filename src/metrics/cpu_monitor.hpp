// Background CPU-utilization sampler (drives the Figure 11 reproduction).
//
// A monitor thread samples process CPU usage (cores busy) at a fixed
// interval while a workload runs. Results summarize to mean/peak
// cores-busy and a utilization percentage of the online CPUs — the
// quantity the paper plots per system/workload.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "platform/cpu_stats.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace gpsa {

class CpuMonitor {
 public:
  explicit CpuMonitor(double interval_seconds = 0.05);
  ~CpuMonitor();

  CpuMonitor(const CpuMonitor&) = delete;
  CpuMonitor& operator=(const CpuMonitor&) = delete;

  void start() GPSA_EXCLUDES(mutex_);

  struct Report {
    std::vector<double> samples;  // cores busy per interval
    double mean_cores = 0.0;
    double peak_cores = 0.0;
    double mean_percent_of_machine = 0.0;  // mean_cores / online cpus * 100
  };

  /// Stops sampling and returns the collected series. Idempotent.
  Report stop() GPSA_EXCLUDES(mutex_);

 private:
  void loop() GPSA_EXCLUDES(mutex_);

  const double interval_seconds_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  Mutex mutex_{"CpuMonitor.samples"};
  std::vector<double> samples_ GPSA_GUARDED_BY(mutex_);
};

}  // namespace gpsa
