#include "metrics/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace gpsa {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GPSA_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  GPSA_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::num(std::uint64_t value) {
  return std::to_string(value);
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

void TextTable::print() const {
  const std::string rendered = to_string();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fflush(stdout);
}

}  // namespace gpsa
