#include "metrics/cpu_monitor.hpp"

#include <chrono>

#include "util/check.hpp"

namespace gpsa {

CpuMonitor::CpuMonitor(double interval_seconds)
    : interval_seconds_(interval_seconds) {
  GPSA_CHECK(interval_seconds_ > 0.0);
}

CpuMonitor::~CpuMonitor() { (void)stop(); }

void CpuMonitor::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;  // already running
  }
  {
    MutexLock lock(mutex_);
    samples_.clear();
  }
  thread_ = std::thread([this] { loop(); });
}

CpuMonitor::Report CpuMonitor::stop() {
  if (running_.exchange(false) && thread_.joinable()) {
    thread_.join();
  }
  Report report;
  {
    MutexLock lock(mutex_);
    report.samples = samples_;
  }
  RunningStat stat;
  for (double s : report.samples) {
    stat.add(s);
  }
  report.mean_cores = stat.mean();
  report.peak_cores = stat.max();
  report.mean_percent_of_machine =
      100.0 * stat.mean() / static_cast<double>(online_cpu_count());
  return report;
}

void CpuMonitor::loop() {
  CpuUsageProbe probe;
  const auto interval = std::chrono::duration<double>(interval_seconds_);
  while (running_.load()) {
    std::this_thread::sleep_for(interval);
    const double cores = probe.sample();
    MutexLock lock(mutex_);
    samples_.push_back(cores);
  }
}

}  // namespace gpsa
