#include "metrics/io_model.hpp"

#include <cstdlib>

namespace gpsa {

double model_disk_bandwidth_bytes_per_sec() {
  static const double bandwidth = [] {
    double mbps = 120.0;
    if (const char* env = std::getenv("GPSA_MODEL_DISK_MBPS")) {
      mbps = std::strtod(env, nullptr);
      if (mbps < 0.0) {
        mbps = 0.0;
      }
    }
    return mbps * 1024.0 * 1024.0;
  }();
  return bandwidth;
}

std::uint64_t model_ram_bytes() {
  static const std::uint64_t bytes = [] {
    double mb = 0.5;
    if (const char* env = std::getenv("GPSA_MODEL_RAM_MB")) {
      mb = std::strtod(env, nullptr);
      if (mb < 0.0) {
        mb = 0.0;
      }
    }
    return static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
  }();
  return bytes;
}

double modeled_out_of_core_seconds(double measured_seconds,
                                   const IoStats& io) {
  const double bandwidth = model_disk_bandwidth_bytes_per_sec();
  if (bandwidth <= 0.0) {
    return measured_seconds;
  }
  return measured_seconds + static_cast<double>(io.total()) / bandwidth;
}

double modeled_out_of_core_seconds(double measured_seconds, const IoStats& io,
                                   std::uint64_t working_set_bytes) {
  if (working_set_bytes <= model_ram_bytes()) {
    return measured_seconds;  // in-memory regime: page cache absorbs all
  }
  return modeled_out_of_core_seconds(measured_seconds, io);
}

}  // namespace gpsa
