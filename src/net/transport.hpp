// Transport actors + inbound poller: the cluster data plane's two halves
// (DESIGN.md §14).
//
// Outbound: one TransportActor per peer. Sends are ordinary actor sends,
// so the engine's control thread and dispatch path never block on the
// network; the actor serializes frames onto its peer's socket with the
// deadline-driven helpers in socket.hpp. A kBatch message carries a
// leased MessageBatchPool buffer and goes to the wire as two iovecs —
// the 32-byte frame prefix (header + superstep) and the buffer's raw
// bytes — so the lease→wire path copies nothing. Blocking inside
// on_message is safe here and only here: the peer's dedicated poller
// thread drains its end regardless of that peer's actor scheduling, so
// no send-send cycle exists for back-pressure to deadlock on.
//
// Inbound: one InboundPoller thread per rank polls every peer socket,
// feeds the per-link FrameDecoder, and hands completed frames to the
// engine's handler. EOF / ECONNRESET / decode poisoning surface through
// the error handler exactly once per peer — the engine's peer-death
// detection — after which the dead link is dropped from the poll set.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "actor/actor.hpp"
#include "core/message_pool.hpp"
#include "core/messages.hpp"
#include "net/socket.hpp"
#include "net/wire_frame.hpp"
#include "util/status.hpp"

namespace gpsa {

/// Bytes/frames a rank has put on the wire, summed across its transport
/// actors. Plain seq_cst atomics: incremented once per frame, read at
/// superstep barriers — nowhere near hot enough to justify weaker orders.
struct WireMetrics {
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> frames{0};
};

struct TransportMsg {
  enum class Kind : std::uint8_t { kBatch, kControl, kFence };
  Kind kind = Kind::kControl;
  /// kBatch: superstep tag + canonical batch sequence + leased buffer.
  std::uint64_t superstep = 0;
  std::uint32_t seq = 0;
  std::vector<VertexMessage> batch;
  /// kControl: frame type + pre-encoded payload.
  FrameType type = FrameType::kHello;
  std::vector<std::uint8_t> payload;
  /// kFence: resolved (with the link's sticky status) once every frame
  /// queued before it has reached the kernel — the barrier uses this to
  /// snapshot wire metrics and to bound shutdown.
  std::shared_ptr<std::promise<Status>> fence;
};

class TransportActor final : public Actor<TransportMsg> {
 public:
  /// `socket` must outlive the actor system; the actor writes, the
  /// poller reads, nobody else touches the fd. `on_error` fires once on
  /// the first failed send (engine-side abort propagation).
  TransportActor(std::uint16_t src_rank, std::uint16_t version,
                 const Socket* socket, MessageBatchPool* pool,
                 WireMetrics* metrics, int timeout_ms, bool use_uring,
                 std::function<void(Status)> on_error);

 protected:
  void on_message(TransportMsg msg) override;

 private:
  Status write_batch(std::uint64_t superstep, std::uint32_t seq,
                     const std::vector<VertexMessage>& batch);
  Status write_control(FrameType type,
                       const std::vector<std::uint8_t>& payload);

  const std::uint16_t src_rank_;
  const std::uint16_t version_;
  const Socket* socket_;
  MessageBatchPool* pool_;
  WireMetrics* metrics_;
  const int timeout_ms_;
  std::unique_ptr<UringSender> uring_;
  std::function<void(Status)> on_error_;
  std::uint32_t control_seq_ = 0;
  Status error_;  // sticky: once a send fails the link is dead
};

/// Polls every live peer socket from one dedicated thread.
class InboundPoller {
 public:
  struct Peer {
    std::uint32_t rank = 0;
    const Socket* socket = nullptr;
    std::uint16_t accept_version = kWireVersionMax;
    /// Decoder carried over from the handshake. The rendezvous read may
    /// slurp bytes past the Hello/HelloAck (an early GO broadcast, or
    /// first batches from a fast peer); handing its decoder to the poller
    /// keeps those bytes instead of dropping them with a fresh decoder.
    FrameDecoder decoder{};
  };

  using FrameHandler = std::function<void(std::uint32_t peer, Frame&&)>;
  /// Fired at most once per peer: EOF, reset, or decode poisoning.
  using ErrorHandler = std::function<void(std::uint32_t peer, Status)>;

  InboundPoller(std::vector<Peer> peers, FrameHandler on_frame,
                ErrorHandler on_error);
  ~InboundPoller();

  InboundPoller(const InboundPoller&) = delete;
  InboundPoller& operator=(const InboundPoller&) = delete;

  void start();
  void stop();  // idempotent; joins the thread

 private:
  struct Link {
    Peer peer;
    FrameDecoder decoder;
    bool dead = false;
  };

  void run();
  void drain(Link& link);
  void decode_buffered(Link& link);

  std::vector<Link> links_;
  FrameHandler on_frame_;
  ErrorHandler on_error_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace gpsa
