#include "net/wire_frame.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace gpsa {
namespace {

// Table-driven reflected CRC-32, generated once at startup.
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb8'8320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status payload_too_short(const char* what) {
  return corrupt_data(std::string("wire frame: ") + what +
                      " payload truncated");
}

}  // namespace

bool frame_type_known(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint16_t>(FrameType::kAbort);
}

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kHelloAck:
      return "HELLO_ACK";
    case FrameType::kBatch:
      return "BATCH";
    case FrameType::kEndOfSuperstep:
      return "END_OF_SUPERSTEP";
    case FrameType::kSyncRequest:
      return "SYNC_REQUEST";
    case FrameType::kSyncRelease:
      return "SYNC_RELEASE";
    case FrameType::kValues:
      return "VALUES";
    case FrameType::kAbort:
      return "ABORT";
  }
  return "UNKNOWN";
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xffff'ffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffff'ffffu;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xffu));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xffu));
  }
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

void encode_frame_header(std::uint8_t* out, std::uint16_t version,
                         FrameType type, std::uint16_t src_rank,
                         std::uint32_t seq, std::uint32_t payload_len,
                         std::uint32_t payload_crc) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderSize);
  put_u32(bytes, kWireMagic);
  put_u16(bytes, version);
  put_u16(bytes, static_cast<std::uint16_t>(type));
  put_u16(bytes, src_rank);
  put_u16(bytes, 0);  // reserved
  put_u32(bytes, seq);
  put_u32(bytes, payload_len);
  put_u32(bytes, payload_crc);
  GPSA_DCHECK(bytes.size() == kFrameHeaderSize);
  std::memcpy(out, bytes.data(), kFrameHeaderSize);
}

void append_frame(std::vector<std::uint8_t>& out, std::uint16_t version,
                  FrameType type, std::uint16_t src_rank, std::uint32_t seq,
                  const std::uint8_t* payload, std::size_t payload_len) {
  GPSA_CHECK(payload_len <= kMaxFramePayload);
  const std::size_t header_at = out.size();
  out.resize(out.size() + kFrameHeaderSize);
  encode_frame_header(out.data() + header_at, version, type, src_rank, seq,
                      static_cast<std::uint32_t>(payload_len),
                      crc32(payload, payload_len));
  out.insert(out.end(), payload, payload + payload_len);
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned_) {
    return;  // stream already condemned; don't buffer more
  }
  // Compact the consumed prefix before growing (keeps the buffer bounded
  // by one in-flight frame plus whatever the last read appended).
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > kMaxFramePayload) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Status FrameDecoder::validate_header(const FrameHeader& header) const {
  const bool hello = header.type == FrameType::kHello ||
                     header.type == FrameType::kHelloAck;
  if (hello) {
    if (header.version < kWireVersionMin ||
        header.version > kWireVersionMax) {
      return corrupt_data(
          "wire frame: hello version " + std::to_string(header.version) +
          " outside supported [" + std::to_string(kWireVersionMin) + ", " +
          std::to_string(kWireVersionMax) + "]");
    }
  } else if (header.version != accept_version_) {
    return corrupt_data("wire frame: version " +
                        std::to_string(header.version) +
                        " != negotiated " + std::to_string(accept_version_));
  }
  if (header.payload_len > kMaxFramePayload) {
    return corrupt_data("wire frame: payload length " +
                        std::to_string(header.payload_len) +
                        " exceeds cap " + std::to_string(kMaxFramePayload));
  }
  return Status::ok();
}

Result<bool> FrameDecoder::next(Frame& out) {
  if (poisoned_) {
    return corrupt_data(poison_message_);
  }
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) {
    return false;
  }
  const std::uint8_t* p = buffer_.data() + consumed_;

  auto poison = [this](Status status) -> Result<bool> {
    poisoned_ = true;
    poison_message_ = status.message();
    buffer_.clear();
    consumed_ = 0;
    return status;
  };

  if (get_u32(p) != kWireMagic) {
    return poison(corrupt_data("wire frame: bad magic"));
  }
  FrameHeader header;
  header.version = get_u16(p + 4);
  const std::uint16_t raw_type = get_u16(p + 6);
  if (!frame_type_known(raw_type)) {
    return poison(corrupt_data("wire frame: unknown type " +
                               std::to_string(raw_type)));
  }
  header.type = static_cast<FrameType>(raw_type);
  header.src_rank = get_u16(p + 8);
  if (get_u16(p + 10) != 0) {
    return poison(corrupt_data("wire frame: reserved field nonzero"));
  }
  header.seq = get_u32(p + 12);
  header.payload_len = get_u32(p + 16);
  header.payload_crc = get_u32(p + 20);
  if (Status status = validate_header(header); !status.is_ok()) {
    return poison(std::move(status));
  }
  if (available < kFrameHeaderSize + header.payload_len) {
    return false;  // wait for the rest of the payload
  }
  const std::uint8_t* payload = p + kFrameHeaderSize;
  const std::uint32_t actual = crc32(payload, header.payload_len);
  if (actual != header.payload_crc) {
    return poison(corrupt_data("wire frame: payload CRC mismatch on " +
                               std::string(frame_type_name(header.type)) +
                               " frame"));
  }
  out.header = header;
  out.payload.assign(payload, payload + header.payload_len);
  consumed_ += kFrameHeaderSize + header.payload_len;
  return true;
}

// --- Typed payloads -----------------------------------------------------

std::vector<std::uint8_t> HelloPayload::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(20);
  put_u16(out, version_min);
  put_u16(out, version_max);
  put_u32(out, rank);
  put_u32(out, ranks);
  put_u64(out, graph_fingerprint);
  return out;
}

Result<HelloPayload> HelloPayload::decode(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 20) {
    return payload_too_short("HELLO");
  }
  HelloPayload out;
  out.version_min = get_u16(bytes.data());
  out.version_max = get_u16(bytes.data() + 2);
  out.rank = get_u32(bytes.data() + 4);
  out.ranks = get_u32(bytes.data() + 8);
  out.graph_fingerprint = get_u64(bytes.data() + 12);
  if (out.version_min > out.version_max) {
    return corrupt_data("wire frame: HELLO version range inverted");
  }
  return out;
}

std::vector<std::uint8_t> HelloAckPayload::encode() const {
  std::vector<std::uint8_t> out;
  put_u16(out, version);
  return out;
}

Result<HelloAckPayload> HelloAckPayload::decode(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 2) {
    return payload_too_short("HELLO_ACK");
  }
  HelloAckPayload out;
  out.version = get_u16(bytes.data());
  return out;
}

std::vector<std::uint8_t> EndOfSuperstepPayload::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(24);
  put_u64(out, superstep);
  put_u64(out, batch_frames);
  put_u64(out, messages);
  return out;
}

Result<EndOfSuperstepPayload> EndOfSuperstepPayload::decode(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 24) {
    return payload_too_short("END_OF_SUPERSTEP");
  }
  EndOfSuperstepPayload out;
  out.superstep = get_u64(bytes.data());
  out.batch_frames = get_u64(bytes.data() + 8);
  out.messages = get_u64(bytes.data() + 16);
  return out;
}

std::vector<std::uint8_t> SyncRequestPayload::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(40);
  put_u64(out, superstep);
  put_u64(out, messages_sent);
  put_u64(out, updates);
  put_u64(out, wire_bytes);
  put_u64(out, wire_frames);
  return out;
}

Result<SyncRequestPayload> SyncRequestPayload::decode(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 40) {
    return payload_too_short("SYNC_REQUEST");
  }
  SyncRequestPayload out;
  out.superstep = get_u64(bytes.data());
  out.messages_sent = get_u64(bytes.data() + 8);
  out.updates = get_u64(bytes.data() + 16);
  out.wire_bytes = get_u64(bytes.data() + 24);
  out.wire_frames = get_u64(bytes.data() + 32);
  return out;
}

std::vector<std::uint8_t> SyncReleasePayload::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(18);
  put_u64(out, superstep);
  out.push_back(halt);
  out.push_back(converged);
  put_u64(out, total_messages);
  return out;
}

Result<SyncReleasePayload> SyncReleasePayload::decode(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 18) {
    return payload_too_short("SYNC_RELEASE");
  }
  SyncReleasePayload out;
  out.superstep = get_u64(bytes.data());
  out.halt = bytes[8];
  out.converged = bytes[9];
  out.total_messages = get_u64(bytes.data() + 10);
  if (out.halt > 1 || out.converged > 1) {
    return corrupt_data("wire frame: SYNC_RELEASE flags not boolean");
  }
  return out;
}

std::vector<std::uint8_t> ValuesPayload::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(13 + entries.size() * 8);
  put_u64(out, superstep);
  out.push_back(final_sync);
  put_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const auto& [vertex, payload] : entries) {
    put_u32(out, vertex);
    put_u32(out, payload);
  }
  return out;
}

Result<ValuesPayload> ValuesPayload::decode(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 13) {
    return payload_too_short("VALUES");
  }
  ValuesPayload out;
  out.superstep = get_u64(bytes.data());
  out.final_sync = bytes[8];
  const std::uint32_t count = get_u32(bytes.data() + 9);
  if (out.final_sync > 1) {
    return corrupt_data("wire frame: VALUES final flag not boolean");
  }
  if (bytes.size() != 13 + static_cast<std::size_t>(count) * 8) {
    return corrupt_data("wire frame: VALUES count disagrees with payload "
                        "length");
  }
  out.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t* p = bytes.data() + 13 + static_cast<std::size_t>(i) * 8;
    out.entries.emplace_back(get_u32(p), get_u32(p + 4));
  }
  return out;
}

Result<std::uint16_t> negotiate_version(std::uint16_t local_min,
                                        std::uint16_t local_max,
                                        std::uint16_t remote_min,
                                        std::uint16_t remote_max) {
  const std::uint16_t low = std::max(local_min, remote_min);
  const std::uint16_t high = std::min(local_max, remote_max);
  if (low > high) {
    return invalid_argument(
        "wire version ranges disjoint: local [" + std::to_string(local_min) +
        ", " + std::to_string(local_max) + "] vs remote [" +
        std::to_string(remote_min) + ", " + std::to_string(remote_max) + "]");
  }
  return high;
}

std::uint64_t batch_frame_wire_bytes(std::uint64_t messages) {
  return kFrameHeaderSize + 8 + messages * 8;
}

}  // namespace gpsa
