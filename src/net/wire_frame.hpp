// Wire-frame codec for the cluster data plane (DESIGN.md §14).
//
// Every byte that crosses a rank boundary travels inside a frame:
//
//   [ header: 24 bytes ][ payload: header.payload_len bytes ]
//
//   offset  field        notes
//   0       magic  u32   0x4750'534e ("GPSN")
//   4       version u16  negotiated per link (kHello carries min/max)
//   6       type    u16  FrameType
//   8       src_rank u16 sending rank
//   10      reserved u16 must be zero (rejected otherwise)
//   12      seq     u32  per-(sender, type) sequence number
//   16      payload_len u32  <= kMaxFramePayload
//   20      payload_crc u32  CRC-32 (zlib polynomial) over the payload
//
// All header fields are little-endian on the wire (explicit byte
// load/store below, so the codec is byte-order independent even though
// every deployment target today is little-endian). BATCH payloads are the
// raw bytes of a leased MessageBatchPool buffer — contiguous
// {dst u32, value u32} pairs, ascending dst, no padding
// (static_asserted in core/message_pool.hpp) — which is what makes the
// lease→wire path copy-free on the send side.
//
// The decoder is incremental (feed bytes as they arrive off a nonblocking
// socket; frames pop out as they complete) and total: arbitrary byte
// streams either yield frames or a clean CorruptData status, never a
// crash or an unbounded allocation (fuzz/fuzz_wire_frame.cpp holds it to
// that contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace gpsa {

/// Protocol versions this build speaks. kHello advertises the closed
/// range; the acceptor picks the highest version both sides share.
inline constexpr std::uint16_t kWireVersionMin = 1;
inline constexpr std::uint16_t kWireVersionMax = 1;

inline constexpr std::uint32_t kWireMagic = 0x4750'534e;  // "GPSN"

/// Frames larger than this are rejected before any payload allocation —
/// the decoder's defence against a corrupt length field asking for GiBs.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB

inline constexpr std::size_t kFrameHeaderSize = 24;

enum class FrameType : std::uint16_t {
  kHello = 1,           // version range + topology + graph fingerprint
  kHelloAck = 2,        // chosen version (or the rejection travels as kAbort)
  kBatch = 3,           // u64 superstep + raw VertexMessage array
  kEndOfSuperstep = 4,  // u64 superstep + frames/messages sent to receiver
  kSyncRequest = 5,     // rank -> coordinator barrier entry + superstep stats
  kSyncRelease = 6,     // coordinator -> rank barrier exit + halt decision
  kValues = 7,          // value-column delta sync: (vertex, payload) pairs
  kAbort = 8,           // clean failure propagation, payload = reason text
};

/// True for the types the decoder admits (anything else is CorruptData).
[[nodiscard]] bool frame_type_known(std::uint16_t raw);
const char* frame_type_name(FrameType type);

struct FrameHeader {
  std::uint16_t version = kWireVersionMax;
  FrameType type = FrameType::kHello;
  std::uint16_t src_rank = 0;
  std::uint32_t seq = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// CRC-32 (reflected, polynomial 0xEDB88320 — zlib/binascii compatible,
/// so corpus seeds and cross-language tools can compute it).
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

// --- Little-endian primitives (shared with the typed payloads) ----------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint16_t get_u16(const std::uint8_t* p);
std::uint32_t get_u32(const std::uint8_t* p);
std::uint64_t get_u64(const std::uint8_t* p);

// --- Encoding -----------------------------------------------------------

/// Serializes the 24-byte header for a payload of `payload_len` bytes
/// whose CRC the caller already computed. `out` must point at
/// kFrameHeaderSize writable bytes.
void encode_frame_header(std::uint8_t* out, std::uint16_t version,
                         FrameType type, std::uint16_t src_rank,
                         std::uint32_t seq, std::uint32_t payload_len,
                         std::uint32_t payload_crc);

/// Appends a complete frame (header + copied payload) to `out`. The
/// transport's hot path (BATCH) does NOT use this — it writes the header
/// and the leased buffer's bytes as two iovecs — but control frames and
/// tests do.
void append_frame(std::vector<std::uint8_t>& out, std::uint16_t version,
                  FrameType type, std::uint16_t src_rank, std::uint32_t seq,
                  const std::uint8_t* payload, std::size_t payload_len);

// --- Decoding -----------------------------------------------------------

/// Incremental frame reassembler. feed() accepts any byte chunking
/// (short reads included); next() pops completed frames in order.
/// A malformed header or CRC mismatch poisons the stream: next() returns
/// the error from then on (a byte stream with a framing error has no
/// trustworthy resync point, so the link must be torn down).
class FrameDecoder {
 public:
  /// `accept_version`: the negotiated link version every non-kHello/
  /// kHelloAck frame must carry. Hello traffic is validated against the
  /// build's [kWireVersionMin, kWireVersionMax] range instead, because it
  /// arrives before negotiation fixes the link version.
  explicit FrameDecoder(std::uint16_t accept_version = kWireVersionMax)
      : accept_version_(accept_version) {}

  void set_accept_version(std::uint16_t version) { accept_version_ = version; }

  /// Buffers `size` bytes off the link.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Pops the next completed frame into `out`. Returns true when a frame
  /// was produced, false when more bytes are needed. Errors are sticky.
  [[nodiscard]] Result<bool> next(Frame& out);

  /// Bytes buffered but not yet consumed by completed frames.
  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Status validate_header(const FrameHeader& header) const;

  std::uint16_t accept_version_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool poisoned_ = false;
  std::string poison_message_;
};

// --- Typed payloads -----------------------------------------------------

/// kHello: everything both sides must agree on before bytes flow.
/// `graph_fingerprint` folds |V|, |E| and the partition node count so a
/// rank pointed at the wrong dataset or cluster shape fails the
/// handshake instead of corrupting values.
struct HelloPayload {
  std::uint16_t version_min = kWireVersionMin;
  std::uint16_t version_max = kWireVersionMax;
  std::uint32_t rank = 0;
  std::uint32_t ranks = 0;
  std::uint64_t graph_fingerprint = 0;

  std::vector<std::uint8_t> encode() const;
  static Result<HelloPayload> decode(const std::vector<std::uint8_t>& bytes);
};

/// kHelloAck: the version the acceptor chose.
struct HelloAckPayload {
  std::uint16_t version = 0;

  std::vector<std::uint8_t> encode() const;
  static Result<HelloAckPayload> decode(
      const std::vector<std::uint8_t>& bytes);
};

/// kEndOfSuperstep: sent to each peer after the last BATCH of a
/// superstep; carries what the receiver should have seen so it can tell
/// "superstep complete" from "frames still in flight".
struct EndOfSuperstepPayload {
  std::uint64_t superstep = 0;
  std::uint64_t batch_frames = 0;  // kBatch frames sent to this receiver
  std::uint64_t messages = 0;      // VertexMessages inside those frames

  std::vector<std::uint8_t> encode() const;
  static Result<EndOfSuperstepPayload> decode(
      const std::vector<std::uint8_t>& bytes);
};

/// kSyncRequest: a rank entering the superstep barrier at the
/// coordinator, with the stats the coordinator aggregates into the halt
/// decision and the cluster-wide wire metrics.
struct SyncRequestPayload {
  std::uint64_t superstep = 0;
  std::uint64_t messages_sent = 0;  // all messages this rank dispatched
  std::uint64_t updates = 0;        // vertices this rank updated
  std::uint64_t wire_bytes = 0;     // bytes this rank put on the wire
  std::uint64_t wire_frames = 0;    // frames this rank put on the wire

  std::vector<std::uint8_t> encode() const;
  static Result<SyncRequestPayload> decode(
      const std::vector<std::uint8_t>& bytes);
};

/// kSyncRelease: the coordinator's barrier exit broadcast.
struct SyncReleasePayload {
  std::uint64_t superstep = 0;
  std::uint8_t halt = 0;       // stop after this superstep
  std::uint8_t converged = 0;  // halt reason: zero messages in flight
  std::uint64_t total_messages = 0;  // cluster-wide, this superstep

  std::vector<std::uint8_t> encode() const;
  static Result<SyncReleasePayload> decode(
      const std::vector<std::uint8_t>& bytes);
};

/// kValues: delta-sync of value columns — the (vertex, payload) pairs a
/// rank updated, pushed to the coordinator at superstep boundaries (or
/// once at halt in final mode).
struct ValuesPayload {
  std::uint64_t superstep = 0;
  std::uint8_t final_sync = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;

  std::vector<std::uint8_t> encode() const;
  static Result<ValuesPayload> decode(const std::vector<std::uint8_t>& bytes);
};

/// Highest version both ranges share, or InvalidArgument when the ranges
/// are disjoint (the caller turns that into a clean kAbort).
[[nodiscard]] Result<std::uint16_t> negotiate_version(std::uint16_t local_min,
                                        std::uint16_t local_max,
                                        std::uint16_t remote_min,
                                        std::uint16_t remote_max);

/// Exact bytes a BATCH frame of `messages` VertexMessages occupies on the
/// wire (header + superstep + 8 bytes per message). The in-process
/// simulation uses this to model bytes-on-wire with frame accuracy; the
/// bench cross-checks the model against the measured plane.
std::uint64_t batch_frame_wire_bytes(std::uint64_t messages);

}  // namespace gpsa
