// Minimal TCP plumbing for the cluster data plane (DESIGN.md §14).
//
// Everything here is localhost-first and deadline-driven: every call that
// can block takes a timeout in milliseconds and converts "nothing
// happened before the deadline" into a clean IoError — the engine's
// peer-death watchdog is built from these timeouts plus EOF/ECONNRESET
// detection, never from signals or indefinite blocking.
//
// The fd is used full-duplex by two threads: the inbound poller thread
// reads while a transport actor writes. The two directions share no
// buffers, so no locking is needed — but only the owner (PeerLink in
// cluster_net.cpp) may close the fd, and only after both sides stopped.
//
// Writes use sendmsg(MSG_NOSIGNAL) so a dead peer surfaces as EPIPE, not
// SIGPIPE. The optional io_uring send path (UringSender) reuses the
// GPSA_WITH_URING probe from src/io/: same raw-syscall, no-liburing ring,
// one IORING_OP_SEND in flight, falling back to sendmsg when the kernel
// or sandbox refuses the ring.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/status.hpp"

namespace gpsa {

/// Move-only RAII socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close_fd(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close_fd();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close_fd();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1:`port` (SO_REUSEADDR so rapid
/// test restarts don't trip TIME_WAIT).
[[nodiscard]] Result<Socket> tcp_listen(std::uint16_t port, int backlog = 16);

/// Accepts one connection, waiting at most `timeout_ms`.
[[nodiscard]] Result<Socket> tcp_accept(const Socket& listener, int timeout_ms);

/// Connects to 127.0.0.1:`port`, retrying refused/unreachable attempts
/// until the deadline — the peer's listener may simply not exist yet
/// during cluster bootstrap.
[[nodiscard]] Result<Socket> tcp_connect_retry(std::uint16_t port, int timeout_ms);

/// TCP_NODELAY: barrier frames are latency-sensitive and tiny.
[[nodiscard]] Status set_nodelay(const Socket& socket);

/// One nonblocking read. Returns the byte count (0 when the socket had
/// nothing despite POLLIN — spurious wakeup) and sets `eof` when the
/// peer closed cleanly. Connection resets surface as FailedPrecondition.
[[nodiscard]] Result<std::size_t> recv_nonblocking(const Socket& socket, std::uint8_t* buf,
                                     std::size_t cap, bool& eof);

/// Waits for readability. Returns false on timeout; POLLHUP/POLLERR
/// count as readable (the next recv reports the condition).
[[nodiscard]] Result<bool> wait_readable(const Socket& socket, int timeout_ms);

/// Writes the full iovec array, resuming partial writes and polling for
/// POLLOUT under the deadline. A closed/reset peer is FailedPrecondition,
/// a deadline miss IoError.
[[nodiscard]] Status send_all(const Socket& socket, const iovec* iov, int iov_count,
                int timeout_ms);

[[nodiscard]] inline Status send_all(const Socket& socket, const std::uint8_t* data,
                       std::size_t size, int timeout_ms) {
  iovec iov{const_cast<std::uint8_t*>(data), size};
  return send_all(socket, &iov, 1, timeout_ms);
}

/// io_uring send path (IORING_OP_SEND, one in flight). create() returns
/// nullptr when the build lacks the probe, the kernel refuses the ring,
/// or the fallback is simply the right answer — callers treat nullptr as
/// "use send_all". Not thread-safe; owned by one transport actor.
class UringSender {
 public:
  virtual ~UringSender() = default;
  static std::unique_ptr<UringSender> create();

  /// Sends the whole buffer through the ring (resuming short sends),
  /// falling back on the caller for anything the ring cannot express.
  [[nodiscard]] virtual Status send(const Socket& socket, const std::uint8_t* data,
                      std::size_t size, int timeout_ms) = 0;
};

}  // namespace gpsa
