#include "net/transport.hpp"

#include <poll.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "util/check.hpp"

namespace gpsa {

TransportActor::TransportActor(std::uint16_t src_rank, std::uint16_t version,
                               const Socket* socket, MessageBatchPool* pool,
                               WireMetrics* metrics, int timeout_ms,
                               bool use_uring,
                               std::function<void(Status)> on_error)
    : src_rank_(src_rank),
      version_(version),
      socket_(socket),
      pool_(pool),
      metrics_(metrics),
      timeout_ms_(timeout_ms),
      on_error_(std::move(on_error)) {
  if (use_uring) {
    uring_ = UringSender::create();
  }
}

void TransportActor::on_message(TransportMsg msg) {
  switch (msg.kind) {
    case TransportMsg::Kind::kBatch: {
      if (error_.is_ok()) {
        Status status = write_batch(msg.superstep, msg.seq, msg.batch);
        if (!status.is_ok()) {
          error_ = status;
          if (on_error_) {
            on_error_(std::move(status));
          }
        }
      }
      pool_->recycle(std::move(msg.batch));
      break;
    }
    case TransportMsg::Kind::kControl: {
      if (error_.is_ok()) {
        Status status = write_control(msg.type, msg.payload);
        if (!status.is_ok()) {
          error_ = status;
          if (on_error_) {
            on_error_(std::move(status));
          }
        }
      }
      break;
    }
    case TransportMsg::Kind::kFence:
      if (msg.fence) {
        msg.fence->set_value(error_);
      }
      break;
  }
}

Status TransportActor::write_batch(std::uint64_t superstep, std::uint32_t seq,
                                   const std::vector<VertexMessage>& batch) {
  // Frame prefix: 24-byte header + 8-byte superstep tag. The message
  // bytes go out straight from the leased buffer (batch_wire_view) — the
  // zero-copy half of the lease→wire path.
  const auto [msg_bytes, msg_len] = batch_wire_view(batch);
  std::uint8_t prefix[kFrameHeaderSize + 8];
  std::uint8_t* superstep_bytes = prefix + kFrameHeaderSize;
  for (int shift = 0; shift < 64; shift += 8) {
    superstep_bytes[shift / 8] =
        static_cast<std::uint8_t>((superstep >> shift) & 0xffu);
  }
  std::uint32_t crc = crc32(superstep_bytes, 8);
  crc = crc32(msg_bytes, msg_len, crc);
  encode_frame_header(prefix, version_, FrameType::kBatch, src_rank_, seq,
                      static_cast<std::uint32_t>(8 + msg_len), crc);
  Status status;
  if (uring_ != nullptr && msg_len > 0) {
    // The one-buffer ring path sends the prefix then the payload; the
    // byte stream is identical either way.
    status = uring_->send(*socket_, prefix, sizeof(prefix), timeout_ms_);
    if (status.is_ok()) {
      status = uring_->send(*socket_, msg_bytes, msg_len, timeout_ms_);
    }
  } else {
    iovec iov[2] = {{prefix, sizeof(prefix)},
                    {const_cast<std::uint8_t*>(msg_bytes), msg_len}};
    status = send_all(*socket_, iov, msg_len > 0 ? 2 : 1, timeout_ms_);
  }
  if (status.is_ok()) {
    metrics_->bytes += sizeof(prefix) + msg_len;
    metrics_->frames += 1;
  }
  return status;
}

Status TransportActor::write_control(FrameType type,
                                     const std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kFrameHeaderSize];
  encode_frame_header(header, version_, type, src_rank_, control_seq_++,
                      static_cast<std::uint32_t>(payload.size()),
                      crc32(payload.data(), payload.size()));
  iovec iov[2] = {{header, sizeof(header)},
                  {const_cast<std::uint8_t*>(payload.data()), payload.size()}};
  Status status =
      send_all(*socket_, iov, payload.empty() ? 1 : 2, timeout_ms_);
  if (status.is_ok()) {
    metrics_->bytes += sizeof(header) + payload.size();
    metrics_->frames += 1;
  }
  return status;
}

InboundPoller::InboundPoller(std::vector<Peer> peers, FrameHandler on_frame,
                             ErrorHandler on_error)
    : on_frame_(std::move(on_frame)), on_error_(std::move(on_error)) {
  links_.reserve(peers.size());
  for (Peer& peer : peers) {
    Link link;
    link.decoder = std::move(peer.decoder);
    link.decoder.set_accept_version(peer.accept_version);
    link.peer = std::move(peer);
    links_.push_back(std::move(link));
  }
}

InboundPoller::~InboundPoller() { stop(); }

void InboundPoller::start() {
  GPSA_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { run(); });
}

void InboundPoller::stop() {
  stop_.store(true);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void InboundPoller::run() {
  // Frames fully buffered during the handshake complete without any new
  // bytes arriving — decode them before the first poll, or a link with no
  // further traffic would sit on them forever.
  for (Link& link : links_) {
    if (!link.dead) {
      decode_buffered(link);
    }
  }
  std::vector<pollfd> fds;
  std::vector<Link*> by_fd;
  while (!stop_.load()) {
    fds.clear();
    by_fd.clear();
    for (Link& link : links_) {
      if (!link.dead) {
        fds.push_back(pollfd{link.peer.socket->fd(), POLLIN, 0});
        by_fd.push_back(&link);
      }
    }
    if (fds.empty()) {
      return;  // every peer gone; nothing left to poll
    }
    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      // Poll itself failing poisons every remaining link.
      Status status = io_error_errno("inbound poll failed");
      for (Link* link : by_fd) {
        link->dead = true;
        on_error_(link->peer.rank, status);
      }
      return;
    }
    if (rc == 0) {
      continue;  // tick: re-check the stop flag
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) {
        continue;
      }
      drain(*by_fd[i]);
    }
  }
}

void InboundPoller::drain(Link& link) {
  std::uint8_t buf[64 * 1024];
  bool eof = false;
  auto got = recv_nonblocking(*link.peer.socket, buf, sizeof(buf), eof);
  if (!got.is_ok()) {
    link.dead = true;
    on_error_(link.peer.rank, got.status());
    return;
  }
  if (got.value() > 0) {
    link.decoder.feed(buf, got.value());
    decode_buffered(link);
    if (link.dead) {
      return;
    }
  }
  if (eof) {
    link.dead = true;
    on_error_(link.peer.rank,
              failed_precondition("peer rank " +
                                  std::to_string(link.peer.rank) +
                                  " closed the connection"));
  }
}

void InboundPoller::decode_buffered(Link& link) {
  Frame frame;
  for (;;) {
    auto produced = link.decoder.next(frame);
    if (!produced.is_ok()) {
      link.dead = true;
      on_error_(link.peer.rank, produced.status());
      return;
    }
    if (!produced.value()) {
      return;
    }
    on_frame_(link.peer.rank, std::move(frame));
  }
}

}  // namespace gpsa
