#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "util/check.hpp"

namespace gpsa {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_from(int timeout_ms) {
  return Clock::now() + std::chrono::milliseconds(timeout_ms);
}

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

Result<bool> poll_one(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return io_error_errno("poll failed");
    }
    return rc > 0;
  }
}

}  // namespace

void Socket::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> tcp_listen(std::uint16_t port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    return io_error_errno("socket() failed");
  }
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return io_error_errno("setsockopt(SO_REUSEADDR) failed");
  }
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return io_error_errno("bind(127.0.0.1:" + std::to_string(port) +
                          ") failed");
  }
  if (::listen(sock.fd(), backlog) != 0) {
    return io_error_errno("listen failed");
  }
  return sock;
}

Result<Socket> tcp_accept(const Socket& listener, int timeout_ms) {
  const auto deadline = deadline_from(timeout_ms);
  for (;;) {
    GPSA_ASSIGN_OR_RETURN(
        const bool ready,
        poll_one(listener.fd(), POLLIN, remaining_ms(deadline)));
    if (!ready) {
      return io_error("accept timed out after " + std::to_string(timeout_ms) +
                      " ms");
    }
    const int fd = ::accept4(listener.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      return Socket(fd);
    }
    if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) {
      continue;  // raced; poll again under the same deadline
    }
    return io_error_errno("accept failed");
  }
}

Result<Socket> tcp_connect_retry(std::uint16_t port, int timeout_ms) {
  const auto deadline = deadline_from(timeout_ms);
  const sockaddr_in addr = loopback_addr(port);
  for (;;) {
    Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid()) {
      return io_error_errno("socket() failed");
    }
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return sock;
    }
    if (errno != ECONNREFUSED && errno != ENOENT && errno != EINTR &&
        errno != ETIMEDOUT && errno != EADDRNOTAVAIL) {
      return io_error_errno("connect(127.0.0.1:" + std::to_string(port) +
                            ") failed");
    }
    if (Clock::now() >= deadline) {
      return io_error("connect(127.0.0.1:" + std::to_string(port) +
                      ") gave up after " + std::to_string(timeout_ms) +
                      " ms (peer never started listening?)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Status set_nodelay(const Socket& socket) {
  const int one = 1;
  if (::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) !=
      0) {
    return io_error_errno("setsockopt(TCP_NODELAY) failed");
  }
  return Status::ok();
}

Result<std::size_t> recv_nonblocking(const Socket& socket, std::uint8_t* buf,
                                     std::size_t cap, bool& eof) {
  eof = false;
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), buf, cap, MSG_DONTWAIT);
    if (n > 0) {
      return static_cast<std::size_t>(n);
    }
    if (n == 0) {
      eof = true;
      return std::size_t{0};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return std::size_t{0};
    }
    if (errno == ECONNRESET || errno == EPIPE) {
      return failed_precondition("peer connection reset");
    }
    return io_error_errno("recv failed");
  }
}

Result<bool> wait_readable(const Socket& socket, int timeout_ms) {
  return poll_one(socket.fd(), POLLIN, timeout_ms);
}

Status send_all(const Socket& socket, const iovec* iov, int iov_count,
                int timeout_ms) {
  const auto deadline = deadline_from(timeout_ms);
  // Local copy we can advance across partial writes.
  iovec local[8];
  GPSA_CHECK(iov_count > 0 && iov_count <= 8);
  std::memcpy(local, iov, sizeof(iovec) * static_cast<std::size_t>(iov_count));
  int first = 0;
  while (first < iov_count) {
    msghdr msg{};
    msg.msg_iov = local + first;
    msg.msg_iovlen = static_cast<std::size_t>(iov_count - first);
    const ssize_t n = ::sendmsg(socket.fd(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        GPSA_ASSIGN_OR_RETURN(
            const bool ready,
            poll_one(socket.fd(), POLLOUT, remaining_ms(deadline)));
        if (!ready) {
          return io_error("send timed out after " +
                          std::to_string(timeout_ms) +
                          " ms (peer not draining)");
        }
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return failed_precondition("peer connection closed mid-send");
      }
      return io_error_errno("sendmsg failed");
    }
    std::size_t advanced = static_cast<std::size_t>(n);
    while (first < iov_count && advanced >= local[first].iov_len) {
      advanced -= local[first].iov_len;
      ++first;
    }
    if (first < iov_count) {
      local[first].iov_base =
          static_cast<std::uint8_t*>(local[first].iov_base) + advanced;
      local[first].iov_len -= advanced;
      if (Clock::now() >= deadline) {
        return io_error("send deadline exceeded mid-frame");
      }
    }
  }
  return Status::ok();
}

}  // namespace gpsa

// --- io_uring send path -------------------------------------------------

#if defined(GPSA_WITH_URING)

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>

#include <atomic>
#include <cstdlib>

namespace gpsa {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

bool net_uring_enabled() {
  const char* value = std::getenv("GPSA_NET_URING");
  if (value == nullptr) {
    return false;  // opt-in: the sendmsg path is the default
  }
  const std::string v(value);
  return v == "1" || v == "on" || v == "true";
}

/// One-SQE-deep IORING_OP_SEND ring: the transport actor serializes its
/// own writes, so depth 1 keeps the reaping trivial while still moving
/// the send syscall onto the ring (the same shape as src/io's read ring).
class UringSenderImpl final : public UringSender {
 public:
  static std::unique_ptr<UringSender> try_create() {
    auto sender = std::unique_ptr<UringSenderImpl>(new UringSenderImpl());
    if (!sender->init()) {
      return nullptr;
    }
    return sender;
  }

  ~UringSenderImpl() override {
    if (sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_bytes_);  // gpsa-lint: allow(raw-io)
    }
    if (cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);  // gpsa-lint: allow(raw-io)
    }
    if (sqes_ != MAP_FAILED) {
      ::munmap(sqes_, sqe_bytes_);  // gpsa-lint: allow(raw-io)
    }
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
    }
  }

  Status send(const Socket& socket, const std::uint8_t* data,
              std::size_t size, int timeout_ms) override {
    std::size_t sent = 0;
    while (sent < size) {
      io_uring_sqe* sqe = &sqes_[*sq_tail_ & *sq_mask_];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_SEND;
      sqe->fd = socket.fd();
      sqe->addr = reinterpret_cast<std::uint64_t>(data + sent);
      sqe->len = static_cast<std::uint32_t>(size - sent);
      sqe->msg_flags = MSG_NOSIGNAL;
      sq_array_[*sq_tail_ & *sq_mask_] = *sq_tail_ & *sq_mask_;
      store_release(sq_tail_, *sq_tail_ + 1);
      const int rc = sys_io_uring_enter(ring_fd_, 1, 1, IORING_ENTER_GETEVENTS);
      if (rc < 0) {
        return io_error_errno("io_uring_enter(SEND) failed");
      }
      const unsigned head = *cq_head_;
      if (load_acquire(cq_tail_) == head) {
        return io_error("io_uring SEND returned without a completion");
      }
      const io_uring_cqe& cqe = cqes_[head & *cq_mask_];
      const int res = cqe.res;
      store_release(cq_head_, head + 1);
      if (res < 0) {
        if (res == -EPIPE || res == -ECONNRESET) {
          return failed_precondition("peer connection closed mid-send");
        }
        if (res == -EAGAIN) {
          // Nonblocking-style stall; let the poll path pace us.
          pollfd pfd{socket.fd(), POLLOUT, 0};
          const int prc = ::poll(&pfd, 1, timeout_ms);
          if (prc < 0) {
            return io_error_errno("poll failed");
          }
          if (prc == 0) {
            return io_error("uring send timed out (peer not draining)");
          }
          continue;
        }
        return io_error("io_uring SEND failed: " +
                        std::string(std::strerror(-res)));
      }
      sent += static_cast<std::size_t>(res);
    }
    return Status::ok();
  }

 private:
  UringSenderImpl() = default;

  static unsigned load_acquire(unsigned* p) {
    return std::atomic_ref<unsigned>(*p).load(
        std::memory_order_acquire);  // gpsa-lint: allow(memory-order)
  }
  static void store_release(unsigned* p, unsigned v) {
    std::atomic_ref<unsigned>(*p).store(
        v, std::memory_order_release);  // gpsa-lint: allow(memory-order)
  }

  bool init() {
    io_uring_params params{};
    ring_fd_ = sys_io_uring_setup(2, &params);
    if (ring_fd_ < 0) {
      return false;  // kernel/sandbox refuses the ring: fall back
    }
    sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    cq_ring_bytes_ =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_,  // gpsa-lint: allow(raw-io)
                      PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                      ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      return false;
    }
    if (params.features & IORING_FEAT_SINGLE_MMAP) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_,  // gpsa-lint: allow(raw-io)
                        PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                        ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        return false;
      }
    }
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqe_bytes_,  // gpsa-lint: allow(raw-io)
               PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE, ring_fd_,
               IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      return false;
    }
    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    return true;
  }

  int ring_fd_ = -1;
  void* sq_ring_ = MAP_FAILED;
  void* cq_ring_ = MAP_FAILED;
  io_uring_sqe* sqes_ = static_cast<io_uring_sqe*>(MAP_FAILED);
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqe_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
};

}  // namespace

std::unique_ptr<UringSender> UringSender::create() {
  if (!net_uring_enabled()) {
    return nullptr;
  }
  return UringSenderImpl::try_create();
}

}  // namespace gpsa

#else  // !GPSA_WITH_URING

namespace gpsa {

std::unique_ptr<UringSender> UringSender::create() { return nullptr; }

}  // namespace gpsa

#endif
