// RAII wrapper over POSIX mmap'd files.
//
// This is GPSA's I/O substrate (paper §IV.C): instead of explicit buffered
// reads/writes, vertex values and CSR edge arrays are memory-mapped and the
// OS page cache handles residency. The wrapper supports:
//   - creating a file of a given size and mapping it read-write,
//   - opening an existing file read-only or read-write,
//   - msync (used by checkpointing) and madvise hints
//     (sequential for CSR edge scans, random for the value file).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/status.hpp"

namespace gpsa {

class MmapFile {
 public:
  enum class Mode { kReadOnly, kReadWrite };
  enum class Advice { kNormal, kSequential, kRandom, kWillNeed, kDontNeed };

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Creates (truncating any existing file) a file of `size` bytes,
  /// zero-filled, mapped read-write.
  static Result<MmapFile> create(const std::string& path, std::size_t size);

  /// Maps an existing file in its entirety.
  static Result<MmapFile> open(const std::string& path, Mode mode);

  bool is_mapped() const { return base_ != nullptr; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  std::byte* data() { return static_cast<std::byte*>(base_); }
  const std::byte* data() const { return static_cast<const std::byte*>(base_); }

  /// Typed view over the mapping. The file size must be a multiple of
  /// sizeof(T); T must be trivially copyable.
  template <typename T>
  std::span<T> as_span() {
    static_assert(std::is_trivially_copyable_v<T>);
    GPSA_CHECK(size_ % sizeof(T) == 0);
    return std::span<T>(reinterpret_cast<T*>(base_), size_ / sizeof(T));
  }

  template <typename T>
  std::span<const T> as_span() const {
    static_assert(std::is_trivially_copyable_v<T>);
    GPSA_CHECK(size_ % sizeof(T) == 0);
    return std::span<const T>(reinterpret_cast<const T*>(base_),
                              size_ / sizeof(T));
  }

  /// Flushes dirty pages to disk (synchronous). Used by checkpoints.
  Status sync();

  /// Access-pattern hint forwarded to madvise.
  Status advise(Advice advice);

  /// madvise over a byte sub-range of the mapping. The range is clamped to
  /// the file and widened to page boundaries (madvise requires a
  /// page-aligned start). Used by the I/O readahead scheduler for
  /// WILLNEED/DONTNEED windows; kDontNeed on a MAP_SHARED file mapping is a
  /// pure cache hint — dirty pages are written back, never lost.
  Status advise_range(std::size_t offset, std::size_t length, Advice advice);

  /// Unmaps and closes. Idempotent; also called by the destructor.
  void close();

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
  int fd_ = -1;
  Mode mode_ = Mode::kReadOnly;
  std::string path_;
};

}  // namespace gpsa
