// Process CPU-time accounting, the measurement substrate for the paper's
// Figure 11 (CPU utilization of GPSA vs. GraphChi vs. X-Stream).
//
// Reads /proc/self/stat (utime+stime of this process) and sysconf clock
// ticks; utilization over an interval is cpu_time_delta / wall_delta,
// expressed in "cores" (1.0 == one core fully busy).
#pragma once

#include <cstdint>

#include "util/status.hpp"

namespace gpsa {

/// Cumulative CPU time (user+system) consumed by this process, in seconds.
Result<double> process_cpu_seconds();

/// Number of online CPUs.
unsigned online_cpu_count();

/// Utilization probe: snapshot on construction, `sample()` returns cores
/// busy since the previous sample (or construction) and re-arms.
class CpuUsageProbe {
 public:
  CpuUsageProbe();

  /// Cores busy (cpu-seconds per wall-second) since the last call.
  double sample();

 private:
  double last_cpu_ = 0.0;
  double last_wall_ = 0.0;
};

}  // namespace gpsa
