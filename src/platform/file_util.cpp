#include "platform/file_util.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace gpsa {

namespace fs = std::filesystem;

Result<ScratchDir> ScratchDir::create(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string base = tmpdir != nullptr ? tmpdir : "/tmp";
  const std::uint64_t nonce = counter.fetch_add(1);
  std::string path = base + "/gpsa-" + tag + "-" +
                     std::to_string(::getpid()) + "-" + std::to_string(nonce);
  std::error_code ec;
  if (!fs::create_directories(path, ec) && ec) {
    return io_error("create_directories " + path + ": " + ec.message());
  }
  ScratchDir out;
  out.path_ = std::move(path);
  out.owned_ = true;
  return out;
}

ScratchDir::~ScratchDir() {
  if (owned_ && !path_.empty()) {
    (void)remove_tree(path_);  // best effort
  }
}

ScratchDir::ScratchDir(ScratchDir&& other) noexcept {
  *this = std::move(other);
}

ScratchDir& ScratchDir::operator=(ScratchDir&& other) noexcept {
  if (this != &other) {
    if (owned_ && !path_.empty()) {
      (void)remove_tree(path_);
    }
    path_ = std::move(other.path_);
    owned_ = std::exchange(other.owned_, false);
    other.path_.clear();
  }
  return *this;
}

Status write_file(const std::string& path, const void* data,
                  std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return io_error("write_file: cannot open " + path);
  }
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  if (!out) {
    return io_error("write_file: short write to " + path);
  }
  return Status::ok();
}

Result<std::vector<std::byte>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return not_found("read_file: cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> data(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(data.data()), size)) {
    return io_error("read_file: short read from " + path);
  }
  return data;
}

Result<std::uint64_t> file_size(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    return not_found("file_size " + path + ": " + ec.message());
  }
  return static_cast<std::uint64_t>(size);
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return io_error("remove " + path + ": " + ec.message());
  }
  return Status::ok();
}

Status remove_tree(const std::string& path) {
  if (path.empty() || path == "/") {
    return invalid_argument("remove_tree refuses path '" + path + "'");
  }
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return io_error("remove_all " + path + ": " + ec.message());
  }
  return Status::ok();
}

Status evict_from_page_cache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return io_error_errno("evict_from_page_cache: open " + path);
  }
  // Flush any dirty pages first — fadvise silently skips them.
  (void)::fdatasync(fd);
  int rc = 0;
#if defined(POSIX_FADV_DONTNEED)
  rc = ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  ::close(fd);
  if (rc != 0) {
    errno = rc;
    return io_error_errno("evict_from_page_cache: fadvise " + path);
  }
  return Status::ok();
}

}  // namespace gpsa
