#include "platform/cpu_stats.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace gpsa {
namespace {

double now_wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<double> process_cpu_seconds() {
  std::ifstream in("/proc/self/stat");
  if (!in) {
    return io_error("cannot open /proc/self/stat");
  }
  std::string line;
  std::getline(in, line);
  // Field 2 (comm) may contain spaces; it is parenthesized, so resume
  // parsing after the last ')'.
  const auto close_paren = line.rfind(')');
  if (close_paren == std::string::npos) {
    return corrupt_data("malformed /proc/self/stat: " + line);
  }
  std::istringstream rest(line.substr(close_paren + 2));
  std::string field;
  // Fields after comm: state(3) ... utime is field 14, stime field 15
  // (1-based); after ')' we are at field 3, so skip 11 fields.
  for (int i = 0; i < 11; ++i) {
    rest >> field;
  }
  std::uint64_t utime = 0;
  std::uint64_t stime = 0;
  rest >> utime >> stime;
  if (!rest) {
    return corrupt_data("cannot parse utime/stime from /proc/self/stat");
  }
  const long ticks = ::sysconf(_SC_CLK_TCK);
  if (ticks <= 0) {
    return io_error("sysconf(_SC_CLK_TCK) failed");
  }
  return static_cast<double>(utime + stime) / static_cast<double>(ticks);
}

unsigned online_cpu_count() {
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<unsigned>(n) : 1U;
}

CpuUsageProbe::CpuUsageProbe() {
  const auto cpu = process_cpu_seconds();
  last_cpu_ = cpu.is_ok() ? cpu.value() : 0.0;
  last_wall_ = now_wall_seconds();
}

double CpuUsageProbe::sample() {
  const auto cpu = process_cpu_seconds();
  const double now_cpu = cpu.is_ok() ? cpu.value() : last_cpu_;
  const double now_wall = now_wall_seconds();
  const double wall_delta = now_wall - last_wall_;
  const double cpu_delta = now_cpu - last_cpu_;
  last_cpu_ = now_cpu;
  last_wall_ = now_wall;
  if (wall_delta <= 0.0) {
    return 0.0;
  }
  return cpu_delta / wall_delta;
}

}  // namespace gpsa
