#include "platform/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace gpsa {

MmapFile::~MmapFile() { close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    close();
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fd_ = std::exchange(other.fd_, -1);
    mode_ = other.mode_;
    path_ = std::move(other.path_);
  }
  return *this;
}

Result<MmapFile> MmapFile::create(const std::string& path, std::size_t size) {
  if (size == 0) {
    return invalid_argument("MmapFile::create: zero-size mapping for " + path);
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return io_error_errno("open(create) " + path);
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    Status st = io_error_errno("ftruncate " + path);
    ::close(fd);
    return st;
  }
  void* base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    Status st = io_error_errno("mmap " + path);
    ::close(fd);
    return st;
  }
  MmapFile out;
  out.base_ = base;
  out.size_ = size;
  out.fd_ = fd;
  out.mode_ = Mode::kReadWrite;
  out.path_ = path;
  return out;
}

Result<MmapFile> MmapFile::open(const std::string& path, Mode mode) {
  const int flags = mode == Mode::kReadOnly ? O_RDONLY : O_RDWR;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return io_error_errno("open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    Status status = io_error_errno("fstat " + path);
    ::close(fd);
    return status;
  }
  if (st.st_size == 0) {
    ::close(fd);
    return invalid_argument("MmapFile::open: empty file " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  const int prot =
      mode == Mode::kReadOnly ? PROT_READ : (PROT_READ | PROT_WRITE);
  void* base = ::mmap(nullptr, size, prot, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    Status status = io_error_errno("mmap " + path);
    ::close(fd);
    return status;
  }
  MmapFile out;
  out.base_ = base;
  out.size_ = size;
  out.fd_ = fd;
  out.mode_ = mode;
  out.path_ = path;
  return out;
}

Status MmapFile::sync() {
  if (base_ == nullptr) {
    return failed_precondition("MmapFile::sync on unmapped file");
  }
  if (::msync(base_, size_, MS_SYNC) != 0) {
    return io_error_errno("msync " + path_);
  }
  return Status::ok();
}

namespace {

int advice_flag(MmapFile::Advice advice) {
  switch (advice) {
    case MmapFile::Advice::kNormal:
      return MADV_NORMAL;
    case MmapFile::Advice::kSequential:
      return MADV_SEQUENTIAL;
    case MmapFile::Advice::kRandom:
      return MADV_RANDOM;
    case MmapFile::Advice::kWillNeed:
      return MADV_WILLNEED;
    case MmapFile::Advice::kDontNeed:
      return MADV_DONTNEED;
  }
  return MADV_NORMAL;
}

}  // namespace

Status MmapFile::advise(Advice advice) {
  if (base_ == nullptr) {
    return failed_precondition("MmapFile::advise on unmapped file");
  }
  if (::madvise(base_, size_, advice_flag(advice)) != 0) {
    return io_error_errno("madvise " + path_);
  }
  return Status::ok();
}

Status MmapFile::advise_range(std::size_t offset, std::size_t length,
                              Advice advice) {
  if (base_ == nullptr) {
    return failed_precondition("MmapFile::advise_range on unmapped file");
  }
  if (offset >= size_ || length == 0) {
    return Status::ok();
  }
  length = std::min(length, size_ - offset);
  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t begin = offset & ~(page - 1);
  const std::size_t end = std::min(size_, (offset + length + page - 1) & ~(page - 1));
  if (::madvise(static_cast<std::byte*>(base_) + begin, end - begin,
                advice_flag(advice)) != 0) {
    return io_error_errno("madvise(range) " + path_);
  }
  return Status::ok();
}

void MmapFile::close() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

}  // namespace gpsa
