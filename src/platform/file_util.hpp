// Filesystem helpers: scratch directories for engine working files,
// whole-file read/write, and size queries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace gpsa {

/// Creates a unique scratch directory (under $TMPDIR or /tmp) and removes it
/// recursively on destruction unless `keep()` is called. Engines place their
/// CSR/value files here when the caller does not supply a working directory.
class ScratchDir {
 public:
  /// `tag` becomes part of the directory name for debuggability.
  static Result<ScratchDir> create(const std::string& tag);

  ScratchDir() = default;
  ~ScratchDir();
  ScratchDir(ScratchDir&& other) noexcept;
  ScratchDir& operator=(ScratchDir&& other) noexcept;
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const { return path_ + "/" + name; }

  /// Disowns the directory (it will not be deleted).
  void keep() { owned_ = false; }

 private:
  std::string path_;
  bool owned_ = false;
};

Status write_file(const std::string& path, const void* data, std::size_t size);
Result<std::vector<std::byte>> read_file(const std::string& path);
Result<std::uint64_t> file_size(const std::string& path);
bool file_exists(const std::string& path);
Status remove_file(const std::string& path);

/// Recursively removes a directory tree. Refuses to act on "/" or "".
Status remove_tree(const std::string& path);

/// Asks the kernel to drop the file's clean page-cache pages
/// (posix_fadvise DONTNEED — unprivileged, best-effort). Dirty pages and
/// pages still mapped by a live mapping are skipped, so callers must sync
/// and madvise(DONTNEED) their mappings first. Cold-cache benchmark
/// protocol (bench_ablation_io).
Status evict_from_page_cache(const std::string& path);

}  // namespace gpsa
