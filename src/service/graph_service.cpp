#include "service/graph_service.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "core/job.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/thread.hpp"

namespace gpsa {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Result<std::unique_ptr<GraphService>> GraphService::open(
    const std::string& csr_base_path, const ServiceOptions& options) {
  ServiceOptions resolved = options;
  if (resolved.max_concurrent_jobs == 0) {
    resolved.max_concurrent_jobs = env_size("GPSA_SERVICE_MAX_JOBS", 4);
  }
  if (resolved.max_concurrent_jobs == 0) {
    return invalid_argument("service: GPSA_SERVICE_MAX_JOBS must be >= 1");
  }
  if (resolved.max_queued_jobs == 0) {
    resolved.max_queued_jobs = env_size("GPSA_SERVICE_MAX_QUEUE", 256);
  }
  if (!resolved.fair_share_budget.has_value()) {
    resolved.fair_share_budget = env_size("GPSA_SERVICE_FAIR_BUDGET", 61);
  }
  if (resolved.scheduler_workers == 0) {
    resolved.scheduler_workers = default_worker_count();
  }
  EngineOptions shape;
  shape.num_dispatchers = resolved.num_dispatchers;
  shape.num_computers = resolved.num_computers;
  shape.message_batch = resolved.message_batch;
  GPSA_RETURN_IF_ERROR(validate_engine_options(shape));
  // A resident service keeps the shared CSR hot: drop-behind would evict
  // pages other jobs are about to read. Explicit opt-in still works; the
  // GPSA_IO_DROP_BEHIND env default (on, for one-shot engine runs) does
  // not apply here.
  if (!resolved.io.drop_behind.has_value()) {
    resolved.io.drop_behind = false;
  }
  GPSA_ASSIGN_OR_RETURN(const IoConfig io_config, resolved.io.resolve());
  if (io_config.cold_start) {
    return invalid_argument(
        "service: cold_start is a single-run bench protocol; dropping the "
        "shared CSR cache under concurrent jobs is not supported");
  }
  GPSA_ASSIGN_OR_RETURN(std::unique_ptr<IoBackend> backend,
                        IoBackend::create(io_config));

  std::optional<ScratchDir> scratch;
  std::string dir = resolved.work_dir;
  if (dir.empty()) {
    GPSA_ASSIGN_OR_RETURN(auto s, ScratchDir::create("service"));
    dir = s.path();
    scratch.emplace(std::move(s));
  } else {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return io_error("service: cannot create work dir " + dir + ": " +
                      ec.message());
    }
  }

  GPSA_ASSIGN_OR_RETURN(CsrFileReader csr,
                        CsrFileReader::open(csr_base_path));
  if (csr.num_vertices() == 0) {
    return invalid_argument("service: graph has no vertices");
  }

  // make_unique needs a public constructor; bare new keeps it private.
  return std::unique_ptr<GraphService>(new GraphService(
      resolved, io_config, std::move(backend), std::move(csr), csr_base_path,
      std::move(dir), std::move(scratch)));
}

Result<std::unique_ptr<GraphService>> GraphService::open_from_edges(
    const EdgeList& graph, const ServiceOptions& options) {
  ServiceOptions with_dir = options;
  std::optional<ScratchDir> scratch;
  if (with_dir.work_dir.empty()) {
    GPSA_ASSIGN_OR_RETURN(auto s, ScratchDir::create("service"));
    with_dir.work_dir = s.path();
    scratch.emplace(std::move(s));
  }
  const std::string csr_path = with_dir.work_dir + "/graph.csr";
  GPSA_RETURN_IF_ERROR(
      preprocess_edges_to_csr(graph, csr_path, /*with_degree=*/true));
  GPSA_ASSIGN_OR_RETURN(std::unique_ptr<GraphService> service,
                        open(csr_path, with_dir));
  if (scratch.has_value()) {
    // Transfer scratch ownership so the preprocessed CSR lives exactly as
    // long as the service that serves it.
    service->scratch_ = std::move(scratch);
  }
  return service;
}

GraphService::GraphService(const ServiceOptions& resolved, IoConfig io_config,
                           std::unique_ptr<IoBackend> backend,
                           CsrFileReader csr, std::string csr_path,
                           std::string dir, std::optional<ScratchDir> scratch)
    : options_(resolved),
      io_config_(io_config),
      backend_(std::move(backend)),
      csr_(std::move(csr)),
      csr_path_(std::move(csr_path)),
      dir_(std::move(dir)),
      scratch_(std::move(scratch)),
      system_(std::make_unique<ActorSystem>(resolved.scheduler_workers)) {
  system_->scheduler().set_fair_share_budget(*options_.fair_share_budget);
  runners_.reserve(options_.max_concurrent_jobs);
  for (std::size_t r = 0; r < options_.max_concurrent_jobs; ++r) {
    runners_.emplace_back(
        [this, r] { runner_loop(static_cast<unsigned>(r)); });
  }
}

GraphService::~GraphService() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    // Queued jobs never reach a runner now; retire them as cancelled.
    for (const JobId id : queue_) {
      const auto it = jobs_.find(id);
      if (it != jobs_.end() && it->second->state == JobState::kQueued) {
        finalize_cancelled_queued(*it->second);
      }
    }
    queue_.clear();
    // Running jobs wind down at their next superstep boundary.
    for (const auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) {
        job->cancel_flag.store(true);
      }
    }
    work_cv_.notify_all();
  }
  for (std::thread& runner : runners_) {
    runner.join();
  }
  system_->shutdown();
}

Result<JobId> GraphService::submit(std::shared_ptr<const Program> program,
                                   JobOptions options) {
  if (program == nullptr) {
    return invalid_argument("service: submit requires a program");
  }
  MutexLock lock(mutex_);
  if (stopping_) {
    return failed_precondition("service: shutting down");
  }
  if (queue_.size() >= options_.max_queued_jobs) {
    ++stats_.rejected;
    return resource_exhausted(
        "service: admission queue full (" +
        std::to_string(options_.max_queued_jobs) +
        " queued jobs); retry later or raise GPSA_SERVICE_MAX_QUEUE");
  }
  const JobId id = next_id_++;
  auto job = std::make_shared<Job>();
  job->id = id;
  job->program = std::move(program);
  job->options = options;
  job->submit_time = std::chrono::steady_clock::now();
  jobs_.emplace(id, job);
  queue_.push_back(id);
  ++stats_.submitted;
  ++stats_.queued;
  work_cv_.notify_one();
  return id;
}

Result<JobStatus> GraphService::poll(JobId id) const {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return not_found("service: unknown job " + std::to_string(id));
  }
  return snapshot(*it->second);
}

Result<JobStatus> GraphService::wait(JobId id) {
  MutexLock lock(mutex_);
  for (;;) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return not_found("service: unknown job " + std::to_string(id));
    }
    const JobState state = it->second->state;
    if (state != JobState::kQueued && state != JobState::kRunning) {
      return snapshot(*it->second);
    }
    done_cv_.wait(lock);
  }
}

bool GraphService::cancel(JobId id) {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return false;
  }
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued: {
      // Retire immediately; pull it out of the queue so no runner claims
      // a half-cancelled job.
      const auto pos = std::find(queue_.begin(), queue_.end(), id);
      if (pos != queue_.end()) {
        queue_.erase(pos);
      }
      finalize_cancelled_queued(job);
      return true;
    }
    case JobState::kRunning:
      job.cancel_flag.store(true);
      return true;
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
      return false;
  }
  return false;
}

bool GraphService::forget(JobId id) {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return false;
  }
  const JobState state = it->second->state;
  if (state == JobState::kQueued || state == JobState::kRunning) {
    return false;
  }
  jobs_.erase(it);
  return true;
}

ServiceStats GraphService::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

JobStatus GraphService::snapshot(const Job& job) const {
  JobStatus status;
  status.state = job.state;
  status.supersteps_completed = job.progress.load();
  status.result = job.result;
  status.error = job.error;
  return status;
}

void GraphService::finalize_cancelled_queued(Job& job) {
  job.state = JobState::kCancelled;
  ++stats_.cancelled;
  --stats_.queued;
  // Caller holds mutex_ (GPSA_REQUIRES in the header); the lexical
  // locked-notify rule cannot see across the call boundary.
  done_cv_.notify_all();  // gpsa-lint: allow(locked-notify)
}

void GraphService::runner_loop(unsigned runner_index) {
  set_current_thread_name("gpsa-svc" + std::to_string(runner_index));
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) {
        work_cv_.wait(lock);
      }
      if (queue_.empty()) {
        return;  // stopping_, and the destructor drained the queue
      }
      const JobId id = queue_.front();
      queue_.pop_front();
      job = jobs_.at(id);
      job->state = JobState::kRunning;
      job->start_time = std::chrono::steady_clock::now();
      --stats_.queued;
      ++stats_.running;
    }
    run_one(job);
  }
}

void GraphService::run_one(const std::shared_ptr<Job>& job) {
  EngineOptions eo;
  eo.num_dispatchers = options_.num_dispatchers;
  eo.num_computers = options_.num_computers;
  eo.partition = options_.partition;
  eo.message_batch = options_.message_batch;
  eo.max_supersteps = job->options.max_supersteps;
  eo.exec = job->options.exec;
  eo.routing = job->options.routing;
  eo.message_pool = job->options.message_pool;
  eo.enable_combiner = job->options.enable_combiner;

  JobContext ctx;
  ctx.csr = &csr_;
  ctx.backend = backend_.get();
  ctx.io_config = &io_config_;
  ctx.system = system_.get();
  ctx.job_tag = job->id;
  ctx.cancel = &job->cancel_flag;
  ctx.progress = &job->progress;

  // Per-job value file: the job id keeps concurrent same-program jobs
  // from colliding; deleted below — results live in RunResult.
  const std::string value_path = dir_ + "/job-" + std::to_string(job->id) +
                                 "-" + job->program->name() + ".values";
  Result<RunResult> result =
      run_job(ctx, *job->program, eo, value_path, /*resume=*/false);
  std::error_code ec;
  std::filesystem::remove(value_path, ec);  // best-effort cleanup

  const auto end_time = std::chrono::steady_clock::now();
  MutexLock lock(mutex_);
  --stats_.running;
  if (result.is_ok()) {
    RunResult run = std::move(result).value();
    run.queue_wait_seconds =
        seconds_between(job->submit_time, job->start_time);
    run.end_to_end_seconds = seconds_between(job->submit_time, end_time);
    if (!job->options.retain_values) {
      run.values.clear();
      run.values.shrink_to_fit();
    }
    if (run.cancelled) {
      job->state = JobState::kCancelled;
      ++stats_.cancelled;
    } else {
      job->state = JobState::kDone;
      ++stats_.completed;
    }
    job->result = std::make_shared<const RunResult>(std::move(run));
  } else {
    job->state = JobState::kFailed;
    job->error = result.status();
    ++stats_.failed;
    GPSA_LOG(Error) << "service: job " << job->id << " ('"
                    << job->program->name()
                    << "') failed: " << job->error.to_string();
  }
  done_cv_.notify_all();
}

}  // namespace gpsa
