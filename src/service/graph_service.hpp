// Multi-tenant graph service: concurrent jobs over one shared graph.
//
// The paper's engine assumes one Engine::run owns the process. The
// service inverts that (DESIGN.md §13): the CSR and IoBackend are opened
// once and shared immutably, one work-stealing scheduler hosts every job,
// and each submitted job — a resident PageRank, a stream of short
// BFS/SSSP/multi-BFS queries from arbitrary roots — runs under its own
// actor namespace (ActorSystem::spawn_in_job) with its own two-column
// value file and RunResult. Nothing per-job crosses jobs: mailboxes,
// active bitmaps, and batch pools are all namespace-local; the shared
// pieces (CSR pages, the pread/uring thread pool, the scheduler) are
// either immutable or internally synchronized.
//
// Front-end: an in-process submission queue with admission control
// (submit() rejects with RESOURCE_EXHAUSTED when the queue is full),
// poll()/wait() for status and results, cooperative cancel() honored at
// superstep boundaries, and per-job latency metrics (queue-wait, run,
// end-to-end) surfaced through RunResult. Fair-share between jobs comes
// from the scheduler's per-job budget (the 61-slice fairness tick
// generalized; Scheduler::set_fair_share_budget).
//
// Env knobs (defaults in parentheses; explicit ServiceOptions fields win):
//   GPSA_SERVICE_MAX_JOBS    (4)   concurrent jobs = runner threads
//   GPSA_SERVICE_MAX_QUEUE   (256) queued jobs before admission rejects
//   GPSA_SERVICE_FAIR_BUDGET (61)  per-job slice budget; 0 disables
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "actor/actor_system.hpp"
#include "core/engine.hpp"
#include "core/program.hpp"
#include "graph/csr_file.hpp"
#include "graph/edge_list.hpp"
#include "io/io_backend.hpp"
#include "platform/file_util.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace gpsa {

/// Service-wide configuration, fixed at open().
struct ServiceOptions {
  /// Actors per job (same meaning as EngineOptions). Short queries get
  /// small ensembles; concurrency comes from running many jobs at once.
  unsigned num_dispatchers = 2;
  unsigned num_computers = 2;
  /// Scheduler worker threads shared by all jobs; 0 = default_worker_count.
  unsigned scheduler_workers = 0;
  /// Concurrent jobs (= runner threads); 0 = GPSA_SERVICE_MAX_JOBS (4).
  std::size_t max_concurrent_jobs = 0;
  /// Queued jobs beyond which submit() rejects; 0 = GPSA_SERVICE_MAX_QUEUE
  /// (256).
  std::size_t max_queued_jobs = 0;
  /// Per-job fair-share slice budget (scheduler.hpp). Unset follows
  /// GPSA_SERVICE_FAIR_BUDGET (default 61, the fairness-tick period);
  /// 0 disables the per-job trigger.
  std::optional<std::uint64_t> fair_share_budget;
  PartitionStrategy partition = PartitionStrategy::kBalancedEdges;
  std::size_t message_batch = 4096;
  /// Storage I/O for the shared CSR + per-job value files. cold_start must
  /// stay off (evicting shared pages would be cross-job sabotage), and
  /// drop_behind defaults to *off* for the same reason: a resident service
  /// wants the shared CSR pages cached, not dropped behind one job's
  /// cursor. An explicit field still wins.
  IoOptions io;
  /// Directory for the CSR and per-job value files; empty = private
  /// scratch removed when the service is destroyed.
  std::string work_dir;
};

/// Per-job knobs, the subset of EngineOptions that is per-run.
struct JobOptions {
  /// Caps supersteps in addition to Program::max_supersteps. 0 = no cap.
  std::uint64_t max_supersteps = 0;
  std::optional<ExecMode> exec;
  std::optional<MessageRouting> routing;
  std::optional<bool> message_pool;
  bool enable_combiner = false;
  /// Keep RunResult::values in the stored result. Turn off for
  /// high-volume query streams where only latencies/counters matter —
  /// thousands of retained n-sized vectors add up.
  bool retain_values = true;
};

enum class JobState : std::uint8_t {
  kQueued,     // admitted, waiting for a runner
  kRunning,    // a runner is executing it
  kDone,       // finished (converged or budget); result available
  kFailed,     // run_job returned an error; see JobStatus::error
  kCancelled,  // cancel() won: either never ran, or stopped at a boundary
};

const char* job_state_name(JobState state);

using JobId = std::uint32_t;

/// Snapshot returned by poll()/wait().
struct JobStatus {
  JobState state = JobState::kQueued;
  /// Supersteps completed so far; live while running (the no-starvation
  /// probe for resident jobs), final afterwards.
  std::uint64_t supersteps_completed = 0;
  /// Set in kDone, and in kCancelled when the job reached a runner
  /// (cancel-before-start leaves it null). RunResult::queue_wait_seconds /
  /// end_to_end_seconds carry the service-side latencies.
  std::shared_ptr<const RunResult> result;
  /// Set in kFailed.
  Status error;
};

/// Monotonic service counters (admission control diagnostics).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::size_t queued = 0;
  std::size_t running = 0;
};

class GraphService {
 public:
  /// Opens an existing CSR file pair and starts the runner pool.
  static Result<std::unique_ptr<GraphService>> open(
      const std::string& csr_base_path, const ServiceOptions& options = {});

  /// Preprocesses `graph` into the work dir, then open()s the result.
  static Result<std::unique_ptr<GraphService>> open_from_edges(
      const EdgeList& graph, const ServiceOptions& options = {});

  /// Cancels queued jobs, asks running jobs to stop at their next
  /// superstep boundary, joins the runners, shuts the scheduler down.
  ~GraphService();

  GraphService(const GraphService&) = delete;
  GraphService& operator=(const GraphService&) = delete;

  /// Admits a job or rejects it (RESOURCE_EXHAUSTED) when the queue is at
  /// capacity. The program is shared because the job outlives the call.
  Result<JobId> submit(std::shared_ptr<const Program> program,
                       JobOptions options = {}) GPSA_EXCLUDES(mutex_);

  /// Non-blocking status snapshot. NOT_FOUND after forget() or for ids
  /// never issued.
  Result<JobStatus> poll(JobId id) const GPSA_EXCLUDES(mutex_);

  /// Blocks until the job reaches a terminal state, then returns its
  /// final status.
  Result<JobStatus> wait(JobId id) GPSA_EXCLUDES(mutex_);

  /// Requests cancellation: a queued job is retired immediately; a running
  /// job stops at its next superstep boundary (RunResult::cancelled set).
  /// Returns false if the job is unknown or already terminal.
  bool cancel(JobId id) GPSA_EXCLUDES(mutex_);

  /// Drops a terminal job's bookkeeping (and its RunResult). Returns false
  /// if the job is unknown or still queued/running. Query streams call
  /// this after harvesting latencies so the job table stays bounded.
  bool forget(JobId id) GPSA_EXCLUDES(mutex_);

  ServiceStats stats() const GPSA_EXCLUDES(mutex_);

  VertexId num_vertices() const { return csr_.num_vertices(); }
  /// The shared CSR's base path (benches run sequential Engine baselines
  /// against the same file pair).
  const std::string& csr_path() const { return csr_path_; }
  const std::string& work_dir() const { return dir_; }

 private:
  struct Job {
    JobId id = 0;
    std::shared_ptr<const Program> program;
    JobOptions options;
    // state/result/error/timing fields are guarded by GraphService::mutex_
    // (not annotatable from a nested struct); cancel_flag and progress are
    // the two cross-thread atomics the manager actor reads/writes.
    JobState state = JobState::kQueued;
    std::atomic<bool> cancel_flag{false};
    std::atomic<std::uint64_t> progress{0};
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point start_time;
    std::shared_ptr<const RunResult> result;
    Status error;
  };

  GraphService(const ServiceOptions& resolved, IoConfig io_config,
               std::unique_ptr<IoBackend> backend, CsrFileReader csr,
               std::string csr_path, std::string dir,
               std::optional<ScratchDir> scratch);

  void runner_loop(unsigned runner_index);
  void run_one(const std::shared_ptr<Job>& job);
  JobStatus snapshot(const Job& job) const GPSA_REQUIRES(mutex_);
  void finalize_cancelled_queued(Job& job) GPSA_REQUIRES(mutex_);

  const ServiceOptions options_;  // resolved: no zero/unset fields
  const IoConfig io_config_;
  const std::unique_ptr<IoBackend> backend_;
  CsrFileReader csr_;
  const std::string csr_path_;
  const std::string dir_;
  std::optional<ScratchDir> scratch_;
  std::unique_ptr<ActorSystem> system_;

  mutable Mutex mutex_{"GraphService.jobs"};
  CondVar work_cv_;  // runners wait here for queued jobs
  CondVar done_cv_;  // wait() callers wait here for terminal transitions
  std::deque<JobId> queue_ GPSA_GUARDED_BY(mutex_);
  std::unordered_map<JobId, std::shared_ptr<Job>> jobs_ GPSA_GUARDED_BY(mutex_);
  JobId next_id_ GPSA_GUARDED_BY(mutex_) = 1;
  bool stopping_ GPSA_GUARDED_BY(mutex_) = false;
  ServiceStats stats_ GPSA_GUARDED_BY(mutex_);

  std::vector<std::thread> runners_;
};

}  // namespace gpsa
