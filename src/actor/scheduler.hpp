// Cooperative actor scheduler.
//
// The paper's engine replaces threads with "active light-weight actors"
// (Kilim tasks). Here, an actor is a Schedulable multiplexed onto a small
// pool of worker threads: it is enqueued whenever its mailbox transitions
// from empty to non-empty, a worker pops it and lets it process a bounded
// batch of messages, and it is re-enqueued if work remains. The batch
// bound keeps any one actor from monopolizing a worker.
//
// Two run-queue substrates exist behind the GPSA_SCHEDULER runtime
// switch (DESIGN.md §8):
//
//   - kWorkStealing (default): per-worker bounded Chase–Lev deques
//     (work_stealing_deque.hpp). An enqueue from a worker thread lands on
//     that worker's own deque (local LIFO); external submissions and
//     deque overflow go through a global injector queue; idle workers
//     steal the FIFO end of random victims, taking up to half of the
//     victim's backlog per episode. A parked-worker bitmap plus a global
//     pending-unit counter lets enqueue wake at most one sleeper and
//     makes "sleep while work is unclaimed" impossible (Dekker on
//     seq_cst pending/parked accesses). A fairness tick services the
//     injector and the worker's own FIFO end every 61 slices so local
//     LIFO churn cannot starve anyone.
//   - kGlobalQueue: the original single std::mutex + std::deque +
//     condition_variable run queue, kept as the ablation baseline and
//     fallback. notify_one is issued while the lock is held: the
//     predicate re-check under the same mutex already makes lost wakeups
//     impossible, and notifying under the lock additionally closes the
//     window where a racing stop()+destruction could free the condvar
//     between enqueue's unlock and its notify.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "actor/work_stealing_deque.hpp"
#include "util/thread_annotations.hpp"

namespace gpsa {

/// A unit the scheduler can run. Implemented by Actor<M>.
class Schedulable {
 public:
  virtual ~Schedulable() = default;

  /// Processes up to `max_messages` queued messages.
  /// Returns true if the unit still has (or may have) pending work and must
  /// be re-enqueued; false if it went idle.
  virtual bool execute_batch(std::size_t max_messages) = 0;
};

enum class SchedulerMode {
  kGlobalQueue,   // single mutex-protected FIFO (ablation baseline)
  kWorkStealing,  // per-worker Chase–Lev deques + injector (default)
};

/// Reads GPSA_SCHEDULER ("global" | "stealing"); defaults to
/// kWorkStealing for unset or unrecognized values.
SchedulerMode scheduler_mode_from_env();

const char* scheduler_mode_name(SchedulerMode mode);

class Scheduler {
 public:
  /// `worker_count` threads are started immediately.
  /// `batch_size` bounds messages processed per scheduling slice.
  /// The two-argument form takes the mode from GPSA_SCHEDULER.
  explicit Scheduler(unsigned worker_count, std::size_t batch_size = 256);
  Scheduler(unsigned worker_count, std::size_t batch_size, SchedulerMode mode);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Makes `unit` runnable. Callable from any thread, including workers.
  /// From a worker thread of this scheduler the unit lands on that
  /// worker's local deque; otherwise it goes through the injector.
  void enqueue(Schedulable* unit) GPSA_EXCLUDES(mutex_, injector_mutex_);

  /// Stops accepting work, drains nothing, joins workers. Callers must
  /// quiesce their actors first (the GPSA manager protocol guarantees all
  /// mailboxes are empty before the engine stops the scheduler).
  void stop() GPSA_EXCLUDES(mutex_);

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  SchedulerMode mode() const { return mode_; }

  /// Total scheduling slices executed (for tests and the ablation bench).
  std::uint64_t slices_executed() const {
    return slices_.load(std::memory_order_relaxed);
  }

  /// Steal episodes that obtained at least one unit (stealing mode only).
  std::uint64_t steals_executed() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Extra units migrated beyond the first steal of each episode
  /// (batch-aware steal sizing: zero when every victim stayed shallow).
  std::uint64_t steal_extras_migrated() const {
    return steal_extras_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-worker scheduling state. Only `deque` and `epoch` are shared;
  /// `tick` and `rng_state` are owner-private.
  struct alignas(64) Worker {
    explicit Worker(std::uint64_t seed) : rng_state(seed) {}

    WorkStealingDeque<Schedulable*> deque{/*initial_capacity=*/64};
    /// Eventcount the worker parks on; bumped to wake it.
    std::atomic<std::uint32_t> epoch{0};
    std::uint64_t tick = 0;
    std::uint64_t rng_state;
  };

  void worker_loop_global(unsigned index);
  void worker_loop_stealing(unsigned index);

  Schedulable* next_unit(Worker& self, unsigned index);
  Schedulable* try_steal(Worker& self, unsigned index);
  Schedulable* pop_injector() GPSA_EXCLUDES(injector_mutex_);
  void inject(Schedulable* unit) GPSA_EXCLUDES(injector_mutex_);
  void wake_one();
  /// Parks until woken. Returns false when the scheduler is stopping.
  bool park(Worker& self, unsigned index);

  const std::size_t batch_size_;
  const SchedulerMode mode_;
  std::atomic<std::uint64_t> slices_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_extras_{0};

  // --- kGlobalQueue state -------------------------------------------------
  Mutex mutex_;
  CondVar cv_;
  std::deque<Schedulable*> run_queue_ GPSA_GUARDED_BY(mutex_);
  bool stopping_ GPSA_GUARDED_BY(mutex_) = false;

  // --- kWorkStealing state ------------------------------------------------
  std::vector<std::unique_ptr<Worker>> worker_state_;
  Mutex injector_mutex_;
  std::deque<Schedulable*> injector_ GPSA_GUARDED_BY(injector_mutex_);
  /// Mirror of injector_.size() readable without the lock.
  std::atomic<std::size_t> injector_size_{0};
  /// Units enqueued but not yet claimed by a worker. A worker only sleeps
  /// after publishing its parked bit and re-reading pending_ == 0.
  std::atomic<std::int64_t> pending_{0};
  /// One bit per worker, set while that worker is parked.
  std::unique_ptr<std::atomic<std::uint64_t>[]> parked_words_;
  std::size_t parked_word_count_ = 0;
  std::atomic<bool> stop_flag_{false};

  std::vector<std::thread> workers_;
};

}  // namespace gpsa
