// Cooperative actor scheduler.
//
// The paper's engine replaces threads with "active light-weight actors"
// (Kilim tasks). Here, an actor is a Schedulable multiplexed onto a small
// pool of worker threads: it is enqueued on the global run queue whenever
// its mailbox transitions from empty to non-empty, a worker pops it and
// lets it process a bounded batch of messages, and it is re-enqueued if
// work remains. FIFO servicing of the run queue gives the fair scheduling
// the actor model promises (no actor is starved); the batch bound keeps
// any one actor from monopolizing a worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace gpsa {

/// A unit the scheduler can run. Implemented by Actor<M>.
class Schedulable {
 public:
  virtual ~Schedulable() = default;

  /// Processes up to `max_messages` queued messages.
  /// Returns true if the unit still has (or may have) pending work and must
  /// be re-enqueued; false if it went idle.
  virtual bool execute_batch(std::size_t max_messages) = 0;
};

class Scheduler {
 public:
  /// `worker_count` threads are started immediately.
  /// `batch_size` bounds messages processed per scheduling slice.
  explicit Scheduler(unsigned worker_count, std::size_t batch_size = 256);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Makes `unit` runnable. Callable from any thread, including workers.
  void enqueue(Schedulable* unit);

  /// Stops accepting work, drains nothing, joins workers. Callers must
  /// quiesce their actors first (the GPSA manager protocol guarantees all
  /// mailboxes are empty before the engine stops the scheduler).
  void stop();

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Total scheduling slices executed (for tests and the ablation bench).
  std::uint64_t slices_executed() const {
    return slices_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(unsigned index);

  const std::size_t batch_size_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Schedulable*> run_queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> slices_{0};
  std::vector<std::thread> workers_;
};

}  // namespace gpsa
