// Cooperative actor scheduler.
//
// The paper's engine replaces threads with "active light-weight actors"
// (Kilim tasks). Here, an actor is a Schedulable multiplexed onto a small
// pool of worker threads: it is enqueued whenever its mailbox transitions
// from empty to non-empty, a worker pops it and lets it process a bounded
// batch of messages, and it is re-enqueued if work remains. The batch
// bound keeps any one actor from monopolizing a worker.
//
// Two run-queue substrates exist behind the GPSA_SCHEDULER runtime
// switch (DESIGN.md §8):
//
//   - kWorkStealing (default): per-worker bounded Chase–Lev deques
//     (work_stealing_deque.hpp). An enqueue from a worker thread lands on
//     that worker's own deque (local LIFO); external submissions and
//     deque overflow go through a global injector queue; idle workers
//     steal the FIFO end of random victims, taking up to half of the
//     victim's backlog per episode. A parked-worker bitmap plus a global
//     pending-unit counter lets enqueue wake at most one sleeper and
//     makes "sleep while work is unclaimed" impossible (Dekker on
//     seq_cst pending/parked accesses). A fairness tick services the
//     injector and the worker's own FIFO end every 61 slices so local
//     LIFO churn cannot starve anyone.
//   - kGlobalQueue: the original single std::mutex + std::deque +
//     condition_variable run queue, kept as the ablation baseline and
//     fallback. notify_one is issued while the lock is held: the
//     predicate re-check under the same mutex already makes lost wakeups
//     impossible, and notifying under the lock additionally closes the
//     window where a racing stop()+destruction could free the condvar
//     between enqueue's unlock and its notify.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "actor/work_stealing_deque.hpp"
#include "util/thread_annotations.hpp"

namespace gpsa {

/// A unit the scheduler can run. Implemented by Actor<M>.
class Schedulable {
 public:
  virtual ~Schedulable() = default;

  /// Processes up to `max_messages` queued messages.
  /// Returns true if the unit still has (or may have) pending work and must
  /// be re-enqueued; false if it went idle.
  virtual bool execute_batch(std::size_t max_messages) = 0;

  /// Job namespace this unit belongs to (ActorSystem::spawn_in_job). Tag 0
  /// is the default single-job namespace. Set once, before the first
  /// enqueue; read by workers for the per-job fair-share budget and by
  /// ActorSystem::despawn_job to collect a job's actors.
  void set_job_tag(std::uint32_t tag) { job_tag_ = tag; }
  std::uint32_t job_tag() const { return job_tag_; }

  /// True when the unit is neither mid-slice nor claimed by / queued on
  /// any run queue. Actor<M> refines idle_hint() with its mailbox state
  /// machine: IDLE there means "not enqueued anywhere and mailbox seen
  /// empty", and the in-slice flag covers the pop-to-state-reset window.
  bool quiescent() const {
    return !in_slice_.load(std::memory_order_seq_cst) && idle_hint();
  }

  /// Slices this unit has fully completed. The despawn protocol
  /// (ActorSystem::despawn_job) reads this before and after a quiescent()
  /// sweep: slice_end() bumps the counter BEFORE clearing the in-slice
  /// flag, so an unchanged counter across a window in which every unit
  /// read quiescent means no slice ran anywhere in that window.
  std::uint64_t slices_completed() const {
    return slices_completed_.load(std::memory_order_seq_cst);
  }

 protected:
  /// Subclass's view of "no pending work and not on a run queue".
  virtual bool idle_hint() const { return true; }

 private:
  friend class Scheduler;

  void slice_begin() { in_slice_.store(true, std::memory_order_seq_cst); }
  void slice_end() {
    // Counter first, then the flag: a reader that sees in_slice_ == false
    // with an unchanged counter knows this slice's writes are visible.
    slices_completed_.fetch_add(1, std::memory_order_seq_cst);
    in_slice_.store(false, std::memory_order_seq_cst);
  }

  std::uint32_t job_tag_ = 0;
  std::atomic<bool> in_slice_{false};
  std::atomic<std::uint64_t> slices_completed_{0};
};

enum class SchedulerMode {
  kGlobalQueue,   // single mutex-protected FIFO (ablation baseline)
  kWorkStealing,  // per-worker Chase–Lev deques + injector (default)
};

/// Reads GPSA_SCHEDULER ("global" | "stealing"); defaults to
/// kWorkStealing for unset or unrecognized values.
SchedulerMode scheduler_mode_from_env();

const char* scheduler_mode_name(SchedulerMode mode);

class Scheduler {
 public:
  /// `worker_count` threads are started immediately.
  /// `batch_size` bounds messages processed per scheduling slice.
  /// The two-argument form takes the mode from GPSA_SCHEDULER.
  explicit Scheduler(unsigned worker_count, std::size_t batch_size = 256);
  Scheduler(unsigned worker_count, std::size_t batch_size, SchedulerMode mode);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Makes `unit` runnable. Callable from any thread, including workers.
  /// From a worker thread of this scheduler the unit lands on that
  /// worker's local deque; otherwise it goes through the injector.
  void enqueue(Schedulable* unit) GPSA_EXCLUDES(mutex_, injector_mutex_);

  /// Stops accepting work, drains nothing, joins workers. Callers must
  /// quiesce their actors first (the GPSA manager protocol guarantees all
  /// mailboxes are empty before the engine stops the scheduler).
  void stop() GPSA_EXCLUDES(mutex_);

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  SchedulerMode mode() const { return mode_; }

  /// Total scheduling slices executed (for tests and the ablation bench).
  std::uint64_t slices_executed() const {
    return slices_.load(std::memory_order_relaxed);
  }

  /// Steal episodes that obtained at least one unit (stealing mode only).
  std::uint64_t steals_executed() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Extra units migrated beyond the first steal of each episode
  /// (batch-aware steal sizing: zero when every victim stayed shallow).
  std::uint64_t steal_extras_migrated() const {
    return steal_extras_.load(std::memory_order_relaxed);
  }

  /// Per-job fair-share budget, in slices (stealing mode). When nonzero, a
  /// worker that has run `slices` consecutive slices of the same job tag
  /// services the FIFO ends (injector, then its own deque's far end)
  /// before its local LIFO end — the 61-slice fairness tick generalized so
  /// a resident job cannot monopolize a worker between ticks. 0 (the
  /// default) disables the per-job trigger; single-job engine runs keep
  /// the plain fairness tick. Settable at any time (GraphService sets it
  /// once at startup from GPSA_SERVICE_FAIR_BUDGET).
  void set_fair_share_budget(std::uint64_t slices) {
    fair_budget_.store(slices, std::memory_order_relaxed);
  }
  std::uint64_t fair_share_budget() const {
    return fair_budget_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-worker scheduling state. Only `deque` and `epoch` are shared;
  /// `tick` and `rng_state` are owner-private.
  struct alignas(64) Worker {
    explicit Worker(std::uint64_t seed) : rng_state(seed) {}

    WorkStealingDeque<Schedulable*> deque{/*initial_capacity=*/64};
    /// Eventcount the worker parks on; bumped to wake it.
    std::atomic<std::uint32_t> epoch{0};
    std::uint64_t tick = 0;
    std::uint64_t rng_state;
    /// Job tag of the last slice this worker ran and the consecutive
    /// same-job run length (per-job fair-share budget; owner-private).
    std::uint32_t last_job_tag = 0;
    std::uint64_t job_run_len = 0;
  };

  void worker_loop_global(unsigned index);
  void worker_loop_stealing(unsigned index);

  Schedulable* next_unit(Worker& self, unsigned index);
  Schedulable* try_steal(Worker& self, unsigned index);
  Schedulable* pop_injector() GPSA_EXCLUDES(injector_mutex_);
  void inject(Schedulable* unit) GPSA_EXCLUDES(injector_mutex_);
  void wake_one();
  /// Parks until woken. Returns false when the scheduler is stopping.
  bool park(Worker& self, unsigned index);

  const std::size_t batch_size_;
  const SchedulerMode mode_;
  std::atomic<std::uint64_t> slices_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> steal_extras_{0};
  std::atomic<std::uint64_t> fair_budget_{0};

  // --- kGlobalQueue state -------------------------------------------------
  Mutex mutex_{"Scheduler.runq"};
  CondVar cv_;
  std::deque<Schedulable*> run_queue_ GPSA_GUARDED_BY(mutex_);
  bool stopping_ GPSA_GUARDED_BY(mutex_) = false;

  // --- kWorkStealing state ------------------------------------------------
  std::vector<std::unique_ptr<Worker>> worker_state_;
  Mutex injector_mutex_{"Scheduler.injector"};
  std::deque<Schedulable*> injector_ GPSA_GUARDED_BY(injector_mutex_);
  /// Mirror of injector_.size() readable without the lock.
  std::atomic<std::size_t> injector_size_{0};
  /// Units enqueued but not yet claimed by a worker. A worker only sleeps
  /// after publishing its parked bit and re-reading pending_ == 0.
  std::atomic<std::int64_t> pending_{0};
  /// One bit per worker, set while that worker is parked.
  std::unique_ptr<std::atomic<std::uint64_t>[]> parked_words_;
  std::size_t parked_word_count_ = 0;
  std::atomic<bool> stop_flag_{false};

  std::vector<std::thread> workers_;
};

}  // namespace gpsa
