// Event-driven actor with a typed mailbox.
//
// Semantics follow the standard actor model the paper relies on (§II.B):
//   - encapsulation: only on_message() touches actor state, and the
//     scheduler never runs one actor concurrently with itself;
//   - asynchronous send: producers enqueue and continue immediately;
//   - per-sender FIFO delivery via the MPSC mailbox;
//   - starvation-free scheduling via the scheduler's run queues
//     (scheduler.hpp: work-stealing deques by default, the global FIFO
//     under GPSA_SCHEDULER=global).
//
// An actor is IDLE when its mailbox is empty and it is not on a run
// queue, SCHEDULED otherwise. send() performs the empty->non-empty
// transition exactly once per wakeup, which keeps run-queue traffic
// proportional to wakeups, not messages. When the sender is itself a
// scheduler worker (the dominant case: dispatcher -> computer sends),
// the wakeup lands on that worker's own lock-free deque, so the mailbox
// notify path crosses no lock and no syscall.
//
// Mailbox buffer-reuse contract (DESIGN.md §11): a queued message may own
// a buffer leased from a shared pool (ComputerMsg::batch and the
// MessageBatchPool). The mailbox itself imposes nothing on such payloads
// beyond ordinary move/destroy semantics, so pooled buffers are safe under
// both normal delivery (the receiver recycles them) and teardown (the
// destructor frees them) — provided the pool outlives the actor, which
// the engine guarantees by declaring the pool before the ActorSystem.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>

#include "actor/scheduler.hpp"
#include "util/check.hpp"
#include "util/mpsc_queue.hpp"

namespace gpsa {

template <typename M>
class Actor : public Schedulable {
 public:
  ~Actor() override = default;

  /// Asynchronous send; callable from any thread.
  void send(M message) {
    mailbox_.push(std::move(message));
    schedule_if_idle();
  }

  /// Messages waiting (approximate; exact when the actor is quiescent).
  std::size_t mailbox_size() const { return mailbox_.approx_size(); }

 protected:
  /// Handles one message. Runs on a scheduler worker; never concurrently
  /// with itself for the same actor.
  virtual void on_message(M message) = 0;

  /// Despawn-protocol hint (Schedulable::quiescent): IDLE means the
  /// mailbox was seen empty and the actor sits on no run queue. The
  /// window between a worker's pop and the IDLE store is covered by the
  /// scheduler's in-slice flag.
  bool idle_hint() const override {
    return state_.load(std::memory_order_seq_cst) == kIdle;
  }

 private:
  friend class ActorSystem;

  enum : int { kIdle = 0, kScheduled = 1 };

  void attach(Scheduler* scheduler) {
    GPSA_CHECK(scheduler_ == nullptr);
    scheduler_ = scheduler;
  }

  void schedule_if_idle() {
    if (state_.exchange(kScheduled, std::memory_order_acq_rel) == kIdle) {
      GPSA_DCHECK(scheduler_ != nullptr);
      scheduler_->enqueue(this);
    }
  }

  bool execute_batch(std::size_t max_messages) override {
    for (std::size_t i = 0; i < max_messages; ++i) {
      auto msg = mailbox_.try_pop();
      if (!msg) {
        break;
      }
      on_message(std::move(*msg));
    }
    if (!mailbox_.approx_empty()) {
      // Work remains (or a push is completing); stay SCHEDULED and ask the
      // worker to re-enqueue us.
      return true;
    }
    // Go idle, then re-check: a producer may have pushed between the
    // emptiness check and the state change without scheduling us (it saw
    // state==SCHEDULED at that time).
    state_.store(kIdle, std::memory_order_seq_cst);
    if (!mailbox_.approx_empty()) {
      schedule_if_idle();
    }
    return false;
  }

  MpscQueue<M> mailbox_;
  std::atomic<int> state_{kIdle};
  Scheduler* scheduler_ = nullptr;
};

}  // namespace gpsa
