// Owns a Scheduler plus the actors spawned on it.
//
// Lifetime rules: actors live until shutdown() — or, for actors spawned
// into a job namespace via spawn_in_job(), until despawn_job() retires
// that namespace. Raw Actor<M>* handles returned by spawn()/spawn_in_job()
// remain valid for that whole window. Callers must quiesce their protocol
// (e.g. the GPSA manager's SYSTEM_OVER handshake) before calling
// shutdown(); despawn_job() additionally waits for scheduler-level
// quiescence of the job's actors, so it is safe while other jobs keep
// running on the same scheduler (the multi-tenant GraphService case).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "actor/actor.hpp"
#include "actor/scheduler.hpp"
#include "util/thread_annotations.hpp"

namespace gpsa {

class ActorSystem {
 public:
  /// The two-argument form takes the scheduler substrate from the
  /// GPSA_SCHEDULER environment switch (scheduler.hpp).
  explicit ActorSystem(unsigned worker_count, std::size_t batch_size = 256);
  ActorSystem(unsigned worker_count, std::size_t batch_size,
              SchedulerMode mode);
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  /// Constructs an actor of type T (T must derive from Actor<M> for some M)
  /// and registers it with the scheduler under job namespace 0. Returns a
  /// non-owning handle valid until shutdown().
  template <typename T, typename... Args>
  T* spawn(Args&&... args) {
    return spawn_in_job<T>(0, std::forward<Args>(args)...);
  }

  /// spawn() into an explicit job namespace. Actors of one job never share
  /// mailboxes, bitmaps, or pools with another job's — the tag exists so a
  /// whole job can be retired with despawn_job() while other jobs keep
  /// running, and so the scheduler's per-job fair-share budget can tell
  /// jobs apart. Concurrent spawns of different jobs are safe; a job's
  /// spawns must not race its own despawn.
  template <typename T, typename... Args>
  T* spawn_in_job(std::uint32_t job, Args&&... args) {
    auto actor = std::make_unique<T>(std::forward<Args>(args)...);
    T* handle = actor.get();
    handle->set_job_tag(job);
    handle->attach(&scheduler_);
    {
      MutexLock lock(mutex_);
      actors_.push_back(Entry{job, std::move(actor)});
    }
    return handle;
  }

  /// Destroys every actor spawned under `job` after waiting for the group
  /// to quiesce, while the scheduler (and every other job on it) keeps
  /// running. Quiescence is a double-read of the group's summed
  /// slice-completion counters around a sweep in which every member reads
  /// quiescent(): any concurrent slice manifests as an in-slice flag, a
  /// SCHEDULED mailbox state, or a counter bump, so a stable read proves
  /// no member is running, queued, or claimed — and job actors only
  /// message each other, so no new work can arrive once the protocol
  /// (SYSTEM_OVER + drained stray acks) has wound down. At most one
  /// thread may despawn a given job; must not race shutdown().
  void despawn_job(std::uint32_t job) GPSA_EXCLUDES(mutex_);

  Scheduler& scheduler() { return scheduler_; }

  /// Stops the scheduler and destroys all actors. Idempotent.
  void shutdown() GPSA_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::uint32_t job = 0;
    std::unique_ptr<Schedulable> actor;
  };

  Scheduler scheduler_;
  Mutex mutex_{"ActorSystem.registry"};
  std::vector<Entry> actors_ GPSA_GUARDED_BY(mutex_);
  bool shut_down_ GPSA_GUARDED_BY(mutex_) = false;
};

}  // namespace gpsa
