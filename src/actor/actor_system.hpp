// Owns a Scheduler plus the actors spawned on it.
//
// Lifetime rules: actors live until shutdown(); raw Actor<M>* handles
// returned by spawn() remain valid for that whole window. Callers must
// quiesce their protocol (e.g. the GPSA manager's SYSTEM_OVER handshake)
// before calling shutdown(); the system then stops the scheduler and
// destroys the actors.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "actor/actor.hpp"
#include "actor/scheduler.hpp"
#include "util/thread_annotations.hpp"

namespace gpsa {

class ActorSystem {
 public:
  /// The two-argument form takes the scheduler substrate from the
  /// GPSA_SCHEDULER environment switch (scheduler.hpp).
  explicit ActorSystem(unsigned worker_count, std::size_t batch_size = 256);
  ActorSystem(unsigned worker_count, std::size_t batch_size,
              SchedulerMode mode);
  ~ActorSystem();

  ActorSystem(const ActorSystem&) = delete;
  ActorSystem& operator=(const ActorSystem&) = delete;

  /// Constructs an actor of type T (T must derive from Actor<M> for some M)
  /// and registers it with the scheduler. Returns a non-owning handle valid
  /// until shutdown().
  template <typename T, typename... Args>
  T* spawn(Args&&... args) {
    auto actor = std::make_unique<T>(std::forward<Args>(args)...);
    T* handle = actor.get();
    handle->attach(&scheduler_);
    {
      MutexLock lock(mutex_);
      actors_.push_back(std::move(actor));
    }
    return handle;
  }

  Scheduler& scheduler() { return scheduler_; }

  /// Stops the scheduler and destroys all actors. Idempotent.
  void shutdown() GPSA_EXCLUDES(mutex_);

 private:
  Scheduler scheduler_;
  Mutex mutex_;
  std::vector<std::unique_ptr<Schedulable>> actors_ GPSA_GUARDED_BY(mutex_);
  bool shut_down_ GPSA_GUARDED_BY(mutex_) = false;
};

}  // namespace gpsa
