#include "actor/scheduler.hpp"

#include "util/check.hpp"
#include "util/thread.hpp"

namespace gpsa {

Scheduler::Scheduler(unsigned worker_count, std::size_t batch_size)
    : batch_size_(batch_size) {
  GPSA_CHECK(worker_count > 0);
  GPSA_CHECK(batch_size > 0);
  workers_.reserve(worker_count);
  for (unsigned i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::enqueue(Schedulable* unit) {
  GPSA_DCHECK(unit != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;  // shutdown in progress; work is dropped by design
    }
    run_queue_.push_back(unit);
  }
  cv_.notify_one();
}

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Idempotent: a second call finds every worker already joined.
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void Scheduler::worker_loop(unsigned index) {
  set_current_thread_name("gpsa-w" + std::to_string(index));
  while (true) {
    Schedulable* unit = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !run_queue_.empty(); });
      if (stopping_) {
        return;
      }
      unit = run_queue_.front();
      run_queue_.pop_front();
    }
    slices_.fetch_add(1, std::memory_order_relaxed);
    const bool more = unit->execute_batch(batch_size_);
    if (more) {
      enqueue(unit);
    }
  }
}

}  // namespace gpsa
