// gpsa-lint: locked-notify — every condition-variable notify in this file
// must be issued while the guarding Mutex is held (the predicate re-check
// under the same mutex makes lost wakeups impossible either way, but
// notifying under the lock additionally closes the window where a racing
// stop()+destruction frees the condvar between an unlock and its notify).
// The worker eventcount (Worker::epoch) is an atomic, not a condvar, and
// has its own Dekker protocol (see park()/wake_one()).
#include "actor/scheduler.hpp"

#include <bit>
#include <cstdlib>
#include <string_view>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread.hpp"

namespace gpsa {
namespace {

/// Identifies the scheduler (if any) whose worker thread we are on, so
/// enqueue can target the local deque. The scheduler pointer disambiguates
/// nested/multiple ActorSystems: a worker of scheduler A enqueueing into
/// scheduler B takes B's external (injector) path.
struct WorkerTls {
  Scheduler* scheduler = nullptr;
  unsigned index = 0;
};
thread_local WorkerTls tls_worker;

/// xorshift64: cheap per-worker victim selection. Never returns 0 state.
std::uint64_t next_random(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Fairness period: every kFairnessTick-th slice a worker services the
/// FIFO ends (injector, then its own deque's top) before its local LIFO
/// end, bounding how long local churn can delay anyone else. Prime, so it
/// does not resonate with power-of-two batch shapes.
constexpr std::uint64_t kFairnessTick = 61;

/// Per steal episode, at most this many extra units migrate (besides the
/// one returned for immediate execution).
constexpr std::size_t kMaxStealBatch = 16;
/// Victims shallower than this give up exactly one unit per steal —
/// batching a 2-3 deep backlog just bounces tasks between thieves.
constexpr std::size_t kStealBatchMinDepth = 4;

}  // namespace

SchedulerMode scheduler_mode_from_env() {
  const char* env = std::getenv("GPSA_SCHEDULER");
  if (env != nullptr && std::string_view(env) == "global") {
    return SchedulerMode::kGlobalQueue;
  }
  return SchedulerMode::kWorkStealing;
}

const char* scheduler_mode_name(SchedulerMode mode) {
  return mode == SchedulerMode::kGlobalQueue ? "global" : "stealing";
}

Scheduler::Scheduler(unsigned worker_count, std::size_t batch_size)
    : Scheduler(worker_count, batch_size, scheduler_mode_from_env()) {}

Scheduler::Scheduler(unsigned worker_count, std::size_t batch_size,
                     SchedulerMode mode)
    : batch_size_(batch_size), mode_(mode) {
  GPSA_CHECK(worker_count > 0);
  GPSA_CHECK(batch_size > 0);
  if (mode_ == SchedulerMode::kWorkStealing) {
    worker_state_.reserve(worker_count);
    SplitMix64 seeder(0x675053415F575351ULL);  // "GPSA_WSQ"
    for (unsigned i = 0; i < worker_count; ++i) {
      worker_state_.push_back(std::make_unique<Worker>(seeder.next() | 1));
    }
    parked_word_count_ = (worker_count + 63) / 64;
    parked_words_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(parked_word_count_);
    for (std::size_t w = 0; w < parked_word_count_; ++w) {
      parked_words_[w].store(0, std::memory_order_relaxed);
    }
  }
  workers_.reserve(worker_count);
  for (unsigned i = 0; i < worker_count; ++i) {
    if (mode_ == SchedulerMode::kWorkStealing) {
      workers_.emplace_back([this, i] { worker_loop_stealing(i); });
    } else {
      workers_.emplace_back([this, i] { worker_loop_global(i); });
    }
  }
}

Scheduler::~Scheduler() { stop(); }

void Scheduler::enqueue(Schedulable* unit) {
  GPSA_DCHECK(unit != nullptr);
  if (mode_ == SchedulerMode::kGlobalQueue) {
    MutexLock lock(mutex_);
    if (stopping_) {
      return;  // shutdown in progress; work is dropped by design
    }
    run_queue_.push_back(unit);
    // Notify while holding the lock: a worker between its predicate check
    // and its wait re-checks under this same mutex, so the wakeup cannot
    // be lost; and stop()+destruction cannot free cv_ underneath us.
    cv_.notify_one();
    return;
  }

  if (stop_flag_.load(std::memory_order_acquire)) {
    return;  // dropped by design, as above
  }
  // Count the unit as pending BEFORE publishing it: a parker that reads
  // pending_ == 0 after setting its parked bit knows every published unit
  // has already been claimed (see park()).
  pending_.fetch_add(1, std::memory_order_seq_cst);
  if (tls_worker.scheduler == this) {
    // Mailbox-notify fast path: a send from a worker thread lands on that
    // worker's own deque; the overflow injector absorbs a full deque.
    if (!worker_state_[tls_worker.index]->deque.push(unit)) {
      inject(unit);
    }
  } else {
    inject(unit);
  }
  wake_one();
}

void Scheduler::inject(Schedulable* unit) {
  MutexLock lock(injector_mutex_);
  injector_.push_back(unit);
  injector_size_.store(injector_.size(), std::memory_order_release);
}

Schedulable* Scheduler::pop_injector() {
  if (injector_size_.load(std::memory_order_acquire) == 0) {
    return nullptr;  // cheap miss: skip the lock
  }
  MutexLock lock(injector_mutex_);
  if (injector_.empty()) {
    return nullptr;
  }
  Schedulable* unit = injector_.front();
  injector_.pop_front();
  injector_size_.store(injector_.size(), std::memory_order_release);
  return unit;
}

void Scheduler::wake_one() {
  for (std::size_t w = 0; w < parked_word_count_; ++w) {
    std::uint64_t mask = parked_words_[w].load(std::memory_order_seq_cst);
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(mask));
      if (parked_words_[w].compare_exchange_weak(
              mask, mask & ~(std::uint64_t{1} << bit),
              std::memory_order_seq_cst, std::memory_order_seq_cst)) {
        Worker& sleeper = *worker_state_[w * 64 + bit];
        sleeper.epoch.fetch_add(1, std::memory_order_seq_cst);
        // Atomic eventcount, not a condvar: the waiter waits on the epoch
        // value itself, so there is no separate waiter object to destroy.
        sleeper.epoch.notify_one();  // gpsa-lint: allow(locked-notify)
        return;  // wake at most one sleeper per published unit
      }
      // CAS failure reloaded `mask`; retry within this word.
    }
  }
}

void Scheduler::stop() {
  if (mode_ == SchedulerMode::kGlobalQueue) {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
      // Notify under the lock (annotation-audit find): the old
      // unlock-then-notify left the same window the enqueue comment
      // describes — a concurrent sequential stop()+destruction could
      // free cv_ between this thread's unlock and its notify.
      cv_.notify_all();
    }
  } else {
    stop_flag_.store(true, std::memory_order_seq_cst);
    // Wake everyone regardless of the parked bitmap: a worker between its
    // bit-set and its wait sees either the flag or the epoch bump.
    for (auto& worker : worker_state_) {
      worker->epoch.fetch_add(1, std::memory_order_seq_cst);
      // Atomic eventcount (see wake_one): no condvar lifetime to protect.
      worker->epoch.notify_all();  // gpsa-lint: allow(locked-notify)
    }
  }
  // Idempotent: a second call finds every worker already joined.
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void Scheduler::worker_loop_global(unsigned index) {
  set_current_thread_name("gpsa-w" + std::to_string(index));
  while (true) {
    Schedulable* unit = nullptr;
    {
      MutexLock lock(mutex_);
      // Explicit predicate loop rather than cv_.wait(lock, pred): the
      // thread-safety analysis checks the guarded reads here, where the
      // lock is visibly held, instead of inside an opaque lambda.
      while (!stopping_ && run_queue_.empty()) {
        cv_.wait(lock);
      }
      if (stopping_) {
        return;
      }
      unit = run_queue_.front();
      run_queue_.pop_front();
    }
    slices_.fetch_add(1, std::memory_order_relaxed);
    unit->slice_begin();
    const bool more = unit->execute_batch(batch_size_);
    unit->slice_end();
    if (more) {
      enqueue(unit);
    }
  }
}

void Scheduler::worker_loop_stealing(unsigned index) {
  set_current_thread_name("gpsa-w" + std::to_string(index));
  tls_worker = WorkerTls{this, index};
  Worker& self = *worker_state_[index];
  while (true) {
    Schedulable* unit = next_unit(self, index);
    if (unit == nullptr) {
      if (!park(self, index)) {
        break;
      }
      continue;
    }
    pending_.fetch_sub(1, std::memory_order_seq_cst);
    slices_.fetch_add(1, std::memory_order_relaxed);
    // Consecutive same-job run length for the per-job fair-share budget
    // (next_unit). Owner-private, so plain reads/writes are fine.
    const std::uint32_t tag = unit->job_tag();
    if (tag == self.last_job_tag) {
      ++self.job_run_len;
    } else {
      self.last_job_tag = tag;
      self.job_run_len = 1;
    }
    unit->slice_begin();
    const bool more = unit->execute_batch(batch_size_);
    unit->slice_end();
    if (more) {
      enqueue(unit);
    }
  }
  tls_worker = WorkerTls{};
}

Schedulable* Scheduler::next_unit(Worker& self, unsigned index) {
  ++self.tick;
  const std::uint64_t job_budget =
      fair_budget_.load(std::memory_order_relaxed);
  const bool fairness_due =
      self.tick % kFairnessTick == 0 ||
      (job_budget != 0 && self.job_run_len >= job_budget);
  if (fairness_due) {
    // Fairness tick: service the FIFO ends first so local LIFO churn can
    // delay the injector / our own deque's far end by at most one period.
    // The per-job budget arms the same path early once a worker has run
    // `job_budget` consecutive slices of one job; if no other job has
    // work queued, the pops below fall through and the same job simply
    // continues (work conservation — the budget never idles a worker).
    if (Schedulable* unit = pop_injector()) {
      return unit;
    }
    if (auto oldest = self.deque.steal()) {  // own deque, FIFO end
      return *oldest;
    }
  }
  if (auto local = self.deque.pop()) {
    return *local;
  }
  if (Schedulable* unit = pop_injector()) {
    if (injector_size_.load(std::memory_order_relaxed) > 0) {
      wake_one();  // the injector still has work: recruit another sleeper
    }
    return unit;
  }
  return try_steal(self, index);
}

Schedulable* Scheduler::try_steal(Worker& self, unsigned index) {
  // worker_state_ is fully built before the first worker thread starts;
  // workers_ (the thread vector) is still growing at that point, so its
  // size must not be read from worker context.
  const unsigned n = static_cast<unsigned>(worker_state_.size());
  if (n <= 1) {
    return nullptr;
  }
  // Two sweeps over the victims in random rotation: one transient CAS
  // failure (empty-steal ABA window) should not send us to sleep while a
  // victim still has a backlog. Sweep 0 is depth-selective — it passes
  // over shallow victims so thieves gravitate to the deepest backlogs
  // first; sweep 1 takes anything (work conservation).
  for (int sweep = 0; sweep < 2; ++sweep) {
    const unsigned start =
        static_cast<unsigned>(next_random(self.rng_state) % n);
    for (unsigned i = 0; i < n; ++i) {
      const unsigned v = (start + i) % n;
      if (v == index) {
        continue;
      }
      WorkStealingDeque<Schedulable*>& victim = worker_state_[v]->deque;
      const std::size_t depth = victim.approx_size();
      if (sweep == 0 && depth < 2) {
        continue;  // also skips the empty-deque CAS attempt entirely
      }
      auto first = victim.steal();
      if (!first) {
        continue;
      }
      steals_.fetch_add(1, std::memory_order_relaxed);
      // Batch-aware steal sizing: migrate up to half of the victim's
      // remaining backlog, but only when the backlog is deep enough that
      // the batch won't immediately ping-pong back. On small graphs most
      // deques hold one or two units; batching those just re-steals the
      // same task back and forth (ROADMAP: "steal churn on small
      // graphs"), so shallow victims give up exactly one unit. Each
      // extra moves via a proven single-unit CAS (a batched top_ CAS
      // over a range can race the owner's non-CAS pop path).
      std::size_t moved = 0;
      if (depth >= kStealBatchMinDepth) {
        std::size_t want = depth / 2;
        want = want < kMaxStealBatch ? want : kMaxStealBatch;
        while (moved < want) {
          auto extra = victim.steal();
          if (!extra) {
            break;
          }
          if (!self.deque.push(*extra)) {
            inject(*extra);
          }
          ++moved;
        }
      }
      if (moved > 0) {
        steal_extras_.fetch_add(moved, std::memory_order_relaxed);
        wake_one();  // we hold a surplus now; let a sleeper steal from us
      }
      return *first;
    }
  }
  return nullptr;
}

bool Scheduler::park(Worker& self, unsigned index) {
  const std::uint32_t ticket = self.epoch.load(std::memory_order_seq_cst);
  const std::size_t word = index / 64;
  const std::uint64_t bit = std::uint64_t{1} << (index % 64);
  parked_words_[word].fetch_or(bit, std::memory_order_seq_cst);
  // Publish-then-recheck (Dekker against enqueue's pending_-then-bitmap
  // order): if pending_ reads 0 here, every enqueued unit has been claimed
  // by some running worker, so sleeping is safe; otherwise rescan. Our own
  // deque cannot receive work while we sleep (only the owner pushes), so
  // unclaimed work lives in the injector or an awake worker's deque.
  bool rescan = pending_.load(std::memory_order_seq_cst) > 0;
  if (stop_flag_.load(std::memory_order_seq_cst)) {
    parked_words_[word].fetch_and(~bit, std::memory_order_seq_cst);
    return false;
  }
  if (!rescan) {
    self.epoch.wait(ticket, std::memory_order_seq_cst);
  }
  parked_words_[word].fetch_and(~bit, std::memory_order_seq_cst);
  return !stop_flag_.load(std::memory_order_seq_cst);
}

}  // namespace gpsa
