// Chase–Lev work-stealing deque (single owner, many thieves).
//
// The owning worker pushes and pops at the *bottom* (LIFO — keeps the
// hottest actor cache-resident); thief workers steal from the *top*
// (FIFO — the oldest work migrates, which is what makes stealing fair).
// The ring buffer grows by doubling up to `max_capacity`; past that,
// push() returns false and the scheduler routes the unit through its
// global overflow injector instead, so the deque never blocks and never
// allocates on the hot path once warm.
//
// Memory-order notes (the proof obligations, kept TSan-friendly: no
// standalone fences — ThreadSanitizer does not model
// std::atomic_thread_fence, so the Dekker points below use seq_cst
// *accesses* instead, which TSan reasons about precisely):
//
//   - `bottom_` is written only by the owner. push() publishes the new
//     element with a release store of bottom_; a thief that reads that
//     bottom value (seq_cst load ⊇ acquire) therefore sees the element
//     cell AND every ring_ replacement sequenced before the push, which
//     is what makes reading a stale ring pointer safe: any ring visible
//     together with bottom >= t+1 contains entry t (grow copies the live
//     range, retired rings are immutable and kept until destruction).
//   - pop() claims the bottom slot with a seq_cst store of bottom_ and
//     then a seq_cst load of top_ (store-then-load Dekker against
//     steal()'s seq_cst top_/bottom_ loads): either the owner observes
//     the thief's top_ advance, or the thief observes the shrunken
//     bottom_ and gives up. The final element is arbitrated by a seq_cst
//     CAS on top_ from both sides; exactly one wins.
//   - Element cells are std::atomic<T> accessed relaxed: a thief may read
//     a cell and then lose the top_ CAS (the empty-steal ABA window); the
//     value it read is discarded, and because the read was atomic the
//     racing owner overwrite (only possible once top_ has moved past the
//     slot, which is exactly when the CAS fails) is not a data race.
//
// T must be trivially copyable (the scheduler stores Schedulable*).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace gpsa {

template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WorkStealingDeque requires trivially copyable elements");

 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 256,
                             std::size_t max_capacity = std::size_t{1} << 15)
      : max_capacity_(max_capacity) {
    GPSA_CHECK(initial_capacity >= 2);
    GPSA_CHECK((initial_capacity & (initial_capacity - 1)) == 0);
    GPSA_CHECK((max_capacity & (max_capacity - 1)) == 0);
    GPSA_CHECK(max_capacity >= initial_capacity);
    ring_.store(new Ring(initial_capacity), std::memory_order_relaxed);
  }

  ~WorkStealingDeque() {
    delete ring_.load(std::memory_order_relaxed);
    for (Ring* retired : retired_) {
      delete retired;
    }
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Returns false when the deque is full at max capacity
  /// (caller must overflow elsewhere; the element is NOT enqueued).
  bool push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (static_cast<std::size_t>(b - t) >= ring->capacity) {
      if (ring->capacity >= max_capacity_) {
        return false;
      }
      ring = grow(ring, t, b);
    }
    ring->cell(b).store(value, std::memory_order_relaxed);
    // Release: publishes the cell (and any ring_ replacement above) to
    // thieves that acquire-read this bottom value.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. LIFO end.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* ring = ring_.load(std::memory_order_relaxed);
    // Dekker store: claim slot b before inspecting top_.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Deque was empty; restore the canonical bottom == top.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    const T value = ring->cell(b).load(std::memory_order_relaxed);
    if (t != b) {
      return value;  // more than one element: the claim cannot race
    }
    // Last element: race any thief for it via the top_ CAS.
    std::optional<T> out(value);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      out.reset();  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return out;
  }

  /// Any thread. FIFO end. Returns nullopt when empty OR when it loses
  /// the top_ CAS race (the caller treats both as "nothing stolen").
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) {
      return std::nullopt;
    }
    Ring* ring = ring_.load(std::memory_order_acquire);
    const T value = ring->cell(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race (empty-steal ABA window)
    }
    return value;
  }

  /// Racy size estimate (exact when only the owner is active).
  std::size_t approx_size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool approx_empty() const { return approx_size() == 0; }

  /// Current ring capacity (tests observe growth).
  std::size_t capacity() const {
    return ring_.load(std::memory_order_acquire)->capacity;
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<T>[cap]) {}

    std::atomic<T>& cell(std::int64_t index) const {
      return cells[static_cast<std::size_t>(index) & mask];
    }

    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;
  };

  /// Owner only: double the ring, copying the live range [t, b). The old
  /// ring is retired, not freed — a thief may still be reading it; retired
  /// rings are immutable (the owner never writes them again) and are
  /// reclaimed in the destructor.
  Ring* grow(Ring* old_ring, std::int64_t t, std::int64_t b) {
    Ring* bigger = new Ring(old_ring->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->cell(i).store(old_ring->cell(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    // The release store of bottom_ in push() carries this replacement to
    // thieves; release here additionally covers capacity() observers.
    ring_.store(bigger, std::memory_order_release);
    retired_.push_back(old_ring);
    return bigger;
  }

  const std::size_t max_capacity_;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Ring*> ring_{nullptr};
  std::vector<Ring*> retired_;  // owner-only
};

}  // namespace gpsa
