#include "actor/actor_system.hpp"

namespace gpsa {

ActorSystem::ActorSystem(unsigned worker_count, std::size_t batch_size)
    : scheduler_(worker_count, batch_size) {}

ActorSystem::ActorSystem(unsigned worker_count, std::size_t batch_size,
                         SchedulerMode mode)
    : scheduler_(worker_count, batch_size, mode) {}

ActorSystem::~ActorSystem() { shutdown(); }

void ActorSystem::shutdown() {
  scheduler_.stop();
  MutexLock lock(mutex_);
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  actors_.clear();
}

}  // namespace gpsa
