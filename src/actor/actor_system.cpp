#include "actor/actor_system.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace gpsa {

ActorSystem::ActorSystem(unsigned worker_count, std::size_t batch_size)
    : scheduler_(worker_count, batch_size) {}

ActorSystem::ActorSystem(unsigned worker_count, std::size_t batch_size,
                         SchedulerMode mode)
    : scheduler_(worker_count, batch_size, mode) {}

ActorSystem::~ActorSystem() { shutdown(); }

void ActorSystem::despawn_job(std::uint32_t job) {
  // Collect the group's raw pointers; the entries stay owned by actors_
  // (and thus alive) until the erase below, and the single-despawner
  // contract means nobody else removes them meanwhile.
  std::vector<Schedulable*> group;
  {
    MutexLock lock(mutex_);
    if (shut_down_) {
      return;  // shutdown() already destroyed everything
    }
    for (const Entry& entry : actors_) {
      if (entry.job == job) {
        group.push_back(entry.actor.get());
      }
    }
  }
  if (group.empty()) {
    return;
  }

  // Quiescence wait. Old teardown assumed one engine's actor set: stop the
  // scheduler, then destroy — joining the workers was what made "no slice
  // still touches this actor" true. Here the workers keep running other
  // jobs, so we prove the same property per group instead: read the summed
  // slice counter, sweep quiescent(), read the sum again. A slice that
  // overlaps the sweep either still holds its in-slice flag (sweep fails),
  // left the unit SCHEDULED (sweep fails), or completed — which bumped the
  // counter before clearing the flag (sums differ). Stable sums + an
  // all-quiescent sweep therefore prove no worker is inside, about to
  // enter, or able to re-enter any member.
  unsigned spins = 0;
  for (;;) {
    std::uint64_t before = 0;
    for (const Schedulable* unit : group) {
      before += unit->slices_completed();
    }
    bool all_quiescent = true;
    for (const Schedulable* unit : group) {
      if (!unit->quiescent()) {
        all_quiescent = false;
        break;
      }
    }
    std::uint64_t after = 0;
    for (const Schedulable* unit : group) {
      after += unit->slices_completed();
    }
    if (all_quiescent && before == after) {
      break;
    }
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  MutexLock lock(mutex_);
  std::erase_if(actors_,
                [job](const Entry& entry) { return entry.job == job; });
}

void ActorSystem::shutdown() {
  scheduler_.stop();
  MutexLock lock(mutex_);
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  actors_.clear();
}

}  // namespace gpsa
