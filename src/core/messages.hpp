// Actor message/command vocabulary (paper §V, Algorithms 1-3).
//
// The paper's command set maps onto three mailbox message types:
//   dispatcher <- ITERATION_START / SYSTEM_OVER         (DispatcherMsg)
//   computer   <- message batches / COMPUTE_OVER / SYSTEM_OVER (ComputerMsg)
//   manager    <- DISPATCH_OVER / COMPUTE_OVER acks     (ManagerMsg)
//
// Vertex messages are batched: a dispatcher accumulates up to
// EngineOptions::message_batch VertexMessages per computing actor before
// enqueueing the vector as one mailbox message, so mailbox traffic is
// proportional to batches, not edges.
//
// Buffer ownership: ComputerMsg::batch usually carries a buffer *leased*
// from the engine's MessageBatchPool (core/message_pool.hpp). The
// receiving computer recycles it after applying; a message destroyed
// without being applied (teardown after SYSTEM_OVER) simply frees the
// vector — safe, because the pool outlives the actor system and never
// tracks outstanding leases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "storage/slot.hpp"

namespace gpsa {

/// One vertex update in flight: "a message usually contains the
/// destination and value" (§IV.B).
struct VertexMessage {
  // The user-provided default constructor deliberately leaves the members
  // uninitialized: the radix scatter (dispatcher.cpp) resizes a leased
  // buffer and then overwrites every element, and a defaulted constructor
  // would make that resize memset the whole batch first.
  VertexMessage() {}  // NOLINT(modernize-use-equals-default)
  VertexMessage(VertexId d, Payload v) : dst(d), value(v) {}
  VertexId dst;
  Payload value;
};

struct DispatcherMsg {
  enum class Kind : std::uint8_t { kIterationStart, kSystemOver };
  Kind kind = Kind::kIterationStart;
  std::uint64_t superstep = 0;
};

struct ComputerMsg {
  enum class Kind : std::uint8_t { kBatch, kComputeOver, kSystemOver };
  Kind kind = Kind::kBatch;
  std::uint64_t superstep = 0;
  /// kBatch (cluster engines only): sending node and that sender's batch
  /// sequence number toward this receiver. Together they define the
  /// canonical apply order — batches are buffered and applied sorted by
  /// (src_node, seq) at the superstep boundary, so the in-process
  /// simulation and the socket data plane produce bit-identical value
  /// columns even for order-sensitive float programs (DESIGN.md §14).
  std::uint32_t src_node = 0;
  std::uint32_t seq = 0;
  std::vector<VertexMessage> batch;  // kBatch only
};

struct ManagerMsg {
  enum class Kind : std::uint8_t {
    kStartRun,      // from the engine front-end
    kDispatchOver,  // from a dispatcher; count = messages it sent
    kComputeOver,   // ack from a computer; count = vertices it updated
    kWorkerFailed,  // a worker's user hook threw (§V.C: the manager
                    // "handles exceptions" and aborts the run cleanly)
  };
  Kind kind = Kind::kStartRun;
  std::uint64_t superstep = 0;
  std::uint32_t worker_id = 0;
  std::uint64_t count = 0;
  /// kDispatchOver only: vertices this dispatcher actually dispatched.
  std::uint64_t active = 0;
  /// kDispatchOver only: CSR entries the dispatcher examined — streamed
  /// record entries plus one per vertex check, so the sweep's O(V)
  /// per-superstep offset walk is visible next to the worklist's
  /// O(active) (the work-done metric RunResult surfaces per superstep).
  std::uint64_t edges = 0;
  /// kDispatchOver, cluster engines only: frame-accurate model of the
  /// wire traffic this dispatcher's remote batches would cost — one
  /// BATCH frame per remote flush, batch_frame_wire_bytes() each. The
  /// manager folds these into the per-superstep wire-byte series that
  /// the socket data plane measures for real (DESIGN.md §14).
  std::uint64_t wire_bytes = 0;
  std::uint64_t wire_frames = 0;
  std::string error;  // kWorkerFailed only
};

}  // namespace gpsa
