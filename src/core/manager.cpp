#include "core/manager.hpp"

#include "core/computer.hpp"
#include "core/dispatcher.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace gpsa {

ManagerActor::ManagerActor(ValueFile& values, std::uint64_t max_supersteps,
                           std::uint64_t checkpoint_interval,
                           bool terminate_on_zero_updates,
                           MessageBatchPool* pool,
                           const std::atomic<bool>* cancel,
                           std::atomic<std::uint64_t>* progress)
    : values_(values),
      max_supersteps_(max_supersteps),
      checkpoint_interval_(checkpoint_interval),
      terminate_on_zero_updates_(terminate_on_zero_updates),
      pool_(pool),
      cancel_(cancel),
      progress_(progress) {}

void ManagerActor::connect(std::vector<DispatcherActor*> dispatchers,
                           std::vector<ComputerActor*> computers) {
  GPSA_CHECK(!dispatchers.empty() && !computers.empty());
  dispatchers_ = std::move(dispatchers);
  computers_ = std::move(computers);
}

void ManagerActor::on_message(ManagerMsg msg) {
  if (finished_) {
    return;  // stray acks after SYSTEM_OVER are harmless
  }
  switch (msg.kind) {
    case ManagerMsg::Kind::kStartRun:
      superstep_ = values_.completed_supersteps();  // 0, or resume point
      if (max_supersteps_ == 0) {
        finish_run(/*converged=*/false);
        return;
      }
      start_superstep();
      break;

    case ManagerMsg::Kind::kDispatchOver:
      GPSA_CHECK(msg.superstep == superstep_);
      superstep_message_count_ += msg.count;
      superstep_active_count_ += msg.active;
      superstep_edges_count_ += msg.edges;
      if (++dispatch_acks_ == dispatchers_.size()) {
        // Every dispatcher's batches are already enqueued (they enqueue
        // before reporting), so the COMPUTE_OVER token lands behind them.
        for (ComputerActor* computer : computers_) {
          ComputerMsg over;
          over.kind = ComputerMsg::Kind::kComputeOver;
          over.superstep = superstep_;
          computer->send(std::move(over));
        }
      }
      break;

    case ManagerMsg::Kind::kComputeOver:
      GPSA_CHECK(msg.superstep == superstep_);
      superstep_update_count_ += msg.count;
      if (++compute_acks_ == computers_.size()) {
        finish_superstep();
      }
      break;

    case ManagerMsg::Kind::kWorkerFailed:
      // §V.C: the manager handles worker exceptions — abort the run and
      // surface the error instead of hanging the superstep protocol.
      GPSA_LOG(Error) << "manager: worker " << msg.worker_id
                      << " failed at superstep " << msg.superstep << ": "
                      << msg.error;
      result_.failed = true;
      result_.error = msg.error;
      finish_run(/*converged=*/false);
      break;
  }
}

void ManagerActor::start_superstep() {
  dispatch_acks_ = 0;
  compute_acks_ = 0;
  superstep_message_count_ = 0;
  superstep_update_count_ = 0;
  superstep_active_count_ = 0;
  superstep_edges_count_ = 0;
  superstep_timer_.reset();
  DispatcherMsg start;
  start.kind = DispatcherMsg::Kind::kIterationStart;
  start.superstep = superstep_;
  for (DispatcherActor* dispatcher : dispatchers_) {
    dispatcher->send(start);
  }
}

void ManagerActor::finish_superstep() {
  result_.superstep_seconds.push_back(superstep_timer_.elapsed_seconds());
  result_.superstep_messages.push_back(superstep_message_count_);
  result_.superstep_updates.push_back(superstep_update_count_);
  result_.superstep_active.push_back(superstep_active_count_);
  result_.superstep_edges.push_back(superstep_edges_count_);
  result_.total_messages += superstep_message_count_;
  result_.total_updates += superstep_update_count_;
  ++superstep_;
  result_.supersteps = result_.superstep_seconds.size();
  if (pool_ != nullptr) {
    pool_->mark_superstep();  // closes the pool's warm-up window
  }
  if (progress_ != nullptr) {
    progress_->fetch_add(1);
  }

  if (checkpoint_interval_ != 0) {
    // Write-back batching: flush every Nth superstep boundary instead of
    // all of them. Supersteps between checkpoints are re-run after a
    // crash (the columns are recomputed from the last durable counter),
    // which is safe for the same reason recovery itself is — superstep
    // replay is idempotent over the immutable column.
    const std::uint64_t completed = result_.superstep_seconds.size();
    if (completed % checkpoint_interval_ == 0) {
      values_.checkpoint(superstep_).expect_ok();
      checkpoint_pending_ = false;
    } else {
      checkpoint_pending_ = true;
    }
  }

  if (superstep_message_count_ == 0 ||
      (terminate_on_zero_updates_ && superstep_update_count_ == 0)) {
    finish_run(/*converged=*/true);
    return;
  }
  if (cancel_ != nullptr && cancel_->load()) {
    result_.cancelled = true;
    finish_run(/*converged=*/false);
    return;
  }
  const std::uint64_t executed = result_.superstep_seconds.size();
  if (executed >= max_supersteps_) {
    finish_run(/*converged=*/false);
    return;
  }
  start_superstep();
}

void ManagerActor::finish_run(bool converged) {
  finished_ = true;
  result_.converged = converged;
  if (checkpoint_pending_ && !result_.failed) {
    // Batched checkpointing still ends a clean run fully durable.
    values_.checkpoint(superstep_).expect_ok();
    checkpoint_pending_ = false;
  }
  DispatcherMsg dispatcher_over;
  dispatcher_over.kind = DispatcherMsg::Kind::kSystemOver;
  for (DispatcherActor* dispatcher : dispatchers_) {
    dispatcher->send(dispatcher_over);
  }
  for (ComputerActor* computer : computers_) {
    ComputerMsg over;
    over.kind = ComputerMsg::Kind::kSystemOver;
    computer->send(std::move(over));
  }
  GPSA_LOG(Debug) << "manager: run finished after "
                  << result_.superstep_seconds.size() << " supersteps, "
                  << result_.total_messages << " messages";
  promise_.set_value(result_);
}

}  // namespace gpsa
