// Execution-mode selection: sweep vs worklist (DESIGN.md §12).
//
//   sweep     Algorithm 2 as written: every superstep walks every
//             interval's CSR offsets, skipping stale vertices one slot
//             check at a time. O(V) per superstep even when a handful of
//             vertices are active — the ablation baseline.
//   worklist  Dispatchers iterate the set bits of a dense active-vertex
//             bitmap (storage/active_bitmap.hpp) and jump the entry
//             cursor straight to each active record. O(active) per
//             superstep; results stay bit-identical to the sweep because
//             a set bit is exactly a clear stale flag.
//
// Resolution mirrors the message-plane knobs (core/ownership.hpp):
// explicit EngineOptions beat the GPSA_EXEC environment variable, which
// beats the default (worklist). An unparsable env value warns and falls
// back to the default rather than failing the run.
#pragma once

#include <optional>
#include <string_view>

#include "util/status.hpp"

namespace gpsa {

enum class ExecMode {
  kSweep,     // full interval scan, stale-flag skip (paper Algorithm 2)
  kWorklist,  // active-bitmap iteration (DESIGN.md §12)
};

const char* exec_mode_name(ExecMode mode);

Result<ExecMode> parse_exec_mode(std::string_view name);

/// Explicit request beats GPSA_EXEC, which beats the default (worklist).
/// A malformed env value logs a warning and yields the default.
ExecMode resolve_exec_mode(std::optional<ExecMode> requested);

}  // namespace gpsa
