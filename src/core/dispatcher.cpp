#include "core/dispatcher.hpp"

#include "core/computer.hpp"
#include "core/manager.hpp"
#include "util/check.hpp"

namespace gpsa {

DispatcherActor::DispatcherActor(std::uint32_t id, Interval interval,
                                 const CsrFileReader& csr, ValueFile& values,
                                 const Program& program,
                                 std::size_t batch_size, Behavior behavior)
    : id_(id),
      interval_(interval),
      csr_(csr),
      values_(values),
      program_(program),
      batch_size_(batch_size),
      behavior_(behavior) {
  GPSA_CHECK(batch_size_ > 0);
}

void DispatcherActor::connect(std::vector<ComputerActor*> computers,
                              ManagerActor* manager) {
  GPSA_CHECK(!computers.empty() && manager != nullptr);
  computers_ = std::move(computers);
  manager_ = manager;
  staging_.resize(computers_.size());
  for (auto& buffer : staging_) {
    buffer.reserve(batch_size_);
  }
  combining_ = behavior_.combine && program_.has_combiner();
  if (combining_) {
    combine_index_.resize(computers_.size());
  }
}

void DispatcherActor::on_message(DispatcherMsg msg) {
  switch (msg.kind) {
    case DispatcherMsg::Kind::kIterationStart:
      try {
        run_iteration(msg.superstep);
      } catch (const std::exception& e) {
        // A user gen_msg hook threw: report instead of wedging the
        // superstep barrier (§V.C exception handling).
        for (auto& buffer : staging_) {
          buffer.clear();
        }
        ManagerMsg failed;
        failed.kind = ManagerMsg::Kind::kWorkerFailed;
        failed.superstep = msg.superstep;
        failed.worker_id = id_;
        failed.error = std::string("dispatcher: ") + e.what();
        manager_->send(std::move(failed));
      }
      break;
    case DispatcherMsg::Kind::kSystemOver:
      break;  // nothing to tear down; the engine owns all resources
  }
}

void DispatcherActor::run_iteration(std::uint64_t superstep) {
  messages_this_superstep_ = 0;
  const unsigned dispatch_col = ValueFile::dispatch_column(superstep);
  const bool has_degree = csr_.has_degree();
  const auto entries = csr_.entries();
  const auto offsets = csr_.record_offsets();

  // Algorithm 2: stream the interval's records in id order, driven by the
  // entry cursor (`curoff`), skipping stale vertices.
  std::uint64_t cursor = interval_.begin_entry;
  vertex_checks_total_ += interval_.vertex_count();
  for (VertexId v = interval_.begin_vertex; v < interval_.end_vertex; ++v) {
    GPSA_DCHECK(cursor == offsets[v]);
    const Slot slot = values_.load(v, dispatch_col);
    if (!behavior_.dispatch_inactive && slot_is_stale(slot)) {
      cursor = offsets[v + 1];  // skip(sequence)
      continue;
    }
    entries_read_total_ += offsets[v + 1] - cursor;
    const Payload value = slot_payload(slot);
    std::uint32_t degree;
    if (has_degree) {
      degree = static_cast<std::uint32_t>(entries[cursor]);
      ++cursor;
    } else {
      degree = static_cast<std::uint32_t>(offsets[v + 1] - cursor - 1);
    }
    while (entries[cursor] != kCsrEndOfList) {
      const VertexId dst = static_cast<VertexId>(entries[cursor]);
      ++cursor;
      const Payload message = program_.gen_msg(v, dst, value, degree);
      const std::size_t owner = dst % computers_.size();
      if (combining_) {
        auto [it, inserted] =
            combine_index_[owner].try_emplace(dst, staging_[owner].size());
        if (!inserted) {
          VertexMessage& pending = staging_[owner][it->second];
          pending.value = program_.combine(pending.value, message);
        } else {
          staging_[owner].push_back(VertexMessage{dst, message});
          ++messages_this_superstep_;
        }
      } else {
        staging_[owner].push_back(VertexMessage{dst, message});
        ++messages_this_superstep_;
      }
      if (behavior_.overlap && staging_[owner].size() >= batch_size_) {
        flush_batch(owner, superstep);
      }
    }
    ++cursor;  // past the -1 sentinel
    // Consume: "after a dispatcher finishes processing, it will invalidate
    // the value of the current vertex by setting its highest bit to 1".
    values_.consume(v, dispatch_col);
  }
  flush_all(superstep);
  messages_sent_total_ += messages_this_superstep_;

  ManagerMsg done;
  done.kind = ManagerMsg::Kind::kDispatchOver;
  done.superstep = superstep;
  done.worker_id = id_;
  done.count = messages_this_superstep_;
  manager_->send(done);
}

void DispatcherActor::flush_batch(std::size_t computer_index,
                                  std::uint64_t superstep) {
  auto& buffer = staging_[computer_index];
  if (buffer.empty()) {
    return;
  }
  ComputerMsg msg;
  msg.kind = ComputerMsg::Kind::kBatch;
  msg.superstep = superstep;
  msg.batch = std::move(buffer);
  buffer = {};
  buffer.reserve(batch_size_);
  if (combining_) {
    combine_index_[computer_index].clear();
  }
  computers_[computer_index]->send(std::move(msg));
}

void DispatcherActor::flush_all(std::uint64_t superstep) {
  for (std::size_t i = 0; i < staging_.size(); ++i) {
    flush_batch(i, superstep);
  }
}

}  // namespace gpsa
