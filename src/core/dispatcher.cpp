#include "core/dispatcher.hpp"

#include "core/computer.hpp"
#include "core/manager.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace gpsa {

DispatcherActor::DispatcherActor(std::uint32_t id, Interval interval,
                                 const CsrFileReader& csr,
                                 CsrEntryStream& stream,
                                 ReadaheadScheduler& readahead,
                                 ValueFile& values, const Program& program,
                                 std::size_t batch_size, Behavior behavior)
    : id_(id),
      interval_(interval),
      csr_(csr),
      stream_(stream),
      readahead_(readahead),
      values_(values),
      program_(program),
      batch_size_(batch_size),
      behavior_(behavior) {
  GPSA_CHECK(batch_size_ > 0);
}

void DispatcherActor::connect(std::vector<ComputerActor*> computers,
                              ManagerActor* manager) {
  GPSA_CHECK(!computers.empty() && manager != nullptr);
  computers_ = std::move(computers);
  manager_ = manager;
  staging_.resize(computers_.size());
  for (auto& buffer : staging_) {
    buffer.reserve(batch_size_);
  }
  combining_ = behavior_.combine && program_.has_combiner();
  if (combining_) {
    combine_index_.resize(computers_.size());
  }
}

void DispatcherActor::on_message(DispatcherMsg msg) {
  switch (msg.kind) {
    case DispatcherMsg::Kind::kIterationStart:
      try {
        run_iteration(msg.superstep);
      } catch (const std::exception& e) {
        // A user gen_msg hook threw: report instead of wedging the
        // superstep barrier (§V.C exception handling).
        for (auto& buffer : staging_) {
          buffer.clear();
        }
        ManagerMsg failed;
        failed.kind = ManagerMsg::Kind::kWorkerFailed;
        failed.superstep = msg.superstep;
        failed.worker_id = id_;
        failed.error = std::string("dispatcher: ") + e.what();
        manager_->send(std::move(failed));
      }
      break;
    case DispatcherMsg::Kind::kSystemOver:
      break;  // nothing to tear down; the engine owns all resources
  }
}

void DispatcherActor::run_iteration(std::uint64_t superstep) {
  const ScopedAccumulator busy(busy_seconds_);
  messages_this_superstep_ = 0;
  const unsigned dispatch_col = ValueFile::dispatch_column(superstep);
  const bool has_degree = csr_.has_degree();
  const auto offsets = csr_.record_offsets();

  readahead_.begin_superstep();

  // Algorithm 2: stream the interval's records in id order, driven by the
  // entry cursor (`curoff`), skipping stale vertices. Record bytes come
  // through the I/O backend's stream; the reader only supplies offsets.
  std::uint64_t cursor = interval_.begin_entry;
  vertex_checks_total_ += interval_.vertex_count();
  for (VertexId v = interval_.begin_vertex; v < interval_.end_vertex; ++v) {
    GPSA_DCHECK(cursor == offsets[v]);
    readahead_.advance(cursor, v);
    const Slot slot = values_.load(v, dispatch_col);
    if (!behavior_.dispatch_inactive && slot_is_stale(slot)) {
      cursor = offsets[v + 1];  // skip(sequence)
      continue;
    }
    const std::uint64_t record_entries = offsets[v + 1] - cursor;
    entries_read_total_ += record_entries;
    const std::int32_t* record = stream_.fetch_record(cursor, record_entries);
    cursor = offsets[v + 1];
    const Payload value = slot_payload(slot);
    std::uint64_t i = 0;
    std::uint32_t degree;
    if (has_degree) {
      degree = static_cast<std::uint32_t>(record[i++]);
    } else {
      degree = static_cast<std::uint32_t>(record_entries - 1);
    }
    while (record[i] != kCsrEndOfList) {
      const VertexId dst = static_cast<VertexId>(record[i]);
      ++i;
      const Payload message = program_.gen_msg(v, dst, value, degree);
      const std::size_t owner = dst % computers_.size();
      if (combining_) {
        auto [it, inserted] =
            combine_index_[owner].try_emplace(dst, staging_[owner].size());
        if (!inserted) {
          VertexMessage& pending = staging_[owner][it->second];
          pending.value = program_.combine(pending.value, message);
        } else {
          staging_[owner].push_back(VertexMessage{dst, message});
          ++messages_this_superstep_;
        }
      } else {
        staging_[owner].push_back(VertexMessage{dst, message});
        ++messages_this_superstep_;
      }
      if (behavior_.overlap && staging_[owner].size() >= batch_size_) {
        flush_batch(owner, superstep);
      }
    }
    // Consume: "after a dispatcher finishes processing, it will invalidate
    // the value of the current vertex by setting its highest bit to 1".
    values_.consume(v, dispatch_col);
  }
  flush_all(superstep);
  messages_sent_total_ += messages_this_superstep_;

  ManagerMsg done;
  done.kind = ManagerMsg::Kind::kDispatchOver;
  done.superstep = superstep;
  done.worker_id = id_;
  done.count = messages_this_superstep_;
  manager_->send(done);
}

void DispatcherActor::flush_batch(std::size_t computer_index,
                                  std::uint64_t superstep) {
  auto& buffer = staging_[computer_index];
  if (buffer.empty()) {
    return;
  }
  ComputerMsg msg;
  msg.kind = ComputerMsg::Kind::kBatch;
  msg.superstep = superstep;
  msg.batch = std::move(buffer);
  buffer = {};
  buffer.reserve(batch_size_);
  if (combining_) {
    combine_index_[computer_index].clear();
  }
  computers_[computer_index]->send(std::move(msg));
}

void DispatcherActor::flush_all(std::uint64_t superstep) {
  for (std::size_t i = 0; i < staging_.size(); ++i) {
    flush_batch(i, superstep);
  }
}

}  // namespace gpsa
