#include "core/dispatcher.hpp"

#include <algorithm>
#include <bit>

#include "core/computer.hpp"
#include "core/manager.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace gpsa {

DispatcherActor::DispatcherActor(std::uint32_t id, Interval interval,
                                 const CsrFileReader& csr,
                                 CsrEntryStream& stream,
                                 ReadaheadScheduler& readahead,
                                 ValueFile& values, const Program& program,
                                 const OwnerMap& owners,
                                 MessageBatchPool& pool,
                                 std::size_t batch_size, Behavior behavior,
                                 ActiveBitmap* worklist,
                                 std::vector<Payload>* last_sent,
                                 const VertexId* orig_ids)
    : id_(id),
      interval_(interval),
      csr_(csr),
      stream_(stream),
      readahead_(readahead),
      values_(values),
      program_(program),
      owners_(owners),
      pool_(pool),
      batch_size_(batch_size),
      behavior_(behavior),
      worklist_(worklist),
      last_sent_(last_sent),
      orig_ids_(orig_ids) {
  GPSA_CHECK(batch_size_ > 0);
  // dispatch_inactive forces vertices the bitmap never lists; the engine
  // rejects the combination up front (engine.cpp), this guards spawns that
  // bypass it.
  GPSA_CHECK(worklist_ == nullptr || !behavior_.dispatch_inactive);
  has_degree_ = csr_.has_degree();
}

void DispatcherActor::connect(std::vector<ComputerActor*> computers,
                              ManagerActor* manager) {
  GPSA_CHECK(!computers.empty() && manager != nullptr);
  GPSA_CHECK(computers.size() == owners_.parts());
  computers_ = std::move(computers);
  manager_ = manager;
  range_staging_ = owners_.routing() == MessageRouting::kRange;
  // One-time setup: the outer per-owner vectors of empty staging slots.
  // Under mod routing the element buffers come from the pool; under range
  // routing the bin vectors grow to their working set during warm-up and
  // keep that capacity for the rest of the run.
  staging_.resize(computers_.size());  // gpsa-lint: allow(msg-buffer-alloc)
  if (range_staging_) {
    bins_.resize(  // gpsa-lint: allow(msg-buffer-alloc)
        computers_.size() * kRadixBins);
    staged_count_.assign(computers_.size(), 0);
  } else {
    for (auto& buffer : staging_) {
      buffer = pool_.lease();  // gpsa-analyze: transfer(staging slot; moved into the mailbox by flush_batch, recycled by the computer)
    }
  }
  radix_shift_.assign(computers_.size(), 0);
  for (std::size_t owner = 0; owner < computers_.size(); ++owner) {
    const VertexId local =
        owners_.local_size(static_cast<unsigned>(owner));
    unsigned shift = 0;
    while (local > 0 &&
           (static_cast<std::uint64_t>(local - 1) >> shift) >= kRadixBins) {
      ++shift;
    }
    radix_shift_[owner] = shift;
  }
  uniform_message_ = program_.uniform_gen_msg();
  combining_ = behavior_.combine && program_.has_combiner();
  if (combining_) {
    combine_slots_.resize(computers_.size());
    combine_gen_.assign(computers_.size(), 1);
    for (std::size_t owner = 0; owner < computers_.size(); ++owner) {
      combine_slots_[owner].assign(
          owners_.local_size(static_cast<unsigned>(owner)), 0);
    }
  }
}

void DispatcherActor::on_message(DispatcherMsg msg) {
  switch (msg.kind) {
    case DispatcherMsg::Kind::kIterationStart:
      try {
        run_iteration(msg.superstep);
      } catch (const std::exception& e) {
        // A user gen_msg hook threw: report instead of wedging the
        // superstep barrier (§V.C exception handling).
        for (std::size_t owner = 0; owner < computers_.size(); ++owner) {
          staging_[owner].clear();
          if (range_staging_) {
            for (std::size_t b = 0; b < kRadixBins; ++b) {
              bins_[owner * kRadixBins + b].clear();
            }
            staged_count_[owner] = 0;
          }
          if (combining_) {
            ++combine_gen_[owner];
          }
        }
        ManagerMsg failed;
        failed.kind = ManagerMsg::Kind::kWorkerFailed;
        failed.superstep = msg.superstep;
        failed.worker_id = id_;
        failed.error = std::string("dispatcher: ") + e.what();
        manager_->send(std::move(failed));
      }
      break;
    case DispatcherMsg::Kind::kSystemOver:
      break;  // nothing to tear down; the engine owns all resources
  }
}

void DispatcherActor::run_iteration(std::uint64_t superstep) {
  const ScopedAccumulator busy(busy_seconds_);
  messages_this_superstep_ = 0;
  dispatched_this_superstep_ = 0;
  entries_this_superstep_ = 0;
  checks_this_superstep_ = 0;
  const unsigned dispatch_col = ValueFile::dispatch_column(superstep);

  readahead_.begin_superstep();

  if (worklist_ != nullptr) {
    run_worklist(superstep, dispatch_col);
  } else {
    run_sweep(superstep, dispatch_col);
  }
  flush_all(superstep);
  messages_sent_total_ += messages_this_superstep_;
  vertex_checks_total_ += checks_this_superstep_;
  entries_read_total_ += entries_this_superstep_;

  ManagerMsg done;
  done.kind = ManagerMsg::Kind::kDispatchOver;
  done.superstep = superstep;
  done.worker_id = id_;
  done.count = messages_this_superstep_;
  done.active = dispatched_this_superstep_;
  done.edges = entries_this_superstep_ + checks_this_superstep_;
  manager_->send(done);
}

void DispatcherActor::run_sweep(std::uint64_t superstep,
                                unsigned dispatch_col) {
  const auto offsets = csr_.record_offsets();
  // Algorithm 2: stream the interval's records in id order, driven by the
  // entry cursor (`curoff`), skipping stale vertices. Record bytes come
  // through the I/O backend's stream; the reader only supplies offsets.
  std::uint64_t cursor = interval_.begin_entry;
  checks_this_superstep_ += interval_.vertex_count();
  for (VertexId v = interval_.begin_vertex; v < interval_.end_vertex; ++v) {
    GPSA_DCHECK(cursor == offsets[v]);
    readahead_.advance(cursor, v);
    const Slot slot = values_.load(v, dispatch_col);
    if (!behavior_.dispatch_inactive && slot_is_stale(slot)) {
      cursor = offsets[v + 1];  // skip(sequence)
      continue;
    }
    dispatch_vertex(v, slot_payload(slot), cursor, offsets[v + 1], superstep);
    cursor = offsets[v + 1];
    // Consume: "after a dispatcher finishes processing, it will invalidate
    // the value of the current vertex by setting its highest bit to 1".
    values_.consume(v, dispatch_col);
  }
}

void DispatcherActor::run_worklist(std::uint64_t superstep,
                                   unsigned dispatch_col) {
  if (interval_.begin_vertex >= interval_.end_vertex) {
    return;
  }
  const auto offsets = csr_.record_offsets();
  // Word-scan the interval's slice of the dispatch generation: countr_zero
  // walks each word's set bits in ascending vertex order (matching the
  // sweep's dispatch order), popcount sizes the batch for the counters.
  const std::size_t first = ActiveBitmap::word_index(interval_.begin_vertex);
  const std::size_t last = ActiveBitmap::word_index(interval_.end_vertex - 1);
  for (std::size_t w = first; w <= last; ++w) {
    BitmapWord bits =
        worklist_->word(dispatch_col, w) &
        ActiveBitmap::range_mask(w, interval_.begin_vertex,
                                 interval_.end_vertex);
    checks_this_superstep_ += static_cast<std::uint64_t>(std::popcount(bits));
    while (bits != 0) {
      const auto bit = static_cast<unsigned>(std::countr_zero(bits));
      bits &= bits - 1;
      const auto v =
          static_cast<VertexId>(w * kBitmapWordBits + bit);
      const std::uint64_t cursor = offsets[v];
      readahead_.advance(cursor, v);
      const Slot slot = values_.load(v, dispatch_col);
      // Bitmap/stale-flag equivalence (DESIGN.md §12): a set bit means the
      // owning computer stored this column non-stale last superstep.
      GPSA_DCHECK(!slot_is_stale(slot));
      dispatch_vertex(v, slot_payload(slot), cursor, offsets[v + 1],
                      superstep);
      values_.consume(v, dispatch_col);
    }
  }
  // Retire the consumed generation before the next superstep's computers
  // re-publish into it (the manager barrier orders the two); boundary
  // words are mask-cleared, so the neighbouring dispatcher keeps its bits.
  worklist_->clear_range(dispatch_col, interval_.begin_vertex,
                         interval_.end_vertex);
}

void DispatcherActor::dispatch_vertex(VertexId v, Payload value,
                                      std::uint64_t begin_entry,
                                      std::uint64_t end_entry,
                                      std::uint64_t superstep) {
  const std::uint64_t record_entries = end_entry - begin_entry;
  entries_this_superstep_ += record_entries;
  ++dispatched_this_superstep_;
  const std::int32_t* record =
      stream_.fetch_record(begin_entry, record_entries);
  if (last_sent_ != nullptr) {
    // Delta programming: the message carries the change since this
    // vertex's previous dispatch, and the plane records what was sent.
    const Payload current = value;
    value = program_.delta(current, (*last_sent_)[v]);
    (*last_sent_)[v] = current;
  }
  std::uint64_t i = 0;
  std::uint32_t degree;
  if (has_degree_) {
    degree = static_cast<std::uint32_t>(record[i++]);
  } else {
    degree = static_cast<std::uint32_t>(record_entries - 1);
  }
  // Program hooks see *original* vertex ids (identity unless the file is
  // renumbered); everything downstream of gen_msg stays in internal ids.
  const VertexId src_ext = orig_ids_ == nullptr ? v : orig_ids_[v];
  // Uniform-message programs (PageRank, BFS, CC) pay gen_msg's virtual
  // call and arithmetic once per vertex, not once per out-edge; the
  // first destination is passed only for interface symmetry.
  Payload uniform_value = 0;
  if (uniform_message_ && record[i] != kCsrEndOfList) {
    const auto dst0 = static_cast<VertexId>(record[i]);
    uniform_value = program_.gen_msg(
        src_ext, orig_ids_ == nullptr ? dst0 : orig_ids_[dst0], value,
        degree);
  }
  while (record[i] != kCsrEndOfList) {
    const VertexId dst = static_cast<VertexId>(record[i]);
    ++i;
    const Payload message =
        uniform_message_
            ? uniform_value
            : program_.gen_msg(src_ext,
                               orig_ids_ == nullptr ? dst : orig_ids_[dst],
                               value, degree);
    const std::size_t owner = owners_.owner_of(dst);
    if (combining_) {
      const VertexId local =
          owners_.local_index(dst, static_cast<unsigned>(owner));
      std::uint64_t& entry = combine_slots_[owner][local];
      // The entry's low half is the pending message's staging position
      // + 1: its index in the owner's destination bin under range
      // staging, in the flat staging buffer under mod.
      std::vector<VertexMessage>& stage =
          range_staging_
              ? bins_[owner * kRadixBins + (local >> radix_shift_[owner])]
              : staging_[owner];
      if ((entry >> 32) == combine_gen_[owner]) {
        VertexMessage& pending =
            stage[static_cast<std::uint32_t>(entry) - 1];
        pending.value = program_.combine(pending.value, message);
      } else {
        entry = (combine_gen_[owner] << 32) |
                static_cast<std::uint32_t>(stage.size() + 1);
        stage.push_back(VertexMessage{dst, message});
        if (range_staging_) {
          ++staged_count_[owner];
        }
        ++messages_this_superstep_;
      }
    } else if (range_staging_) {
      // Bin-bucketed staging: land the message directly in its radix
      // bin while dst is in registers; the flush then only needs
      // sequential copies to emit an ascending-dst batch.
      const VertexId local =
          owners_.local_index(dst, static_cast<unsigned>(owner));
      bins_[owner * kRadixBins + (local >> radix_shift_[owner])]
          .push_back(VertexMessage{dst, message});
      ++staged_count_[owner];
      ++messages_this_superstep_;
    } else {
      staging_[owner].push_back(VertexMessage{dst, message});
      ++messages_this_superstep_;
    }
    if (behavior_.overlap && staged_size(owner) >= batch_size_) {
      flush_batch(owner, superstep);
    }
  }
}

void DispatcherActor::flush_batch(std::size_t computer_index,
                                  std::uint64_t superstep) {
  if (staged_size(computer_index) == 0) {
    return;
  }
  ComputerMsg msg;
  msg.kind = ComputerMsg::Kind::kBatch;
  msg.superstep = superstep;
  if (range_staging_) {
    // Cache-ordered staging: concatenate the radix bins into a leased
    // buffer; the bins keep their capacity for the next window.
    msg.batch = pool_.lease();
    gather_bins(computer_index, msg.batch);
    staged_count_[computer_index] = 0;
  } else {
    // Legacy mod routing (ablation baseline): ship the staging buffer in
    // arrival order and lease its replacement.
    auto& buffer = staging_[computer_index];
    msg.batch = std::move(buffer);
    buffer = pool_.lease();
  }
  if (combining_) {
    ++combine_gen_[computer_index];  // O(1) direct-map reset
  }
  computers_[computer_index]->send(std::move(msg));
}

void DispatcherActor::flush_all(std::uint64_t superstep) {
  for (std::size_t i = 0; i < computers_.size(); ++i) {
    flush_batch(i, superstep);
  }
}

void DispatcherActor::gather_bins(std::size_t owner,
                                  std::vector<VertexMessage>& out) {
  // The leased buffer already carries message_batch capacity; this grows
  // it only when a batch exceeds that (the non-overlap ablation holds
  // whole intervals back). VertexMessage's no-op default constructor
  // keeps the resize from clearing elements the copies fully overwrite.
  out.resize(staged_count_[owner]);  // gpsa-lint: allow(msg-buffer-alloc)
  VertexMessage* cursor = out.data();
  const std::size_t base = owner * kRadixBins;
  // Ascending bins, arrival order within a bin: per-vertex fold order
  // matches the unsorted plane, so results stay bit-identical.
  for (std::size_t b = 0; b < kRadixBins; ++b) {
    std::vector<VertexMessage>& bin = bins_[base + b];
    cursor = std::copy(bin.begin(), bin.end(), cursor);
    bin.clear();
  }
  GPSA_DCHECK(cursor == out.data() + out.size());
}

}  // namespace gpsa
