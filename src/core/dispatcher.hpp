// Dispatching actor (paper §V.D, Algorithm 2).
//
// Owns one vertex interval of the memory-mapped CSR file. On
// ITERATION_START it walks its interval's active vertices: each has one
// message generated per out-edge via Program::gen_msg, routed to the
// computing actor that owns the destination (OwnerMap: contiguous vertex
// ranges by default, dst mod computer-count as the ablation baseline) in
// batches, and is then consumed (flag re-set to 1). When the interval is
// exhausted it reports DISPATCH_OVER with its message/active/edge counts
// and waits for the next command.
//
// Two ways to find the active vertices (core/exec_mode.hpp):
//   sweep     stream every record in id order, skipping vertices whose
//             dispatch-column stale flag is set — Algorithm 2 as written,
//             O(interval) per superstep;
//   worklist  scan the interval's words of the active bitmap's dispatch
//             generation (countr_zero per set bit, popcount to count the
//             batch), jump the entry cursor straight to offsets[v] for
//             each set bit, and clear the interval's bits afterwards —
//             O(active) per superstep. A set bit is exactly a clear stale
//             flag, so the dispatched set (and therefore every result) is
//             bit-identical to the sweep's (DESIGN.md §12).
//
// Message-plane mechanics (DESIGN.md §11):
//   - batch buffers are leased from the engine's MessageBatchPool and
//     recycled by the computing actors after apply, so steady-state
//     supersteps allocate nothing on this path;
//   - under range routing messages are staged straight into per-owner
//     radix bins (256 bins over the owner's dense local range, appended
//     in arrival order) and a flush concatenates the bins into a leased
//     buffer with sequential copies, so the computer applies each batch
//     in ascending-dst order — near-sequential value-column writes — and
//     the dispatcher never re-scans a batch to sort it;
//   - the combiner index is a direct-map table over each owner's dense
//     local range (generation-tagged for O(1) per-flush reset), replacing
//     the per-message unordered_map probe.
#pragma once

#include <cstdint>
#include <vector>

#include "actor/actor.hpp"
#include "core/message_pool.hpp"
#include "core/messages.hpp"
#include "core/ownership.hpp"
#include "core/program.hpp"
#include "graph/csr_file.hpp"
#include "graph/partition.hpp"
#include "io/csr_stream.hpp"
#include "io/readahead.hpp"
#include "storage/active_bitmap.hpp"
#include "storage/value_file.hpp"

namespace gpsa {

class ComputerActor;
class ManagerActor;

class DispatcherActor final : public Actor<DispatcherMsg> {
 public:
  struct Behavior {
    /// Flush batches as they fill (true) or only at interval end (false).
    bool overlap = true;
    /// Ignore the stale flag and dispatch every vertex (ablation).
    bool dispatch_inactive = false;
    /// Combine same-destination messages in the staging buffers
    /// (Program::combine must be fold-compatible).
    bool combine = false;
  };

  /// `stream` carries the interval's record bytes (the reader supplies
  /// only metadata: offsets, degree flag); `readahead` runs the window
  /// policy over it and the value file. `owners` routes destinations and
  /// `pool` supplies batch buffers. `worklist` selects the execution mode:
  /// nullptr sweeps the interval, non-null iterates the bitmap's dispatch
  /// generation. `last_sent` (non-null only for delta programs) is the
  /// per-vertex last-dispatched-value plane; this dispatcher writes only
  /// its own interval's entries. `orig_ids` (non-null only for renumbered
  /// v2 files) maps internal ids back to original ones at the Program
  /// boundary: gen_msg sees original src/dst, while routing, staging and
  /// value-file indexing stay in internal ids. All references must
  /// outlive the actor.
  DispatcherActor(std::uint32_t id, Interval interval,
                  const CsrFileReader& csr, CsrEntryStream& stream,
                  ReadaheadScheduler& readahead, ValueFile& values,
                  const Program& program, const OwnerMap& owners,
                  MessageBatchPool& pool, std::size_t batch_size,
                  Behavior behavior, ActiveBitmap* worklist = nullptr,
                  std::vector<Payload>* last_sent = nullptr,
                  const VertexId* orig_ids = nullptr);

  /// Wiring is two-phase: computers and the manager are spawned after the
  /// dispatchers, then connected before the run starts. computers.size()
  /// must equal owners.parts().
  void connect(std::vector<ComputerActor*> computers, ManagerActor* manager);

  std::uint64_t messages_sent_total() const { return messages_sent_total_; }

  /// CSR entries belonging to dispatched records (degree + targets +
  /// sentinel) — the dispatcher's fundamental sequential-read volume.
  std::uint64_t entries_read_total() const { return entries_read_total_; }

  /// Vertices examined (one value-slot check each per superstep).
  std::uint64_t vertex_checks_total() const { return vertex_checks_total_; }

  /// Wall time spent inside run_iteration — the engine derives per-
  /// dispatcher idle time (elapsed - busy) from it for the partition
  /// ablation.
  double busy_seconds() const { return busy_seconds_; }

 protected:
  void on_message(DispatcherMsg msg) override;

 private:
  /// Bin count of the per-owner radix scatter: 256 bins over the owner's
  /// dense local range keep the counting arrays on one worker's stack
  /// while ordering each batch to ~1/256th-of-a-slice granularity.
  static constexpr std::size_t kRadixBins = 256;

  void run_iteration(std::uint64_t superstep);
  /// Algorithm 2's full interval scan (stale-flag skip per vertex).
  void run_sweep(std::uint64_t superstep, unsigned dispatch_col);
  /// Worklist mode: iterate + clear the bitmap's dispatch generation.
  void run_worklist(std::uint64_t superstep, unsigned dispatch_col);
  /// Streams one active vertex's record and stages its messages.
  void dispatch_vertex(VertexId v, Payload value, std::uint64_t begin_entry,
                       std::uint64_t end_entry, std::uint64_t superstep);
  void flush_batch(std::size_t computer_index, std::uint64_t superstep);
  void flush_all(std::uint64_t superstep);
  /// Concatenates `owner`'s staged bins (ascending, arrival order within
  /// a bin) into `out` and clears them (range routing's ordered flush).
  void gather_bins(std::size_t owner, std::vector<VertexMessage>& out);

  /// Messages currently staged for `owner` under either staging scheme.
  std::size_t staged_size(std::size_t owner) const {
    return range_staging_ ? staged_count_[owner] : staging_[owner].size();
  }

  const std::uint32_t id_;
  const Interval interval_;
  const CsrFileReader& csr_;
  CsrEntryStream& stream_;
  ReadaheadScheduler& readahead_;
  ValueFile& values_;
  const Program& program_;
  const OwnerMap& owners_;
  MessageBatchPool& pool_;
  const std::size_t batch_size_;
  const Behavior behavior_;
  /// Worklist mode's active bitmap; nullptr = sweep mode.
  ActiveBitmap* const worklist_;
  /// Delta programs' last-dispatched-value plane (engine-owned; this
  /// dispatcher reads/writes only its interval's entries, so the
  /// single-writer rule needs no synchronization). nullptr otherwise.
  std::vector<Payload>* const last_sent_;
  /// Renumbered files' internal -> original id map; nullptr = identity.
  const VertexId* const orig_ids_;

  std::vector<ComputerActor*> computers_;
  ManagerActor* manager_ = nullptr;

  // Mod routing: per-computer staging buffers, seeded once at connect();
  // afterwards every buffer entering or leaving circulates through the
  // pool. Unused under range routing (bins_ stages instead).
  std::vector<std::vector<VertexMessage>> staging_;
  // Range routing: flat parts x kRadixBins bucketed staging. Pushes append
  // to the destination's bin; flushes gather the bins in ascending order
  // with sequential copies. Bin vectors are allocated lazily during
  // warm-up and keep their capacity, so steady-state supersteps stay
  // allocation-free on this path too.
  std::vector<std::vector<VertexMessage>> bins_;
  // Range routing: staged-message count per owner (the flush trigger;
  // summing 256 bin sizes per push would defeat the point).
  std::vector<std::size_t> staged_count_;
  // Direct-map combiner: per owner, one generation-tagged entry per dense
  // local vertex — entry (gen << 32) | (staging position + 1) is live iff
  // its generation matches combine_gen_[owner]. Bumping the generation
  // resets the whole table in O(1) at each flush.
  std::vector<std::vector<std::uint64_t>> combine_slots_;
  std::vector<std::uint64_t> combine_gen_;
  // Per-owner radix shift: (local_size - 1) >> shift < kRadixBins.
  std::vector<unsigned> radix_shift_;
  bool range_staging_ = false;
  bool uniform_message_ = false;
  bool combining_ = false;
  bool has_degree_ = false;
  std::uint64_t messages_this_superstep_ = 0;
  std::uint64_t messages_sent_total_ = 0;
  std::uint64_t entries_read_total_ = 0;
  std::uint64_t vertex_checks_total_ = 0;
  // Per-superstep work-done counters reported in DISPATCH_OVER: vertices
  // dispatched, record entries streamed, and vertex checks performed
  // (sweep: the whole interval; worklist: only the set bits).
  std::uint64_t dispatched_this_superstep_ = 0;
  std::uint64_t entries_this_superstep_ = 0;
  std::uint64_t checks_this_superstep_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace gpsa
