// Dispatching actor (paper §V.D, Algorithm 2).
//
// Owns one vertex interval of the memory-mapped CSR file. On
// ITERATION_START it streams its interval's records: vertices whose
// dispatch-column stale flag is set are skipped; active vertices have one
// message generated per out-edge via Program::gen_msg, routed to the
// computing actor that owns the destination (dst mod computer-count) in
// batches, and are then consumed (flag re-set to 1). When the interval is
// exhausted it reports DISPATCH_OVER with its message count and waits for
// the next command.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "actor/actor.hpp"
#include "core/messages.hpp"
#include "core/program.hpp"
#include "graph/csr_file.hpp"
#include "graph/partition.hpp"
#include "io/csr_stream.hpp"
#include "io/readahead.hpp"
#include "storage/value_file.hpp"

namespace gpsa {

class ComputerActor;
class ManagerActor;

class DispatcherActor final : public Actor<DispatcherMsg> {
 public:
  struct Behavior {
    /// Flush batches as they fill (true) or only at interval end (false).
    bool overlap = true;
    /// Ignore the stale flag and dispatch every vertex (ablation).
    bool dispatch_inactive = false;
    /// Combine same-destination messages in the staging buffers
    /// (Program::combine must be fold-compatible).
    bool combine = false;
  };

  /// `stream` carries the interval's record bytes (the reader supplies
  /// only metadata: offsets, degree flag); `readahead` runs the window
  /// policy over it and the value file. Both must outlive the actor.
  DispatcherActor(std::uint32_t id, Interval interval,
                  const CsrFileReader& csr, CsrEntryStream& stream,
                  ReadaheadScheduler& readahead, ValueFile& values,
                  const Program& program, std::size_t batch_size,
                  Behavior behavior);

  /// Wiring is two-phase: computers and the manager are spawned after the
  /// dispatchers, then connected before the run starts.
  void connect(std::vector<ComputerActor*> computers, ManagerActor* manager);

  std::uint64_t messages_sent_total() const { return messages_sent_total_; }

  /// CSR entries belonging to dispatched records (degree + targets +
  /// sentinel) — the dispatcher's fundamental sequential-read volume.
  std::uint64_t entries_read_total() const { return entries_read_total_; }

  /// Vertices examined (one value-slot check each per superstep).
  std::uint64_t vertex_checks_total() const { return vertex_checks_total_; }

  /// Wall time spent inside run_iteration — the engine derives per-
  /// dispatcher idle time (elapsed - busy) from it for the partition
  /// ablation.
  double busy_seconds() const { return busy_seconds_; }

 protected:
  void on_message(DispatcherMsg msg) override;

 private:
  void run_iteration(std::uint64_t superstep);
  void flush_batch(std::size_t computer_index, std::uint64_t superstep);
  void flush_all(std::uint64_t superstep);

  const std::uint32_t id_;
  const Interval interval_;
  const CsrFileReader& csr_;
  CsrEntryStream& stream_;
  ReadaheadScheduler& readahead_;
  ValueFile& values_;
  const Program& program_;
  const std::size_t batch_size_;
  const Behavior behavior_;

  std::vector<ComputerActor*> computers_;
  ManagerActor* manager_ = nullptr;

  // Per-computer staging buffers, reused across supersteps.
  std::vector<std::vector<VertexMessage>> staging_;
  // Combiner index: dst -> position in the staging buffer. Only
  // populated when behavior_.combine and the program has a combiner.
  std::vector<std::unordered_map<VertexId, std::size_t>> combine_index_;
  bool combining_ = false;
  std::uint64_t messages_this_superstep_ = 0;
  std::uint64_t messages_sent_total_ = 0;
  std::uint64_t entries_read_total_ = 0;
  std::uint64_t vertex_checks_total_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace gpsa
