#include "core/message_pool.hpp"

#include <cstdlib>
#include <string>

#include "util/check.hpp"

namespace gpsa {

bool resolve_message_pool_enabled(std::optional<bool> requested) {
  if (requested.has_value()) {
    return *requested;
  }
  const char* raw = std::getenv("GPSA_MSG_POOL");
  if (raw == nullptr || *raw == '\0') {
    return true;
  }
  const std::string value(raw);
  return !(value == "0" || value == "false" || value == "off" ||
           value == "no");
}

MessageBatchPool::MessageBatchPool(std::size_t batch_capacity, bool enabled)
    : batch_capacity_(batch_capacity), enabled_(enabled) {
  GPSA_CHECK(batch_capacity_ > 0);
}

std::vector<VertexMessage> MessageBatchPool::lease() {
  if (enabled_) {
    MutexLock lock(mutex_);
    ++leases_;
    if (!free_.empty()) {
      ++hits_;
      std::vector<VertexMessage> buffer = std::move(free_.back());
      free_.pop_back();
      return buffer;
    }
    ++misses_;
    if (supersteps_marked_ >= 2) {
      ++steady_misses_;
    }
  }
  // The one sanctioned allocation site for message batch buffers (the
  // gpsa-lint msg-buffer-alloc rule confines sized construction and
  // reserve/resize of VertexMessage vectors to this file).
  std::vector<VertexMessage> buffer;
  buffer.reserve(batch_capacity_);
  return buffer;
}

void MessageBatchPool::recycle(std::vector<VertexMessage>&& buffer) {
  if (!enabled_) {
    return;  // dropped; the ablation baseline frees every batch
  }
  buffer.clear();  // destroys nothing (trivial elements), keeps capacity
  MutexLock lock(mutex_);
  recycled_bytes_ += buffer.capacity() * sizeof(VertexMessage);
  free_.push_back(std::move(buffer));
}

void MessageBatchPool::mark_superstep() {
  MutexLock lock(mutex_);
  ++supersteps_marked_;
}

MessagePoolStats MessageBatchPool::stats() const {
  MutexLock lock(mutex_);
  MessagePoolStats out;
  out.enabled = enabled_;
  out.leases = leases_;
  out.hits = hits_;
  out.misses = misses_;
  out.steady_misses = steady_misses_;
  out.recycled_bytes = recycled_bytes_;
  return out;
}

}  // namespace gpsa
