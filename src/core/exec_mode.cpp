#include "core/exec_mode.hpp"

#include <cstdlib>
#include <string>

#include "util/logging.hpp"

namespace gpsa {

const char* exec_mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::kSweep:
      return "sweep";
    case ExecMode::kWorklist:
      return "worklist";
  }
  return "unknown";
}

Result<ExecMode> parse_exec_mode(std::string_view name) {
  if (name == "sweep") {
    return ExecMode::kSweep;
  }
  if (name == "worklist") {
    return ExecMode::kWorklist;
  }
  return invalid_argument("unknown exec mode '" + std::string(name) +
                          "' (expected sweep|worklist)");
}

ExecMode resolve_exec_mode(std::optional<ExecMode> requested) {
  if (requested.has_value()) {
    return *requested;
  }
  const char* raw = std::getenv("GPSA_EXEC");
  if (raw == nullptr || *raw == '\0') {
    return ExecMode::kWorklist;
  }
  auto parsed = parse_exec_mode(raw);
  if (!parsed.is_ok()) {
    GPSA_LOG(Warn) << "GPSA_EXEC: " << parsed.status().to_string()
                   << "; using worklist";
    return ExecMode::kWorklist;
  }
  return parsed.value();
}

}  // namespace gpsa
