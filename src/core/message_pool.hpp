// Pooled VertexMessage batch buffers (the zero-allocation message plane).
//
// The dispatch hot path used to pay one heap allocation per flushed batch:
// flush_batch moved the staging vector into the mailbox message and
// reserve()d a fresh one, and the drained vector was freed when the
// computing actor destroyed the message. GraphHP and the Ammar-Özsu
// systems analysis (PAPERS.md) both put per-message allocator traffic
// among the dominant BSP message-plane costs once I/O is pipelined.
//
// This pool closes the loop: dispatchers *lease* an empty buffer with the
// batch capacity already reserved, and computing actors *recycle* the
// drained buffer after applying it. After a warm-up superstep or two the
// set of circulating buffers covers the maximum in-flight batch count and
// steady-state supersteps run allocation-free — MessagePoolStats reports
// exactly that (steady_misses == 0) and the message-plane bench gates on
// it.
//
// Concurrency: lease() runs on dispatcher actors, recycle() on computing
// actors, mark_superstep() on the manager — all scheduler workers. One
// annotated Mutex guards the free list; the critical sections are a
// vector move plus counter bumps, two orders of magnitude cheaper than
// the malloc/free pair they replace (and off the per-message path
// entirely: one lease+recycle per EngineOptions::message_batch messages).
//
// Lifetime: the engine owns the pool and keeps it alive until after
// ActorSystem::shutdown(), so buffers still sitting in mailboxes at
// SYSTEM_OVER are simply destroyed with their messages (a leased buffer
// is an ordinary std::vector — dropping it instead of recycling is safe,
// it is only a pool miss waiting to happen in a run that has already
// ended).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/messages.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace gpsa {

// --- Lease→wire hooks (DESIGN.md §14) -----------------------------------
//
// A leased batch buffer is already the wire representation of a BATCH
// frame payload: contiguous {dst u32, value u32} pairs with no padding.
// These asserts are what make the transport's reinterpret-cast view and
// memcpy decode sound — if the message layout ever changes, the wire
// format breaks here at compile time instead of on a cluster.
static_assert(std::is_trivially_copyable_v<VertexMessage>,
              "VertexMessage must serialize by memcpy");
static_assert(sizeof(VertexMessage) == 8 && sizeof(VertexId) == 4 &&
                  sizeof(Payload) == 4,
              "wire BATCH payloads are packed {dst u32, value u32} pairs");
static_assert(std::endian::native == std::endian::little,
              "the wire format writes VertexMessage arrays as host bytes "
              "and declares them little-endian");

/// Raw-byte view of a leased batch for zero-copy serialization.
inline std::pair<const std::uint8_t*, std::size_t> batch_wire_view(
    const std::vector<VertexMessage>& batch) {
  return {reinterpret_cast<const std::uint8_t*>(batch.data()),
          batch.size() * sizeof(VertexMessage)};
}

/// Decodes a BATCH frame's message bytes into `out` (normally a freshly
/// leased buffer). Rejects byte counts that are not whole messages.
inline Status decode_batch_into(const std::uint8_t* data, std::size_t size,
                                std::vector<VertexMessage>& out) {
  if (size % sizeof(VertexMessage) != 0) {
    return corrupt_data("BATCH payload of " + std::to_string(size) +
                        " bytes is not a whole number of messages");
  }
  out.resize(size / sizeof(VertexMessage));
  if (size > 0) {
    std::memcpy(out.data(), data, size);
  }
  return Status::ok();
}

/// Pool activity surfaced in RunResult (and the bench JSON artifact).
struct MessagePoolStats {
  bool enabled = false;
  std::uint64_t leases = 0;
  /// Leases served from the free list (no allocation).
  std::uint64_t hits = 0;
  /// Leases that had to allocate a fresh buffer.
  std::uint64_t misses = 0;
  /// Misses after the warm-up window (the first two supersteps). Zero in
  /// steady state by design; the message-plane bench gate enforces it.
  std::uint64_t steady_misses = 0;
  /// Capacity returned through recycle(), in bytes.
  std::uint64_t recycled_bytes = 0;
};

/// Reads GPSA_MSG_POOL (default on) when `requested` is unset.
bool resolve_message_pool_enabled(std::optional<bool> requested);

class MessageBatchPool {
 public:
  /// `batch_capacity`: capacity every leased buffer is reserved to
  /// (EngineOptions::message_batch). `enabled=false` degrades lease() to
  /// plain allocation and recycle() to a drop — the ablation baseline —
  /// while keeping one code path in the actors.
  explicit MessageBatchPool(std::size_t batch_capacity, bool enabled = true);

  MessageBatchPool(const MessageBatchPool&) = delete;
  MessageBatchPool& operator=(const MessageBatchPool&) = delete;

  bool enabled() const { return enabled_; }

  /// An empty buffer with at least batch_capacity reserved.
  std::vector<VertexMessage> lease() GPSA_EXCLUDES(mutex_);

  /// Return a drained buffer; its capacity re-enters circulation.
  void recycle(std::vector<VertexMessage>&& buffer) GPSA_EXCLUDES(mutex_);

  /// Superstep boundary (called by the manager): after two of these the
  /// warm-up window closes and further misses count as steady_misses.
  void mark_superstep() GPSA_EXCLUDES(mutex_);

  MessagePoolStats stats() const GPSA_EXCLUDES(mutex_);

 private:
  const std::size_t batch_capacity_;
  const bool enabled_;

  mutable Mutex mutex_{"MessagePool.free"};
  std::vector<std::vector<VertexMessage>> free_ GPSA_GUARDED_BY(mutex_);
  std::uint64_t leases_ GPSA_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ GPSA_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ GPSA_GUARDED_BY(mutex_) = 0;
  std::uint64_t steady_misses_ GPSA_GUARDED_BY(mutex_) = 0;
  std::uint64_t recycled_bytes_ GPSA_GUARDED_BY(mutex_) = 0;
  std::uint64_t supersteps_marked_ GPSA_GUARDED_BY(mutex_) = 0;
};

}  // namespace gpsa
