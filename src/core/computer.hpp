// Computing actor (paper §V.D, Algorithm 3).
//
// Message-driven: each VertexMessage batch is folded into the update
// column of the value file. The first message a vertex receives in a
// superstep seeds the accumulator from the vertex's freshest stored
// payload (see the latest-column note in value_file.hpp /
// engine.hpp) via Program::first_update; subsequent messages fold into the
// in-progress accumulator. An update clears the stale flag so next
// superstep's dispatcher picks the vertex up; a first message that does
// *not* change the value still writes the copied payload with the flag
// set — the paper's "negative value" write — keeping the update column's
// payload fresh.
//
// Message-plane contract (DESIGN.md §11): under range routing this actor
// owns one contiguous vertex slice, so its value-file and latest-column
// writes never share a cache line with another computer, and batches
// arrive radix-staged in ascending-dst order — the apply loop walks the
// slice near-sequentially. Drained batch buffers are recycled into the
// engine's MessageBatchPool, closing the zero-allocation loop with the
// dispatchers' leases.
//
// COMPUTE_OVER (sent by the manager only after every dispatcher finished,
// hence after every batch of the superstep is already enqueued) is acked
// back with the number of vertices this actor updated.
#pragma once

#include <cstdint>

#include "actor/actor.hpp"
#include "core/message_pool.hpp"
#include "core/messages.hpp"
#include "core/program.hpp"
#include "storage/active_bitmap.hpp"
#include "storage/value_file.hpp"

namespace gpsa {

class ManagerActor;

class ComputerActor final : public Actor<ComputerMsg> {
 public:
  /// `worklist` (nullptr in sweep mode) receives the activation bit for
  /// every vertex this actor updates: set in the update column's
  /// generation inside the same first-update branch that clears the
  /// slot's stale flag, so bit and flag can never disagree (the
  /// bit-identical-results invariant, DESIGN.md §12). `orig_ids` (non-null
  /// only for renumbered v2 files) translates the vertex id handed to
  /// Program::first_update back to the original id; storage indexing
  /// stays internal.
  ComputerActor(std::uint32_t id, ValueFile& values, const Program& program,
                std::vector<std::uint8_t>& latest_column,
                MessageBatchPool& pool, ActiveBitmap* worklist = nullptr,
                const VertexId* orig_ids = nullptr);

  void connect(ManagerActor* manager);

  std::uint64_t updates_total() const { return updates_total_; }

  /// First-message events (one value-slot write each, even for
  /// non-updates — the "negative value" copy).
  std::uint64_t touches_total() const { return touches_total_; }

  /// Wall time spent applying batches (the compute-side complement of
  /// DispatcherActor::busy_seconds for the message-plane bench).
  double busy_seconds() const { return busy_seconds_; }

 protected:
  void on_message(ComputerMsg msg) override;

 private:
  void apply(const VertexMessage& message, unsigned update_col);

  const std::uint32_t id_;
  ValueFile& values_;
  const Program& program_;
  /// Which column holds vertex v's freshest payload. Shared array, but
  /// entry v is only ever written by the computer owning v.
  std::vector<std::uint8_t>& latest_column_;
  MessageBatchPool& pool_;
  /// Worklist mode's active bitmap; nullptr = sweep mode.
  ActiveBitmap* const worklist_;
  /// Renumbered files' internal -> original id map; nullptr = identity.
  const VertexId* const orig_ids_;

  ManagerActor* manager_ = nullptr;
  std::uint64_t updates_this_superstep_ = 0;
  std::uint64_t updates_total_ = 0;
  std::uint64_t touches_total_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace gpsa
