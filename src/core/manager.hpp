// Manager actor (paper §V.C, Algorithm 1).
//
// Drives the superstep protocol:
//
//   start superstep s: ITERATION_START -> every dispatcher
//   all DISPATCH_OVER received: COMPUTE_OVER -> every computer
//     (mailbox enqueue order guarantees the token arrives after every
//      batch the dispatchers enqueued during s)
//   all COMPUTE_OVER acks received: superstep s is complete ->
//     optional checkpoint; decide: converged (zero messages dispatched),
//     superstep budget exhausted, or start s+1.
//   finish: SYSTEM_OVER -> all workers, fulfil the completion promise the
//     engine front-end is blocked on.
//
// Per-superstep wall time and message/update counts are recorded for the
// benchmark harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <vector>

#include "actor/actor.hpp"
#include "core/message_pool.hpp"
#include "core/messages.hpp"
#include "storage/value_file.hpp"
#include "util/timer.hpp"

namespace gpsa {

class DispatcherActor;
class ComputerActor;

/// Outcome handed to the engine when the run finishes.
struct ManagerResult {
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_updates = 0;
  bool converged = false;  // true: zero-message quiescence; false: budget
  bool failed = false;     // a worker's user hook threw; `error` explains
  /// True when a cooperative cancel request (GraphService) stopped the run
  /// at a superstep boundary; values reflect the completed supersteps.
  bool cancelled = false;
  std::string error;
  std::vector<double> superstep_seconds;
  std::vector<std::uint64_t> superstep_messages;
  std::vector<std::uint64_t> superstep_updates;
  /// Vertices actually dispatched per superstep (the frontier size).
  std::vector<std::uint64_t> superstep_active;
  /// CSR entries examined per superstep: streamed record entries plus one
  /// per vertex check — sweep pays O(interval) checks every superstep,
  /// worklist only O(active), which is exactly what this measures.
  std::vector<std::uint64_t> superstep_edges;
};

class ManagerActor final : public Actor<ManagerMsg> {
 public:
  /// `checkpoint_interval`: 0 disables checkpointing; N >= 1 checkpoints
  /// (msync + counter bump) every N completed supersteps, plus once at the
  /// end of a clean run, so batching flushes (the write-back experiment,
  /// GPSA_CHECKPOINT_INTERVAL) bounds crash-replay to N-1 supersteps
  /// without losing the final state. `terminate_on_zero_updates`: also
  /// stop when a superstep applies no updates (needed when
  /// dispatch_inactive keeps message counts nonzero forever). `pool` (may
  /// be null) is told about each superstep boundary so MessagePoolStats
  /// can split warm-up misses from steady-state ones. `cancel` (may be
  /// null) is polled at each superstep boundary: once it reads true the
  /// run winds down cleanly with `cancelled` set. `progress` (may be null)
  /// is bumped once per completed superstep so a service front-end can
  /// observe a resident job's liveness without waiting for the result.
  ManagerActor(ValueFile& values, std::uint64_t max_supersteps,
               std::uint64_t checkpoint_interval,
               bool terminate_on_zero_updates = false,
               MessageBatchPool* pool = nullptr,
               const std::atomic<bool>* cancel = nullptr,
               std::atomic<std::uint64_t>* progress = nullptr);

  void connect(std::vector<DispatcherActor*> dispatchers,
               std::vector<ComputerActor*> computers);

  /// The engine blocks on this future after sending kStartRun.
  std::future<ManagerResult> result_future() { return promise_.get_future(); }

 protected:
  void on_message(ManagerMsg msg) override;

 private:
  void start_superstep();
  void finish_superstep();
  void finish_run(bool converged);

  ValueFile& values_;
  const std::uint64_t max_supersteps_;
  const std::uint64_t checkpoint_interval_;
  const bool terminate_on_zero_updates_;
  MessageBatchPool* const pool_;
  const std::atomic<bool>* const cancel_;
  std::atomic<std::uint64_t>* const progress_;

  std::vector<DispatcherActor*> dispatchers_;
  std::vector<ComputerActor*> computers_;

  std::uint64_t superstep_ = 0;
  std::uint32_t dispatch_acks_ = 0;
  std::uint32_t compute_acks_ = 0;
  std::uint64_t superstep_message_count_ = 0;
  std::uint64_t superstep_update_count_ = 0;
  std::uint64_t superstep_active_count_ = 0;
  std::uint64_t superstep_edges_count_ = 0;
  WallTimer superstep_timer_;

  ManagerResult result_;
  std::promise<ManagerResult> promise_;
  bool finished_ = false;
  /// Supersteps completed since the last checkpoint (batched flushing).
  bool checkpoint_pending_ = false;
};

}  // namespace gpsa
