// One job run against borrowed, shared infrastructure.
//
// run_job() is the engine's superstep orchestration (value-file setup,
// partitioning, actor spawn/wire, kStartRun -> result extraction) factored
// out of Engine::run so it can execute in two hosting modes:
//
//   - Engine (engine.cpp): a private ActorSystem and IoBackend per run —
//     the paper's one-job-owns-the-process shape.
//   - GraphService (src/service/): the CSR, IoBackend, and ActorSystem are
//     opened once and shared; many jobs run concurrently, each under its
//     own actor namespace (JobContext::job_tag) so mailboxes, bitmaps, and
//     pools never cross jobs, with its own two-column value file.
//
// run_job spawns every actor via ActorSystem::spawn_in_job(job_tag) and
// always retires the namespace with despawn_job(job_tag) before
// returning, so per-run locals (value file, streams, batch pool) safely
// outlive the actors that reference them.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/engine.hpp"
#include "graph/csr_file.hpp"
#include "io/io_backend.hpp"

namespace gpsa {

class ActorSystem;

/// Everything a single run borrows from its host. All pointers must stay
/// valid for the duration of the run_job call; `csr`, `backend`, and
/// `system` may be shared with concurrent run_job calls (distinct
/// nonzero `job_tag`s required in that case).
struct JobContext {
  CsrFileReader* csr = nullptr;
  IoBackend* backend = nullptr;
  const IoConfig* io_config = nullptr;
  ActorSystem* system = nullptr;
  /// Actor namespace for this run (ActorSystem::spawn_in_job). 0 is fine
  /// for a run that owns its ActorSystem.
  std::uint32_t job_tag = 0;
  /// Optional cooperative cancel flag, polled at superstep boundaries.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional live progress counter, bumped once per completed superstep.
  std::atomic<std::uint64_t>* progress = nullptr;
};

/// Validates the option combinations run_job enforces up front.
Status validate_engine_options(const EngineOptions& options);

/// Executes `program` to completion (convergence, budget, failure, or
/// cancel). `options.io` and `options.scheduler_workers` are ignored —
/// the host already resolved both into the context. The value file is
/// created at (or resumed from) `value_path`.
Result<RunResult> run_job(const JobContext& ctx, const Program& program,
                          const EngineOptions& options,
                          const std::string& value_path, bool resume);

}  // namespace gpsa
