#include "core/engine.hpp"

#include <filesystem>
#include <memory>
#include <optional>

#include "actor/actor_system.hpp"
#include "core/job.hpp"
#include "graph/csr_file.hpp"
#include "platform/file_util.hpp"
#include "util/thread.hpp"
#include "util/timer.hpp"

namespace gpsa {
namespace {

// One-job hosting mode: a private IoBackend and ActorSystem per run. The
// orchestration itself lives in run_job (core/job.hpp), shared with the
// multi-tenant GraphService.
Result<RunResult> run_with_own_system(CsrFileReader& csr,
                                      const Program& program,
                                      const EngineOptions& options,
                                      const std::string& value_path,
                                      bool resume) {
  GPSA_ASSIGN_OR_RETURN(const IoConfig io_config, options.io.resolve());
  GPSA_ASSIGN_OR_RETURN(const std::unique_ptr<IoBackend> backend,
                        IoBackend::create(io_config));
  const unsigned workers = options.scheduler_workers != 0
                               ? options.scheduler_workers
                               : default_worker_count();
  ActorSystem system(workers);

  JobContext ctx;
  ctx.csr = &csr;
  ctx.backend = backend.get();
  ctx.io_config = &io_config;
  ctx.system = &system;
  GPSA_ASSIGN_OR_RETURN(RunResult out,
                        run_job(ctx, program, options, value_path, resume));
  system.shutdown();
  return out;
}

}  // namespace

Result<RunResult> Engine::run(const EdgeList& graph, const Program& program,
                              const EngineOptions& options) {
  GPSA_RETURN_IF_ERROR(validate_engine_options(options));

  std::optional<ScratchDir> scratch;
  std::string dir = options.work_dir;
  if (dir.empty()) {
    GPSA_ASSIGN_OR_RETURN(auto s, ScratchDir::create("engine"));
    dir = s.path();
    scratch.emplace(std::move(s));
  } else {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return io_error("engine: cannot create work dir " + dir + ": " +
                      ec.message());
    }
  }

  WallTimer preprocess_timer;
  const std::string csr_path = dir + "/graph.csr";
  const CsrFormat format = resolve_csr_format(options.csr_format);
  const CsrOrder order = resolve_csr_order(options.csr_order);
  if (format == CsrFormat::kV1 && order != CsrOrder::kNone) {
    return invalid_argument(
        "engine: csr order '" + std::string(csr_order_name(order)) +
        "' requires csr format v2 (set GPSA_CSR_FORMAT=v2)");
  }
  GPSA_RETURN_IF_ERROR(preprocess_edges_to_csr(
      graph, csr_path, /*with_degree=*/true, format, order));
  const double preprocess_seconds = preprocess_timer.elapsed_seconds();

  GPSA_ASSIGN_OR_RETURN(CsrFileReader csr, CsrFileReader::open(csr_path));
  GPSA_ASSIGN_OR_RETURN(
      RunResult out,
      run_with_own_system(csr, program, options,
                          dir + "/" + program.name() + ".values",
                          /*resume=*/false));
  out.preprocess_seconds = preprocess_seconds;
  return out;
}

Result<RunResult> Engine::run_from_csr(const std::string& csr_base_path,
                                       const Program& program,
                                       const EngineOptions& options,
                                       bool resume) {
  GPSA_RETURN_IF_ERROR(validate_engine_options(options));

  std::optional<ScratchDir> scratch;
  std::string dir = options.work_dir;
  if (dir.empty()) {
    GPSA_ASSIGN_OR_RETURN(auto s, ScratchDir::create("engine"));
    dir = s.path();
    scratch.emplace(std::move(s));
  }

  GPSA_ASSIGN_OR_RETURN(CsrFileReader csr,
                        CsrFileReader::open(csr_base_path));
  return run_with_own_system(csr, program, options,
                             dir + "/" + program.name() + ".values", resume);
}

}  // namespace gpsa
