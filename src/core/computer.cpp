#include "core/computer.hpp"

#include "core/manager.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace gpsa {

ComputerActor::ComputerActor(std::uint32_t id, ValueFile& values,
                             const Program& program,
                             std::vector<std::uint8_t>& latest_column,
                             MessageBatchPool& pool, ActiveBitmap* worklist,
                             const VertexId* orig_ids)
    : id_(id),
      values_(values),
      program_(program),
      latest_column_(latest_column),
      pool_(pool),
      worklist_(worklist),
      orig_ids_(orig_ids) {}

void ComputerActor::connect(ManagerActor* manager) {
  GPSA_CHECK(manager != nullptr);
  manager_ = manager;
}

void ComputerActor::on_message(ComputerMsg msg) {
  switch (msg.kind) {
    case ComputerMsg::Kind::kBatch:
      try {
        const ScopedAccumulator busy(busy_seconds_);
        const unsigned update_col = ValueFile::update_column(msg.superstep);
        for (const VertexMessage& m : msg.batch) {
          apply(m, update_col);
        }
        // Drained: the leased buffer re-enters circulation for the next
        // dispatcher flush (the zero-allocation loop).
        pool_.recycle(std::move(msg.batch));
      } catch (const std::exception& e) {
        // A user compute/first_update hook threw: report instead of
        // wedging the superstep barrier (§V.C exception handling).
        ManagerMsg failed;
        failed.kind = ManagerMsg::Kind::kWorkerFailed;
        failed.superstep = msg.superstep;
        failed.worker_id = id_;
        failed.error = std::string("computer: ") + e.what();
        manager_->send(std::move(failed));
      }
      break;
    case ComputerMsg::Kind::kComputeOver: {
      ManagerMsg ack;
      ack.kind = ManagerMsg::Kind::kComputeOver;
      ack.superstep = msg.superstep;
      ack.worker_id = id_;
      ack.count = updates_this_superstep_;
      updates_total_ += updates_this_superstep_;
      updates_this_superstep_ = 0;
      manager_->send(ack);
      break;
    }
    case ComputerMsg::Kind::kSystemOver:
      break;
  }
}

void ComputerActor::apply(const VertexMessage& message,
                          unsigned update_col) {
  const VertexId v = message.dst;
  const Slot current = values_.load(v, update_col);

  if (slot_is_stale(current)) {
    // First message of this superstep for v (the update column was
    // invalidated when it was last dispatched): seed the accumulator from
    // the freshest stored payload (Algorithm 3 line 9).
    const Payload base =
        slot_payload(values_.load(v, latest_column_[v]));
    // first_update sees the original id (identity unless renumbered).
    const Payload seed = program_.first_update(
        orig_ids_ == nullptr ? v : orig_ids_[v], base);
    const Payload acc = program_.compute(seed, message.value);
    const bool updated = program_.changed(base, acc);
    // Even a non-update writes the copied payload ("a negative value will
    // be written"), so this column now holds v's freshest value.
    values_.store(v, update_col, make_slot(updated ? acc : base, !updated));
    latest_column_[v] = static_cast<std::uint8_t>(update_col);
    ++touches_total_;
    if (updated) {
      ++updates_this_superstep_;
      // Activation publishes to the bitmap in lock-step with the stale
      // flag: this branch is the only store of a non-stale slot into a
      // freshly-invalidated column, so "bit set in generation g" <=>
      // "column g's flag clear" — worklist dispatch reads exactly the
      // sweep's active set.
      if (worklist_ != nullptr) {
        worklist_->set(v, update_col);
      }
    }
    return;
  }

  // Fold into the in-progress accumulator.
  const Payload seed = slot_payload(current);
  const Payload acc = program_.compute(seed, message.value);
  if (acc != seed) {
    values_.store(v, update_col, make_slot(acc, /*stale=*/false));
  }
}

}  // namespace gpsa
