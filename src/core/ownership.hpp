// Vertex -> computing-actor ownership map (message routing).
//
// The paper routes a message to "the computing actor that owns the
// destination" without fixing the map; the original implementation here
// used dst % num_computers. Modulo interleaves owners at single-vertex
// granularity, so concurrently-applying computers write *adjacent* slots
// of the value file and adjacent bytes of latest_column — one cache line
// (8 interleaved slot pairs, 64 latest-column bytes) is shared by every
// computer at once, and the apply plane ping-pongs lines between cores.
//
// Range ownership (the default, GPSA_ROUTING=range) derives contiguous
// per-computer vertex slices from the same Interval machinery the
// dispatchers partition with (§V.A), so each computer owns one contiguous
// run of the value file and of latest_column: no cross-computer line
// sharing, and batches radix-staged in ascending destination order
// (dispatcher.cpp) apply as near-sequential writes within the slice.
//
// GPSA_ROUTING=mod keeps the legacy interleaved map as the ablation
// baseline (bench_ablation_message_plane measures the two against each
// other). The cluster engine uses the same map for its per-node store
// placement, replacing its private Topology class.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/partition.hpp"
#include "graph/types.hpp"
#include "util/status.hpp"

namespace gpsa {

enum class MessageRouting : std::uint8_t { kMod, kRange };

const char* message_routing_name(MessageRouting routing);
Result<MessageRouting> parse_message_routing(std::string_view name);

/// Reads GPSA_ROUTING ("mod" | "range") when `requested` is unset;
/// defaults to kRange for unset or unrecognized values.
MessageRouting resolve_message_routing(std::optional<MessageRouting> requested);

class OwnerMap {
 public:
  /// Legacy interleaved map: owner_of(v) = v % parts.
  static OwnerMap make_mod(VertexId num_vertices, unsigned parts);

  /// Contiguous ranges split at `boundaries` = [0, b1, ..., num_vertices]
  /// (ascending, parts = boundaries.size() - 1, all >= 1 required).
  static OwnerMap make_range(std::vector<VertexId> boundaries);

  /// Ranges taken from interval partitions (make_intervals /
  /// make_intervals_from_degrees). The intervals cover [0, n) in order,
  /// so parts() == intervals.size() — possibly fewer than requested on
  /// tiny graphs, and the engine spawns exactly parts() computers.
  static OwnerMap make_range_from_intervals(
      const std::vector<Interval>& intervals);

  MessageRouting routing() const { return routing_; }
  unsigned parts() const { return parts_; }
  VertexId num_vertices() const { return num_vertices_; }

  unsigned owner_of(VertexId v) const {
    if (routing_ == MessageRouting::kMod) {
      return static_cast<unsigned>(v % parts_);
    }
    // Dispatchers call this once per generated message with skewed,
    // data-dependent destinations; a binary search here mispredicts its
    // way through the hot loop. The block table answers in one load for
    // any block that no boundary crosses, and the walk below advances at
    // most once per boundary inside v's block.
    unsigned owner = block_table_[v >> block_shift_];
    while (boundaries_[owner + 1] <= v) {
      ++owner;
    }
    return owner;
  }

  /// Dense position of v inside `owner`'s local slot range. Ascending in
  /// v within an owner for both routings (mod strides, range offsets), so
  /// the radix bins built over it stage batches in ascending-dst order.
  VertexId local_index(VertexId v, unsigned owner) const {
    if (routing_ == MessageRouting::kMod) {
      return v / parts_;
    }
    return v - boundaries_[owner];
  }

  /// Size of `owner`'s dense local range (== max local_index + 1).
  VertexId local_size(unsigned owner) const {
    if (routing_ == MessageRouting::kMod) {
      // Vertices owner, owner+parts, ...: ceil((n - owner) / parts).
      if (num_vertices_ <= owner) {
        return 0;
      }
      return (num_vertices_ - owner + parts_ - 1) / parts_;
    }
    return boundaries_[owner + 1] - boundaries_[owner];
  }

  /// Range routing only: the contiguous [begin, end) slice of `owner`.
  VertexId range_begin(unsigned owner) const { return boundaries_[owner]; }
  VertexId range_end(unsigned owner) const { return boundaries_[owner + 1]; }

 private:
  OwnerMap(MessageRouting routing, VertexId num_vertices, unsigned parts,
           std::vector<VertexId> boundaries);

  MessageRouting routing_ = MessageRouting::kRange;
  VertexId num_vertices_ = 0;
  unsigned parts_ = 1;
  /// Range routing: parts_ + 1 ascending entries, [0] == 0, back() == n.
  /// Mod routing: empty.
  std::vector<VertexId> boundaries_;
  /// Range routing: block_table_[v >> block_shift_] is the owner of the
  /// block's first vertex (at most ~4Ki entries; one L1/L2 line hit per
  /// owner_of). Mod routing: empty.
  std::vector<unsigned> block_table_;
  unsigned block_shift_ = 0;
};

}  // namespace gpsa
