#include "core/job.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "actor/actor_system.hpp"
#include "core/computer.hpp"
#include "core/dispatcher.hpp"
#include "platform/file_util.hpp"
#include "storage/active_bitmap.hpp"
#include "storage/recovery.hpp"
#include "storage/value_file.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace gpsa {

namespace {

/// Explicit option beats GPSA_CHECKPOINT_INTERVAL beats 1 (the historical
/// checkpoint-every-superstep cadence). Malformed env warns and falls
/// back, matching the other env knobs (exec_mode.cpp).
std::uint64_t resolve_checkpoint_interval(
    std::optional<std::uint64_t> requested) {
  if (requested.has_value() && *requested != 0) {
    return *requested;
  }
  const char* raw = std::getenv("GPSA_CHECKPOINT_INTERVAL");
  if (raw == nullptr || *raw == '\0') {
    return 1;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed == 0) {
    GPSA_LOG(Warn) << "GPSA_CHECKPOINT_INTERVAL: invalid value '" << raw
                   << "' (expected a positive integer); using 1";
    return 1;
  }
  return parsed;
}

}  // namespace

Status validate_engine_options(const EngineOptions& options) {
  if (options.num_dispatchers == 0) {
    return invalid_argument("EngineOptions: num_dispatchers must be >= 1");
  }
  if (options.num_computers == 0) {
    return invalid_argument("EngineOptions: num_computers must be >= 1");
  }
  if (options.message_batch == 0) {
    return invalid_argument("EngineOptions: message_batch must be >= 1");
  }
  return Status::ok();
}

Result<RunResult> run_job(const JobContext& ctx, const Program& program,
                          const EngineOptions& options,
                          const std::string& value_path, bool resume) {
  GPSA_CHECK(ctx.csr != nullptr && ctx.backend != nullptr &&
             ctx.io_config != nullptr && ctx.system != nullptr);
  CsrFileReader& csr = *ctx.csr;
  IoBackend& backend = *ctx.backend;
  const IoConfig& io_config = *ctx.io_config;
  ActorSystem& system = *ctx.system;

  const VertexId n = csr.num_vertices();
  if (n == 0) {
    return invalid_argument("engine: graph has no vertices");
  }

  // Renumbered v2 files: the engine works entirely in the file's internal
  // ids (intervals, routing, value slots, bitmap); `orig` translates at
  // the two Program boundaries (init/gen_msg/first_update in, result
  // extraction out), so callers always see original vertex ids.
  const std::span<const VertexId> perm = csr.permutation();
  const VertexId* const orig = perm.empty() ? nullptr : perm.data();

  // --- Execution mode (DESIGN.md §12). ------------------------------------
  const ExecMode exec = resolve_exec_mode(options.exec);
  if (exec == ExecMode::kWorklist && options.dispatch_inactive) {
    return invalid_argument(
        "engine: dispatch_inactive requires exec=sweep (the worklist only "
        "enumerates active vertices; set EngineOptions::exec or "
        "GPSA_EXEC=sweep)");
  }
  if (resume && program.delta_messages()) {
    return failed_precondition(
        "engine: cannot resume a delta program ('" + program.name() +
        "'): the last-sent plane is not checkpointed, so re-dispatched "
        "deltas would double-count");
  }
  // Generation g of the bitmap mirrors value column g: a bit set in g is
  // exactly a clear stale flag in column g, so worklist dispatch touches
  // the same vertex set a sweep would (the bit-identical invariant).
  std::optional<ActiveBitmap> bitmap;
  if (exec == ExecMode::kWorklist) {
    bitmap.emplace(n);
  }
  // Delta programs: per-vertex value as of its last dispatch. Written only
  // by the dispatcher owning the vertex's interval (single-writer).
  std::optional<std::vector<Payload>> last_sent;
  if (program.delta_messages()) {
    last_sent.emplace(n, Payload{0});
  }

  // --- Value file: create + initialize, or resume after a crash. ---------
  ValueFile values;
  std::vector<std::uint8_t> latest_column(n, 0);
  if (resume && file_exists(value_path)) {
    GPSA_ASSIGN_OR_RETURN(values, backend.open_value_file(value_path));
    if (values.num_vertices() != n) {
      return failed_precondition("engine: value file vertex count mismatch");
    }
    if (values.app_tag() != program.name()) {
      return failed_precondition("engine: value file belongs to app '" +
                                 values.app_tag() + "', not '" +
                                 program.name() + "'");
    }
    GPSA_ASSIGN_OR_RETURN(const RecoveryReport report,
                          recover_value_file(values));
    std::fill(latest_column.begin(), latest_column.end(),
              static_cast<std::uint8_t>(report.valid_column));
    if (bitmap.has_value()) {
      // Rebuild the dispatch generation from the recovered stale flags
      // (recovery re-activates the frontier in the dispatch column; the
      // bitmap in the crashed process died with it).
      const unsigned dcol = ValueFile::dispatch_column(report.resume_superstep);
      for (VertexId v = 0; v < n; ++v) {
        if (!slot_is_stale(values.load(v, dcol))) {
          bitmap->set(v, dcol);
        }
      }
    }
    // Values come from the file, but programs that cache per-graph
    // constants in init() (e.g. PageRank's teleport term) still need one
    // init call to see the vertex count.
    (void)program.init(0, n);
    GPSA_LOG(Info) << "engine: resuming '" << program.name()
                   << "' at superstep " << report.resume_superstep;
  } else {
    GPSA_ASSIGN_OR_RETURN(
        values, backend.create_value_file(value_path, n, program.name()));
    const unsigned d0 = ValueFile::dispatch_column(0);
    const unsigned u0 = 1 - d0;
    for (VertexId v = 0; v < n; ++v) {
      const Program::InitialState st =
          program.init(orig == nullptr ? v : orig[v], n);
      values.store(v, d0, make_slot(st.value, /*stale=*/!st.active));
      values.store(v, u0, make_slot(st.value, /*stale=*/true));
      latest_column[v] = static_cast<std::uint8_t>(d0);
      if (st.active && bitmap.has_value()) {
        bitmap->set(v, d0);
      }
    }
  }

  // --- Partition intervals for the dispatchers (§V.A). -------------------
  const std::vector<Interval> intervals =
      make_intervals(csr, options.num_dispatchers, options.partition);
  GPSA_CHECK(!intervals.empty());

  // --- Message plane: destination ownership + batch-buffer pool. ---------
  // Range routing derives contiguous per-computer slices from the same
  // interval machinery; the partitioner may return fewer non-empty slices
  // than requested on tiny graphs, and we spawn exactly that many
  // computers.
  const MessageRouting routing = resolve_message_routing(options.routing);
  const OwnerMap owners =
      routing == MessageRouting::kRange
          ? OwnerMap::make_range_from_intervals(
                make_intervals(csr, options.num_computers, options.partition))
          : OwnerMap::make_mod(n, options.num_computers);
  // The pool outlives every actor of this job: despawn_job below destroys
  // the job's actors (and thus any leased buffers still in mailboxes)
  // before this frame unwinds (message_pool.hpp).
  MessageBatchPool pool(options.message_batch,
                        resolve_message_pool_enabled(options.message_pool));

  // --- Cold-cache protocol (bench_ablation_io): everything written or
  // faulted in during setup — CSR validation touches every entry page —
  // is evicted so the run starts against the bare disk. ------------------
  if (io_config.cold_start) {
    GPSA_RETURN_IF_ERROR(values.drop_cache());
    GPSA_RETURN_IF_ERROR(csr.drop_cache());
  }

  // --- One record stream + readahead scheduler per dispatcher. -----------
  std::vector<std::unique_ptr<CsrEntryStream>> streams;
  std::vector<std::unique_ptr<ReadaheadScheduler>> readaheads;
  streams.reserve(intervals.size());
  readaheads.reserve(intervals.size());
  for (const Interval& interval : intervals) {
    GPSA_ASSIGN_OR_RETURN(auto raw_stream,
                          backend.open_stream(csr.entry_path()));
    streams.push_back(
        std::make_unique<CsrEntryStream>(std::move(raw_stream), csr));
    readaheads.push_back(std::make_unique<ReadaheadScheduler>(
        io_config, streams.back().get(), &values, interval));
  }

  std::uint64_t budget = std::numeric_limits<std::uint64_t>::max();
  budget = std::min(budget, program.max_supersteps());
  if (options.max_supersteps != 0) {
    budget = std::min(budget, options.max_supersteps);
  }

  // --- Spawn and wire the actor ensemble under this job's namespace. -----
  ActiveBitmap* const worklist = bitmap.has_value() ? &*bitmap : nullptr;
  std::vector<Payload>* const last_sent_plane =
      last_sent.has_value() ? &*last_sent : nullptr;
  std::vector<ComputerActor*> computers;
  computers.reserve(owners.parts());
  for (std::uint32_t c = 0; c < owners.parts(); ++c) {
    computers.push_back(system.spawn_in_job<ComputerActor>(
        ctx.job_tag, c, std::ref(values), std::cref(program),
        std::ref(latest_column), std::ref(pool), worklist, orig));
  }
  const std::uint64_t checkpoint_interval =
      options.checkpoint_each_superstep
          ? resolve_checkpoint_interval(options.checkpoint_interval)
          : 0;
  auto* manager = system.spawn_in_job<ManagerActor>(
      ctx.job_tag, std::ref(values), budget, checkpoint_interval,
      /*terminate_on_zero_updates=*/options.dispatch_inactive, &pool,
      ctx.cancel, ctx.progress);
  std::vector<DispatcherActor*> dispatchers;
  dispatchers.reserve(intervals.size());
  DispatcherActor::Behavior behavior;
  behavior.overlap = options.overlap_dispatch_compute;
  behavior.dispatch_inactive = options.dispatch_inactive;
  behavior.combine = options.enable_combiner;
  for (std::uint32_t d = 0; d < intervals.size(); ++d) {
    dispatchers.push_back(system.spawn_in_job<DispatcherActor>(
        ctx.job_tag, d, intervals[d], std::cref(csr), std::ref(*streams[d]),
        std::ref(*readaheads[d]), std::ref(values), std::cref(program),
        std::cref(owners), std::ref(pool), options.message_batch, behavior,
        worklist, last_sent_plane, orig));
  }
  for (DispatcherActor* dispatcher : dispatchers) {
    dispatcher->connect(computers, manager);
  }
  for (ComputerActor* computer : computers) {
    computer->connect(manager);
  }
  manager->connect(dispatchers, computers);

  // --- Run. ---------------------------------------------------------------
  auto future = manager->result_future();
  WallTimer timer;
  ManagerMsg start;
  start.kind = ManagerMsg::Kind::kStartRun;
  manager->send(start);
  const ManagerResult mres = future.get();
  const double elapsed = timer.elapsed_seconds();
  if (mres.failed) {
    // On a worker failure the other dispatchers may still be mid-iteration
    // writing their counters; despawn first (it waits for the group to
    // quiesce) and read nothing from the actors afterwards.
    system.despawn_job(ctx.job_tag);
    return internal_error("engine: worker failure: " + mres.error);
  }

  // --- Extract results, then retire the job's actor namespace. -----------
  // Counter reads are safe before despawn on the success path: every
  // dispatcher/computer write happened before the ack that let the manager
  // fulfil the promise future.get() returned from.
  RunResult out;
  out.supersteps = mres.supersteps;
  out.total_messages = mres.total_messages;
  out.total_updates = mres.total_updates;
  out.converged = mres.converged;
  out.cancelled = mres.cancelled;
  out.elapsed_seconds = elapsed;
  out.superstep_seconds = mres.superstep_seconds;
  out.superstep_messages = mres.superstep_messages;
  out.superstep_updates = mres.superstep_updates;
  out.superstep_active_vertices = mres.superstep_active;
  out.superstep_edges_touched = mres.superstep_edges;
  out.values.resize(n);
  // Inverse mapping on output: slot v holds internal vertex v's payload;
  // the caller-visible array is keyed by original ids.
  for (VertexId v = 0; v < n; ++v) {
    out.values[orig == nullptr ? v : orig[v]] =
        slot_payload(values.load(v, latest_column[v]));
  }
  for (const DispatcherActor* dispatcher : dispatchers) {
    // Streamed-record volume is counted in the file's offset units (int32
    // entries for v1, compressed bytes for v2); vertex checks are 4-byte
    // value-slot reads in both.
    out.io.bytes_read += csr.unit_bytes() * dispatcher->entries_read_total() +
                         4 * dispatcher->vertex_checks_total();
    out.dispatcher_busy_seconds.push_back(dispatcher->busy_seconds());
  }
  out.io_backend = io_config.backend;
  for (std::size_t d = 0; d < streams.size(); ++d) {
    out.prefetch += streams[d]->counters();
    out.prefetch += readaheads[d]->value_counters();
  }
  out.readahead_hit_rate = out.prefetch.hit_rate();
  for (const ComputerActor* computer : computers) {
    out.io.bytes_written += 4 * computer->touches_total();
    out.computer_busy_seconds.push_back(computer->busy_seconds());
  }
  out.pool = pool.stats();
  out.routing = routing;
  out.exec = exec;
  out.csr_format = csr.format();
  out.csr_order = csr.order();
  out.csr_file_bytes = csr.entry_file_bytes();
  out.value_flush_syscalls = values.flush_syscalls();
  out.working_set_bytes =
      csr.entry_file_bytes() + ValueFile::file_size(n) +
      (static_cast<std::uint64_t>(n) + 1) * sizeof(std::uint64_t);
  system.despawn_job(ctx.job_tag);
  return out;
}

}  // namespace gpsa
