// The user-facing vertex-program interface (paper §IV.E/F, Fig. 3).
//
// A graph application supplies four hooks, mirroring the paper's
// `initialize`, `genMsg`, and `compute` functions:
//
//   init(v)           -- initial payload and activity of vertex v
//                        (PageRank: 1/N and active; BFS: 0/active for the
//                        root, INF/inactive elsewhere).
//   gen_msg(...)      -- message payload sent along one out-edge of an
//                        *active* vertex. Receives the out-degree (read
//                        straight from the Fig. 4c CSR record, so no extra
//                        lookup) and the destination (so synthetic edge
//                        weights can be derived, e.g. SSSP).
//   first_update(...) -- accumulator seed when the first message of a
//                        superstep reaches a vertex. Monotone apps seed
//                        with the stored value (min-fold); PageRank seeds
//                        with the teleport term and ignores the old rank.
//   compute(...)      -- folds one message into the accumulator
//                        (Algorithm 3 line 10).
//
// All engines in this repository (GPSA, the GraphChi-style PSW baseline,
// the X-Stream-style baseline, and the sequential reference) execute the
// same Program, which is what makes the cross-engine equivalence tests and
// the benchmark comparisons meaningful.
//
// Payloads are raw 31-bit-safe words (storage/slot.hpp): integers below
// 2^31, or non-negative floats via float_to_payload/payload_to_float.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "graph/types.hpp"
#include "storage/slot.hpp"

namespace gpsa {

class Program {
 public:
  virtual ~Program() = default;

  virtual std::string name() const = 0;

  struct InitialState {
    Payload value = 0;
    bool active = false;
  };

  /// Initial value/activity of vertex v in a graph of num_vertices.
  virtual InitialState init(VertexId v, VertexId num_vertices) const = 0;

  /// Message payload for edge src -> dst given src's current value.
  virtual Payload gen_msg(VertexId src, VertexId dst, Payload value,
                          std::uint32_t out_degree) const = 0;

  /// True when gen_msg ignores `dst` (PageRank's share, BFS's depth+1,
  /// CC's label): the dispatcher then calls it once per vertex instead of
  /// once per out-edge, hoisting the virtual call — and any per-message
  /// arithmetic like PageRank's divide — out of the edge loop. SSSP keeps
  /// the default (its synthetic edge weight depends on the endpoint).
  virtual bool uniform_gen_msg() const { return false; }

  /// Accumulator seed for the first message of a superstep at vertex v,
  /// given v's current stored payload.
  virtual Payload first_update(VertexId v, Payload stored) const = 0;

  /// Folds one message into the accumulator. Must be commutative and
  /// associative up to the app's accepted tolerance (message arrival order
  /// is nondeterministic).
  virtual Payload compute(Payload accumulator, Payload message) const = 0;

  /// Whether the post-fold value counts as an update relative to the value
  /// the vertex held before this superstep (drives the stale flag and
  /// therefore next superstep's dispatch set).
  virtual bool changed(Payload before, Payload after) const {
    return before != after;
  }

  /// Superstep budget; algorithms that run to quiescence leave this
  /// unbounded and rely on the zero-messages termination rule.
  virtual std::uint64_t max_supersteps() const {
    return std::numeric_limits<std::uint64_t>::max();
  }

  // --- Optional delta programming (PagerankDelta, DESIGN.md §12) -----------
  // A delta program's messages carry the *change* in a vertex's value
  // since the last time that vertex dispatched, not the value itself. The
  // dispatcher keeps a per-vertex last-sent plane (written only by the
  // owning dispatcher, so no synchronization) and hands gen_msg
  // delta(current, last_sent) in place of the raw value; `changed` is then
  // typically gated on an epsilon (GPSA_DELTA_EPS) so sub-threshold
  // residual growth stops re-activating the vertex and the run quiesces.

  /// True when gen_msg expects delta(current, last_sent) instead of the
  /// stored value. The engines then maintain the last-sent plane.
  virtual bool delta_messages() const { return false; }

  /// The change to propagate given the current stored value and the value
  /// as of this vertex's previous dispatch (0 before the first dispatch).
  /// Only called when delta_messages() is true.
  virtual Payload delta(Payload current, Payload last_sent) const {
    (void)last_sent;
    return current;
  }

  // --- Optional Pregel-style message combiner -------------------------------
  // When supported (and enabled via EngineOptions::enable_combiner), the
  // dispatcher merges messages bound for the same destination inside its
  // staging buffers before sending, cutting mailbox traffic. Correctness
  // requirement: compute(compute(seed, a), b) == compute(seed,
  // combine(a, b)) — true for min/max/sum/or folds.

  virtual bool has_combiner() const { return false; }

  /// Merges two messages for the same destination. Only called when
  /// has_combiner() is true.
  virtual Payload combine(Payload a, Payload b) const {
    (void)a;
    return b;
  }
};

}  // namespace gpsa
