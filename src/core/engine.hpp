// GPSA engine front-end (paper §V.A, Fig. 3).
//
// Orchestrates a run end to end:
//   1. preprocessing: edge list -> on-disk CSR (Fig. 4c, degree-inline),
//      unless an existing CSR file pair is supplied;
//   2. value-file creation + initialization via Program::init;
//   3. interval assignment to dispatchers (§V.A: mod or edge-balanced);
//   4. actor spawn (manager, dispatchers, computers) and the superstep
//      protocol, run on the actor scheduler;
//   5. result extraction (per-vertex payloads from each vertex's freshest
//      column) and teardown.
//
// Correctness note recorded in DESIGN.md: the paper's two-column protocol
// under-specifies the accumulator base when a vertex's first message of a
// superstep arrives while its freshest value sits in the *update* column
// (vertex last updated an even number of supersteps ago). The engine
// therefore tracks a per-vertex latest-column byte, written only by the
// owning computing actor. Without it, monotone apps (BFS/CC) can lose
// good values by seeding from the stale column.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/exec_mode.hpp"
#include "core/manager.hpp"
#include "core/message_pool.hpp"
#include "core/ownership.hpp"
#include "core/program.hpp"
#include "graph/edge_list.hpp"
#include "graph/partition.hpp"
#include "io/io_backend.hpp"
#include "metrics/io_model.hpp"
#include "storage/slot.hpp"
#include "util/status.hpp"

namespace gpsa {

struct EngineOptions {
  unsigned num_dispatchers = 2;
  unsigned num_computers = 2;
  /// Scheduler worker threads; 0 means default_worker_count().
  unsigned scheduler_workers = 0;
  PartitionStrategy partition = PartitionStrategy::kBalancedEdges;
  /// VertexMessages per mailbox batch. 4096 (64 KiB of messages, still
  /// L2-resident) amortizes flush/send overhead and gives range routing's
  /// ascending-dst batches enough density for near-sequential applies;
  /// bench_ablation_message_plane measured it ~1.2x the throughput of
  /// 1024 on the google stand-in.
  std::size_t message_batch = 4096;
  /// Caps supersteps in addition to Program::max_supersteps (the smaller
  /// wins). 0 means "no engine-side cap".
  std::uint64_t max_supersteps = 0;
  /// msync + bump the completed-superstep counter at superstep boundaries,
  /// enabling crash recovery (§IV.G).
  bool checkpoint_each_superstep = false;
  /// Write-back batching (DESIGN.md §16): checkpoint every Nth superstep
  /// (plus once at clean run end) instead of all of them, trading up to
  /// N-1 supersteps of crash-replay for fewer msyncs — RunResult reports
  /// `value_flush_syscalls` so the trade is measurable. Only meaningful
  /// with checkpoint_each_superstep. Unset follows
  /// GPSA_CHECKPOINT_INTERVAL (default 1: the historical every-superstep
  /// behavior).
  std::optional<std::uint64_t> checkpoint_interval;
  /// On-disk CSR format written by preprocessing (graph/csr_v2.hpp): v1 is
  /// the paper's flat-entry layout, v2 the varint delta-gap encoding.
  /// Unset follows GPSA_CSR_FORMAT (default v1). Runs against an existing
  /// file (run_from_csr) take the file's own format regardless.
  std::optional<CsrFormat> csr_format;
  /// Vertex renumbering applied by preprocessing (requires v2): degree
  /// packs hubs first, bfs packs neighborhoods. Results stay keyed by the
  /// original vertex ids (the permutation is inverted on output). Unset
  /// follows GPSA_CSR_ORDER (default none).
  std::optional<CsrOrder> csr_order;
  /// Ablation knob (bench_ablation_overlap): when false, dispatchers hold
  /// every batch until their interval is fully scanned, so computing
  /// actors only start after dispatch finishes — the conventional
  /// sequential compute-then-dispatch BSP the paper's model replaces.
  bool overlap_dispatch_compute = true;
  /// Ablation knob (bench_ablation_skipflag): when true, dispatchers
  /// ignore the stale flag and generate messages for every vertex every
  /// superstep (X-Stream-like full streaming). Only meaningful for
  /// monotone apps (BFS/CC/SSSP), whose folds tolerate replayed values.
  bool dispatch_inactive = false;
  /// Dispatcher-side message combining (Program::combine). Reduces
  /// message counts without changing results for fold-compatible
  /// combiners; off by default so message statistics match the paper's
  /// uncombined protocol.
  bool enable_combiner = false;
  /// Working directory for the CSR and value files; empty -> private
  /// scratch directory removed at teardown.
  std::string work_dir;
  /// Storage I/O subsystem configuration (src/io/): backend selection,
  /// readahead window, drop-behind, cold-start. Unset fields follow
  /// GPSA_IO_BACKEND / GPSA_READAHEAD_MB / etc.
  IoOptions io;
  /// Lease/recycle batch buffers through the shared MessageBatchPool so
  /// steady-state supersteps allocate nothing on the message plane.
  /// Unset follows GPSA_MSG_POOL (default on); false is the
  /// allocate-per-flush ablation baseline.
  std::optional<bool> message_pool;
  /// Destination -> computer map (core/ownership.hpp). Unset follows
  /// GPSA_ROUTING (default range: contiguous per-computer vertex slices
  /// from the Interval machinery; mod keeps the legacy interleaved map as
  /// the ablation baseline). Under range routing on tiny graphs the
  /// partitioner may produce fewer than num_computers non-empty slices;
  /// the engine then spawns exactly that many computers.
  std::optional<MessageRouting> routing;
  /// How dispatchers find active vertices (core/exec_mode.hpp). Unset
  /// follows GPSA_EXEC (default worklist: iterate the active bitmap's
  /// dispatch generation, O(active) per superstep; sweep streams every
  /// interval record, O(V), and is kept as the ablation baseline).
  /// Results are bit-identical between modes. dispatch_inactive requires
  /// sweep — the worklist never enumerates inactive vertices.
  std::optional<ExecMode> exec;
};

struct RunResult {
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_updates = 0;
  bool converged = false;
  /// True when a GraphService cancel request stopped the run at a
  /// superstep boundary; values reflect the completed supersteps.
  bool cancelled = false;
  double elapsed_seconds = 0.0;
  double preprocess_seconds = 0.0;
  /// Service-mode latencies (GraphService): submit-to-start queue wait and
  /// submit-to-completion end-to-end time. Zero for direct Engine runs.
  double queue_wait_seconds = 0.0;
  double end_to_end_seconds = 0.0;
  std::vector<double> superstep_seconds;
  std::vector<std::uint64_t> superstep_messages;
  std::vector<std::uint64_t> superstep_updates;
  /// Vertices actually dispatched per superstep (the frontier size).
  std::vector<std::uint64_t> superstep_active_vertices;
  /// Work done per superstep: CSR record entries streamed plus one unit
  /// per vertex examined. Sweep pays the O(V) offset walk every superstep
  /// even on a one-vertex frontier; worklist pays O(active). The
  /// worklist-vs-sweep CI gate compares the sums of this vector.
  std::vector<std::uint64_t> superstep_edges_touched;
  /// Final payload per vertex (freshest column at quiescence).
  std::vector<Payload> values;
  /// Fundamental I/O volume of the run (metrics/io_model.hpp): CSR bytes
  /// of dispatched records + value-column scans read; value updates
  /// written. GPSA spills no messages.
  IoStats io;
  /// Resident data the engine needs (CSR file + value file) for the
  /// I/O model's in-memory/out-of-core regime decision.
  std::uint64_t working_set_bytes = 0;
  /// Backend the run actually used (after unsupported-uring fallback).
  IoBackendKind io_backend = IoBackendKind::kMmap;
  /// Measured readahead activity summed over all dispatcher streams and
  /// value-plane windows (metrics/io_model.hpp).
  PrefetchCounters prefetch;
  /// Per-dispatcher wall time spent dispatching; elapsed_seconds minus
  /// this is that dispatcher's idle time (partition-skew diagnostics).
  std::vector<double> dispatcher_busy_seconds;
  /// Per-computer wall time spent applying batches (the compute-side
  /// complement, used by the message-plane bench).
  std::vector<double> computer_busy_seconds;
  /// Batch-buffer pool activity (hits/misses/steady misses/bytes
  /// recycled); enabled=false when the run used the allocation baseline.
  MessagePoolStats pool;
  /// Routing the run actually used (after GPSA_ROUTING resolution).
  MessageRouting routing = MessageRouting::kRange;
  /// Execution mode the run actually used (after GPSA_EXEC resolution).
  ExecMode exec = ExecMode::kWorklist;
  /// Readahead window hit rate over every prefetch plane of the run
  /// (summed `prefetch` counters; 1.0 when no window activity occurred).
  double readahead_hit_rate = 1.0;
  /// On-disk CSR format and vertex order the run actually streamed (from
  /// the opened file's header, after GPSA_CSR_FORMAT/ORDER resolution).
  CsrFormat csr_format = CsrFormat::kV1;
  CsrOrder csr_order = CsrOrder::kNone;
  /// Bytes of the CSR entry file (the compression bench's ratio numerator
  /// comes from comparing this across formats).
  std::uint64_t csr_file_bytes = 0;
  /// msync calls issued against the value file over the whole run (the
  /// write-back-batching observable; see EngineOptions::checkpoint_interval).
  std::uint64_t value_flush_syscalls = 0;
};

class Engine {
 public:
  /// One-shot run: preprocess `graph`, execute `program`, return results.
  static Result<RunResult> run(const EdgeList& graph, const Program& program,
                               const EngineOptions& options);

  /// Runs against an existing CSR file pair (skips preprocessing). The
  /// value file is created in (or resumed from, when `resume` is set and
  /// the file exists) `options.work_dir`.
  static Result<RunResult> run_from_csr(const std::string& csr_base_path,
                                        const Program& program,
                                        const EngineOptions& options,
                                        bool resume = false);
};

}  // namespace gpsa
