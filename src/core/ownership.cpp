#include "core/ownership.hpp"

#include <cstdlib>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace gpsa {

const char* message_routing_name(MessageRouting routing) {
  switch (routing) {
    case MessageRouting::kMod:
      return "mod";
    case MessageRouting::kRange:
      return "range";
  }
  return "unknown";
}

Result<MessageRouting> parse_message_routing(std::string_view name) {
  if (name == "mod") {
    return MessageRouting::kMod;
  }
  if (name == "range") {
    return MessageRouting::kRange;
  }
  return invalid_argument("unknown message routing '" + std::string(name) +
                          "' (expected mod|range)");
}

MessageRouting resolve_message_routing(
    std::optional<MessageRouting> requested) {
  if (requested.has_value()) {
    return *requested;
  }
  const char* raw = std::getenv("GPSA_ROUTING");
  if (raw == nullptr || *raw == '\0') {
    return MessageRouting::kRange;
  }
  auto parsed = parse_message_routing(raw);
  if (!parsed.is_ok()) {
    GPSA_LOG(Warn) << "GPSA_ROUTING: " << parsed.status().to_string()
                   << "; using range";
    return MessageRouting::kRange;
  }
  return parsed.value();
}

OwnerMap::OwnerMap(MessageRouting routing, VertexId num_vertices,
                   unsigned parts, std::vector<VertexId> boundaries)
    : routing_(routing),
      num_vertices_(num_vertices),
      parts_(parts),
      boundaries_(std::move(boundaries)) {
  if (routing_ != MessageRouting::kRange) {
    return;
  }
  // Block granularity: at most ~4Ki blocks so the table stays resident in
  // L1/L2 next to the dispatch loop's working set.
  constexpr unsigned kMaxBlocks = 4096;
  block_shift_ = 0;
  while ((static_cast<std::uint64_t>(num_vertices_) >> block_shift_) >=
         kMaxBlocks) {
    ++block_shift_;
  }
  const std::size_t blocks =
      static_cast<std::size_t>(num_vertices_ >> block_shift_) + 1;
  block_table_.resize(blocks);
  unsigned owner = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const VertexId start = static_cast<VertexId>(b) << block_shift_;
    while (owner + 1 < parts_ && boundaries_[owner + 1] <= start) {
      ++owner;
    }
    block_table_[b] = owner;
  }
}

OwnerMap OwnerMap::make_mod(VertexId num_vertices, unsigned parts) {
  GPSA_CHECK(parts >= 1);
  return OwnerMap(MessageRouting::kMod, num_vertices, parts, {});
}

OwnerMap OwnerMap::make_range(std::vector<VertexId> boundaries) {
  GPSA_CHECK(boundaries.size() >= 2);
  GPSA_CHECK(boundaries.front() == 0);
  for (std::size_t i = 1; i < boundaries.size(); ++i) {
    GPSA_CHECK(boundaries[i] >= boundaries[i - 1]);
  }
  const VertexId n = boundaries.back();
  const auto parts = static_cast<unsigned>(boundaries.size() - 1);
  return OwnerMap(MessageRouting::kRange, n, parts, std::move(boundaries));
}

OwnerMap OwnerMap::make_range_from_intervals(
    const std::vector<Interval>& intervals) {
  GPSA_CHECK(!intervals.empty());
  std::vector<VertexId> boundaries;
  boundaries.reserve(intervals.size() + 1);
  for (const Interval& interval : intervals) {
    boundaries.push_back(interval.begin_vertex);
  }
  boundaries.push_back(intervals.back().end_vertex);
  return make_range(std::move(boundaries));
}

}  // namespace gpsa
