#!/usr/bin/env python3
"""Gate on the multi-tenant service benchmark (bench_service_qps): the
query stream must hold its latency/throughput SLO while the resident
PageRank keeps making progress, and every sampled query must match its
sequential Engine re-run bit-for-bit.

Checks, in order:
  - no query failed and every submitted query completed;
  - sampled results are bit-identical to sequential runs on the same CSR
    (min-fold queries are order-independent, so any mismatch means
    cross-job state leaked);
  - the resident job completed >= min_bg_supersteps supersteps while the
    burst was in flight (fair-share keeps tenants alive under load) and
    was cancelled cleanly at a superstep boundary afterwards;
  - p99 end-to-end latency <= max_p99_ms and throughput >= min_qps.

Usage: check_service_slo.py <bench_service_qps.json> <max_p99_ms>
       <min_qps> [min_bg_supersteps]
"""
import sys

from gpsa_gate import Gate, gate_main


def check(report: dict, args: list, gate: Gate) -> None:
    max_p99_ms = float(args[0])
    min_qps = float(args[1])
    min_bg = int(args[2]) if len(args) == 3 else 1

    gate.note(f"{report['queries']} queries from {report['clients']} clients "
              f"in {report['wall_seconds']:.2f}s "
              f"(p50 {report['p50_ms']:.2f}ms, "
              f"{report['admission_retries']} admission retries)")

    failures = report.get("failures", 0)
    gate.require(failures == 0, f"{failures} queries failed")
    gate.require(report.get("samples_checked", 0) > 0,
                 "no sampled queries were re-checked sequentially")
    gate.require(report.get("results_identical", False),
                 "sampled query results diverged from sequential runs")
    gate.require(report.get("resident_cancelled_cleanly", False),
                 "resident job did not cancel cleanly at a superstep "
                 "boundary")
    gate.check_min("resident supersteps during the burst",
                   report.get("background_supersteps", 0), min_bg,
                   "resident job starved while the query burst ran")
    gate.check_max("p99 end-to-end latency (ms)", report["p99_ms"],
                   max_p99_ms, "p99 latency exceeded the SLO")
    gate.check_min("sustained qps", report["qps"], min_qps,
                   "throughput fell below the SLO")


if __name__ == "__main__":
    sys.exit(gate_main(__doc__, check, min_args=3, max_args=4))
