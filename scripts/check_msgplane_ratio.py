#!/usr/bin/env python3
"""Gate on the message-plane ablation: the full plane (batch pooling +
range routing) must beat the legacy plane (allocate-per-flush + mod
routing) on message throughput by the given factor, and the default
(pool on + range) cell must report zero steady-state pool misses — the
pool's contract is that supersteps after warm-up allocate nothing.

The ratio is computed per round and the best round wins: the bench
interleaves the cells inside each round, so a machine-wide slow patch
lands on every cell of that round and cancels out of the within-round
ratio, where it would skew a best-round-vs-best-round comparison taken
across different rounds. A real regression lowers every round's ratio,
so the gate still catches it.

The pooled+mod cell is allowed steady misses: mod routing interleaves
owners at single-vertex stride, so one computer can fall behind and
strand buffers in its mailbox, draining the pool — that backlog is part
of what the default configuration fixes.

Usage: check_msgplane_ratio.py <bench_ablation_message_plane.json>
       <min_ratio>
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)
    min_ratio = float(sys.argv[2])

    by_config = {}
    for cell in report["cells"]:
        by_config[(cell["pool"], cell["routing"])] = cell
        if cell["pool"] == "on":
            print(f"  pool=on routing={cell['routing']}: "
                  f"{cell['pool_hits']} hits, {cell['pool_misses']} misses, "
                  f"{cell['pool_steady_misses']} steady misses")

    baseline = by_config.get(("off", "mod"))
    full = by_config.get(("on", "range"))
    if baseline is None or full is None:
        print("missing baseline (off,mod) or full (on,range) cell in report",
              file=sys.stderr)
        return 1

    failed = False
    steady = full["pool_steady_misses"]
    if steady != 0:
        print(f"FAIL: the default (on,range) cell allocated {steady} "
              f"time(s) after warm-up", file=sys.stderr)
        failed = True

    base_rounds = baseline.get("round_msgs_per_sec") or []
    full_rounds = full.get("round_msgs_per_sec") or []
    paired = [(f, b) for f, b in zip(full_rounds, base_rounds) if b > 0]
    if paired:
        ratios = [f / b for f, b in paired]
        best = max(range(len(ratios)), key=lambda i: ratios[i])
        ratio = ratios[best]
        print("  per-round pooled+range / unpooled+mod: "
              + " ".join(f"{r:.3f}" for r in ratios))
        print(f"message plane best within-round ratio = "
              f"{paired[best][0] / 1e6:.2f}/{paired[best][1] / 1e6:.2f}"
              f" Mmsg/s = {ratio:.3f} (need >= {min_ratio})")
    elif baseline["msgs_per_sec"] > 0:
        # Older reports without per-round samples: best-vs-best fallback.
        ratio = full["msgs_per_sec"] / baseline["msgs_per_sec"]
        print(f"message plane pooled+range / unpooled+mod = "
              f"{full['msgs_per_sec'] / 1e6:.2f}/"
              f"{baseline['msgs_per_sec'] / 1e6:.2f}"
              f" Mmsg/s = {ratio:.3f} (need >= {min_ratio})")
    else:
        print("baseline throughput is zero; cannot compute ratio",
              file=sys.stderr)
        return 1
    if ratio < min_ratio:
        print("FAIL: the zero-allocation plane did not clear the required "
              "throughput ratio", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
