#!/usr/bin/env python3
"""Gate on the message-plane ablation: the full plane (batch pooling +
range routing) must beat the legacy plane (allocate-per-flush + mod
routing) on message throughput by the given factor, and the default
(pool on + range) cell must report zero steady-state pool misses — the
pool's contract is that supersteps after warm-up allocate nothing.

The ratio is computed per round and the best round wins: the bench
interleaves the cells inside each round, so a machine-wide slow patch
lands on every cell of that round and cancels out of the within-round
ratio, where it would skew a best-round-vs-best-round comparison taken
across different rounds. A real regression lowers every round's ratio,
so the gate still catches it.

The pooled+mod cell is allowed steady misses: mod routing interleaves
owners at single-vertex stride, so one computer can fall behind and
strand buffers in its mailbox, draining the pool — that backlog is part
of what the default configuration fixes.

Usage: check_msgplane_ratio.py <bench_ablation_message_plane.json>
       <min_ratio>
"""
import sys

from gpsa_gate import Gate, gate_main


def check(report: dict, args: list, gate: Gate) -> None:
    min_ratio = float(args[0])

    by_config = {}
    for cell in report["cells"]:
        by_config[(cell["pool"], cell["routing"])] = cell
        if cell["pool"] == "on":
            gate.note(f"  pool=on routing={cell['routing']}: "
                      f"{cell['pool_hits']} hits, {cell['pool_misses']} "
                      f"misses, {cell['pool_steady_misses']} steady misses")

    baseline = by_config.get(("off", "mod"))
    full = by_config.get(("on", "range"))
    if baseline is None or full is None:
        gate.fatal("missing baseline (off,mod) or full (on,range) cell in "
                   "report")

    steady = full["pool_steady_misses"]
    gate.require(steady == 0,
                 f"the default (on,range) cell allocated {steady} "
                 f"time(s) after warm-up")

    base_rounds = baseline.get("round_msgs_per_sec") or []
    full_rounds = full.get("round_msgs_per_sec") or []
    paired = [(f, b) for f, b in zip(full_rounds, base_rounds) if b > 0]
    if paired:
        ratios = [f / b for f, b in paired]
        best = max(range(len(ratios)), key=lambda i: ratios[i])
        ratio = ratios[best]
        gate.note("  per-round pooled+range / unpooled+mod: "
                  + " ".join(f"{r:.3f}" for r in ratios))
        label = (f"message plane best within-round ratio "
                 f"({paired[best][0] / 1e6:.2f}/{paired[best][1] / 1e6:.2f}"
                 f" Mmsg/s)")
    elif baseline["msgs_per_sec"] > 0:
        # Older reports without per-round samples: best-vs-best fallback.
        ratio = full["msgs_per_sec"] / baseline["msgs_per_sec"]
        label = (f"message plane pooled+range / unpooled+mod "
                 f"({full['msgs_per_sec'] / 1e6:.2f}/"
                 f"{baseline['msgs_per_sec'] / 1e6:.2f} Mmsg/s)")
    else:
        gate.fatal("baseline throughput is zero; cannot compute ratio")
    gate.check_min(label, ratio, min_ratio,
                   "the zero-allocation plane did not clear the required "
                   "throughput ratio")


if __name__ == "__main__":
    sys.exit(gate_main(__doc__, check, min_args=2))
