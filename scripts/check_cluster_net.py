#!/usr/bin/env python3
"""Gate on the real network data plane (bench_cluster_scaleout's `net`
section): a 3-process localhost cluster run over sockets must reproduce
the in-process simulation exactly, and the measured wire traffic must
stay within a sane factor of the simulation's frame-accurate model.

Checks, in order:
  - every rank process exited cleanly and rank 0 produced a report;
  - the multi-process value vector is bit-identical to the in-process
    simulation's (the protocol's central correctness claim);
  - supersteps and cluster-wide message totals match the simulation
    (the barrier counted exactly what the in-process manager counted);
  - measured bytes-on-wire are real: > 0, >= the modeled batch-frame
    bytes (control frames only add), and <= model * max_factor (a blowup
    means the transport is resending, padding, or double-counting);
  - the per-superstep wire series covers every superstep and its sum
    never exceeds the measured total.

Usage: check_cluster_net.py <bench_cluster_scaleout.json> <max_factor>
"""
import sys

from gpsa_gate import Gate, gate_main


def check(report: dict, args: list, gate: Gate) -> None:
    max_factor = float(args[0])
    net = report.get("net")
    if not net:
        gate.fatal("report has no `net` section — the multi-process run "
                   "never happened")

    gate.note(f"{net['ranks']} ranks, {net['supersteps']} supersteps, "
              f"{net['total_messages']} messages, "
              f"{net['measured_bytes_on_wire']} bytes on wire in "
              f"{net['elapsed_seconds']:.3f}s")

    gate.require(net.get("children_ok", False),
                 "a rank process exited abnormally")
    gate.require(net.get("bit_identity", False),
                 "multi-process values diverged from the in-process "
                 "simulation")
    gate.require(net["supersteps"] == net["modeled_supersteps"],
                 f"superstep count diverged: measured {net['supersteps']} "
                 f"vs modeled {net['modeled_supersteps']}")
    gate.require(net["total_messages"] == net["modeled_total_messages"],
                 f"message total diverged: measured {net['total_messages']} "
                 f"vs modeled {net['modeled_total_messages']}")

    measured = net["measured_bytes_on_wire"]
    modeled = net["modeled_bytes_on_wire"]
    gate.require(measured > 0, "no bytes were measured on the wire")
    gate.require(net["measured_frames"] > 0, "no frames were measured")
    if modeled <= 0:
        gate.fatal("modeled bytes-on-wire is zero — the wire model has no "
                   "baseline to compare against")
    factor = measured / modeled
    gate.check_min("measured/modeled wire bytes", factor, 1.0,
                   "measured less traffic than the batch-frame model — "
                   "frames are being dropped or not counted")
    gate.check_max("measured/modeled wire bytes", factor, max_factor,
                   "wire traffic blew past the model — resends, padding, "
                   "or double counting")

    series = net.get("superstep_wire_bytes", [])
    gate.require(len(series) == net["supersteps"],
                 f"per-superstep wire series has {len(series)} entries for "
                 f"{net['supersteps']} supersteps")
    gate.require(sum(series) <= measured,
                 "per-superstep wire series sums past the measured total")


if __name__ == "__main__":
    sys.exit(gate_main(__doc__, check, min_args=2, max_args=2))
