#!/usr/bin/env python3
"""Gate on the scheduler-storm ablation: work stealing must beat the
global-mutex queue by the given factor somewhere in the oversubscribed
regime (actors/worker >= 2), where run-queue pressure is the bottleneck
the new scheduler exists to remove.

Usage: check_storm_ratio.py <bench_ablation_actors.json> <min_ratio>
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)
    min_ratio = float(sys.argv[2])

    cells = {}
    for cell in report["storm"]:
        key = (cell["workers"], cell["actors"])
        cells.setdefault(key, {})[cell["scheduler"]] = cell

    best = None
    for (workers, actors), by_mode in sorted(cells.items()):
        if "global" not in by_mode or "stealing" not in by_mode:
            continue
        oversub = by_mode["stealing"]["oversubscription"]
        ratio = (by_mode["stealing"]["messages_per_sec"] /
                 by_mode["global"]["messages_per_sec"])
        marker = " " if oversub < 2 else "*"
        print(f"{marker} workers={workers:3d} actors={actors:4d} "
              f"oversub={oversub} stealing/global = {ratio:.3f}")
        if oversub >= 2 and (best is None or ratio > best):
            best = ratio

    if best is None:
        print("no oversubscribed storm cells in report", file=sys.stderr)
        return 1
    print(f"best oversubscribed ratio: {best:.3f} (need >= {min_ratio})")
    if best < min_ratio:
        print("FAIL: work stealing did not clear the required ratio",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
