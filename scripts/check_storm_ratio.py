#!/usr/bin/env python3
"""Gate on the scheduler-storm ablation: work stealing must beat the
global-mutex queue by the given factor somewhere in the oversubscribed
regime (actors/worker >= 2), where run-queue pressure is the bottleneck
the new scheduler exists to remove.

Usage: check_storm_ratio.py <bench_ablation_actors.json> <min_ratio>
"""
import sys

from gpsa_gate import Gate, gate_main


def check(report: dict, args: list, gate: Gate) -> None:
    min_ratio = float(args[0])

    cells = {}
    for cell in report["storm"]:
        key = (cell["workers"], cell["actors"])
        cells.setdefault(key, {})[cell["scheduler"]] = cell

    best = None
    for (workers, actors), by_mode in sorted(cells.items()):
        if "global" not in by_mode or "stealing" not in by_mode:
            continue
        oversub = by_mode["stealing"]["oversubscription"]
        ratio = (by_mode["stealing"]["messages_per_sec"] /
                 by_mode["global"]["messages_per_sec"])
        marker = " " if oversub < 2 else "*"
        gate.note(f"{marker} workers={workers:3d} actors={actors:4d} "
                  f"oversub={oversub} stealing/global = {ratio:.3f}")
        if oversub >= 2 and (best is None or ratio > best):
            best = ratio

    if best is None:
        gate.fatal("no oversubscribed storm cells in report")
    gate.check_min("best oversubscribed ratio", best, min_ratio,
                   "work stealing did not clear the required ratio")


if __name__ == "__main__":
    sys.exit(gate_main(__doc__, check, min_args=2))
