#!/usr/bin/env python3
"""Shared plumbing for the bench-JSON CI gates (scripts/check_*.py).

Every gate follows the same protocol: load a GPSA_BENCH_JSON report,
print per-cell diagnostics to stdout, print failures prefixed "FAIL:" to
stderr, and exit 0 on pass / 1 on fail / 2 on usage error. This module
owns that protocol so each gate script contains only its metric logic:

    from gpsa_gate import gate_main

    def check(report, args, gate):
        gate.check_min("best ratio", ratio, float(args[0]), "too slow")

    if __name__ == "__main__":
        sys.exit(gate_main(__doc__, check, min_args=2))

Self-tested by scripts/test_gpsa_gate.py (ctest: gpsa_gate_selftest).
"""
from __future__ import annotations

import json
import sys


class GateFatal(Exception):
    """Raised by Gate.fatal: the report cannot be evaluated at all."""


class Gate:
    """Collects pass/fail state across any number of checks."""

    def __init__(self) -> None:
        self.failed = False

    def note(self, message: str) -> None:
        """Informational line (per-cell diagnostics) to stdout."""
        print(message)

    def warn(self, message: str) -> None:
        """Loud but ungated (e.g. the COST check on varied CI hosts)."""
        print(f"WARNING: {message}")

    def fail(self, message: str) -> None:
        print(f"FAIL: {message}", file=sys.stderr)
        self.failed = True

    def fatal(self, message: str) -> None:
        """A defect that makes the rest of the gate meaningless (missing
        cells, zero denominators): report it and stop evaluating."""
        print(message, file=sys.stderr)
        raise GateFatal(message)

    def require(self, condition: bool, message: str) -> bool:
        """fail(message) unless condition; returns condition."""
        if not condition:
            self.fail(message)
        return bool(condition)

    def check_min(self, label: str, value: float, minimum: float,
                  fail_message: str) -> bool:
        """The threshold comparison every ratio gate ends in."""
        self.note(f"{label}: {value:.3f} (need >= {minimum:g})")
        return self.require(value >= minimum, fail_message)

    def check_max(self, label: str, value: float, maximum: float,
                  fail_message: str) -> bool:
        """Upper-bound flavor (latency SLOs)."""
        self.note(f"{label}: {value:.3f} (need <= {maximum:g})")
        return self.require(value <= maximum, fail_message)


def load_report(path: str) -> dict:
    """Loads a GPSA_BENCH_JSON report."""
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def gate_main(doc: str, check, min_args: int, max_args: int | None = None,
              argv: list[str] | None = None) -> int:
    """Arity/usage handling, report loading, and exit-code mapping.

    `check(report, args, gate)` receives the parsed report, the argv tail
    *after* the report path, and a Gate. `min_args`/`max_args` count the
    positional arguments including the report path.
    """
    max_args = min_args if max_args is None else max_args
    args = (sys.argv if argv is None else argv)[1:]
    if not min_args <= len(args) <= max_args:
        print(doc, file=sys.stderr)
        return 2
    report = load_report(args[0])
    gate = Gate()
    try:
        check(report, args[1:], gate)
    except GateFatal:
        return 1
    return 1 if gate.failed else 0
