#!/usr/bin/env python3
"""gpsa_lint: project-specific concurrency-invariant linter.

Lexical (comment/string-aware) checks for invariants the compiler cannot
express and clang-tidy does not know about:

  memory-order     naked std::memory_order_* outside the audited lock-free
                   substrate files. Everything else must use the annotated
                   Mutex/MutexLock wrappers or plain (seq_cst) atomics.
  slot-atomic-ref  std::atomic_ref<...Slot...> construction outside
                   src/storage/slot.hpp. The two-column slot protocol is
                   centralized there so its ordering contract has exactly
                   one implementation.
  bitmap-atomic-ref
                   std::atomic_ref<...BitmapWord...> construction outside
                   src/storage/slot.hpp. The active-bitmap publication
                   protocol (computers OR bits in, dispatchers read and
                   clear between supersteps) lives next to the slot
                   helpers so both halves of the bit<=>stale-flag
                   invariant share one audited ordering contract.
  locked-notify    cv.notify_one/notify_all outside a held lock, in files
                   that opt into the locked-notify protocol with a
                   `// gpsa-lint: locked-notify` marker — plus every file
                   under src/service/ and src/net/, which opt in by path:
                   both layers pair condition variables with objects whose
                   destructors run as soon as the predicate flips (job
                   completion records, connection state), so an unlocked
                   notify can touch a destroyed condition variable.
  check-macro      assert() instead of GPSA_CHECK/GPSA_DCHECK. assert()
                   vanishes under NDEBUG, so release builds silently skip
                   the invariant.
  raw-io           raw mmap/munmap/pread/pwrite/madvise/posix_fadvise
                   outside src/platform/ and src/io/, where the RAII
                   wrappers and error-status plumbing live.
  raw-socket       raw socket-family syscalls (::socket/::connect/::send
                   /::recv/...) outside src/net/, where the Socket RAII
                   wrapper, Status-carrying error paths, and the framing
                   codec live. Everything above the transport speaks
                   frames, not file descriptors.
  msg-buffer-alloc sized allocation (reserve/resize/sized construction)
                   of std::vector<VertexMessage> batch buffers outside
                   src/core/message_pool.*. Batch capacity must come from
                   MessageBatchPool::lease()/recycle() so steady-state
                   supersteps stay zero-allocation (DESIGN.md §11).
                   Declared buffer names are collected from the file and,
                   for a .cpp, its same-stem .hpp.
  lease-escape     a MessageBatchPool::lease() result stored straight into
                   a member (`foo_ = ....lease()`). Parking a leased batch
                   in a member moves its recycle obligation out of the
                   leasing function, where the per-function balance check
                   (gpsa_analyze lease-balance) can no longer see it.
                   Every such escape needs an ownership note:
                   `// gpsa-lint: allow(lease-escape)` plus a comment
                   naming who recycles the batch.

Suppression: append `// gpsa-lint: allow(<rule>)` to the offending line.

Usage:
  gpsa_lint.py [--root DIR] [--compile-commands JSON] [--json] [files...]

With no file arguments the linter scans <root>/src/**/*.{hpp,cpp} (tests
and benches may legitimately poke at internals). --compile-commands adds
that database's source files (when under <root>) to the scan set, so
generated or out-of-tree sources get linted too. Exit status is 1 when
findings remain after suppression, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# --- Per-rule path exemptions (relative to <root>, '/'-separated). ------
# A trailing '/' exempts the whole directory. These are the audited
# lock-free / platform substrate files; everything else goes through the
# annotated wrappers.

MEMORY_ORDER_ALLOWED = (
    "src/util/mpsc_queue.hpp",
    "src/util/spsc_ring.hpp",
    "src/actor/work_stealing_deque.hpp",
    "src/actor/scheduler.hpp",
    "src/actor/scheduler.cpp",
    "src/actor/actor.hpp",
    "src/storage/slot.hpp",
    "src/io/",
    "src/baselines/",
    # lockdep's enabled() fast path is a relaxed latch read; its graph
    # counters are relaxed stats. The audit lives in lockdep.cpp.
    "src/util/lockdep.hpp",
    "src/util/lockdep.cpp",
)

SLOT_ATOMIC_REF_ALLOWED = ("src/storage/slot.hpp",)

BITMAP_ATOMIC_REF_ALLOWED = ("src/storage/slot.hpp",)

RAW_IO_ALLOWED = (
    "src/platform/",
    "src/io/",
)

# The transport layer is the one sanctioned home for socket syscalls.
RAW_SOCKET_ALLOWED = ("src/net/",)

# The pool is the one sanctioned VertexMessage buffer allocation site.
MSG_BUFFER_ALLOC_ALLOWED = (
    "src/core/message_pool.hpp",
    "src/core/message_pool.cpp",
)

# Directories whose files are in the locked-notify protocol by path, no
# per-file marker needed: service jobs and connection state both die the
# moment their predicate flips.
LOCKED_NOTIFY_OPT_IN = (
    "src/service/",
    "src/net/",
)

RULES = ("memory-order", "slot-atomic-ref", "bitmap-atomic-ref",
         "locked-notify", "check-macro", "raw-io", "raw-socket",
         "msg-buffer-alloc", "lease-escape")

MARKER_RE = re.compile(r"//\s*gpsa-lint:\s*locked-notify\b")
ALLOW_RE = re.compile(r"//\s*gpsa-lint:\s*allow\(([a-z-]+)\)")

MEMORY_ORDER_RE = re.compile(r"\bstd::memory_order_\w+")
SLOT_ATOMIC_REF_RE = re.compile(r"\bstd::atomic_ref<[^<>;(){}]*\bSlot\b")
BITMAP_ATOMIC_REF_RE = re.compile(
    r"\bstd::atomic_ref<[^<>;(){}]*\bBitmapWord\b")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
RAW_IO_RE = re.compile(
    r"(?<![\w.>])(mmap|munmap|pread|pwrite|madvise|posix_fadvise)\s*\(")
# ::-qualified socket-family syscalls. The negative lookbehind keeps
# `Foo::connect(` member definitions and `obj.send(` calls out; only the
# global-namespace `::socket(fd, ...)` form is the syscall.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w>])::\s*(socket|connect|accept4?|bind|listen|setsockopt"
    r"|getsockopt|getsockname|send|recv|sendto|recvfrom|sendmsg|recvmsg"
    r"|shutdown)\s*\(")

# Declarations of VertexMessage batch buffers (plain, nested-in-vector,
# reference, rvalue-reference, pointer): captures the declared name.
MSG_VEC_NAME_RE = re.compile(
    r"vector<\s*(?:std::vector<\s*)?(?:gpsa::)?VertexMessage\s*>\s*>?\s*"
    r"(?:&&?|\*)?\s*(\w+)")
# Direct sized construction of a batch buffer (named or temporary).
# `()` / `{}` empty construction and function declarations don't match:
# the first character inside the parens must be a real argument.
MSG_VEC_SIZED_CTOR_RE = re.compile(
    r"vector<\s*(?:gpsa::)?VertexMessage\s*>\s*(?:\w+\s*)?[({]\s*[^)}\s]")

# Member-variable LHS (trailing-underscore convention, optionally
# indexed) assigned from a lease() call. `(?!=)` keeps `==` comparisons
# out; the character class spans newlines so wrapped assignments match.
LEASE_ESCAPE_RE = re.compile(
    r"\b(\w+_)(?:\[[^\]]*\])?\s*=(?!=)[^;=]*?\blease\s*\(")

LOCK_DECL_RE = re.compile(
    r"\b(?:gpsa::)?(?:MutexLock|std::lock_guard<[^;{}]*?>"
    r"|std::unique_lock<[^;{}]*?>|std::scoped_lock(?:<[^;{}]*?>)?)"
    r"\s+(\w+)\s*\(")
UNLOCK_RE = re.compile(r"\b(\w+)\.unlock\s*\(")
RELOCK_RE = re.compile(r"\b(\w+)\.lock\s*\(")
NOTIFY_RE = re.compile(r"\b\w+(?:\.|->)notify_(?:one|all)\s*\(")
BRACE_RE = re.compile(r"[{}]")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines and
    column positions so line/offset arithmetic on the result matches the
    original file."""
    out = []
    i = 0
    n = len(text)
    NORMAL, LINE, BLOCK, STR, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK
                out.append("  ")
                i += 2
            elif c == '"':
                state = STR
                out.append(" ")
                i += 1
            elif c == "'":
                state = CHAR
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # STR or CHAR
            quote = '"' if state == STR else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = NORMAL
                out.append(" ")
                i += 1
            elif c == "\n":  # unterminated literal; keep line counts sane
                state = NORMAL
                out.append("\n")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def path_exempt(rel: str, allowed: tuple[str, ...]) -> bool:
    for entry in allowed:
        if entry.endswith("/"):
            if rel.startswith(entry):
                return True
        elif rel == entry:
            return True
    return False


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def check_locked_notify(stripped: str):
    """Yields (line, message) for notify calls made with no lock held.

    Tracks brace scopes and the RAII lock objects declared in each; a
    notify is fine when any scope in the stack holds a live lock. This is
    lexical, not a dataflow analysis — conditionally released locks should
    restructure or use `// gpsa-lint: allow(locked-notify)`.
    """
    events = []
    for m in BRACE_RE.finditer(stripped):
        events.append((m.start(), "open" if m.group() == "{" else "close",
                       None))
    for m in LOCK_DECL_RE.finditer(stripped):
        events.append((m.start(), "decl", m.group(1)))
    for m in UNLOCK_RE.finditer(stripped):
        events.append((m.start(), "unlock", m.group(1)))
    for m in RELOCK_RE.finditer(stripped):
        events.append((m.start(), "relock", m.group(1)))
    for m in NOTIFY_RE.finditer(stripped):
        events.append((m.start(), "notify", None))
    events.sort(key=lambda e: e[0])

    frames: list[set] = [set()]
    declared: set = set()
    for pos, kind, name in events:
        if kind == "open":
            frames.append(set())
        elif kind == "close":
            if len(frames) > 1:
                frames.pop()
        elif kind == "decl":
            frames[-1].add(name)
            declared.add(name)
        elif kind == "unlock":
            for frame in reversed(frames):
                frame.discard(name)
        elif kind == "relock":
            if name in declared:  # ignore foo.lock() on non-RAII objects
                frames[-1].add(name)
        elif kind == "notify":
            if not any(frames):
                yield (line_of(stripped, pos),
                       "notify outside the guarding lock in a locked-notify "
                       "file; the waiter may destroy the condition variable "
                       "between your unlock and this notify")


def msg_buffer_names(path: Path, stripped: str) -> set[str]:
    """Names declared as std::vector<VertexMessage> (or a vector of them)
    in this file and, for a .cpp, in its same-stem .hpp — so member
    buffers declared in the header are recognized in the implementation
    file."""
    names = {m.group(1) for m in MSG_VEC_NAME_RE.finditer(stripped)}
    if path.suffix == ".cpp":
        header = path.with_suffix(".hpp")
        if header.is_file():
            try:
                header_text = header.read_text(encoding="utf-8",
                                               errors="replace")
            except OSError:
                return names
            header_stripped = strip_comments_and_strings(header_text)
            names |= {m.group(1)
                      for m in MSG_VEC_NAME_RE.finditer(header_stripped)}
    return names


def check_msg_buffer_alloc(path: Path, stripped: str):
    """Yields (line, message) for sized VertexMessage-buffer allocation."""
    message = ("sized allocation of a VertexMessage batch buffer outside "
               "MessageBatchPool; lease()/recycle() through the pool "
               "(src/core/message_pool.hpp) so steady-state supersteps "
               "stay zero-allocation")
    names = msg_buffer_names(path, stripped)
    if names:
        use_re = re.compile(
            r"\b(?:" + "|".join(sorted(re.escape(n) for n in names)) +
            r")\.(?:reserve|resize)\s*\(")
        for m in use_re.finditer(stripped):
            yield line_of(stripped, m.start()), message
    for m in MSG_VEC_SIZED_CTOR_RE.finditer(stripped):
        yield line_of(stripped, m.start()), message


def lint_file(path: Path, rel: str):
    """Yields finding dicts for one file."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        yield {"rule": "io-error", "file": rel, "line": 0,
               "message": f"unreadable: {err}"}
        return

    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)

    def allowed_on_line(line: int, rule: str) -> bool:
        if 1 <= line <= len(raw_lines):
            m = ALLOW_RE.search(raw_lines[line - 1])
            return bool(m and m.group(1) == rule)
        return False

    def emit(rule: str, line: int, message: str):
        if not allowed_on_line(line, rule):
            yield {"rule": rule, "file": rel, "line": line,
                   "message": message}

    if not path_exempt(rel, MEMORY_ORDER_ALLOWED):
        for m in MEMORY_ORDER_RE.finditer(stripped):
            yield from emit(
                "memory-order", line_of(stripped, m.start()),
                f"naked {m.group()} outside the lock-free substrate; use "
                "the annotated Mutex/MutexLock wrappers or default-order "
                "atomics, or move the code into an allowlisted file")

    if not path_exempt(rel, SLOT_ATOMIC_REF_ALLOWED):
        for m in SLOT_ATOMIC_REF_RE.finditer(stripped):
            yield from emit(
                "slot-atomic-ref", line_of(stripped, m.start()),
                "direct atomic_ref over Slot storage; use the "
                "slot_load/store/consume helpers in src/storage/slot.hpp")

    if not path_exempt(rel, BITMAP_ATOMIC_REF_ALLOWED):
        for m in BITMAP_ATOMIC_REF_RE.finditer(stripped):
            yield from emit(
                "bitmap-atomic-ref", line_of(stripped, m.start()),
                "direct atomic_ref over active-bitmap words; use the "
                "bitmap_word_load/set/clear helpers in "
                "src/storage/slot.hpp")

    if MARKER_RE.search(text) or path_exempt(rel, LOCKED_NOTIFY_OPT_IN):
        for line, message in check_locked_notify(stripped):
            yield from emit("locked-notify", line, message)

    for m in LEASE_ESCAPE_RE.finditer(stripped):
        yield from emit(
            "lease-escape", line_of(stripped, m.start()),
            f"lease() result parked in member `{m.group(1)}`; the recycle "
            "obligation escapes the leasing function and the per-function "
            "lease-balance check. Add // gpsa-lint: allow(lease-escape) "
            "with a comment naming who recycles this batch")

    for m in ASSERT_RE.finditer(stripped):
        yield from emit(
            "check-macro", line_of(stripped, m.start()),
            "assert() is compiled out under NDEBUG; use GPSA_CHECK "
            "(always on) or GPSA_DCHECK (debug-only, self-documenting)")

    if not path_exempt(rel, RAW_IO_ALLOWED):
        for m in RAW_IO_RE.finditer(stripped):
            yield from emit(
                "raw-io", line_of(stripped, m.start()),
                f"raw {m.group(1)}() outside src/platform/ and src/io/; "
                "go through MmapFile / the io backends so errors carry "
                "Status and mappings are RAII-owned")

    if not path_exempt(rel, RAW_SOCKET_ALLOWED):
        for m in RAW_SOCKET_RE.finditer(stripped):
            yield from emit(
                "raw-socket", line_of(stripped, m.start()),
                f"raw ::{m.group(1)}() outside src/net/; go through the "
                "Socket wrapper and frame codec so descriptors are "
                "RAII-owned, errors carry Status, and every byte on the "
                "wire is a checksummed frame")

    if not path_exempt(rel, MSG_BUFFER_ALLOC_ALLOWED):
        seen = set()
        for line, message in check_msg_buffer_alloc(path, stripped):
            if line not in seen:  # name + ctor rules can overlap on a line
                seen.add(line)
                yield from emit("msg-buffer-alloc", line, message)


def collect_files(root: Path, compile_commands: Path | None,
                  explicit: list[str]) -> list[tuple[Path, str]]:
    """Returns (absolute path, root-relative display path) pairs."""
    pairs: dict[str, Path] = {}

    def add(p: Path):
        p = p.resolve()
        try:
            rel = p.relative_to(root).as_posix()
        except ValueError:
            rel = p.as_posix()  # outside root (fixtures under odd cwd)
        pairs.setdefault(rel, p)

    if explicit:
        for name in explicit:
            add(Path(name))
        return sorted((p, rel) for rel, p in pairs.items())

    for pattern in ("src/**/*.hpp", "src/**/*.cpp"):
        for p in sorted(root.glob(pattern)):
            add(p)
    if compile_commands is not None:
        try:
            db = json.loads(compile_commands.read_text(encoding="utf-8"))
        except (OSError, ValueError) as err:
            print(f"gpsa_lint: cannot read {compile_commands}: {err}",
                  file=sys.stderr)
            sys.exit(2)
        for entry in db:
            p = Path(entry["directory"]) / entry["file"]
            p = p.resolve()
            if p.suffix in (".cpp", ".hpp") and \
                    p.is_relative_to(root / "src"):
                add(p)
    return sorted((p, rel) for rel, p in pairs.items())


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: scripts/..)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json to widen the scan set")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON on stdout")
    parser.add_argument("files", nargs="*",
                        help="lint only these files (fixture/self-test mode)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    findings = []
    for path, rel in collect_files(root, args.compile_commands, args.files):
        findings.extend(lint_file(path, rel))
    findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))

    if args.json:
        json.dump({"findings": findings}, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for f in findings:
            print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
        if findings:
            print(f"gpsa_lint: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
