#!/usr/bin/env python3
"""Self-test for gpsa_lint.py against the fixtures in tests/lint_fixtures/.

Each bad_<rule>.cpp fixture must produce exactly one finding of its rule at
a known line; clean.cpp (which contains a suppressed violation of every
suppressible rule) must produce none. Run directly or via ctest
(gpsa_lint_selftest).
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
LINTER = ROOT / "scripts" / "gpsa_lint.py"
FIXTURES = ROOT / "tests" / "lint_fixtures"

# fixture name -> (rule, line) of its single expected finding
EXPECTED = {
    "bad_memory_order.cpp": ("memory-order", 7),
    "bad_slot_atomic_ref.cpp": ("slot-atomic-ref", 9),
    "bad_bitmap_atomic_ref.cpp": ("bitmap-atomic-ref", 9),
    "bad_locked_notify.cpp": ("locked-notify", 22),
    "bad_assert.cpp": ("check-macro", 7),
    "bad_raw_io.cpp": ("raw-io", 6),
    "bad_raw_socket.cpp": ("raw-socket", 7),
    "bad_msg_buffer_alloc.cpp": ("msg-buffer-alloc", 11),
    "bad_lease_escape.cpp": ("lease-escape", 16),
}

failures = []


def run_lint(*files: Path) -> tuple[int, list[dict]]:
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--json", "--root", str(ROOT),
         *map(str, files)],
        capture_output=True, text=True)
    try:
        findings = json.loads(proc.stdout)["findings"]
    except (ValueError, KeyError):
        failures.append(f"unparseable linter output: {proc.stdout!r} "
                        f"stderr: {proc.stderr!r}")
        return proc.returncode, []
    return proc.returncode, findings


def expect(condition: bool, message: str):
    if not condition:
        failures.append(message)


def main() -> int:
    for name, (rule, line) in sorted(EXPECTED.items()):
        fixture = FIXTURES / name
        expect(fixture.exists(), f"{name}: fixture missing")
        code, findings = run_lint(fixture)
        expect(code == 1, f"{name}: exit {code}, want 1")
        expect(len(findings) == 1,
               f"{name}: {len(findings)} finding(s), want exactly 1: "
               f"{findings}")
        if len(findings) == 1:
            f = findings[0]
            expect(f["rule"] == rule,
                   f"{name}: rule {f['rule']!r}, want {rule!r}")
            expect(f["line"] == line,
                   f"{name}: line {f['line']}, want {line}")
            expect(f["file"].endswith(name),
                   f"{name}: file {f['file']!r} should end with fixture name")
            expect(bool(f["message"]), f"{name}: empty message")

    # clean.cpp: zero findings and exit 0 — this also proves the
    # `// gpsa-lint: allow(<rule>)` escapes suppress, since the file
    # contains a real memory-order violation behind one.
    clean = FIXTURES / "clean.cpp"
    code, findings = run_lint(clean)
    expect(code == 0, f"clean.cpp: exit {code}, want 0")
    expect(findings == [], f"clean.cpp: unexpected findings: {findings}")

    # An allow() for the WRONG rule must not suppress: lint the
    # memory-order fixture pretending its escape targeted another rule by
    # checking the suppressed line in bad_slot_atomic_ref.cpp only
    # silences memory-order there, while slot-atomic-ref still fires.
    code, findings = run_lint(FIXTURES / "bad_slot_atomic_ref.cpp")
    rules = sorted(f["rule"] for f in findings)
    expect(rules == ["slot-atomic-ref"],
           f"allow(memory-order) must not silence slot-atomic-ref: {rules}")

    # Whole-batch run: all fixtures at once, findings keyed per file.
    code, findings = run_lint(*(FIXTURES / n for n in EXPECTED), clean)
    expect(len(findings) == len(EXPECTED),
           f"batch run: {len(findings)} findings, want {len(EXPECTED)}")

    # Path-based locked-notify opt-in: the same unlocked notify fires
    # under src/service/ with no per-file marker, and stays quiet under a
    # directory that is not in the protocol.
    notify_src = ("#include <condition_variable>\n"
                  "std::condition_variable cv;\n"
                  "void kick() { cv.notify_one(); }\n")
    with tempfile.TemporaryDirectory() as tmp:
        for sub, want_rules in (("service", ["locked-notify"]),
                                ("core", [])):
            d = Path(tmp) / "src" / sub
            d.mkdir(parents=True)
            (d / "kick.cpp").write_text(notify_src)
            proc = subprocess.run(
                [sys.executable, str(LINTER), "--json", "--root", tmp],
                capture_output=True, text=True)
            rules = sorted(f["rule"]
                           for f in json.loads(proc.stdout)["findings"])
            expect(rules == want_rules,
                   f"path opt-in under src/{sub}/: rules {rules}, "
                   f"want {want_rules}")
            (d / "kick.cpp").unlink()

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"gpsa_lint self-test: {len(EXPECTED) + 5} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
