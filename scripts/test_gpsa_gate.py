#!/usr/bin/env python3
"""Self-test for the bench-JSON gates (gpsa_gate.py + check_*.py).

Each gate runs as a subprocess against generated JSON fixtures: one
report shaped to pass and, for each gated property, a mutation that must
fail with exit 1 and a FAIL: line on stderr. Arity errors must exit 2
with the usage text. Run directly or via ctest (gpsa_gate_selftest).
"""

from __future__ import annotations

import copy
import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SCRIPTS = ROOT / "scripts"

failures: list[str] = []


def expect(condition: bool, message: str) -> None:
    if not condition:
        failures.append(message)


def run_gate(script: str, report: dict | None, *args: str,
             tmp: Path) -> subprocess.CompletedProcess:
    argv = [sys.executable, str(SCRIPTS / script)]
    if report is not None:
        path = tmp / f"{script}.json"
        path.write_text(json.dumps(report), encoding="utf-8")
        argv.append(str(path))
    argv.extend(args)
    return subprocess.run(argv, capture_output=True, text=True)


def check_gate(name: str, script: str, passing: dict, pass_args: list[str],
               mutations: dict, tmp: Path) -> None:
    """Runs the pass case, each failing mutation, and the usage error."""
    proc = run_gate(script, passing, *pass_args, tmp=tmp)
    expect(proc.returncode == 0,
           f"{name}: pass case exited {proc.returncode}: {proc.stderr!r}")

    for label, mutate in sorted(mutations.items()):
        report = copy.deepcopy(passing)
        args = mutate(report) or pass_args
        proc = run_gate(script, report, *args, tmp=tmp)
        expect(proc.returncode == 1,
               f"{name}/{label}: exited {proc.returncode}, want 1 "
               f"(stdout: {proc.stdout!r})")
        expect("FAIL" in proc.stderr or proc.stderr.strip() != "",
               f"{name}/{label}: nothing on stderr")

    proc = run_gate(script, None, tmp=tmp)  # no report path, no args
    expect(proc.returncode == 2,
           f"{name}: usage error exited {proc.returncode}, want 2")
    expect("Usage:" in proc.stderr, f"{name}: usage text missing on stderr")


def storm_report() -> dict:
    def cell(scheduler, rate):
        return {"workers": 4, "actors": 16, "scheduler": scheduler,
                "oversubscription": 4, "messages_per_sec": rate}
    return {"storm": [cell("global", 1.0e6), cell("stealing", 2.0e6)]}


def io_report() -> dict:
    def cell(readahead, rate):
        return {"dataset": "google", "backend": "mmap",
                "readahead": readahead, "dispatch_mb_per_sec": rate}
    return {"cells": [cell("off", 100.0), cell("on", 200.0)]}


def msgplane_report() -> dict:
    return {"cells": [
        {"pool": "off", "routing": "mod", "msgs_per_sec": 1.0e6,
         "round_msgs_per_sec": [1.0e6, 1.1e6]},
        {"pool": "on", "routing": "range", "msgs_per_sec": 2.0e6,
         "round_msgs_per_sec": [2.0e6, 2.1e6], "pool_hits": 100,
         "pool_misses": 4, "pool_steady_misses": 0},
    ]}


def worklist_report() -> dict:
    def cell(exec_mode, edges, series):
        return {"exec": exec_mode, "seconds": 0.5, "supersteps": 4,
                "messages": 100, "active": 50, "edges_touched": edges,
                "superstep_active": [10, 40, 5, 1],
                "superstep_edges": series}
    return {"results_identical": True, "reference_identical": True,
            "reference_seconds": 2.0,
            "cells": [cell("sweep", 90, [10, 20, 30, 30]),
                      cell("worklist", 40, [10, 20, 5, 5])]}


def service_report() -> dict:
    return {"bench": "service_qps", "clients": 4, "queries": 400,
            "failures": 0, "wall_seconds": 2.5, "qps": 160.0,
            "p50_ms": 24.0, "p99_ms": 36.0, "queue_p99_ms": 1.0,
            "admission_retries": 0, "background_supersteps": 1000,
            "resident_cancelled_cleanly": True, "samples_checked": 8,
            "results_identical": True}


def csr_v2_report() -> dict:
    def cell(dataset, fmt, order, bytes_read, throughput):
        return {"dataset": dataset, "format": fmt, "order": order,
                "bytes_read": bytes_read, "csr_file_bytes": bytes_read,
                "edges_per_busy_sec": throughput,
                "cc_checksum": f"{dataset}-checksum"}
    cells = []
    for dataset in ("google", "pokec"):
        cells.append(cell(dataset, "v1", "none", 3_000_000, 1.0e6))
        cells.append(cell(dataset, "v2", "none", 1_000_000, 1.1e6))
        cells.append(cell(dataset, "v2", "degree", 900_000, 1.2e6))
    return {"bench": "ablation_csr_v2", "cells": cells}


def cluster_net_report() -> dict:
    return {"bench": "cluster_scaleout",
            "net": {"ranks": 3, "children_ok": True, "bit_identity": True,
                    "supersteps": 5, "total_messages": 76212,
                    "measured_bytes_on_wire": 419408, "measured_frames": 80,
                    "modeled_supersteps": 5, "modeled_total_messages": 76212,
                    "modeled_bytes_on_wire": 416952, "modeled_frames": 30,
                    "elapsed_seconds": 0.13,
                    "superstep_wire_bytes": [84396, 83732, 83732, 83732,
                                             83732]}}


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="gpsa_gate_test") as tmpdir:
        tmp = Path(tmpdir)

        check_gate(
            "storm", "check_storm_ratio.py", storm_report(), ["1.3"],
            {
                "below-threshold": lambda r: ["3.0"],
                "no-oversubscribed-cells": lambda r: (
                    [c.update(oversubscription=1) for c in r["storm"]],
                    ["1.3"])[1],
            }, tmp)

        check_gate(
            "io", "check_io_ratio.py", io_report(), ["1.5"],
            {
                "below-threshold": lambda r: ["3.0"],
                "missing-dataset": lambda r: ["1.5", "twitter"],
            }, tmp)

        check_gate(
            "msgplane", "check_msgplane_ratio.py", msgplane_report(),
            ["1.5"],
            {
                "below-threshold": lambda r: ["3.0"],
                "steady-misses": lambda r: (
                    r["cells"][1].update(pool_steady_misses=2),
                    ["1.5"])[1],
                "missing-cell": lambda r: (r["cells"].pop(0), ["1.5"])[1],
            }, tmp)

        check_gate(
            "worklist", "check_worklist_ratio.py", worklist_report(),
            ["2.0"],
            {
                "below-threshold": lambda r: ["20.0"],
                "results-differ": lambda r: (
                    r.update(results_identical=False), ["2.0"])[1],
                "superstep-mismatch": lambda r: (
                    r["cells"][1].update(supersteps=5), ["2.0"])[1],
            }, tmp)

        check_gate(
            "service_slo", "check_service_slo.py", service_report(),
            ["500", "20"],
            {
                "p99-over-slo": lambda r: ["10", "20"],
                "qps-under-slo": lambda r: ["500", "100000"],
                "query-failures": lambda r: (
                    r.update(failures=3), ["500", "20"])[1],
                "results-diverged": lambda r: (
                    r.update(results_identical=False), ["500", "20"])[1],
                "resident-starved": lambda r: (
                    r.update(background_supersteps=0),
                    ["500", "20", "1"])[1],
                "unclean-cancel": lambda r: (
                    r.update(resident_cancelled_cleanly=False),
                    ["500", "20"])[1],
            }, tmp)

        check_gate(
            "csr_v2", "check_csr_v2.py", csr_v2_report(), ["1.5", "0.9"],
            {
                "bytes-ratio-below-threshold": lambda r: ["5.0", "0.9"],
                "throughput-regressed": lambda r: ["1.5", "2.0"],
                "checksum-diverged": lambda r: (
                    r["cells"][2].update(cc_checksum="oops"),
                    ["1.5", "0.9"])[1],
                "missing-v2-cell": lambda r: (
                    r["cells"].pop(1), ["1.5", "0.9"])[1],
            }, tmp)

        check_gate(
            "cluster_net", "check_cluster_net.py", cluster_net_report(),
            ["2.0"],
            {
                "factor-over-limit": lambda r: ["1.001"],
                "values-diverged": lambda r: (
                    r["net"].update(bit_identity=False), ["2.0"])[1],
                "dead-rank": lambda r: (
                    r["net"].update(children_ok=False), ["2.0"])[1],
                "superstep-mismatch": lambda r: (
                    r["net"].update(modeled_supersteps=4), ["2.0"])[1],
                "message-mismatch": lambda r: (
                    r["net"].update(modeled_total_messages=1), ["2.0"])[1],
                "under-model": lambda r: (
                    r["net"].update(measured_bytes_on_wire=100),
                    ["2.0"])[1],
                "short-series": lambda r: (
                    r["net"]["superstep_wire_bytes"].pop(), ["2.0"])[1],
            }, tmp)

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("gpsa_gate self-test: all gate pass/fail/usage checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
