#!/usr/bin/env python3
"""Gate on the v2 CSR storage ablation (bench_ablation_csr_v2): the
compressed format must actually shrink what dispatchers read, must not
pay for it in dispatch throughput, and must not change results.

Per dataset, three checks over the (format, order) cells:

  1. bytes-read ratio: v1/none bytes_read divided by v2/none bytes_read
     must reach <min_bytes_ratio> (the encoding's whole reason to exist);
  2. throughput floor: the best v2 cell's edge throughput (edges
     dispatched per dispatcher-busy second — byte-agnostic, so varint
     decode overhead shows up even while bytes shrink) must be at least
     <min_throughput_frac> of the v1/none run's. Best-of-v2 follows the
     check_io_ratio.py precedent: which v2 configuration wins is
     host-dependent (renumbering pays off where cache pressure is real),
     but every v2 cell losing badly means decode cost ate the format;
  3. checksum identity: the Connected Components checksum — monotone, so
     bit-exact regardless of storage layout — must agree across every
     cell of the dataset, including the renumbered one.

Usage: check_csr_v2.py <bench_ablation_csr_v2.json> <min_bytes_ratio>
       <min_throughput_frac>
"""
import sys

from gpsa_gate import Gate, gate_main


def check(report: dict, args: list, gate: Gate) -> None:
    min_bytes_ratio = float(args[0])
    min_throughput_frac = float(args[1])

    by_dataset = {}
    for cell in report["cells"]:
        key = (cell["format"], cell["order"])
        by_dataset.setdefault(cell["dataset"], {})[key] = cell

    if not by_dataset:
        gate.fatal("no cells in report")

    for dataset, cells in sorted(by_dataset.items()):
        v1 = cells.get(("v1", "none"))
        v2 = cells.get(("v2", "none"))
        if v1 is None or v2 is None:
            gate.fatal(f"{dataset}: missing the v1/none or v2/none cell")

        if v2["bytes_read"] <= 0:
            gate.fatal(f"{dataset}: v2 bytes_read is zero")
        ratio = v1["bytes_read"] / v2["bytes_read"]
        gate.note(f"  {dataset}: bytes read v1/v2 = "
                  f"{v1['bytes_read']}/{v2['bytes_read']} = {ratio:.3f}")
        gate.check_min(f"{dataset} bytes-read reduction", ratio,
                       min_bytes_ratio,
                       f"{dataset}: v2 did not shrink dispatch reads enough")

        if v1["edges_per_busy_sec"] <= 0:
            gate.fatal(f"{dataset}: v1 edge throughput is zero")
        best = None
        for key, cell in sorted(cells.items()):
            if key[0] != "v2":
                continue
            frac = cell["edges_per_busy_sec"] / v1["edges_per_busy_sec"]
            gate.note(f"  {dataset} v2/{key[1]}: edge throughput vs v1 = "
                      f"{cell['edges_per_busy_sec']:.0f}/"
                      f"{v1['edges_per_busy_sec']:.0f} = {frac:.3f}")
            if best is None or frac > best:
                best = frac
        gate.check_min(f"{dataset} best v2 throughput retention", best,
                       min_throughput_frac,
                       f"{dataset}: varint decode cost ate the byte savings")

        for key, cell in sorted(cells.items()):
            gate.note(f"  {dataset} {key[0]}/{key[1]}: "
                      f"cc checksum {cell['cc_checksum']}")
            gate.require(
                cell["cc_checksum"] == v1["cc_checksum"],
                f"{dataset} {key[0]}/{key[1]}: cc checksum "
                f"{cell['cc_checksum']} != v1 {v1['cc_checksum']} — "
                f"storage layout changed results")


if __name__ == "__main__":
    sys.exit(gate_main(__doc__, check, min_args=3, max_args=3))
