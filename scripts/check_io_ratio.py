#!/usr/bin/env python3
"""Gate on the I/O ablation: on the cold-cache google stand-in, readahead
must raise dispatch throughput (bytes read per dispatcher-busy second) by
the given factor over the readahead-off run of the same backend, for at
least one backend.

The gate takes the best per-backend ratio rather than demanding every
backend clear the bar: which backend benefits most is host-dependent
(mmap's madvise windows on rotational/virtio disks, the block caches on
NVMe), but *some* backend failing to beat its own no-readahead baseline
means the readahead scheduler is not doing its job anywhere.

Usage: check_io_ratio.py <bench_ablation_io.json> <min_ratio> [dataset]
"""
import json
import sys


def main() -> int:
    if len(sys.argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)
    min_ratio = float(sys.argv[2])
    dataset = sys.argv[3] if len(sys.argv) == 4 else "google"

    by_backend = {}
    for cell in report["cells"]:
        if cell["dataset"] != dataset:
            continue
        by_backend.setdefault(cell["backend"], {})[cell["readahead"]] = cell

    best = None
    for backend, by_mode in sorted(by_backend.items()):
        if "on" not in by_mode or "off" not in by_mode:
            continue
        off = by_mode["off"]["dispatch_mb_per_sec"]
        on = by_mode["on"]["dispatch_mb_per_sec"]
        if off <= 0:
            print(f"  {backend}: no-readahead throughput is zero; skipping",
                  file=sys.stderr)
            continue
        ratio = on / off
        print(f"  {backend}: readahead on/off = {on:.1f}/{off:.1f} MB/s "
              f"= {ratio:.3f}")
        if best is None or ratio > best:
            best = ratio

    if best is None:
        print(f"no usable {dataset} cells in report", file=sys.stderr)
        return 1
    print(f"best readahead ratio on {dataset}: {best:.3f} "
          f"(need >= {min_ratio})")
    if best < min_ratio:
        print("FAIL: readahead did not clear the required dispatch "
              "throughput ratio", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
