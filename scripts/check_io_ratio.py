#!/usr/bin/env python3
"""Gate on the I/O ablation: on the cold-cache google stand-in, readahead
must raise dispatch throughput (bytes read per dispatcher-busy second) by
the given factor over the readahead-off run of the same backend, for at
least one backend.

The gate takes the best per-backend ratio rather than demanding every
backend clear the bar: which backend benefits most is host-dependent
(mmap's madvise windows on rotational/virtio disks, the block caches on
NVMe), but *some* backend failing to beat its own no-readahead baseline
means the readahead scheduler is not doing its job anywhere.

Usage: check_io_ratio.py <bench_ablation_io.json> <min_ratio> [dataset]
"""
import sys

from gpsa_gate import Gate, gate_main


def check(report: dict, args: list, gate: Gate) -> None:
    min_ratio = float(args[0])
    dataset = args[1] if len(args) == 2 else "google"

    by_backend = {}
    for cell in report["cells"]:
        if cell["dataset"] != dataset:
            continue
        by_backend.setdefault(cell["backend"], {})[cell["readahead"]] = cell

    best = None
    for backend, by_mode in sorted(by_backend.items()):
        if "on" not in by_mode or "off" not in by_mode:
            continue
        off = by_mode["off"]["dispatch_mb_per_sec"]
        on = by_mode["on"]["dispatch_mb_per_sec"]
        if off <= 0:
            print(f"  {backend}: no-readahead throughput is zero; skipping",
                  file=sys.stderr)
            continue
        ratio = on / off
        gate.note(f"  {backend}: readahead on/off = {on:.1f}/{off:.1f} MB/s "
                  f"= {ratio:.3f}")
        if best is None or ratio > best:
            best = ratio

    if best is None:
        gate.fatal(f"no usable {dataset} cells in report")
    gate.check_min(f"best readahead ratio on {dataset}", best, min_ratio,
                   "readahead did not clear the required dispatch "
                   "throughput ratio")


if __name__ == "__main__":
    sys.exit(gate_main(__doc__, check, min_args=2, max_args=3))
