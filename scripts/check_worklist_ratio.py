#!/usr/bin/env python3
"""Gate on the worklist ablation: on the BFS frontier *tail* — the
supersteps after the frontier peak, where only a shrinking set of
vertices is active — worklist dispatch must touch at least `min_ratio`
times fewer CSR entries + vertex checks than the sweep. The tail is
where the sweep's O(V) per-superstep walk is pure waste; mid-run
supersteps, where most of the graph is active, are identical in both
modes and would dilute a whole-run ratio on a low-diameter graph.

Both modes must also produce bit-identical results over the identical
superstep count — the active bitmap's contract is that a set bit is
exactly a clear stale flag, so any divergence in results, superstep
count, message count, or dispatched-vertex count is a correctness bug,
not a performance miss.

The COST-style single-thread reference time is reported for context: if
the worklist engine is slower than the plain sequential for-loop, the
parallel scheduling overhead has outgrown the work (McSherry et al.) —
flagged loudly but not gated, since CI machines vary in core count.

Usage: check_worklist_ratio.py <bench_ablation_worklist.json> <min_ratio>
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)
    min_ratio = float(sys.argv[2])

    cells = {cell["exec"]: cell for cell in report["cells"]}
    sweep = cells.get("sweep")
    worklist = cells.get("worklist")
    if sweep is None or worklist is None:
        print("missing sweep or worklist cell in report", file=sys.stderr)
        return 1

    failed = False
    if not report.get("results_identical", False):
        print("FAIL: sweep and worklist produced different results",
              file=sys.stderr)
        failed = True
    if not report.get("reference_identical", False):
        print("FAIL: worklist diverged from the single-thread reference",
              file=sys.stderr)
        failed = True
    for key in ("supersteps", "messages", "active"):
        if sweep[key] != worklist[key]:
            print(f"FAIL: {key} differ: sweep={sweep[key]} "
                  f"worklist={worklist[key]}", file=sys.stderr)
            failed = True

    if worklist["edges_touched"] <= 0:
        print("FAIL: worklist touched zero edges", file=sys.stderr)
        return 1
    total_ratio = sweep["edges_touched"] / worklist["edges_touched"]
    print(f"edges touched (whole run): sweep={sweep['edges_touched']} "
          f"worklist={worklist['edges_touched']} ratio={total_ratio:.2f} "
          f"(informational)")

    # Gated metric: the frontier tail. Both modes dispatch the same
    # vertices, so the per-superstep active series is shared; the tail
    # is every superstep after the frontier peak.
    active_series = sweep.get("superstep_active", [])
    if active_series != worklist.get("superstep_active", []):
        print("FAIL: per-superstep active series differ between modes",
              file=sys.stderr)
        failed = True
    if not active_series:
        print("FAIL: report has no per-superstep series", file=sys.stderr)
        return 1
    peak = active_series.index(max(active_series))
    sweep_tail = sum(sweep["superstep_edges"][peak + 1:])
    worklist_tail = sum(worklist["superstep_edges"][peak + 1:])
    if worklist_tail <= 0:
        print("FAIL: no frontier tail after the peak (superstep "
              f"{peak} of {len(active_series)}) — graph too small or "
              "run did not converge", file=sys.stderr)
        return 1
    tail_ratio = sweep_tail / worklist_tail
    print(f"edges touched (tail, supersteps {peak + 1}.."
          f"{len(active_series) - 1}): sweep={sweep_tail} "
          f"worklist={worklist_tail} ratio={tail_ratio:.2f} "
          f"(need >= {min_ratio})")
    if tail_ratio < min_ratio:
        print("FAIL: worklist did not reduce tail touched edges enough",
              file=sys.stderr)
        failed = True

    reference = report.get("reference_seconds", 0.0)
    if reference > 0 and worklist["seconds"] > reference:
        print(f"WARNING: worklist engine ({worklist['seconds']:.4f}s) is "
              f"slower than the single-thread reference ({reference:.4f}s) "
              f"— COST check (not gated)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
