#!/usr/bin/env python3
"""Gate on the worklist ablation: on the BFS frontier *tail* — the
supersteps after the frontier peak, where only a shrinking set of
vertices is active — worklist dispatch must touch at least `min_ratio`
times fewer CSR entries + vertex checks than the sweep. The tail is
where the sweep's O(V) per-superstep walk is pure waste; mid-run
supersteps, where most of the graph is active, are identical in both
modes and would dilute a whole-run ratio on a low-diameter graph.

Both modes must also produce bit-identical results over the identical
superstep count — the active bitmap's contract is that a set bit is
exactly a clear stale flag, so any divergence in results, superstep
count, message count, or dispatched-vertex count is a correctness bug,
not a performance miss.

The COST-style single-thread reference time is reported for context: if
the worklist engine is slower than the plain sequential for-loop, the
parallel scheduling overhead has outgrown the work (McSherry et al.) —
flagged loudly but not gated, since CI machines vary in core count.

Usage: check_worklist_ratio.py <bench_ablation_worklist.json> <min_ratio>
"""
import sys

from gpsa_gate import Gate, gate_main


def check(report: dict, args: list, gate: Gate) -> None:
    min_ratio = float(args[0])

    cells = {cell["exec"]: cell for cell in report["cells"]}
    sweep = cells.get("sweep")
    worklist = cells.get("worklist")
    if sweep is None or worklist is None:
        gate.fatal("missing sweep or worklist cell in report")

    gate.require(report.get("results_identical", False),
                 "sweep and worklist produced different results")
    gate.require(report.get("reference_identical", False),
                 "worklist diverged from the single-thread reference")
    for key in ("supersteps", "messages", "active"):
        gate.require(sweep[key] == worklist[key],
                     f"{key} differ: sweep={sweep[key]} "
                     f"worklist={worklist[key]}")

    if worklist["edges_touched"] <= 0:
        gate.fatal("FAIL: worklist touched zero edges")
    total_ratio = sweep["edges_touched"] / worklist["edges_touched"]
    gate.note(f"edges touched (whole run): sweep={sweep['edges_touched']} "
              f"worklist={worklist['edges_touched']} ratio={total_ratio:.2f} "
              f"(informational)")

    # Gated metric: the frontier tail. Both modes dispatch the same
    # vertices, so the per-superstep active series is shared; the tail
    # is every superstep after the frontier peak.
    active_series = sweep.get("superstep_active", [])
    gate.require(active_series == worklist.get("superstep_active", []),
                 "per-superstep active series differ between modes")
    if not active_series:
        gate.fatal("FAIL: report has no per-superstep series")
    peak = active_series.index(max(active_series))
    sweep_tail = sum(sweep["superstep_edges"][peak + 1:])
    worklist_tail = sum(worklist["superstep_edges"][peak + 1:])
    if worklist_tail <= 0:
        gate.fatal(f"FAIL: no frontier tail after the peak (superstep "
                   f"{peak} of {len(active_series)}) — graph too small or "
                   f"run did not converge")
    gate.check_min(
        f"edges touched on the tail (supersteps {peak + 1}.."
        f"{len(active_series) - 1}, sweep={sweep_tail} "
        f"worklist={worklist_tail})",
        sweep_tail / worklist_tail, min_ratio,
        "worklist did not reduce tail touched edges enough")

    reference = report.get("reference_seconds", 0.0)
    if reference > 0 and worklist["seconds"] > reference:
        gate.warn(f"worklist engine ({worklist['seconds']:.4f}s) is "
                  f"slower than the single-thread reference "
                  f"({reference:.4f}s) — COST check (not gated)")


if __name__ == "__main__":
    sys.exit(gate_main(__doc__, check, min_args=2))
