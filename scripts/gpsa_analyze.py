#!/usr/bin/env python3
"""gpsa_analyze: whole-program lock-order, actor-blocking, and
lease-balance analysis (DESIGN.md §15).

Where gpsa_lint.py checks per-file lexical invariants, this tool builds a
project-wide model — every class, every function definition, a call graph,
and the mutex-acquisition graph implied by the annotated Mutex/MutexLock
wrappers and GPSA_REQUIRES annotations — and runs three cross-translation-
unit checkers over it:

  lock-order       Acquisition-order cycles across all annotated Mutex
                   instances. Holding lock A while (directly or through
                   any call chain) acquiring lock B adds the edge A -> B
                   to a global order graph; any cycle is a potential
                   deadlock and is reported with the witnessing file:line
                   chain for every edge. The runtime cross-check is the
                   GPSA_LOCKDEP mode in src/util/lockdep.{hpp,cpp}, which
                   accretes the same graph from observed acquisitions and
                   aborts on the first cycle (the TSan CI leg runs with it
                   on).

  actor-blocking   Reachability from every actor entry point
                   (Schedulable::execute_batch overrides and Actor
                   on_message handlers) to blocking primitives: condition
                   variable and atomic waits, sleeps, thread joins, and
                   raw blocking syscalls (::send/::recv family, ::poll,
                   pread/pwrite/fsync). An actor that blocks holds a
                   scheduler worker hostage; the explicit allowlist below
                   names the points that are *designed* to block and why.

  lease-balance    Every MessageBatchPool::lease() result must, within
                   its function, either be recycle()d, be std::move()d
                   onward (ownership transfer: into a mailbox message, a
                   TaggedBatch, the wire), or carry an explicit
                   `// gpsa-analyze: transfer(<why>)` note. A leased
                   buffer that silently dies is not a leak (the pool
                   tolerates drops) but it is a steady-state pool miss in
                   disguise, and the message-plane bench gates on zero.

Frontends: a libclang frontend is attempted first when the python
bindings are importable (`import clang.cindex`), refining call-edge
resolution with real AST types; otherwise the structural frontend — a
comment/string-aware project-idiom parser — builds the whole model on its
own. The structural frontend is the one CI gates on (ubuntu runners have
no python3-clang) and the fixture self-test pins its behavior; the
`-Xclang -ast-dump=json` route was rejected as a fallback because its
output shape is clang-version-dependent, which would make the gate
flaky across toolchains.

Suppression: append `// gpsa-analyze: allow(<rule>)` to the offending
line (the acquisition site, the blocking primitive, or the lease).

Usage:
  gpsa_analyze.py [--root DIR] [--compile-commands JSON] [--json]
                  [--report FILE] [--require-covered PATH ...] [files...]

With no file arguments the analyzer scans <root>/src/**/*.{hpp,cpp}.
--compile-commands both widens the scan set and backs --require-covered,
which fails (rule `coverage`) when a named source file or directory has
no entry in the compilation database — the guard that keeps new
subsystems from silently regressing out of the clang-tidy/TSA gate.
Exit status is 1 when findings remain after suppression, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

# --- Policy: designed blocking points -----------------------------------
#
# Functions (by qualified name) from which reaching a blocking primitive
# is the design, not a bug. Every entry needs a reason; the DESIGN.md §15
# policy is that an allowlist entry must name the mechanism that keeps
# the block from holding the whole scheduler hostage.
BLOCKING_ALLOWLIST = {
    "TransportActor::on_message":
        "sanctioned blocking point (DESIGN.md §14): the peer's dedicated "
        "poller thread drains its end regardless of actor scheduling, so "
        "no send-send cycle exists for back-pressure to deadlock on",
    "BlockCacheStream::fetch":
        "synchronous-miss I/O stall by design; stall time is counted in "
        "PrefetchCounters and the readahead scheduler exists to hide it "
        "(mmap's equivalent stall is a page fault, invisible to any "
        "syscall-level checker — §15 documents that asymmetry)",
}

# Lease sites allowed to hand the buffer to an owner the analyzer cannot
# see lexically (member stores shipped by a later flush, for example)
# get an inline `// gpsa-analyze: transfer(...)` note instead; this table
# exists for call-shaped transfers where the note would be misplaced.
LEASE_TRANSFER_ALLOWLIST: dict[str, str] = {}

RULES = ("lock-order", "actor-blocking", "lease-balance", "coverage")

ALLOW_RE = re.compile(r"//\s*gpsa-analyze:\s*allow\(([a-z-]+)\)")
TRANSFER_RE = re.compile(r"//\s*gpsa-analyze:\s*transfer\(([^)]*)\)")

# --- Lexical layer (shared idiom with gpsa_lint.py) ---------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines and
    column positions so line/offset arithmetic matches the original."""
    out = []
    i = 0
    n = len(text)
    NORMAL, LINE, BLOCK, STR, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = BLOCK
                out.append("  ")
                i += 2
            elif c == '"':
                state = STR
                out.append(" ")
                i += 1
            elif c == "'":
                state = CHAR
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == LINE:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # STR or CHAR
            quote = '"' if state == STR else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = NORMAL
                out.append(" ")
                i += 1
            elif c == "\n":
                state = NORMAL
                out.append("\n")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_brace(text: str, open_pos: int) -> int:
    """Offset of the `}` closing the `{` at open_pos (len(text) if
    unbalanced)."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


# --- Model --------------------------------------------------------------


@dataclass
class ClassInfo:
    name: str
    file: str
    start: int
    end: int
    bases: tuple[str, ...] = ()
    mutexes: dict[str, str] = field(default_factory=dict)  # member -> lock id
    methods: set[str] = field(default_factory=set)
    # member variable -> (class token, is_container); smart pointers and
    # references unwrap to the pointee, vectors/arrays mark is_container
    members: dict[str, tuple[str, bool]] = field(default_factory=dict)


@dataclass
class Acquisition:
    lock: str
    line: int
    held: tuple[str, ...]
    allowed: bool  # inline allow(lock-order) on this line


@dataclass
class CallSite:
    name: str          # unqualified or A::b as written
    receiver: str      # leading receiver expression text ('' for plain)
    line: int
    held: tuple[str, ...]


@dataclass
class BlockSite:
    what: str
    line: int
    allowed: bool  # inline allow(actor-blocking)


@dataclass
class LeaseSite:
    target: str  # LHS expression ('' for a discarded call)
    line: int
    allowed: bool      # inline allow(lease-balance)
    transfer_note: str  # inline transfer(...) note, '' if absent


@dataclass
class Function:
    qname: str
    cls: str | None
    file: str
    line: int
    params: str = ""
    requires: tuple[str, ...] = ()
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockSite] = field(default_factory=list)
    leases: list[LeaseSite] = field(default_factory=list)
    body: str = ""


@dataclass
class Model:
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: dict[str, Function] = field(default_factory=dict)
    # unqualified name -> qnames defining it
    by_name: dict[str, list[str]] = field(default_factory=dict)
    # lock id -> declaration "file:line"
    lock_decls: dict[str, str] = field(default_factory=dict)
    # Class::method -> required locks (from header declarations)
    requires: dict[str, tuple[str, ...]] = field(default_factory=dict)
    # class member name -> candidate classes declaring a Mutex of that name
    mutex_owners: dict[str, list[str]] = field(default_factory=dict)


# --- Structural frontend ------------------------------------------------

CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:GPSA_\w+\([^)]*\)\s+)?(\w+)\s*"
    r"(?:final\s*)?(?::\s*([^{;]*))?\{")
MUTEX_MEMBER_RE = re.compile(
    r"\b(?:mutable\s+)?Mutex\s+(\w+)\s*[;{]")
# `Type Class::name(args)` or in-class `name(args)` followed by optional
# qualifiers/annotations, then `{`. The name token is the identifier
# immediately before the parameter list.
FUNC_DEF_RE = re.compile(
    r"(?:^|[;{}()]|\n)\s*"               # definition boundary
    r"(?:template\s*<[^<>]*>\s*)?"
    r"(?:[\w:<>,*&~\[\]\s]+?\s)??"       # return type (optional for ctors)
    r"((?:\w+::)*[~\w]+)\s*"             # qualified name
    r"\(([^;{}]*)\)\s*"                  # parameter list
    r"((?:const|noexcept|override|final|->\s*[\w:<>&*]+|&&?|"
    r"GPSA_\w+\([^()]*\)|\s)*)"          # trailer (annotations etc.)
    r"\{", re.DOTALL)
REQUIRES_IN_TRAILER_RE = re.compile(r"GPSA_REQUIRES\(([^)]*)\)")
REQUIRES_DECL_RE = re.compile(
    r"(\w+)\s*\([^;{})]*\)\s*(?:const\s*)?"
    r"(?:GPSA_\w+\([^()]*\)\s*)*GPSA_REQUIRES\(([^)]*)\)")
MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+(\w+)\s*[({]\s*([\w.\->\[\]]+)\s*[)}]")
MANUAL_LOCK_RE = re.compile(r"\b([\w.\->\[\]]+?)(?:\.|->)lock\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(r"\b([\w.\->\[\]]+?)(?:\.|->)unlock\s*\(\s*\)")
CALL_RE = re.compile(
    r"([A-Za-z_][\w.\[\]>-]*(?:\.|->))?((?:\w+::)*\w+)\s*\(")
BRACE_RE = re.compile(r"[{}]")

BLOCKING_RES = (
    (re.compile(r"(?:\.|->)wait\s*\("), "condition-variable/atomic wait"),
    (re.compile(r"(?:\.|->)wait_for_ms\s*\("), "timed condition wait"),
    (re.compile(r"(?:\.|->)wait_(?:for|until)\s*\("), "timed wait"),
    (re.compile(r"\bsleep_(?:for|until)\s*\("), "sleep"),
    (re.compile(r"(?<![\w.>])(?:::\s*)?(?:usleep|nanosleep)\s*\("), "sleep"),
    (re.compile(r"(?<![\w>])::\s*(?:poll|ppoll)\s*\("), "blocking poll"),
    (re.compile(r"(?<![\w>])::\s*(?:send|sendto|sendmsg|recv|recvmsg"
                r"|recvfrom|accept4?|connect)\s*\("),
     "blocking socket syscall"),
    (re.compile(r"(?<![\w>])::\s*(?:pread|pwrite|read|write|fsync"
                r"|fdatasync)\s*\("), "blocking file syscall"),
    (re.compile(r"(?:\.|->)join\s*\("), "thread join"),
)

LEASE_RE = re.compile(
    r"(?:((?:auto|std::vector<\s*VertexMessage\s*>)\s+)?"
    r"([\w.\[\]>-]+)\s*=\s*)?"
    r"[\w.\[\]>-]*?\blease\s*\(\s*\)")

MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|const\s+|constexpr\s+)*"
    r"((?:std::)?[\w:]+(?:<[^;{}()]*>)?)\s*([*&]?)\s+(\w+)\s*"
    r"(?:=[^;{}]*|\{[^;{}]*\})?;", re.MULTILINE)

# Lambda literals handed to these call names execute on another thread
# (or later); their bodies must not be attributed to the enclosing
# function when computing actor reachability or held-at-call sets.
DEFER_SINKS = frozenset((
    "submit", "post", "enqueue", "dispatch", "spawn", "thread", "async",
    "emplace_back",  # worker-thread vectors: threads_.emplace_back([..]{..})
))
LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\))?\s*(?:mutable\b\s*)?"
    r"(?:noexcept\b\s*)?(?:->\s*[\w:<>&*\s]+?)?\s*\{")

SMART_PTRS = ("unique_ptr", "shared_ptr", "optional", "reference_wrapper")
CONTAINERS = ("vector", "array", "deque", "span")


def class_token(type_str: str) -> tuple[str, bool]:
    """('ComputerActor', True) for `std::vector<ComputerActor*>`,
    ('BlockCacheStream', False) for `std::unique_ptr<BlockCacheStream>`,
    ('ManagerActor', False) for `ManagerActor*`."""
    t = type_str.strip()
    m = re.match(r"(?:std::)?(\w+)\s*<\s*(.*)>\s*$", t, re.DOTALL)
    if m:
        outer, inner = m.group(1), m.group(2)
        first = inner.split(",")[0]
        if outer in CONTAINERS:
            return class_token(first)[0], True
        if outer in SMART_PTRS:
            return class_token(first)
        return outer, False  # Actor<TransportMsg> -> Actor
    t = t.rstrip("*& ").strip()
    return t.split("::")[-1], False

KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "static_cast", "reinterpret_cast", "const_cast",
    "dynamic_cast", "alignof", "decltype", "throw", "co_await", "assert",
    "defined", "static_assert", "noexcept",
))


def innermost_class(classes: list[ClassInfo], pos: int) -> ClassInfo | None:
    best = None
    for cls in classes:
        if cls.start <= pos < cls.end:
            if best is None or cls.start > best.start:
                best = cls
    return best


def parse_classes(stripped: str, rel: str) -> list[ClassInfo]:
    out = []
    for m in CLASS_RE.finditer(stripped):
        open_pos = m.end() - 1
        end = match_brace(stripped, open_pos)
        bases = ()
        if m.group(2):
            bases = tuple(
                re.sub(r"<.*", "", b.strip().split()[-1])
                for b in m.group(2).split(",") if b.strip())
        out.append(ClassInfo(name=m.group(1), file=rel, start=open_pos,
                             end=end, bases=bases))
    return out


def root_identifier(expr: str) -> str:
    """Leading identifier of an lvalue expression: `msg.batch` -> `msg`,
    `slot->pending[q]` -> `slot`."""
    m = re.match(r"[A-Za-z_]\w*", expr)
    return m.group(0) if m else expr


def trailing_identifier(expr: str) -> str:
    """Final member name of a mutex expression: `state.mutex_` -> `mutex_`,
    `g_sink_mutex` -> itself."""
    parts = re.split(r"\.|->", expr)
    return parts[-1].strip("[]() ")


class StructuralFrontend:
    """Builds the Model from raw project sources."""

    def __init__(self, root: Path):
        self.root = root
        self.model = Model()
        self._raw_lines: dict[str, list[str]] = {}

    def raw_line(self, rel: str, line: int) -> str:
        lines = self._raw_lines.get(rel, [])
        return lines[line - 1] if 1 <= line <= len(lines) else ""

    def load(self, files: list[tuple[Path, str]]):
        texts = {}
        for path, rel in files:
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            self._raw_lines[rel] = text.splitlines()
            texts[rel] = strip_comments_and_strings(text)
        # Pass 1: classes + mutex members + REQUIRES declarations.
        spans = {}
        for rel, stripped in texts.items():
            classes = parse_classes(stripped, rel)
            spans[rel] = classes
            for cls in classes:
                body = stripped[cls.start:cls.end]
                for m in MUTEX_MEMBER_RE.finditer(body):
                    member = m.group(1)
                    lock_id = f"{cls.name}::{member}"
                    cls.mutexes[member] = lock_id
                    self.model.lock_decls[lock_id] = (
                        f"{rel}:{line_of(stripped, cls.start + m.start())}")
                    self.model.mutex_owners.setdefault(member, []).append(
                        cls.name)
                for m in REQUIRES_DECL_RE.finditer(body):
                    locks = tuple(
                        f"{cls.name}::{trailing_identifier(a.strip())}"
                        for a in m.group(2).split(",") if a.strip())
                    self.model.requires[f"{cls.name}::{m.group(1)}"] = locks
                for m in MEMBER_DECL_RE.finditer(body):
                    type_str, ptr, member = m.groups()
                    if type_str in ("return", "delete", "using", "typedef",
                                    "else", "case", "goto", "namespace"):
                        continue
                    token, is_container = class_token(type_str + ptr)
                    cls.members.setdefault(member, (token, is_container))
                key = cls.name
                if key not in self.model.classes:
                    self.model.classes[key] = cls
                else:  # merge decl + definition-file views
                    existing = self.model.classes[key]
                    existing.mutexes.update(cls.mutexes)
                    for member, typed in cls.members.items():
                        existing.members.setdefault(member, typed)
                    if not existing.bases:
                        existing.bases = cls.bases
            # File-scope mutexes (e.g. logging's g_sink_mutex).
            file_level = stripped
            for m in MUTEX_MEMBER_RE.finditer(file_level):
                if innermost_class(classes, m.start()) is None:
                    lock_id = m.group(1)
                    self.model.lock_decls.setdefault(
                        lock_id, f"{rel}:{line_of(stripped, m.start())}")
        # Pass 2: function definitions with bodies.
        for rel, stripped in texts.items():
            self._parse_functions(rel, stripped, spans[rel])

    # -- function parsing -------------------------------------------------

    def _parse_functions(self, rel: str, stripped: str,
                         classes: list[ClassInfo]):
        pos = 0
        while True:
            m = FUNC_DEF_RE.search(stripped, pos)
            if m is None:
                break
            name = m.group(1)
            open_pos = m.end() - 1
            unqualified = name.split("::")[-1]
            if (unqualified in KEYWORDS or name.startswith("operator")
                    or "::operator" in name):
                pos = m.end()
                continue
            end = match_brace(stripped, open_pos)
            cls_info = innermost_class(classes, m.start(1))
            if "::" in name:
                qname = name
                cls_name = name.rsplit("::", 1)[0].split("::")[-1]
            elif cls_info is not None:
                qname = f"{cls_info.name}::{name}"
                cls_name = cls_info.name
            else:
                qname = name
                cls_name = None
            fn = Function(qname=qname, cls=cls_name, file=rel,
                          line=line_of(stripped, m.start(1)),
                          params=m.group(2) or "",
                          body=stripped[open_pos:end])
            requires = []
            for rm in REQUIRES_IN_TRAILER_RE.finditer(m.group(3) or ""):
                for arg in rm.group(1).split(","):
                    requires.append(self._resolve_lock(
                        arg.strip(), cls_name, None))
            hdr_req = self.model.requires.get(qname, ())
            fn.requires = tuple(dict.fromkeys([*requires, *hdr_req]))
            self._parse_body(fn, stripped, open_pos, end, rel, cls_name)
            if cls_name is not None and cls_name in self.model.classes:
                self.model.classes[cls_name].methods.add(unqualified)
            # Keep the richer definition when a name collides (e.g. a
            # declaration-only match parsed earlier).
            prior = self.model.functions.get(qname)
            if prior is None or len(fn.body) > len(prior.body):
                self.model.functions[qname] = fn
                if prior is None:
                    self.model.by_name.setdefault(
                        unqualified, []).append(qname)
            pos = open_pos + 1  # allow nested lambdas to be re-scanned

    def _resolve_lock(self, expr: str, cls_name: str | None,
                      local_locks: dict[str, str] | None) -> str:
        """Maps a mutex expression to a lock id."""
        member = trailing_identifier(expr)
        if local_locks and expr in local_locks:
            return local_locks[expr]
        if cls_name is not None:
            cls = self.model.classes.get(cls_name)
            if cls is not None and member in cls.mutexes:
                return cls.mutexes[member]
        if member in self.model.lock_decls and "::" not in member:
            return member  # file-scope global
        owners = self.model.mutex_owners.get(member, [])
        if len(owners) == 1:
            return f"{owners[0]}::{member}"
        if cls_name is not None:
            return f"{cls_name}::{member}"  # best effort
        return member

    def _parse_body(self, fn: Function, stripped: str, start: int, end: int,
                    rel: str, cls_name: str | None):
        body = stripped[start:end]

        # Lambdas passed to deferred-execution sinks (IoThreadPool::submit,
        # std::thread, ...) run on another thread: split each off into a
        # synthetic function so its blocking sites are not attributed to
        # this function's call path and its held-set starts empty, then
        # blank the range here.
        deferred: list[tuple[int, int]] = []
        for lam in LAMBDA_RE.finditer(body):
            open_b = body.rindex("{", lam.start(), lam.end())
            if any(ob <= lam.start() <= cb for ob, cb in deferred):
                continue
            pre = body[max(0, lam.start() - 80):lam.start()]
            mpre = re.search(r"(\w+)\s*\(\s*(?:[^()]*,)?\s*$", pre)
            if not (mpre and mpre.group(1) in DEFER_SINKS):
                continue
            close_b = match_brace(body, open_b)
            deferred.append((open_b, close_b))
            lam_line = line_of(stripped, start + open_b)
            synth = Function(
                qname=f"{fn.qname}::{{lambda:{lam_line}}}", cls=cls_name,
                file=rel, line=lam_line, params=fn.params,
                body=body[open_b:close_b + 1])
            self._parse_body(synth, stripped, start + open_b,
                             start + close_b + 1, rel, cls_name)
            self.model.functions[synth.qname] = synth
        if deferred:
            chars = list(body)
            for ob, cb in deferred:
                for i in range(ob, min(cb + 1, len(chars))):
                    if chars[i] != "\n":
                        chars[i] = " "
            body = "".join(chars)
            fn.body = body

        def allowed(line: int, rule: str) -> bool:
            m = ALLOW_RE.search(self.raw_line(rel, line))
            return bool(m and m.group(1) == rule)

        # Scope-tracked held set: events in offset order.
        events = []
        for m in BRACE_RE.finditer(body):
            events.append((m.start(), "brace", m.group(), None))
        lock_vars: dict[str, str] = {}
        for m in MUTEXLOCK_RE.finditer(body):
            lock_id = self._resolve_lock(m.group(2), cls_name, None)
            lock_vars[m.group(1)] = lock_id
            events.append((m.start(), "acquire", m.group(1), lock_id))
        for m in MANUAL_LOCK_RE.finditer(body):
            target = m.group(1)
            if target in lock_vars:  # MutexLock re-lock
                events.append((m.start(), "acquire", target,
                               lock_vars[target]))
            else:
                lock_id = self._resolve_lock(target, cls_name, None)
                if self._is_known_lock(lock_id):
                    events.append((m.start(), "acquire", target, lock_id))
        for m in MANUAL_UNLOCK_RE.finditer(body):
            events.append((m.start(), "release", m.group(1), None))
        events.sort(key=lambda e: e[0])

        frames: list[dict[str, str]] = [{}]

        def held() -> tuple[str, ...]:
            seen = []
            for frame in frames:
                for lock in frame.values():
                    if lock not in seen:
                        seen.append(lock)
            return tuple(seen)

        # Interleave call/blocking/lease scanning with the scope walk by
        # collecting their offsets first.
        marks = []
        for m in CALL_RE.finditer(body):
            name = m.group(2)
            if name.split("::")[-1] in KEYWORDS:
                continue
            receiver = (m.group(1) or "").rstrip(".->")
            marks.append((m.start(), "call", name, receiver))
        for regex, what in BLOCKING_RES:
            for m in regex.finditer(body):
                marks.append((m.start(), "block", what, None))
        for m in LEASE_RE.finditer(body):
            marks.append((m.start(), "lease", m.group(2) or "", None))
        stream = sorted(events + marks, key=lambda e: e[0])

        for pos, kind, a, b in stream:
            line = line_of(stripped, start + pos)
            if kind == "brace":
                if a == "{":
                    frames.append({})
                elif len(frames) > 1:
                    frames.pop()
            elif kind == "acquire":
                fn.acquisitions.append(Acquisition(
                    lock=b, line=line, held=held(),
                    allowed=allowed(line, "lock-order")))
                frames[-1][a] = b
            elif kind == "release":
                for frame in reversed(frames):
                    if a in frame:
                        del frame[a]
                        break
            elif kind == "call":
                fn.calls.append(CallSite(name=a, receiver=b or "",
                                         line=line, held=held()))
            elif kind == "block":
                fn.blocking.append(BlockSite(
                    what=a, line=line,
                    allowed=allowed(line, "actor-blocking")))
            elif kind == "lease":
                raw = self.raw_line(rel, line)
                note = TRANSFER_RE.search(raw)
                fn.leases.append(LeaseSite(
                    target=a, line=line,
                    allowed=allowed(line, "lease-balance"),
                    transfer_note=note.group(1) if note else ""))
        # GPSA_LOG acquires the logging sink mutex behind the macro; model
        # it so "holding X while logging" edges exist in the graph.
        if "g_sink_mutex" in self.model.lock_decls:
            for m in re.finditer(r"\bGPSA_LOG\s*\(", body):
                line = line_of(stripped, start + m.start())
                fn.acquisitions.append(Acquisition(
                    lock="g_sink_mutex", line=line, held=(),
                    allowed=allowed(line, "lock-order")))

    def _is_known_lock(self, lock_id: str) -> bool:
        return (lock_id in self.model.lock_decls
                or lock_id.split("::")[-1] in self.model.mutex_owners)


def try_libclang_refinement(model: Model, files: list[tuple[Path, str]],
                            compile_commands: Path | None) -> str:
    """When python-clang is importable, re-derives call edges from the
    real AST (exact overload/receiver resolution) and merges them into
    the structural model. Returns the frontend tag actually in effect."""
    try:
        import clang.cindex  # type: ignore[import-not-found]
    except ImportError:
        return "structural"
    try:
        index = clang.cindex.Index.create()
    except Exception:  # missing libclang.so despite bindings
        return "structural"
    if compile_commands is None:
        return "structural"
    try:
        db = clang.cindex.CompilationDatabase.fromDirectory(
            str(compile_commands.parent))
    except Exception:
        return "structural"
    kinds = clang.cindex.CursorKind
    for path, rel in files:
        if path.suffix != ".cpp":
            continue
        commands = db.getCompileCommands(str(path))
        if not commands:
            continue
        args = [a for a in list(commands[0].arguments)[1:]
                if a not in ("-c", "-o", str(path))]
        try:
            tu = index.parse(str(path), args=args)
        except Exception:
            continue

        def walk(cursor, current):
            if cursor.kind in (kinds.CXX_METHOD, kinds.FUNCTION_DECL,
                               kinds.CONSTRUCTOR, kinds.DESTRUCTOR):
                if cursor.is_definition():
                    parent = cursor.semantic_parent
                    qname = cursor.spelling
                    if parent is not None and parent.kind in (
                            kinds.CLASS_DECL, kinds.STRUCT_DECL,
                            kinds.CLASS_TEMPLATE):
                        qname = f"{parent.spelling}::{cursor.spelling}"
                    current = model.functions.get(qname)
            elif cursor.kind == kinds.CALL_EXPR and current is not None:
                ref = cursor.referenced
                if ref is not None:
                    parent = ref.semantic_parent
                    callee = ref.spelling
                    if parent is not None and parent.kind in (
                            kinds.CLASS_DECL, kinds.STRUCT_DECL,
                            kinds.CLASS_TEMPLATE):
                        callee = f"{parent.spelling}::{ref.spelling}"
                    if callee in model.functions:
                        loc = cursor.location
                        current.calls.append(CallSite(
                            name=callee, receiver="", line=loc.line,
                            held=()))
            for child in cursor.get_children():
                walk(child, current)

        walk(tu.cursor, None)
    return "libclang+structural"


# --- Call resolution ----------------------------------------------------


def resolve_call(model: Model, fn: Function, call: CallSite) -> list[str]:
    """Qualified-name targets for a call site."""
    if "::" in call.name:
        return [call.name] if call.name in model.functions else []
    candidates = model.by_name.get(call.name, [])
    if not candidates:
        return []
    if len(candidates) == 1:
        return list(candidates)
    # Same-class method beats everything for unreceivered calls, and for
    # `this`-implied receivers.
    if fn.cls is not None and not call.receiver:
        same = [q for q in candidates if q.startswith(f"{fn.cls}::")]
        if same:
            return same
        # No receiver and no same-class match: a free function if one
        # exists, else conservatively all.
        free = [q for q in candidates if "::" not in q]
        if free:
            return free
        return list(candidates)
    if call.receiver:
        cls = infer_receiver_class(model, fn, call.receiver)
        if cls is not None:
            scoped = scoped_candidates(model, cls, call.name)
            if scoped:
                return scoped
            if cls not in model.classes:
                return []  # external type (std::, libc): not our function
    return list(candidates)


def scoped_candidates(model: Model, cls: str, name: str) -> list[str]:
    """Candidates for `name` on a receiver of class `cls`, walking bases;
    virtual names resolve to every override in the hierarchy."""
    out = []
    seen = set()
    frontier = [cls]
    while frontier:
        cur = frontier.pop()
        if cur in seen:
            continue
        seen.add(cur)
        qname = f"{cur}::{name}"
        if qname in model.functions:
            out.append(qname)
        info = model.classes.get(cur)
        if info is not None:
            frontier.extend(info.bases)
    if out:
        # If the receiver class sits atop a virtual hierarchy, include the
        # overrides in derived classes too (call through base pointer).
        derived = [c for c, info in model.classes.items()
                   if any(b in seen for b in info.bases)
                   and f"{c}::{name}" in model.functions]
        out.extend(f"{c}::{name}" for c in derived
                   if f"{c}::{name}" not in out)
    return out


VEC_ELEM_RE = re.compile(r"std::vector<\s*(\w+)\s*\*?\s*>")


def infer_receiver_class(model: Model, fn: Function,
                         receiver: str) -> str | None:
    """Best-effort type of a receiver expression: member declarations of
    the function's class (and bases), then parameter/local declarations
    in the function body."""
    if receiver == "this":
        return fn.cls
    root = root_identifier(receiver)
    indexed = "[" in receiver or ".front(" in receiver or ".back(" in receiver
    # Class member (walking the base hierarchy).
    frontier = [fn.cls] if fn.cls else []
    seen = set()
    while frontier:
        cur = frontier.pop()
        if cur in seen:
            continue
        seen.add(cur)
        info = model.classes.get(cur)
        if info is None:
            continue
        if root in info.members:
            token, is_container = info.members[root]
            if is_container and not indexed:
                return None  # calling a method on the container itself
            return token
        frontier.extend(info.bases)
    # Parameter or local declaration.
    decl_res = [
        re.compile(r"(?:std::)?(?:" + "|".join(CONTAINERS) +
                   r")<\s*([\w:]+)\s*\*?\s*>\s*&?\s*" +
                   re.escape(root) + r"\b"),
        re.compile(r"\b([A-Za-z_][\w:]*)\s*[*&]+\s*" +
                   re.escape(root) + r"\b"),
        re.compile(r"\b([A-Za-z_][\w:]*)(?:<[^<>;]*>)?\s+&?" +
                   re.escape(root) + r"\s*[;=({,)]"),
    ]
    for text in (fn.params, fn.body):
        for i, rx in enumerate(decl_res):
            m = rx.search(text)
            if m is None:
                continue
            token = m.group(1).split("::")[-1]
            if token in ("auto", "const", "return", "else"):
                continue
            if i == 0 and not indexed:
                return None
            if i != 0 and indexed:
                continue
            return token
    return None


# --- Checker 1: lock-order ----------------------------------------------


def check_lock_order(model: Model) -> list[dict]:
    # Transitive locks acquired per function (fixpoint).
    direct: dict[str, set[str]] = {}
    callees: dict[str, set[str]] = {}
    for qname, fn in model.functions.items():
        direct[qname] = {a.lock for a in fn.acquisitions if not a.allowed}
        callees[qname] = set()
        for call in fn.calls:
            callees[qname].update(resolve_call(model, fn, call))
    trans = {q: set(locks) for q, locks in direct.items()}
    changed = True
    while changed:
        changed = False
        for qname in model.functions:
            before = len(trans[qname])
            for callee in callees[qname]:
                trans[qname] |= trans.get(callee, set())
            if len(trans[qname]) != before:
                changed = True

    # Witness for (function, lock): file:line chain that reaches an
    # acquisition of `lock` starting inside `function`.
    def witness(qname: str, lock: str, seen: frozenset = frozenset()):
        fn = model.functions[qname]
        for acq in fn.acquisitions:
            if acq.lock == lock and not acq.allowed:
                return [f"{fn.file}:{acq.line}: {qname} acquires {lock}"]
        for call in fn.calls:
            for target in resolve_call(model, fn, call):
                if target in seen:
                    continue
                if lock in trans.get(target, ()):
                    tail = witness(target, lock, seen | {qname})
                    if tail is not None:
                        return ([f"{fn.file}:{call.line}: {qname} calls "
                                 f"{target}"] + tail)
        return None

    # Build the order graph with one witness per edge.
    edges: dict[tuple[str, str], list[str]] = {}

    def add_edge(held_lock: str, acquired: str, chain: list[str]):
        if held_lock == acquired:
            return  # same-class nesting handled by lockdep per-instance
        edges.setdefault((held_lock, acquired), chain)

    for qname, fn in model.functions.items():
        for acq in fn.acquisitions:
            if acq.allowed:
                continue
            for h in (*fn.requires, *acq.held):
                add_edge(h, acq.lock,
                         [f"{fn.file}:{acq.line}: {qname} acquires "
                          f"{acq.lock} while holding {h}"])
        for call in fn.calls:
            held_here = tuple(dict.fromkeys((*fn.requires, *call.held)))
            if not held_here:
                continue
            for target in resolve_call(model, fn, call):
                for lock in trans.get(target, ()):
                    for h in held_here:
                        if (h, lock) in edges:
                            continue
                        tail = witness(target, lock)
                        if tail is None:
                            continue
                        add_edge(h, lock,
                                 [f"{fn.file}:{call.line}: {qname} calls "
                                  f"{target} holding {h}"] + tail)

    # Cycle detection (DFS with colors); report each cycle once.
    adjacency: dict[str, list[str]] = {}
    for (a, b) in edges:
        adjacency.setdefault(a, []).append(b)
    findings = []
    reported: set[frozenset] = set()
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for pair in edges for n in pair}
    stack: list[str] = []

    def dfs(node: str):
        color[node] = GRAY
        stack.append(node)
        for succ in adjacency.get(node, ()):  # noqa: B023
            if color[succ] == GRAY:
                cycle = stack[stack.index(succ):]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    findings.append(make_cycle_finding(cycle, edges))
            elif color[succ] == WHITE:
                dfs(succ)
        stack.pop()
        color[node] = BLACK

    for node in sorted(color):
        if color[node] == WHITE:
            dfs(node)
    return findings


def make_cycle_finding(cycle: list[str], edges: dict) -> dict:
    path = []
    for i, lock in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        path.append(f"-- order {lock} -> {nxt} established at:")
        path.extend("   " + step for step in edges[(lock, nxt)])
    first = edges[(cycle[0], cycle[1 % len(cycle)])][0]
    file, line = first.split(":", 2)[0:2]
    return {
        "rule": "lock-order",
        "file": file,
        "line": int(line),
        "message": ("acquisition-order cycle: " +
                    " -> ".join(cycle + [cycle[0]])),
        "path": path,
    }


# --- Checker 2: actor-blocking ------------------------------------------

ENTRY_NAMES = ("execute_batch", "on_message")


def check_actor_blocking(model: Model) -> list[dict]:
    findings = []
    entries = sorted(
        q for name in ENTRY_NAMES for q in model.by_name.get(name, []))
    reported: set[tuple[str, str, int]] = set()
    for entry in entries:
        if entry in BLOCKING_ALLOWLIST:
            continue
        # BFS over call edges, skipping allowlisted functions entirely.
        parent: dict[str, tuple[str, int] | None] = {entry: None}
        queue = [entry]
        while queue:
            qname = queue.pop(0)
            fn = model.functions[qname]
            for block in fn.blocking:
                if block.allowed:
                    continue
                key = (entry, fn.file, block.line)
                if key in reported:
                    continue
                reported.add(key)
                chain = []
                node: str | None = qname
                while node is not None:
                    prev = parent[node]
                    if prev is None:
                        chain.append(f"{model.functions[node].file}:"
                                     f"{model.functions[node].line}: "
                                     f"entry {node}")
                    else:
                        chain.append(
                            f"{model.functions[prev[0]].file}:{prev[1]}: "
                            f"{prev[0]} calls {node}")
                    node = prev[0] if prev else None
                chain.reverse()
                chain.append(f"{fn.file}:{block.line}: {block.what}")
                findings.append({
                    "rule": "actor-blocking",
                    "file": fn.file,
                    "line": block.line,
                    "message": (f"{block.what} reachable from actor entry "
                                f"{entry} (add to the allowlist only with "
                                "a mechanism that bounds the stall)"),
                    "path": chain,
                })
            for call in fn.calls:
                for target in resolve_call(model, fn, call):
                    if target in parent or target in BLOCKING_ALLOWLIST:
                        continue
                    parent[target] = (qname, call.line)
                    queue.append(target)
    return findings


# --- Checker 3: lease-balance -------------------------------------------


def check_lease_balance(model: Model) -> list[dict]:
    findings = []
    for qname, fn in sorted(model.functions.items()):
        if qname.endswith("::lease") or qname == "lease":
            continue  # the pool's own implementation
        for lease in fn.leases:
            if lease.allowed or lease.transfer_note:
                continue
            if qname in LEASE_TRANSFER_ALLOWLIST:
                continue
            root = root_identifier(lease.target) if lease.target else ""
            balanced = False
            if root:
                if re.search(r"recycle\s*\(\s*std::move\s*\(\s*" +
                             re.escape(root), fn.body):
                    balanced = True
                elif re.search(r"\bstd::move\s*\(\s*" + re.escape(root) +
                               r"\b", fn.body):
                    balanced = True  # ownership transfer
            if not balanced and "recycle" in fn.body:
                # recycle of some buffer in the same function: accept only
                # exact-root matches above; a generic recycle() elsewhere
                # does not balance THIS lease.
                balanced = False
            if not balanced:
                what = (f"leased buffer `{lease.target}`" if lease.target
                        else "discarded lease() result")
                findings.append({
                    "rule": "lease-balance",
                    "file": fn.file,
                    "line": lease.line,
                    "message": (f"{what} in {qname} neither reaches "
                                "recycle() nor is std::move()d to a new "
                                "owner; recycle it, transfer it, or "
                                "document with // gpsa-analyze: "
                                "transfer(<why>)"),
                    "path": [f"{fn.file}:{lease.line}: lease in {qname}"],
                })
    return findings


# --- Coverage check (clang-tidy / TSA compile-command gate) -------------


def check_coverage(compile_commands: Path | None, root: Path,
                   required: list[str]) -> list[dict]:
    if not required:
        return []
    if compile_commands is None:
        return [{"rule": "coverage", "file": r, "line": 0,
                 "message": "--require-covered needs --compile-commands",
                 "path": []} for r in required]
    try:
        db = json.loads(compile_commands.read_text(encoding="utf-8"))
    except (OSError, ValueError) as err:
        return [{"rule": "coverage", "file": str(compile_commands),
                 "line": 0, "message": f"unreadable database: {err}",
                 "path": []}]
    covered = set()
    for entry in db:
        p = (Path(entry["directory"]) / entry["file"]).resolve()
        try:
            covered.add(p.relative_to(root).as_posix())
        except ValueError:
            continue
    findings = []
    for req in required:
        req_norm = req.rstrip("/")
        hit = any(c == req_norm or c.startswith(req_norm + "/")
                  for c in covered)
        if not hit:
            findings.append({
                "rule": "coverage",
                "file": req,
                "line": 0,
                "message": (f"{req} has no entry in "
                            f"{compile_commands.name}: it is invisible to "
                            "clang-tidy, -Werror=thread-safety, and this "
                            "analyzer — wire it into the build"),
                "path": [],
            })
    return findings


# --- Driver -------------------------------------------------------------


def collect_files(root: Path, compile_commands: Path | None,
                  explicit: list[str]) -> list[tuple[Path, str]]:
    pairs: dict[str, Path] = {}

    def add(p: Path):
        p = p.resolve()
        try:
            rel = p.relative_to(root).as_posix()
        except ValueError:
            rel = p.as_posix()
        pairs.setdefault(rel, p)

    if explicit:
        for name in explicit:
            add(Path(name))
        return sorted((p, rel) for rel, p in pairs.items())
    for pattern in ("src/**/*.hpp", "src/**/*.cpp"):
        for p in sorted(root.glob(pattern)):
            add(p)
    if compile_commands is not None:
        try:
            db = json.loads(compile_commands.read_text(encoding="utf-8"))
        except (OSError, ValueError) as err:
            print(f"gpsa_analyze: cannot read {compile_commands}: {err}",
                  file=sys.stderr)
            sys.exit(2)
        for entry in db:
            p = (Path(entry["directory"]) / entry["file"]).resolve()
            if p.suffix in (".cpp", ".hpp") and \
                    p.is_relative_to(root / "src"):
                add(p)
    return sorted((p, rel) for rel, p in pairs.items())


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--compile-commands", type=Path, default=None)
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON on stdout")
    parser.add_argument("--report", type=Path, default=None,
                        help="also write the JSON report to this file")
    parser.add_argument("--require-covered", nargs="*", default=[],
                        metavar="PATH",
                        help="fail unless these root-relative sources/dirs "
                             "appear in the compilation database")
    parser.add_argument("files", nargs="*",
                        help="analyze only these files (fixture mode)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    files = collect_files(root, args.compile_commands, args.files)
    frontend = StructuralFrontend(root)
    frontend.load(files)
    tag = try_libclang_refinement(frontend.model, files,
                                  args.compile_commands)

    findings = []
    findings.extend(check_lock_order(frontend.model))
    findings.extend(check_actor_blocking(frontend.model))
    findings.extend(check_lease_balance(frontend.model))
    findings.extend(check_coverage(args.compile_commands, root,
                                   args.require_covered))
    findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))

    report = {
        "frontend": tag,
        "files_analyzed": len(files),
        "functions": len(frontend.model.functions),
        "locks": sorted(frontend.model.lock_decls),
        "blocking_allowlist": sorted(BLOCKING_ALLOWLIST),
        "findings": findings,
    }
    if args.report is not None:
        args.report.write_text(json.dumps(report, indent=2) + "\n",
                               encoding="utf-8")
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for f in findings:
            print(f"{f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
            for step in f.get("path", []):
                print(f"    {step}")
        print(f"gpsa_analyze[{tag}]: {len(files)} files, "
              f"{len(frontend.model.functions)} functions, "
              f"{len(frontend.model.lock_decls)} locks, "
              f"{len(findings)} finding(s)",
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
