#!/usr/bin/env python3
"""Self-test for gpsa_analyze.py against tests/analyze_fixtures/.

Each bad_* fixture must produce exactly its expected (rule, line)
findings — true positives pinned to exact lines; each good_* fixture
must produce none — true negatives, including the deferred-lambda and
inline-escape cases that would be false positives under a naive checker.
A final check exercises the `coverage` rule against a synthetic
compilation database. Run directly or via ctest
(gpsa_analyze_selftest).
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
ANALYZER = ROOT / "scripts" / "gpsa_analyze.py"
FIXTURES = ROOT / "tests" / "analyze_fixtures"

# fixture name -> exact sorted [(rule, line), ...] it must produce.
# Fixtures are analyzed one at a time: each is a self-contained program
# as far as the whole-program model is concerned.
EXPECTED = {
    "bad_lock_order.cpp": [("lock-order", 14)],
    "bad_lock_order_interproc.cpp": [("lock-order", 26)],
    "good_lock_order.cpp": [],
    "bad_actor_blocking.cpp": [("actor-blocking", 14),
                               ("actor-blocking", 22)],
    "good_actor_blocking.cpp": [],
    "bad_lease.cpp": [("lease-balance", 10), ("lease-balance", 14)],
    "good_lease.cpp": [],
}

failures: list[str] = []


def expect(condition: bool, message: str):
    if not condition:
        failures.append(message)


def run_analyze(*args: str) -> tuple[int, list[dict]]:
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), "--json", "--root", str(ROOT),
         *args],
        capture_output=True, text=True)
    try:
        findings = json.loads(proc.stdout)["findings"]
    except (ValueError, KeyError):
        failures.append(f"unparseable analyzer output: {proc.stdout!r} "
                        f"stderr: {proc.stderr!r}")
        return proc.returncode, []
    return proc.returncode, findings


def main() -> int:
    checks = 0
    for name, want in sorted(EXPECTED.items()):
        fixture = FIXTURES / name
        expect(fixture.exists(), f"{name}: fixture missing")
        code, findings = run_analyze(str(fixture))
        got = sorted((f["rule"], f["line"]) for f in findings)
        expect(got == sorted(want),
               f"{name}: findings {got}, want {sorted(want)}")
        expect(code == (1 if want else 0),
               f"{name}: exit {code}, want {1 if want else 0}")
        for f in findings:
            expect(f["file"].endswith(name),
                   f"{name}: finding file {f['file']!r} should end with "
                   "the fixture name")
            expect(bool(f["message"]), f"{name}: empty message")
            expect(bool(f["path"]),
                   f"{name}: finding without a witness path")
        checks += 1

    # Every lock-order finding must carry a witness chain whose steps are
    # file:line-prefixed (the "offending path" contract).
    code, findings = run_analyze(str(FIXTURES / "bad_lock_order_interproc.cpp"))
    if findings:
        steps = [s.strip() for s in findings[0]["path"]
                 if not s.strip().startswith("--")]
        expect(all(":" in s and s.split(":")[1].split(":")[0].isdigit()
                   for s in steps),
               f"witness steps must be file:line chains: {steps}")
        joined = "\n".join(findings[0]["path"])
        expect("Registry::rebuild" in joined and "Shard::evict" in joined,
               f"interprocedural witness must name both holders: {joined}")
    checks += 1

    # The coverage rule: a database covering only a.cpp satisfies
    # --require-covered for it and fails for an absent directory.
    with tempfile.TemporaryDirectory() as tmp:
        db = Path(tmp) / "compile_commands.json"
        covered = ROOT / "tests" / "analyze_fixtures" / "good_lease.cpp"
        db.write_text(json.dumps([{
            "directory": str(ROOT),
            "file": str(covered),
            "command": "c++ -c " + str(covered),
        }]))
        code, findings = run_analyze(
            str(covered), "--compile-commands", str(db),
            "--require-covered", "tests/analyze_fixtures/good_lease.cpp")
        expect(code == 0 and findings == [],
               f"covered path must pass: exit {code}, {findings}")
        code, findings = run_analyze(
            str(covered), "--compile-commands", str(db),
            "--require-covered", "src/service")
        rules = [f["rule"] for f in findings]
        expect(code == 1 and rules == ["coverage"],
               f"uncovered dir must fail with coverage: exit {code}, "
               f"{rules}")
    checks += 2

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"gpsa_analyze self-test: {checks} fixture checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
