// Influence analysis on a social network — the workload class (social
// graphs like soc-Pokec / twitter-2010) the paper's introduction
// motivates.
//
// Generates a power-law follower graph, runs PageRank on GPSA, and
// reports: the top influencers, how concentrated influence is (share of
// total rank held by the top 1%), and the rank distribution histogram.
//
//   ./social_rank [--members=100000] [--follows-per-member=15]
//                 [--iterations=15] [--dispatchers=4] [--computers=4]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  auto config_or = gpsa::Config::from_args(argc, argv);
  if (!config_or.is_ok()) {
    std::fprintf(stderr, "%s\n", config_or.status().to_string().c_str());
    return 1;
  }
  const gpsa::Config& config = config_or.value();
  const auto members =
      static_cast<std::uint64_t>(config.get_int("members", 100'000));
  const auto follows =
      static_cast<std::uint64_t>(config.get_int("follows-per-member", 15));
  const auto iterations =
      static_cast<std::uint64_t>(config.get_int("iterations", 15));

  unsigned scale = 1;
  while ((1ULL << scale) < members) {
    ++scale;
  }
  const gpsa::EdgeList graph =
      gpsa::rmat(scale, members * follows, /*seed=*/2026);
  std::printf("social network: %u members, %llu follow edges\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  gpsa::EngineOptions options;
  options.num_dispatchers =
      static_cast<unsigned>(config.get_int("dispatchers", 4));
  options.num_computers =
      static_cast<unsigned>(config.get_int("computers", 4));

  const gpsa::PageRankProgram pagerank(iterations);
  auto result = gpsa::Engine::run(graph, pagerank, options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto& values = result.value().values;

  std::vector<float> ranks(values.size());
  for (std::size_t v = 0; v < values.size(); ++v) {
    ranks[v] = gpsa::payload_to_float(values[v]);
  }
  const double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);

  // Top influencers.
  std::vector<gpsa::VertexId> order(ranks.size());
  std::iota(order.begin(), order.end(), 0U);
  std::sort(order.begin(), order.end(), [&](auto a, auto b) {
    return ranks[a] > ranks[b];
  });
  std::printf("\ntop influencers:\n");
  for (int i = 0; i < 5 && i < static_cast<int>(order.size()); ++i) {
    std::printf("  member %-8u rank %.6f (%.2f%% of total influence)\n",
                order[i], ranks[order[i]],
                100.0 * ranks[order[i]] / total);
  }

  // Concentration: share of rank held by the top 1%.
  const std::size_t one_percent = std::max<std::size_t>(1, order.size() / 100);
  double top_share = 0.0;
  for (std::size_t i = 0; i < one_percent; ++i) {
    top_share += ranks[order[i]];
  }
  std::printf("\ninfluence concentration: top 1%% of members hold %.1f%% of "
              "total rank\n",
              100.0 * top_share / total);

  // Log-scale histogram of ranks.
  std::printf("\nrank distribution (log10 buckets):\n");
  std::vector<std::size_t> histogram(12, 0);
  for (float r : ranks) {
    const double lg = r > 0 ? -std::log10(static_cast<double>(r)) : 11.0;
    const auto bucket =
        static_cast<std::size_t>(std::clamp(lg, 0.0, 11.0));
    ++histogram[bucket];
  }
  for (std::size_t b = 0; b < histogram.size(); ++b) {
    if (histogram[b] == 0) {
      continue;
    }
    std::printf("  1e-%-2zu  %8zu members  ", b, histogram[b]);
    const int bars = static_cast<int>(
        60.0 * static_cast<double>(histogram[b]) /
        static_cast<double>(ranks.size()));
    for (int i = 0; i < bars; ++i) {
      std::putchar('#');
    }
    std::putchar('\n');
  }
  return 0;
}
