// Writing your own vertex program.
//
// Implements "widest path" (maximum-bottleneck-bandwidth routing) from a
// source: the value of a vertex is the best bottleneck bandwidth of any
// path from the source, messages carry min(value, edge bandwidth), and
// the fold is max. Demonstrates everything an app author touches:
// init / gen_msg / first_update / compute / changed.
//
//   ./custom_program [--routers-scale=12] [--cables=60000] [--source=0]
#include <algorithm>
#include <cstdio>

#include "apps/weights.hpp"
#include "core/engine.hpp"
#include "core/program.hpp"
#include "graph/generators.hpp"
#include "util/config.hpp"

namespace {

/// Bottleneck-bandwidth propagation. Payloads are bandwidth units in
/// [0, 16]; the synthetic edge weight doubles as the cable bandwidth.
class WidestPathProgram final : public gpsa::Program {
 public:
  explicit WidestPathProgram(gpsa::VertexId source) : source_(source) {}

  std::string name() const override { return "widest-path"; }

  InitialState init(gpsa::VertexId v, gpsa::VertexId) const override {
    if (v == source_) {
      // The source reaches itself over an infinitely wide "path".
      return {gpsa::kPayloadInfinity, true};
    }
    return {0, false};  // no known path: zero bandwidth
  }

  gpsa::Payload gen_msg(gpsa::VertexId src, gpsa::VertexId dst,
                        gpsa::Payload value,
                        std::uint32_t /*out_degree*/) const override {
    // Path bottleneck through this cable.
    return std::min<gpsa::Payload>(value,
                                   gpsa::synthetic_edge_weight(src, dst));
  }

  gpsa::Payload first_update(gpsa::VertexId /*v*/,
                             gpsa::Payload stored) const override {
    return stored;
  }

  gpsa::Payload compute(gpsa::Payload accumulator,
                        gpsa::Payload message) const override {
    return std::max(accumulator, message);  // widest wins
  }

  bool changed(gpsa::Payload before, gpsa::Payload after) const override {
    return after > before;
  }

 private:
  gpsa::VertexId source_;
};

}  // namespace

int main(int argc, char** argv) {
  auto config_or = gpsa::Config::from_args(argc, argv);
  if (!config_or.is_ok()) {
    std::fprintf(stderr, "%s\n", config_or.status().to_string().c_str());
    return 1;
  }
  const gpsa::Config& config = config_or.value();
  const auto scale =
      static_cast<unsigned>(config.get_int("routers-scale", 12));
  const auto cables =
      static_cast<gpsa::EdgeCount>(config.get_int("cables", 60'000));
  const auto source =
      static_cast<gpsa::VertexId>(config.get_int("source", 0));

  const gpsa::EdgeList network = gpsa::rmat(scale, cables, /*seed=*/31);
  std::printf("network: %u routers, %llu cables (bandwidths 1-16)\n",
              network.num_vertices(),
              static_cast<unsigned long long>(network.num_edges()));

  const WidestPathProgram program(source);
  gpsa::EngineOptions options;
  options.num_dispatchers = 3;
  options.num_computers = 3;
  auto result = gpsa::Engine::run(network, program, options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const auto& values = result.value().values;

  // Histogram of achievable bandwidth from the source.
  std::uint64_t by_bandwidth[18] = {};
  std::uint64_t unreachable = 0;
  for (gpsa::VertexId v = 0; v < values.size(); ++v) {
    if (v == source) {
      continue;
    }
    if (values[v] == 0) {
      ++unreachable;
    } else {
      ++by_bandwidth[std::min<gpsa::Payload>(values[v], 17)];
    }
  }
  std::printf("\nbottleneck bandwidth from router %u (converged in %llu "
              "supersteps):\n",
              source,
              static_cast<unsigned long long>(result.value().supersteps));
  for (int b = 16; b >= 1; --b) {
    if (by_bandwidth[b] != 0) {
      std::printf("  bandwidth %-2d  %8llu routers\n", b,
                  static_cast<unsigned long long>(by_bandwidth[b]));
    }
  }
  std::printf("  unreachable   %8llu routers\n",
              static_cast<unsigned long long>(unreachable));
  return 0;
}
