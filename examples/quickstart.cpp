// Quickstart: run PageRank on a small generated graph with the GPSA
// engine and print the ten highest-ranked vertices.
//
//   ./quickstart [--vertices-scale=10] [--edges=20000] [--iterations=10]
//
// This is the smallest end-to-end use of the public API:
//   1. build (or load) an EdgeList,
//   2. pick a Program,
//   3. Engine::run with EngineOptions,
//   4. read RunResult.values.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  auto config = gpsa::Config::from_args(argc, argv);
  if (!config.is_ok()) {
    std::fprintf(stderr, "%s\n", config.status().to_string().c_str());
    return 1;
  }
  const auto scale =
      static_cast<unsigned>(config.value().get_int("vertices-scale", 10));
  const auto edges =
      static_cast<gpsa::EdgeCount>(config.value().get_int("edges", 20'000));
  const auto iterations =
      static_cast<std::uint64_t>(config.value().get_int("iterations", 10));

  // 1. A scale-free "social network" with 2^scale members.
  const gpsa::EdgeList graph = gpsa::rmat(scale, edges, /*seed=*/1);
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. The algorithm to run.
  const gpsa::PageRankProgram pagerank(iterations);

  // 3. Engine configuration: two dispatching and two computing actors.
  gpsa::EngineOptions options;
  options.num_dispatchers = 2;
  options.num_computers = 2;

  auto result = gpsa::Engine::run(graph, pagerank, options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const gpsa::RunResult& run = result.value();
  std::printf("ran %llu supersteps, %llu messages, %.3f s\n",
              static_cast<unsigned long long>(run.supersteps),
              static_cast<unsigned long long>(run.total_messages),
              run.elapsed_seconds);

  // 4. Rank vertices by final value.
  std::vector<gpsa::VertexId> order(run.values.size());
  for (gpsa::VertexId v = 0; v < order.size(); ++v) {
    order[v] = v;
  }
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](gpsa::VertexId a, gpsa::VertexId b) {
                      return gpsa::payload_to_float(run.values[a]) >
                             gpsa::payload_to_float(run.values[b]);
                    });
  std::printf("top 10 vertices by PageRank:\n");
  for (int i = 0; i < 10; ++i) {
    std::printf("  #%2d  vertex %-8u rank %.6f\n", i + 1, order[i],
                gpsa::payload_to_float(run.values[order[i]]));
  }
  return 0;
}
