// Web-crawl reachability — BFS over a web-graph-like input (the paper's
// other motivating domain), optionally loaded from a SNAP-style text edge
// list.
//
//   ./reachability [--graph=/path/to/edges.txt] [--root=0]
//                  [--pages-scale=16] [--links=500000]
//
// Reports the reachable fraction from the root and the frontier profile
// per hop (which is also the per-superstep message trace of the engine).
#include <cstdio>
#include <vector>

#include "apps/bfs.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  auto config_or = gpsa::Config::from_args(argc, argv);
  if (!config_or.is_ok()) {
    std::fprintf(stderr, "%s\n", config_or.status().to_string().c_str());
    return 1;
  }
  const gpsa::Config& config = config_or.value();

  gpsa::EdgeList graph;
  const std::string path = config.get_string("graph", "");
  if (!path.empty()) {
    auto loaded = gpsa::EdgeList::read_text(path);
    if (!loaded.is_ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   loaded.status().to_string().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
    std::printf("loaded %s\n", path.c_str());
  } else {
    const auto scale =
        static_cast<unsigned>(config.get_int("pages-scale", 16));
    const auto links =
        static_cast<gpsa::EdgeCount>(config.get_int("links", 500'000));
    graph = gpsa::rmat(scale, links, /*seed=*/77);
    std::printf("generated web-like graph\n");
  }
  std::printf("pages: %u, links: %llu\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  const auto root =
      static_cast<gpsa::VertexId>(config.get_int("root", 0));
  if (root >= graph.num_vertices()) {
    std::fprintf(stderr, "root %u out of range\n", root);
    return 1;
  }

  gpsa::EngineOptions options;
  options.num_dispatchers = 4;
  options.num_computers = 4;
  const gpsa::BfsProgram bfs(root);
  auto result = gpsa::Engine::run(graph, bfs, options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const gpsa::RunResult& run = result.value();

  // Level histogram.
  std::vector<std::uint64_t> per_level;
  std::uint64_t reached = 0;
  for (gpsa::Payload level : run.values) {
    if (level == gpsa::kPayloadInfinity) {
      continue;
    }
    if (level >= per_level.size()) {
      per_level.resize(level + 1, 0);
    }
    ++per_level[level];
    ++reached;
  }
  std::printf("\nreachable from page %u: %llu of %u pages (%.1f%%) in %llu "
              "hops\n",
              root, static_cast<unsigned long long>(reached),
              graph.num_vertices(),
              100.0 * static_cast<double>(reached) / graph.num_vertices(),
              static_cast<unsigned long long>(per_level.size() - 1));
  std::printf("\nfrontier size per hop (and engine messages per superstep):\n");
  for (std::size_t level = 0; level < per_level.size(); ++level) {
    const std::uint64_t msgs = level < run.superstep_messages.size()
                                   ? run.superstep_messages[level]
                                   : 0;
    std::printf("  hop %-3zu  %8llu pages   %10llu messages\n", level,
                static_cast<unsigned long long>(per_level[level]),
                static_cast<unsigned long long>(msgs));
  }
  return 0;
}
