// Demonstrates the lightweight fault tolerance of §IV.G end to end:
//
//   1. run BFS with per-superstep checkpointing, stopping partway;
//   2. simulate a mid-superstep crash by tearing the mutable column of
//      the value file (random garbage + partially consumed flags);
//   3. resume from the same files — recovery restores the immutable
//      column — and run to convergence;
//   4. verify the answer equals a clean, uncrashed run.
//
//   ./crash_recovery [--pages-scale=14] [--links=200000] [--crash-after=3]
#include <cstdio>

#include "apps/bfs.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "platform/file_util.hpp"
#include "storage/value_file.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace {

void tear(const std::string& value_path) {
  auto file_or = gpsa::ValueFile::open(value_path);
  if (!file_or.is_ok()) {
    std::fprintf(stderr, "cannot open value file: %s\n",
                 file_or.status().to_string().c_str());
    std::exit(1);
  }
  gpsa::ValueFile& file = file_or.value();
  const std::uint64_t resume = file.completed_supersteps();
  const unsigned torn_col = gpsa::ValueFile::update_column(resume);
  gpsa::Rng rng(99);
  std::uint64_t torn = 0;
  for (gpsa::VertexId v = 0; v < file.num_vertices(); ++v) {
    if (rng.next_bool(0.6)) {
      file.store(v, torn_col,
                 gpsa::make_slot(
                     static_cast<gpsa::Payload>(
                         rng.next_below(gpsa::kPayloadMask)),
                     rng.next_bool(0.5)));
      ++torn;
    }
  }
  std::printf("  tore %llu slots in column %u (the superstep-%llu update "
              "column)\n",
              static_cast<unsigned long long>(torn), torn_col,
              static_cast<unsigned long long>(resume));
}

}  // namespace

int main(int argc, char** argv) {
  auto config_or = gpsa::Config::from_args(argc, argv);
  if (!config_or.is_ok()) {
    std::fprintf(stderr, "%s\n", config_or.status().to_string().c_str());
    return 1;
  }
  const gpsa::Config& config = config_or.value();
  const auto scale =
      static_cast<unsigned>(config.get_int("pages-scale", 14));
  const auto links =
      static_cast<gpsa::EdgeCount>(config.get_int("links", 200'000));
  const auto crash_after =
      static_cast<std::uint64_t>(config.get_int("crash-after", 3));

  const gpsa::EdgeList graph = gpsa::rmat(scale, links, /*seed=*/123);
  const gpsa::BfsProgram bfs(0);

  auto dir_or = gpsa::ScratchDir::create("crash-demo");
  if (!dir_or.is_ok()) {
    std::fprintf(stderr, "%s\n", dir_or.status().to_string().c_str());
    return 1;
  }
  gpsa::ScratchDir dir = std::move(dir_or).value();

  gpsa::EngineOptions options;
  options.num_dispatchers = 2;
  options.num_computers = 2;
  options.checkpoint_each_superstep = true;
  options.work_dir = dir.path();

  std::printf("[1] running BFS with checkpointing, crashing after %llu "
              "supersteps...\n",
              static_cast<unsigned long long>(crash_after));
  gpsa::EngineOptions partial = options;
  partial.max_supersteps = crash_after;
  auto first = gpsa::Engine::run(graph, bfs, partial);
  if (!first.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 first.status().to_string().c_str());
    return 1;
  }
  std::printf("    %llu supersteps checkpointed, %llu messages so far\n",
              static_cast<unsigned long long>(first.value().supersteps),
              static_cast<unsigned long long>(first.value().total_messages));

  std::printf("[2] simulating a crash mid-superstep...\n");
  tear(dir.file("bfs.values"));

  std::printf("[3] resuming from the crashed files...\n");
  auto resumed = gpsa::Engine::run_from_csr(dir.file("graph.csr"), bfs,
                                            options, /*resume=*/true);
  if (!resumed.is_ok()) {
    std::fprintf(stderr, "resume failed: %s\n",
                 resumed.status().to_string().c_str());
    return 1;
  }
  std::printf("    resumed and ran %llu more supersteps to convergence\n",
              static_cast<unsigned long long>(resumed.value().supersteps));

  std::printf("[4] verifying against a clean run...\n");
  gpsa::EngineOptions clean;
  clean.num_dispatchers = 2;
  clean.num_computers = 2;
  auto reference = gpsa::Engine::run(graph, bfs, clean);
  if (!reference.is_ok()) {
    std::fprintf(stderr, "clean run failed: %s\n",
                 reference.status().to_string().c_str());
    return 1;
  }
  std::uint64_t mismatches = 0;
  for (std::size_t v = 0; v < reference.value().values.size(); ++v) {
    if (reference.value().values[v] != resumed.value().values[v]) {
      ++mismatches;
    }
  }
  if (mismatches == 0) {
    std::printf("    recovery verified: all %zu vertex values identical to "
                "the uncrashed run\n",
                reference.value().values.size());
    return 0;
  }
  std::printf("    RECOVERY FAILED: %llu mismatching vertices\n",
              static_cast<unsigned long long>(mismatches));
  return 1;
}
