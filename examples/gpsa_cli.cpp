// gpsa_cli — the command-line front door to the whole system.
//
//   gpsa_cli --algo=pagerank --generator=rmat --scale=14 --edges=300000
//   gpsa_cli --algo=bfs --graph=edges.txt --root=5 --engine=xstream
//   gpsa_cli --algo=cc --graph=web.adj --format=adjacency --symmetrize
//            --engine=gpsa --dispatchers=4 --computers=4 --trace=trace.csv
//
// Options:
//   --algo=pagerank|pagerank_delta|bfs|cc|sssp|multibfs|indegree (required)
//                       (pagerank_delta: residual messages; converges on its
//                       own below GPSA_DELTA_EPS. Engine-wide: GPSA_EXEC=
//                       worklist|sweep selects active-bitmap vs full-scan
//                       dispatch, worklist is the default)
//   --engine=gpsa|graphchi|xstream|cluster|reference (default gpsa)
//   --graph=PATH        load a graph file instead of generating
//   --format=edges|adjacency|binary (text formats; default edges)
//   --generator=rmat|er|grid|chain  --scale=N --edges=M --seed=S
//   --symmetrize        add reverse edges (undirected semantics)
//   --root=V            BFS/SSSP start vertex
//   --iterations=N      PageRank iterations (default 20)
//   --supersteps=N      hard superstep cap
//   --dispatchers/--computers/--nodes=N, --combine, --checkpoint
//   --trace=PATH        write the per-superstep CSV trace
//   --top=K             print the K best-valued vertices (default 5)
//
// Subcommand:
//   gpsa_cli convert --in=BASE --out=BASE [--csr-format=v1|v2]
//                    [--csr-order=none|degree|bfs] [--no-degree]
//     Offline CSR re-encoder: reads the file pair at --in (any supported
//     format), translates back to original vertex ids through its
//     permutation if it was renumbered, and rewrites it at --out in the
//     requested format/order (default v2/none).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>

#include "apps/bfs.hpp"
#include "apps/cc.hpp"
#include "apps/degree_count.hpp"
#include "apps/multi_bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/pagerank_delta.hpp"
#include "apps/reference.hpp"
#include "apps/sssp.hpp"
#include "baselines/graphchi/psw_engine.hpp"
#include "baselines/xstream/xstream_engine.hpp"
#include "cluster/cluster_engine.hpp"
#include "core/engine.hpp"
#include "graph/adjacency.hpp"
#include "graph/csr.hpp"
#include "graph/csr_file.hpp"
#include "graph/csr_v2.hpp"
#include "graph/generators.hpp"
#include "harness/trace.hpp"
#include "util/config.hpp"

namespace {

using namespace gpsa;

Result<EdgeList> load_or_generate(const Config& config) {
  const std::string path = config.get_string("graph", "");
  if (!path.empty()) {
    const std::string format = config.get_string("format", "edges");
    if (format == "edges") {
      return EdgeList::read_text(path);
    }
    if (format == "adjacency") {
      return read_adjacency_text(path);
    }
    if (format == "binary") {
      return EdgeList::read_binary(path);
    }
    return invalid_argument("unknown --format=" + format);
  }
  const std::string generator = config.get_string("generator", "rmat");
  const auto scale = static_cast<unsigned>(config.get_int("scale", 14));
  const auto edges =
      static_cast<EdgeCount>(config.get_int("edges", 300'000));
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
  if (generator == "rmat") {
    return rmat(scale, edges, seed);
  }
  if (generator == "er") {
    return erdos_renyi(static_cast<VertexId>(1U << scale), edges, seed);
  }
  if (generator == "grid") {
    const auto side = static_cast<VertexId>(1U << (scale / 2));
    return grid(side, side);
  }
  if (generator == "chain") {
    return chain(static_cast<VertexId>(1U << scale));
  }
  return invalid_argument("unknown --generator=" + generator);
}

std::unique_ptr<Program> make_program(const Config& config,
                                      const std::string& algo) {
  const auto root = static_cast<VertexId>(config.get_int("root", 0));
  if (algo == "pagerank") {
    return std::make_unique<PageRankProgram>(
        static_cast<std::uint64_t>(config.get_int("iterations", 20)));
  }
  if (algo == "pagerank_delta") {
    return std::make_unique<PageRankDeltaProgram>(
        static_cast<std::uint64_t>(config.get_int("iterations", 100)));
  }
  if (algo == "bfs") {
    return std::make_unique<BfsProgram>(root);
  }
  if (algo == "cc") {
    return std::make_unique<ConnectedComponentsProgram>();
  }
  if (algo == "sssp") {
    return std::make_unique<SsspProgram>(root);
  }
  if (algo == "multibfs") {
    return std::make_unique<MultiSourceReachabilityProgram>(
        std::vector<VertexId>{root, root + 1, root + 2});
  }
  if (algo == "indegree") {
    return std::make_unique<InDegreeProgram>();
  }
  return nullptr;
}

void print_top(const std::vector<Payload>& values, const std::string& algo,
               int top) {
  std::vector<VertexId> order(values.size());
  std::iota(order.begin(), order.end(), 0U);
  const bool float_valued = algo == "pagerank" || algo == "pagerank_delta";
  const bool lower_is_better = algo == "bfs" || algo == "sssp";
  std::partial_sort(
      order.begin(),
      order.begin() + std::min<std::size_t>(top, order.size()), order.end(),
      [&](VertexId a, VertexId b) {
        if (float_valued) {
          return payload_to_float(values[a]) > payload_to_float(values[b]);
        }
        return lower_is_better ? values[a] < values[b]
                               : values[a] > values[b];
      });
  std::printf("top %d vertices:\n", top);
  for (int i = 0; i < top && i < static_cast<int>(order.size()); ++i) {
    if (float_valued) {
      std::printf("  vertex %-10u %.6f\n", order[i],
                  payload_to_float(values[order[i]]));
    } else {
      std::printf("  vertex %-10u %u\n", order[i], values[order[i]]);
    }
  }
}

int run_convert(const Config& config) {
  const std::string in_base = config.get_string("in", "");
  const std::string out_base = config.get_string("out", "");
  if (in_base.empty() || out_base.empty()) {
    std::fprintf(stderr,
                 "usage: gpsa_cli convert --in=BASE --out=BASE "
                 "[--csr-format=v1|v2] [--csr-order=none|degree|bfs] "
                 "[--no-degree]\n");
    return 2;
  }
  auto format_or = parse_csr_format(config.get_string("csr-format", "v2"));
  if (!format_or.is_ok()) {
    std::fprintf(stderr, "%s\n", format_or.status().to_string().c_str());
    return 2;
  }
  auto order_or = parse_csr_order(config.get_string("csr-order", "none"));
  if (!order_or.is_ok()) {
    std::fprintf(stderr, "%s\n", order_or.status().to_string().c_str());
    return 2;
  }
  const bool with_degree = !config.get_bool("no-degree", false);
  const Status st = convert_csr_file(in_base, out_base, format_or.value(),
                                     order_or.value(), with_degree);
  if (!st.is_ok()) {
    std::fprintf(stderr, "convert: %s\n", st.to_string().c_str());
    return 1;
  }
  auto reader_or = CsrFileReader::open(out_base);
  if (!reader_or.is_ok()) {
    std::fprintf(stderr, "convert: reopening output failed: %s\n",
                 reader_or.status().to_string().c_str());
    return 1;
  }
  const CsrFileReader& out = reader_or.value();
  std::printf("converted %s -> %s (%s/%s): %u vertices, %llu edges, "
              "%llu entry-file bytes\n",
              in_base.c_str(), out_base.c_str(),
              csr_format_name(out.format()), csr_order_name(out.order()),
              out.num_vertices(),
              static_cast<unsigned long long>(out.num_edges()),
              static_cast<unsigned long long>(out.entry_file_bytes()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto config_or = Config::from_args(argc, argv);
  if (!config_or.is_ok()) {
    std::fprintf(stderr, "%s\n", config_or.status().to_string().c_str());
    return 1;
  }
  const Config& config = config_or.value();
  if (!config.positional().empty() && config.positional()[0] == "convert") {
    return run_convert(config);
  }
  const std::string algo = config.get_string("algo", "");
  const auto program = make_program(config, algo);
  if (program == nullptr) {
    std::fprintf(stderr,
                 "usage: gpsa_cli --algo=pagerank|pagerank_delta|bfs|cc|"
                 "sssp|multibfs|indegree [options]\n(see the header of "
                 "examples/gpsa_cli.cpp for the full list)\n");
    return 2;
  }

  auto graph_or = load_or_generate(config);
  if (!graph_or.is_ok()) {
    std::fprintf(stderr, "graph: %s\n",
                 graph_or.status().to_string().c_str());
    return 1;
  }
  EdgeList graph = std::move(graph_or).value();
  if (config.get_bool("symmetrize", false)) {
    EdgeList sym;
    sym.ensure_vertices(graph.num_vertices());
    for (const Edge& e : graph.edges()) {
      sym.add_edge(e.src, e.dst);
      sym.add_edge(e.dst, e.src);
    }
    sym.canonicalize();
    graph = std::move(sym);
  }
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  const std::string engine = config.get_string("engine", "gpsa");
  const auto supersteps =
      static_cast<std::uint64_t>(config.get_int("supersteps", 0));
  const int top = static_cast<int>(config.get_int("top", 5));

  std::vector<Payload> values;
  if (engine == "gpsa") {
    EngineOptions eo;
    eo.num_dispatchers =
        static_cast<unsigned>(config.get_int("dispatchers", 2));
    eo.num_computers =
        static_cast<unsigned>(config.get_int("computers", 2));
    eo.max_supersteps = supersteps;
    eo.enable_combiner = config.get_bool("combine", false);
    eo.checkpoint_each_superstep = config.get_bool("checkpoint", false);
    auto result = Engine::run(graph, *program, eo);
    if (!result.is_ok()) {
      std::fprintf(stderr, "engine: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    const RunResult& r = result.value();
    std::printf("gpsa: %llu supersteps, %llu messages, %.4f s%s\n",
                static_cast<unsigned long long>(r.supersteps),
                static_cast<unsigned long long>(r.total_messages),
                r.elapsed_seconds, r.converged ? " (converged)" : "");
    const std::string trace = config.get_string("trace", "");
    if (!trace.empty()) {
      const Status st = write_run_trace_csv(r, trace);
      if (!st.is_ok()) {
        std::fprintf(stderr, "trace: %s\n", st.to_string().c_str());
        return 1;
      }
      std::printf("trace written to %s\n", trace.c_str());
    }
    values = r.values;
  } else if (engine == "graphchi" || engine == "xstream") {
    BaselineOptions bo;
    bo.max_supersteps = supersteps;
    auto result = engine == "graphchi"
                      ? PswEngine::run(graph, *program, bo)
                      : XStreamEngine::run(graph, *program, bo);
    if (!result.is_ok()) {
      std::fprintf(stderr, "engine: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    std::printf("%s: %llu supersteps, %llu messages, %.4f s\n",
                engine.c_str(),
                static_cast<unsigned long long>(result.value().supersteps),
                static_cast<unsigned long long>(
                    result.value().total_messages),
                result.value().elapsed_seconds);
    values = std::move(result.value().values);
  } else if (engine == "cluster") {
    ClusterOptions co;
    co.num_nodes = static_cast<unsigned>(config.get_int("nodes", 4));
    co.max_supersteps = supersteps;
    auto result = ClusterEngine::run(graph, *program, co);
    if (!result.is_ok()) {
      std::fprintf(stderr, "engine: %s\n",
                   result.status().to_string().c_str());
      return 1;
    }
    const ClusterRunResult& r = result.value();
    std::printf("cluster(%u nodes): %llu supersteps, %llu messages "
                "(%.1f%% remote), send imbalance %.2f, modeled net %.4f s\n",
                co.num_nodes,
                static_cast<unsigned long long>(r.supersteps),
                static_cast<unsigned long long>(r.total_messages),
                100.0 * static_cast<double>(r.remote_messages) /
                    static_cast<double>(
                        std::max<std::uint64_t>(r.total_messages, 1)),
                r.send_imbalance(), r.modeled_network_seconds);
    values = r.values;
  } else if (engine == "reference") {
    const ReferenceResult r =
        reference_run(Csr::from_edges(graph), *program, supersteps);
    std::printf("reference: %llu supersteps, %llu messages\n",
                static_cast<unsigned long long>(r.supersteps),
                static_cast<unsigned long long>(r.total_messages));
    values = r.values;
  } else {
    std::fprintf(stderr, "unknown --engine=%s\n", engine.c_str());
    return 2;
  }

  print_top(values, algo, top);
  return 0;
}
