// Community structure via connected components on an undirected social
// graph: symmetrize the edge list, run CC to quiescence, and report the
// component-size distribution.
//
//   ./communities [--members=50000] [--friendships=200000] [--seed=5]
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "apps/cc.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "util/config.hpp"

int main(int argc, char** argv) {
  auto config_or = gpsa::Config::from_args(argc, argv);
  if (!config_or.is_ok()) {
    std::fprintf(stderr, "%s\n", config_or.status().to_string().c_str());
    return 1;
  }
  const gpsa::Config& config = config_or.value();
  const auto members =
      static_cast<gpsa::VertexId>(config.get_int("members", 50'000));
  const auto friendships =
      static_cast<gpsa::EdgeCount>(config.get_int("friendships", 200'000));
  const auto seed =
      static_cast<std::uint64_t>(config.get_int("seed", 5));

  // Sparse random friendships leave many singletons and a giant component —
  // the classic Erdős–Rényi structure.
  gpsa::EdgeList directed = gpsa::erdos_renyi(members, friendships, seed);
  gpsa::EdgeList graph;
  graph.ensure_vertices(directed.num_vertices());
  for (const gpsa::Edge& e : directed.edges()) {
    graph.add_edge(e.src, e.dst);
    graph.add_edge(e.dst, e.src);
  }
  graph.canonicalize();
  std::printf("undirected social graph: %u members, %llu friendship edges\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges() / 2));

  gpsa::EngineOptions options;
  options.num_dispatchers = 4;
  options.num_computers = 4;
  const gpsa::ConnectedComponentsProgram cc;
  auto result = gpsa::Engine::run(graph, cc, options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const gpsa::RunResult& run = result.value();
  std::printf("converged in %llu supersteps (%llu label messages)\n",
              static_cast<unsigned long long>(run.supersteps),
              static_cast<unsigned long long>(run.total_messages));

  // Component sizes keyed by representative label.
  std::map<gpsa::Payload, std::uint64_t> size_by_label;
  for (gpsa::Payload label : run.values) {
    ++size_by_label[label];
  }
  std::vector<std::uint64_t> sizes;
  sizes.reserve(size_by_label.size());
  for (const auto& [label, size] : size_by_label) {
    sizes.push_back(size);
  }
  std::sort(sizes.rbegin(), sizes.rend());

  std::printf("\ncommunities found: %zu\n", sizes.size());
  std::printf("largest community: %llu members (%.1f%% of the graph)\n",
              static_cast<unsigned long long>(sizes.front()),
              100.0 * static_cast<double>(sizes.front()) /
                  graph.num_vertices());
  std::uint64_t singletons = 0;
  for (std::uint64_t s : sizes) {
    singletons += (s == 1) ? 1 : 0;
  }
  std::printf("isolated members: %llu\n",
              static_cast<unsigned long long>(singletons));
  std::printf("\ntop community sizes:");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, sizes.size()); ++i) {
    std::printf(" %llu", static_cast<unsigned long long>(sizes[i]));
  }
  std::printf("\n");
  return 0;
}
