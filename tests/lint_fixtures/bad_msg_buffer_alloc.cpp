// Fixture: exactly one msg-buffer-alloc finding (line 11). Lint-only,
// never compiled.
#include <vector>

struct VertexMessage {};

void build_staging(std::size_t computers) {
  // Sized allocation on a declared VertexMessage buffer must fire:
  std::vector<VertexMessage> buffer;
  other.reserve(64);  // unrelated name: must not fire
  buffer.reserve(1024);
}

// Compliant shapes that must not fire:
void compliant(MessageBatchPool& pool) {
  std::vector<VertexMessage> leased = pool.lease();   // lease, no sizing
  std::vector<VertexMessage> empty;                   // default-construct
  std::vector<int> ints;
  ints.resize(128);                                   // not a msg buffer
  pool.recycle(std::move(leased));
}
