// Fixture: exactly one raw-socket finding (line 7). Lint-only, never compiled.
#include <sys/socket.h>

int connect_without_wrapper(int fd, const sockaddr* addr, unsigned len) {
  // ::connect in a comment must not fire; neither must this string:
  // "::socket(".
  return ::connect(fd, addr, len);
}

// Member definitions, member calls, and prefixed names must not fire:
struct Socket {
  int connect(int fd);
  int send(int fd);
};
int Socket::connect(int fd) { return fd; }
void member_calls(Socket& s, Socket* p) {
  s.connect(1);
  p->send(2);
  my_connect(3);
}
