// gpsa-lint: locked-notify
// Fixture: exactly one locked-notify finding (line 22).
#include <condition_variable>
#include <mutex>

struct Waitable {
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;

  void finish_safely() {
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
    cv_.notify_all();  // under the lock: fine
  }

  void finish_racily() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();  // after the lock scope closed: finding
  }

  void unlock_then_notify_suppressed() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_ = true;
    lock.unlock();
    cv_.notify_one();  // gpsa-lint: allow(locked-notify)
  }
};
