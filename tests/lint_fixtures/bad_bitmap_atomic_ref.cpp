// Fixture: exactly one bitmap-atomic-ref finding (line 9).
#include <atomic>
#include <cstdint>

using BitmapWord = std::uint64_t;

void decentralized_set(BitmapWord& word, unsigned bit) {
  // Direct construction bypasses the slot.hpp publication contract.
  std::atomic_ref<BitmapWord>(word).fetch_or(BitmapWord{1} << bit, std::memory_order_relaxed);  // gpsa-lint: allow(memory-order)
}

unsigned atomic_ref_on_other_types_is_fine(unsigned& x) {
  return std::atomic_ref<unsigned>(x).load();
}
