// Fixture: exactly one raw-io finding (line 6). Lint-only, never compiled.
#include <sys/mman.h>

void* map_without_raii(int fd, unsigned long size) {
  // mmap in a comment must not fire; neither must this string: "mmap(".
  return ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
}

// Member-style calls and prefixed names must not fire:
void member_calls(Wrapper& w, Wrapper* p) {
  w.mmap(8);
  p->mmap(8);
  my_mmap(8);
}
