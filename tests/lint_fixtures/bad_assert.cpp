// Fixture: exactly one check-macro finding (line 7).
#include <cassert>
#include <cstddef>

void takes(std::size_t n) {
  static_assert(sizeof(n) >= 4);  // static_assert is not assert()
  assert(n > 0);
}

// my_assert(x) and obj.assert(x) shapes must not fire:
void my_assert(bool) {}
void caller() { my_assert(true); }
