// Fixture: exactly one memory-order finding (line 7).
#include <atomic>

std::atomic<int> counter{0};

int naked_order() {
  return counter.load(std::memory_order_acquire);
}

int default_order_is_fine() { return counter.load(); }

// A mention of std::memory_order_relaxed in a comment must not fire.
const char* in_a_string = "std::memory_order_relaxed";
