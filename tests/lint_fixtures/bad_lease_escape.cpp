// Fixture: exactly one lease-escape finding (line 16).
#include <utility>
#include <vector>

struct VertexMessage {};

struct Pool {
  std::vector<VertexMessage> lease();
  void recycle(std::vector<VertexMessage>&& batch);
};

struct Hoarder {
  Pool* pool_;
  std::vector<VertexMessage> parked_;

  void park() { parked_ = pool_->lease(); }  // member store, no note: finding

  void local_is_fine() {
    auto batch = pool_->lease();  // local: the balance check sees it
    pool_->recycle(std::move(batch));
  }

  // A comparison is not an assignment; the `==` must not trip the rule.
  bool already_parked() { return parked_ == pool_->lease(); }
};
