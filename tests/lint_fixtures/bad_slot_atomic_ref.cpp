// Fixture: exactly one slot-atomic-ref finding (line 9).
#include <atomic>
#include <cstdint>

using Slot = std::uint64_t;

Slot decentralized_read(Slot& storage) {
  // Direct construction bypasses the slot.hpp ordering contract.
  return std::atomic_ref<Slot>(storage).load(std::memory_order_relaxed);  // gpsa-lint: allow(memory-order)
}

int atomic_ref_on_other_types_is_fine(int& x) {
  return std::atomic_ref<int>(x).load();
}
