// gpsa-lint: locked-notify
// Fixture: zero findings — every rule's compliant shape plus one
// suppressed violation per suppressible rule.
#include <atomic>
#include <condition_variable>
#include <mutex>

std::atomic<int> counter{0};

int suppressed_order() {
  return counter.load(std::memory_order_relaxed);  // gpsa-lint: allow(memory-order)
}

int plain_order() { return counter.load(); }

using BitmapWord = unsigned long long;
BitmapWord bitmap_word;

BitmapWord suppressed_bitmap_ref() {
  return std::atomic_ref<BitmapWord>(bitmap_word).load();  // gpsa-lint: allow(bitmap-atomic-ref)
}

int suppressed_socket(int fd, const sockaddr* addr, unsigned len) {
  return ::connect(fd, addr, len);  // gpsa-lint: allow(raw-socket)
}

struct VertexMessage {};

void suppressed_buffer_alloc() {
  std::vector<VertexMessage> buffer;
  buffer.reserve(1024);  // gpsa-lint: allow(msg-buffer-alloc)
}

struct Pool {
  std::vector<VertexMessage> lease();
};

struct Stager {
  Pool pool_;
  std::vector<VertexMessage> staging_;

  void prime() {
    // Recycled by flush(), which moves the batch back to the pool.
    staging_ = pool_.lease();  // gpsa-lint: allow(lease-escape)
  }
};

struct Waitable {
  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;

  void finish() {
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
    cv_.notify_all();
  }
};
